//! End-to-end protection scenarios on the access-matrix substrate.

use sd_core::{ObjSet, Phi, Rights};
use sd_matrix::{Confinement, MatrixBuilder, SecurityPolicy};

/// Grant rights propagate read capability: with grant ops, denying v any
/// *initial* read right is not enough — u can confer it.
#[test]
fn grant_defeats_static_denial() {
    let m = MatrixBuilder::new()
        .subject("u")
        .subject("v")
        .file("a", 2)
        .with_grant()
        .build()
        .unwrap();
    m.system.validate().unwrap();
    let a = m.file("a").unwrap();
    let va = m.cell("v", "a").unwrap();

    // φ: v initially lacks r on a (but everything else is free).
    let phi = m.cell_lacks("v", "a", Rights::R).unwrap();
    // The file's content still reaches v's cell? No — contents flow to
    // contents; what grant adds is a *protection-state* path:
    // u's cell ▷ v's cell.
    let ua = m.cell("u", "a").unwrap();
    assert!(
        sd_core::Query::new(phi.clone(), ObjSet::singleton(ua).clone())
            .beta(va)
            .run_on(&m.system)
            .unwrap()
            .holds(),
        "grant transmits u's rights into v's cell"
    );
    // Without grant ops, cells are frozen and no such path exists.
    let frozen = MatrixBuilder::new()
        .subject("u")
        .subject("v")
        .file("a", 2)
        .build()
        .unwrap();
    let fua = frozen.cell("u", "a").unwrap();
    let fva = frozen.cell("v", "a").unwrap();
    assert!(
        !sd_core::Query::new(Phi::True, ObjSet::singleton(fua).clone())
            .beta(fva)
            .run_on(&frozen.system)
            .unwrap()
            .holds()
    );
    let _ = a;
}

/// Revocation also moves information: whether v lost its right reveals
/// whether u held g.
#[test]
fn revoke_is_a_channel_too() {
    let m = MatrixBuilder::new()
        .subject("u")
        .subject("v")
        .file("a", 2)
        .with_revoke()
        .build()
        .unwrap();
    m.system.validate().unwrap();
    let ua = m.cell("u", "a").unwrap();
    let va = m.cell("v", "a").unwrap();
    assert!(
        sd_core::Query::new(Phi::True, ObjSet::singleton(ua).clone())
            .beta(va)
            .run_on(&m.system)
            .unwrap()
            .holds()
    );
}

/// Two-subject confinement: the canonical no-reads solution still works
/// with a second subject, and its worth dominates the no-writes solution.
#[test]
fn two_subject_confinement() {
    let m = MatrixBuilder::new()
        .subject("u")
        .subject("v")
        .file("secret", 2)
        .file("spy", 2)
        .build()
        .unwrap();
    let policy = Confinement::new(&m, &["secret"], &["spy"]).unwrap();
    let phi = sd_matrix::no_reads_of_confined(&m, &["secret"]).unwrap();
    assert!(policy
        .is_solution_for_pair(&m, &phi, "secret", "spy")
        .unwrap());
    // Blocking only one subject's reads is NOT a solution.
    let weak = m.cell_lacks("u", "secret", Rights::R).unwrap();
    assert!(!policy
        .is_solution_for_pair(&m, &weak, "secret", "spy")
        .unwrap());
}

/// The secure-configuration proof scales to a 4-level chain and stays in
/// agreement with the exact checker.
#[test]
fn four_level_security_chain() {
    let m = MatrixBuilder::new()
        .subject("u")
        .file("f0", 2)
        .file("f1", 2)
        .file("f2", 2)
        .file("f3", 2)
        .build()
        .unwrap();
    let p = SecurityPolicy::new(&m, &[("f0", 0), ("f1", 1), ("f2", 2), ("f3", 3)], 0).unwrap();
    let phi = p.secure_configuration(&m).unwrap();
    let out = p.prove(&m, &phi).unwrap();
    assert!(out.is_proved(), "{:?}", out.reason());
    // Spot-check the exact relation on the extreme pair: no f3 → f0.
    let top = m.file("f3").unwrap();
    let bottom = m.file("f0").unwrap();
    assert!(
        !sd_core::Query::new(phi.clone(), ObjSet::singleton(top).clone())
            .beta(bottom)
            .run_on(&m.system)
            .unwrap()
            .holds()
    );
    // Up-flow f0 → f3 is permitted and real.
    assert!(
        sd_core::Query::new(phi.clone(), ObjSet::singleton(bottom).clone())
            .beta(top)
            .run_on(&m.system)
            .unwrap()
            .holds()
    );
}

/// Worth of the secure configuration: only up-flows (and self-flows)
/// survive among file contents.
#[test]
fn secure_configuration_worth_is_upward() {
    let m = MatrixBuilder::new()
        .subject("u")
        .file("low", 2)
        .file("high", 2)
        .build()
        .unwrap();
    let p = SecurityPolicy::new(&m, &[("low", 0), ("high", 1)], 0).unwrap();
    let phi = p.secure_configuration(&m).unwrap();
    let w = sd_core::worth::worth(&m.system, &phi).unwrap();
    let low = m.file("low").unwrap();
    let high = m.file("high").unwrap();
    assert!(w.permits(low, high));
    assert!(!w.permits(high, low));
    for (a, b) in w.paths() {
        assert!(
            p.of(a) <= p.of(b),
            "worth contains a down-flow {} → {}",
            m.system.universe().name(a),
            m.system.universe().name(b)
        );
    }
}

/// The declassification variant composes with canonical solutions: a
/// partially declassified policy accepts constraints the strict policy
/// rejects, and both accept the full no-reads lockdown.
#[test]
fn partial_declassification() {
    let m = MatrixBuilder::new()
        .subject("u")
        .file("s1", 2)
        .file("s2", 2)
        .file("spy", 2)
        .build()
        .unwrap();
    let strict = Confinement::new(&m, &["s1", "s2"], &["spy"]).unwrap();
    let partial = Confinement::new(&m, &["s1", "s2"], &["spy"])
        .unwrap()
        .declassify(&m, &["s1"])
        .unwrap();
    // Lock down only s2's reads: fine for the partial policy, not strict.
    let phi = sd_matrix::no_reads_of_confined(&m, &["s2"]).unwrap();
    assert!(partial.is_solution(&m, &phi).unwrap());
    assert!(!strict.is_solution(&m, &phi).unwrap());
    // Full lockdown satisfies both.
    let full = sd_matrix::no_reads_of_confined(&m, &["s1", "s2"]).unwrap();
    assert!(strict.is_solution(&m, &full).unwrap());
    assert!(partial.is_solution(&m, &full).unwrap());
}
