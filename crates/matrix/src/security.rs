//! The Security Problem on access-matrix systems (§3.4, §4.2, §7.3).
//!
//! Files carry classifications; information must never move to a lower
//! classification. With a *fixed* protection state whose rights respect
//! the classification ordering, Corollary 4-3 (with `q(x, y) ≡
//! Cls(x) ≤ Cls(y)`) proves the system secure — the formal basis the paper
//! provides for [Denning 75]-style static certification. With *varying*
//! classifications (the Adept-50 discussion in §7.3), covert paths appear
//! and the exact checker finds them.

use sd_core::certificate::ProofOutcome;
use sd_core::problem::Problem;
use sd_core::{ObjId, Phi, Result, Rights};

use crate::model::Matrix;

/// A classification assignment for a matrix system's files.
#[derive(Debug, Clone)]
pub struct SecurityPolicy {
    /// Per-object classification level (indexed by object id); matrix
    /// cells and subject diagonals share one level (the protection state
    /// itself is visible system-wide in this model).
    pub cls: Vec<u32>,
}

impl SecurityPolicy {
    /// Builds a policy assigning `level(file)` to each file's content
    /// object; all protection-state objects get level `matrix_level`.
    pub fn new(m: &Matrix, levels: &[(&str, u32)], matrix_level: u32) -> Result<SecurityPolicy> {
        let u = m.system.universe();
        let mut cls = vec![matrix_level; u.num_objects()];
        for (f, lvl) in levels {
            cls[m.file(f)?.index()] = *lvl;
        }
        Ok(SecurityPolicy { cls })
    }

    /// The classification of an object.
    pub fn of(&self, o: ObjId) -> u32 {
        self.cls[o.index()]
    }

    /// The §3.4 problem statement
    /// `X(φ) ≡ ∀α, β: α ▷φ β ⊃ Cls(α) ≤ Cls(β)`.
    pub fn problem(&self) -> Problem {
        Problem::security(self.cls.clone())
    }

    /// A rights configuration respecting the policy: every subject's cell
    /// on a file at level `l` holds `r` only if reads cannot move data
    /// down. In this single-level-subject model we simply require that a
    /// subject may read `src` and write `dst` together only when
    /// `Cls(src) ≤ Cls(dst)` — pinning each cell is autonomous.
    ///
    /// The returned constraint pins every file cell to an explicit rights
    /// value, chosen so reads are unrestricted and writes are allowed only
    /// on top-level files.
    pub fn secure_configuration(&self, m: &Matrix) -> Result<Phi> {
        let top = m
            .files()
            .iter()
            .map(|f| self.of(m.file(f).expect("file exists")))
            .max()
            .unwrap_or(0);
        let mut phi = Phi::True;
        for s in m.subjects().to_vec() {
            phi = phi.and(m.cell_is(&s, &s, Rights::S)?);
            for f in m.files().to_vec() {
                let lvl = self.of(m.file(&f)?);
                // Read everywhere; write only at the top level. Then any
                // copy moves data to the top, which every level ≤.
                let rights = if lvl == top {
                    Rights::R.union(Rights::W)
                } else {
                    Rights::R
                };
                phi = phi.and(m.cell_is(&s, &f, rights)?);
            }
        }
        Ok(phi)
    }

    /// Proves the Security Problem for `phi` via Corollary 4-3 with
    /// `q(x, y) ≡ Cls(x) ≤ Cls(y)` (requires φ autonomous and invariant).
    pub fn prove(&self, m: &Matrix, phi: &Phi) -> Result<ProofOutcome> {
        let cls = self.cls.clone();
        let q = move |x: ObjId, y: ObjId| cls[x.index()] <= cls[y.index()];
        sd_core::induction::prove_cor_4_3(&m.system, phi, &q, "Cls ≤")
    }

    /// Decides the Security Problem exactly.
    pub fn holds(&self, m: &Matrix, phi: &Phi) -> Result<bool> {
        self.problem().is_solution(&m.system, phi)
    }

    /// The down-flows that exist under φ (empty iff secure).
    pub fn violations(&self, m: &Matrix, phi: &Phi) -> Result<Vec<(ObjId, ObjId)>> {
        self.problem().violations(&m.system, phi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MatrixBuilder;

    fn two_level() -> (Matrix, SecurityPolicy) {
        let m = MatrixBuilder::new()
            .subject("u")
            .file("low", 2)
            .file("high", 2)
            .build()
            .unwrap();
        let p = SecurityPolicy::new(&m, &[("low", 0), ("high", 1)], 0).unwrap();
        (m, p)
    }

    #[test]
    fn unconstrained_matrix_is_insecure() {
        let (m, p) = two_level();
        assert!(!p.holds(&m, &Phi::True).unwrap());
        let v = p.violations(&m, &Phi::True).unwrap();
        let high = m.file("high").unwrap();
        let low = m.file("low").unwrap();
        assert!(v.contains(&(high, low)));
    }

    #[test]
    fn secure_configuration_proved_by_cor_4_3() {
        let (m, p) = two_level();
        let phi = p.secure_configuration(&m).unwrap();
        // Exact check and the Cor 4-3 proof agree.
        assert!(p.holds(&m, &phi).unwrap());
        let out = p.prove(&m, &phi).unwrap();
        assert!(out.is_proved(), "{:?}", out.reason());
        let cert = out.certificate().unwrap();
        assert!(cert.conclusion.contains("Cls ≤"));
    }

    #[test]
    fn varying_classification_leaks_sec_7_3() {
        // The Adept-50 hazard: reclassifying `high` based on its content
        // lets an observer of the protection state learn the content, and
        // the protection state is classified low here.
        let m = MatrixBuilder::new()
            .subject("u")
            .file("low", 2)
            .file("high", 2)
            .with_dynamic_classification("high", 1)
            .build()
            .unwrap();
        let p = SecurityPolicy::new(&m, &[("low", 0), ("high", 1)], 0).unwrap();
        let phi = p.secure_configuration(&m).unwrap();
        // The configuration that was secure without reclassification now
        // leaks: high ▷ <u,high> (a level-0 object).
        assert!(!p.holds(&m, &phi).unwrap());
        let v = p.violations(&m, &phi).unwrap();
        let high = m.file("high").unwrap();
        let cell = m.cell("u", "high").unwrap();
        assert!(v.contains(&(high, cell)));
        // And Cor 4-3 is inapplicable: φ is no longer invariant.
        let out = p.prove(&m, &phi).unwrap();
        assert!(!out.is_proved());
    }

    #[test]
    fn three_level_chain() {
        let m = MatrixBuilder::new()
            .subject("u")
            .file("f0", 2)
            .file("f1", 2)
            .file("f2", 2)
            .build()
            .unwrap();
        let p = SecurityPolicy::new(&m, &[("f0", 0), ("f1", 1), ("f2", 2)], 0).unwrap();
        let phi = p.secure_configuration(&m).unwrap();
        assert!(p.holds(&m, &phi).unwrap());
        let out = p.prove(&m, &phi).unwrap();
        assert!(out.is_proved(), "{:?}", out.reason());
    }
}
