//! Access-matrix protection substrate for the Strong Dependency
//! reproduction.
//!
//! §1.3 of the paper models protection with a Lampson-style matrix of
//! rights; §§3.4–3.6 use small matrix systems for the Confinement and
//! Security problems and for comparing solutions. This crate builds those
//! systems as [`sd_core::System`]s in which matrix cells are first-class
//! objects:
//!
//! - [`model`]: the builder — subjects, files, guarded copy operations,
//!   optional grant/revoke and §7.3-style dynamic reclassification;
//! - [`confine`]: the Confinement Problem, with §7.5 declassification;
//! - [`security`]: the Security Problem, proved via Corollary 4-3 for
//!   fixed rights and shown leaky for content-dependent reclassification.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod confine;
pub mod model;
pub mod security;

pub use crate::confine::{no_reads_of_confined, no_writes_to_spies, Confinement};
pub use crate::model::{cell_name, Matrix, MatrixBuilder};
pub use crate::security::SecurityPolicy;
