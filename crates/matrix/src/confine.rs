//! The Confinement Problem on access-matrix systems (§3.4, §7.5).
//!
//! `Confined(x)` marks objects holding information that must stay private;
//! `Spy(x)` marks objects it must never reach. A solution is an initial
//! constraint on the protection state under which no confined object's
//! variety can be transmitted to any spy. §7.5 sketches *declassification*:
//! the problem statement is weakened so flows originating from explicitly
//! declassified objects are permitted.

use sd_core::problem::Problem;
use sd_core::{ObjSet, Phi, Result, Rights};

use crate::model::Matrix;

/// A confinement policy over a matrix system.
#[derive(Debug, Clone)]
pub struct Confinement {
    /// Objects whose initial contents are confined.
    pub confined: ObjSet,
    /// Objects that must not receive confined information.
    pub spies: ObjSet,
    /// Confined objects whose information is declassified (§7.5): flows
    /// from these to spies are tolerated.
    pub declassified: ObjSet,
}

impl Confinement {
    /// Builds a policy from file names.
    pub fn new(m: &Matrix, confined: &[&str], spies: &[&str]) -> Result<Confinement> {
        Ok(Confinement {
            confined: confined.iter().map(|f| m.file(f)).collect::<Result<_>>()?,
            spies: spies.iter().map(|f| m.file(f)).collect::<Result<_>>()?,
            declassified: ObjSet::empty(),
        })
    }

    /// Declassifies some of the confined files (§7.5).
    pub fn declassify(mut self, m: &Matrix, files: &[&str]) -> Result<Confinement> {
        self.declassified = files.iter().map(|f| m.file(f)).collect::<Result<_>>()?;
        Ok(self)
    }

    /// The §3.4 problem statement:
    /// `X(φ) ≡ ∀α, β: α ▷φ β ⊃ (Confined(α) ⊃ ¬Spy(β))`, weakened to
    /// permit flows from declassified objects.
    pub fn problem(&self) -> Problem {
        let confined = self.confined.clone();
        let spies = self.spies.clone();
        let declassified = self.declassified.clone();
        Problem::allowed_paths("confinement", move |a, b| {
            !(confined.contains(a) && spies.contains(b)) || declassified.contains(a)
        })
    }

    /// Decides whether φ solves the policy on `m` (exact).
    pub fn is_solution(&self, m: &Matrix, phi: &Phi) -> Result<bool> {
        self.problem().is_solution(&m.system, phi)
    }

    /// Checks a single confined-file → spy pair under φ — cheaper than the
    /// full policy check on large matrices.
    pub fn is_solution_for_pair(
        &self,
        m: &Matrix,
        phi: &Phi,
        confined: &str,
        spy: &str,
    ) -> Result<bool> {
        let a = ObjSet::singleton(m.file(confined)?);
        let b = m.file(spy)?;
        Ok(!sd_core::Query::new(phi.clone(), a)
            .beta(b)
            .run_on(&m.system)?
            .holds())
    }
}

/// A canonical solution shape: no subject may read any confined file.
///
/// Blocking all reads of confined data removes every outgoing path, so it
/// always solves the (undeclassified) policy; it is usually far from
/// maximal.
pub fn no_reads_of_confined(m: &Matrix, confined: &[&str]) -> Result<Phi> {
    let mut phi = Phi::True;
    for s in m.subjects().to_vec() {
        for f in confined {
            phi = phi.and(m.cell_lacks(&s, f, Rights::R)?);
        }
    }
    Ok(phi)
}

/// Another canonical shape: no subject may write any spy file.
pub fn no_writes_to_spies(m: &Matrix, spies: &[&str]) -> Result<Phi> {
    let mut phi = Phi::True;
    for s in m.subjects().to_vec() {
        for f in spies {
            phi = phi.and(m.cell_lacks(&s, f, Rights::W)?);
        }
    }
    Ok(phi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MatrixBuilder;

    /// One subject, a confined file, a scratch file, and a spy file.
    fn setup() -> (Matrix, Confinement) {
        let m = MatrixBuilder::new()
            .subject("u")
            .file("secret", 2)
            .file("scratch", 2)
            .file("spy", 2)
            .build()
            .unwrap();
        let c = Confinement::new(&m, &["secret"], &["spy"]).unwrap();
        (m, c)
    }

    #[test]
    fn unconstrained_matrix_leaks() {
        let (m, c) = setup();
        assert!(!c.is_solution(&m, &Phi::True).unwrap());
        // With a single subject and static rights, cutting either endpoint
        // of every path (reads of the secret, or writes to the spy) *is* a
        // solution — the disjunction blocks each initial state one way or
        // the other.
        let endpoint_cut = m
            .cell_lacks("u", "spy", Rights::W)
            .unwrap()
            .or(m.cell_lacks("u", "secret", Rights::R).unwrap());
        assert!(c.is_solution(&m, &endpoint_cut).unwrap());
    }

    #[test]
    fn confederate_launders_the_leak_sec_1_4() {
        // The §1.4 scenario: forbidding *Cohen* from writing the Salary
        // file is an enforcement solution, not an information solution —
        // a confederate copies it the rest of the way. Here u can reach
        // scratch, v can move scratch → spy; blocking only u's writes to
        // the spy leaves the two-hop channel open.
        let m = MatrixBuilder::new()
            .subject("u")
            .subject("v")
            .file("secret", 2)
            .file("scratch", 2)
            .file("spy", 2)
            .build()
            .unwrap();
        let c = Confinement::new(&m, &["secret"], &["spy"]).unwrap();
        let phi = m.cell_lacks("u", "spy", Rights::W).unwrap();
        assert!(!c.is_solution_for_pair(&m, &phi, "secret", "spy").unwrap());
    }

    #[test]
    fn canonical_solutions_work() {
        let (m, c) = setup();
        let phi_r = no_reads_of_confined(&m, &["secret"]).unwrap();
        assert!(c.is_solution(&m, &phi_r).unwrap());
        let phi_w = no_writes_to_spies(&m, &["spy"]).unwrap();
        assert!(c.is_solution(&m, &phi_w).unwrap());
    }

    #[test]
    fn worth_comparison_of_solutions() {
        // Blocking reads of the secret permits scratch → spy traffic;
        // blocking writes to the spy kills it. The first solution is
        // strictly worthier (§3.6).
        let (m, _c) = setup();
        let phi_r = no_reads_of_confined(&m, &["secret"]).unwrap();
        let phi_w = no_writes_to_spies(&m, &["spy"]).unwrap();
        let w_r = sd_core::worth::worth(&m.system, &phi_r).unwrap();
        let w_w = sd_core::worth::worth(&m.system, &phi_w).unwrap();
        let scratch = m.file("scratch").unwrap();
        let spy = m.file("spy").unwrap();
        assert!(w_r.permits(scratch, spy));
        assert!(!w_w.permits(scratch, spy));
        assert!(w_r.partial_cmp(&w_w).is_none() || w_w.le(&w_r));
    }

    #[test]
    fn declassification_weakens_the_problem() {
        let (m, c) = setup();
        // tt does not solve the strict problem…
        assert!(!c.is_solution(&m, &Phi::True).unwrap());
        // …but after declassifying the secret, it does.
        let weak = c.declassify(&m, &["secret"]).unwrap();
        assert!(weak.is_solution(&m, &Phi::True).unwrap());
    }

    #[test]
    fn spies_may_still_talk_to_others() {
        // A solution must not forbid unrelated paths: under the
        // no-reads-of-confined solution, scratch → spy remains possible.
        let (m, _) = setup();
        let phi = no_reads_of_confined(&m, &["secret"]).unwrap();
        let scratch = m.file("scratch").unwrap();
        let spy = m.file("spy").unwrap();
        assert!(sd_core::Query::new(phi, ObjSet::singleton(scratch))
            .beta(spy)
            .run_on(&m.system)
            .unwrap()
            .holds());
    }
}
