//! The access-matrix model (§1.3).
//!
//! Protection state is a matrix of rights: before an operation touches an
//! object, the matrix entry for (executor, object) is checked. Matrix
//! entries are themselves first-class objects of the computational system
//! — `w ∈ <Cohen, Salary>(σ)` is a test on the value of the cell object —
//! so constraints φ can speak about the protection state exactly as the
//! paper's examples do (§3.5, §3.6), and rights-mutating operations
//! (grant, revoke, dynamic reclassification) are ordinary operations whose
//! information-flow consequences the core machinery analyzes.

use sd_core::{Cmd, Domain, Error, Expr, ObjId, Op, Result, Rights, System, Universe, Value};

/// Builder for access-matrix systems.
#[derive(Debug, Clone)]
pub struct MatrixBuilder {
    subjects: Vec<String>,
    files: Vec<(String, i64)>,
    grant: bool,
    revoke: bool,
    dynamic_classification: Vec<(String, i64)>,
}

impl Default for MatrixBuilder {
    fn default() -> Self {
        MatrixBuilder::new()
    }
}

/// A built access-matrix system plus name-resolution helpers.
#[derive(Debug, Clone)]
pub struct Matrix {
    /// The underlying computational system.
    pub system: System,
    subjects: Vec<String>,
    files: Vec<String>,
}

/// The name of the matrix cell object for `(subject, target)`.
pub fn cell_name(subject: &str, target: &str) -> String {
    format!("<{subject},{target}>")
}

impl MatrixBuilder {
    /// Creates an empty builder.
    pub fn new() -> MatrixBuilder {
        MatrixBuilder {
            subjects: Vec::new(),
            files: Vec::new(),
            grant: false,
            revoke: false,
            dynamic_classification: Vec::new(),
        }
    }

    /// Adds a subject.
    #[must_use]
    pub fn subject(mut self, name: &str) -> MatrixBuilder {
        self.subjects.push(name.to_string());
        self
    }

    /// Adds a file with `k` possible contents.
    #[must_use]
    pub fn file(mut self, name: &str, k: i64) -> MatrixBuilder {
        self.files.push((name.to_string(), k));
        self
    }

    /// Adds `grant_read(x, y, f)` operations: a subject holding `r` and
    /// `g` on a file may confer `r` on another subject.
    #[must_use]
    pub fn with_grant(mut self) -> MatrixBuilder {
        self.grant = true;
        self
    }

    /// Adds `revoke_read(x, y, f)` operations: a subject holding `g` on a
    /// file may remove another subject's `r`.
    #[must_use]
    pub fn with_revoke(mut self) -> MatrixBuilder {
        self.revoke = true;
        self
    }

    /// Adds a §7.3-style *dynamic classification* operation for `file`:
    /// when the file's content reaches `threshold`, every subject's read
    /// right on it is revoked. The Adept-50 discussion warns this creates
    /// covert paths — the checkers confirm it.
    #[must_use]
    pub fn with_dynamic_classification(mut self, file: &str, threshold: i64) -> MatrixBuilder {
        self.dynamic_classification
            .push((file.to_string(), threshold));
        self
    }

    /// Builds the system: one content object per file, a diagonal cell
    /// `<x,x>` per subject (subject right only) and a cell `<x,f>` per
    /// subject-file pair (r/w/g combinations), plus `copy` operations for
    /// every subject and ordered file pair, and any requested
    /// rights-mutating operations.
    pub fn build(self) -> Result<Matrix> {
        if self.subjects.is_empty() || self.files.is_empty() {
            return Err(Error::Invalid(
                "matrix needs at least one subject and one file".into(),
            ));
        }
        let mut objects: Vec<(String, Domain)> = Vec::new();
        for (f, k) in &self.files {
            objects.push((f.clone(), Domain::int_range(0, k - 1)?));
        }
        let diag_domain = Domain::new(vec![Value::Rights(Rights::NONE), Value::Rights(Rights::S)])?;
        let file_cell_values: Vec<Value> = {
            // All subsets of {r, w}, plus g-variants only when some
            // operation actually manipulates grant rights — smaller cell
            // domains keep the state space tractable.
            let with_g = self.grant || self.revoke;
            let top = if with_g { 8u8 } else { 4u8 };
            let mut v = Vec::new();
            for mask in 0..top {
                let mut r = Rights::NONE;
                if mask & 1 != 0 {
                    r = r.union(Rights::R);
                }
                if mask & 2 != 0 {
                    r = r.union(Rights::W);
                }
                if mask & 4 != 0 {
                    r = r.union(Rights::G);
                }
                v.push(Value::Rights(r));
            }
            v
        };
        for s in &self.subjects {
            objects.push((cell_name(s, s), diag_domain.clone()));
            for (f, _) in &self.files {
                objects.push((cell_name(s, f), Domain::new(file_cell_values.clone())?));
            }
        }
        let u = Universe::new(objects)?;

        let cell = |s: &str, t: &str| u.obj(&cell_name(s, t));
        let mut ops: Vec<Op> = Vec::new();
        // copy(x, fdst, fsrc): §1.3's copy operation.
        for x in &self.subjects {
            for (dst, _) in &self.files {
                for (src, _) in &self.files {
                    if dst == src {
                        continue;
                    }
                    let guard = Expr::var(cell(x, x)?)
                        .has_rights(Rights::S)
                        .and(Expr::var(cell(x, src)?).has_rights(Rights::R))
                        .and(Expr::var(cell(x, dst)?).has_rights(Rights::W));
                    let dst_obj = u.obj(dst)?;
                    let src_obj = u.obj(src)?;
                    // The copy truncates into the destination's domain so
                    // files of different sizes compose.
                    let dst_size = u.domain(dst_obj).size() as i64;
                    ops.push(Op::from_cmd(
                        format!("copy({x},{dst},{src})"),
                        Cmd::when(
                            guard,
                            Cmd::assign(dst_obj, Expr::var(src_obj).modulo(Expr::int(dst_size))),
                        ),
                    ));
                }
            }
        }
        if self.grant {
            for x in &self.subjects {
                for y in &self.subjects {
                    if x == y {
                        continue;
                    }
                    for (f, _) in &self.files {
                        let guard = Expr::var(cell(x, x)?)
                            .has_rights(Rights::S)
                            .and(Expr::var(cell(x, f)?).has_rights(Rights::R.union(Rights::G)));
                        let target = cell(y, f)?;
                        ops.push(Op::native(
                            format!("grant_read({x},{y},{f})"),
                            grant_op(guard, target, true),
                        ));
                    }
                }
            }
        }
        if self.revoke {
            for x in &self.subjects {
                for y in &self.subjects {
                    if x == y {
                        continue;
                    }
                    for (f, _) in &self.files {
                        let guard = Expr::var(cell(x, x)?)
                            .has_rights(Rights::S)
                            .and(Expr::var(cell(x, f)?).has_rights(Rights::G));
                        let target = cell(y, f)?;
                        ops.push(Op::native(
                            format!("revoke_read({x},{y},{f})"),
                            grant_op(guard, target, false),
                        ));
                    }
                }
            }
        }
        for (f, threshold) in &self.dynamic_classification {
            let file_obj = u.obj(f)?;
            let guard = Expr::var(file_obj).ge(Expr::int(*threshold));
            let targets: Vec<ObjId> = self
                .subjects
                .iter()
                .map(|s| cell(s, f))
                .collect::<Result<_>>()?;
            ops.push(Op::native(
                format!("classify({f})"),
                classify_op(guard, targets),
            ));
        }
        Ok(Matrix {
            system: System::new(u, ops),
            subjects: self.subjects,
            files: self.files.into_iter().map(|(f, _)| f).collect(),
        })
    }
}

/// Native op: when `guard` holds, add (or remove) `r` in the target cell.
fn grant_op(
    guard: Expr,
    target: ObjId,
    add: bool,
) -> impl Fn(&Universe, &sd_core::State) -> Result<sd_core::State> + Send + Sync {
    move |u, sigma| {
        let mut out = sigma.clone();
        if guard.eval_bool(u, sigma)? {
            let cur = sigma
                .value(u, target)
                .as_rights()
                .ok_or(Error::Invalid("cell is not rights-valued".into()))?;
            let new = if add {
                cur.union(Rights::R)
            } else {
                cur.minus(Rights::R)
            };
            let idx = u
                .domain(target)
                .index_of(&Value::Rights(new))
                .ok_or(Error::OutOfDomain {
                    object: u.name(target).to_string(),
                    value: Value::Rights(new),
                })?;
            out.set_index(target, idx);
        }
        Ok(out)
    }
}

/// Native op: when `guard` holds, strip `r` from every target cell.
fn classify_op(
    guard: Expr,
    targets: Vec<ObjId>,
) -> impl Fn(&Universe, &sd_core::State) -> Result<sd_core::State> + Send + Sync {
    move |u, sigma| {
        let mut out = sigma.clone();
        if guard.eval_bool(u, sigma)? {
            for &t in &targets {
                let cur = sigma
                    .value(u, t)
                    .as_rights()
                    .ok_or(Error::Invalid("cell is not rights-valued".into()))?;
                let new = cur.minus(Rights::R);
                let idx = u
                    .domain(t)
                    .index_of(&Value::Rights(new))
                    .ok_or(Error::OutOfDomain {
                        object: u.name(t).to_string(),
                        value: Value::Rights(new),
                    })?;
                out.set_index(t, idx);
            }
        }
        Ok(out)
    }
}

impl Matrix {
    /// The subjects, in declaration order.
    pub fn subjects(&self) -> &[String] {
        &self.subjects
    }

    /// The files, in declaration order.
    pub fn files(&self) -> &[String] {
        &self.files
    }

    /// The content object of a file.
    pub fn file(&self, name: &str) -> Result<ObjId> {
        self.system.universe().obj(name)
    }

    /// The matrix cell object for `(subject, target)`.
    pub fn cell(&self, subject: &str, target: &str) -> Result<ObjId> {
        self.system.universe().obj(&cell_name(subject, target))
    }

    /// The constraint "`subject` holds exactly `rights` on `target`".
    pub fn cell_is(&self, subject: &str, target: &str, rights: Rights) -> Result<sd_core::Phi> {
        let c = self.cell(subject, target)?;
        Ok(sd_core::Phi::expr(
            Expr::var(c).eq(Expr::Const(Value::Rights(rights))),
        ))
    }

    /// The constraint "`subject` holds at least `rights` on `target`".
    pub fn cell_has(&self, subject: &str, target: &str, rights: Rights) -> Result<sd_core::Phi> {
        let c = self.cell(subject, target)?;
        Ok(sd_core::Phi::expr(Expr::var(c).has_rights(rights)))
    }

    /// The constraint "`subject` lacks all of `rights` on `target`".
    pub fn cell_lacks(&self, subject: &str, target: &str, rights: Rights) -> Result<sd_core::Phi> {
        let c = self.cell(subject, target)?;
        Ok(sd_core::Phi::expr(Expr::var(c).has_rights(rights).not()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_core::{ObjSet, Phi};

    fn small() -> Matrix {
        MatrixBuilder::new()
            .subject("u")
            .file("a", 2)
            .file("b", 2)
            .build()
            .unwrap()
    }

    #[test]
    fn builds_and_validates() {
        let m = small();
        m.system.validate().unwrap();
        // 2 contents × diag (2) × two cells (4 each): 2·2·2·4·4 = 128.
        assert_eq!(m.system.state_count().unwrap(), 128);
        assert_eq!(m.system.num_ops(), 2); // copy(u,a,b), copy(u,b,a).
    }

    #[test]
    fn copy_respects_rights() {
        let m = small();
        let a = m.file("a").unwrap();
        let b = m.file("b").unwrap();
        // Unconstrained, a ▷ b (some state grants the rights).
        assert!(sd_core::Query::new(Phi::True, ObjSet::singleton(a).clone())
            .beta(b)
            .run_on(&m.system)
            .unwrap()
            .holds());
        // If u cannot read a, a's content cannot reach b.
        let phi = m.cell_lacks("u", "a", Rights::R).unwrap();
        assert!(
            !sd_core::Query::new(phi.clone(), ObjSet::singleton(a).clone())
                .beta(b)
                .run_on(&m.system)
                .unwrap()
                .holds()
        );
        // Likewise if u is not a subject at all.
        let phi2 = m.cell_lacks("u", "u", Rights::S).unwrap();
        assert!(
            !sd_core::Query::new(phi2.clone(), ObjSet::singleton(a).clone())
                .beta(b)
                .run_on(&m.system)
                .unwrap()
                .holds()
        );
    }

    #[test]
    fn grant_creates_rights_paths() {
        let m = MatrixBuilder::new()
            .subject("u")
            .subject("v")
            .file("a", 2)
            .with_grant()
            .build()
            .unwrap();
        m.system.validate().unwrap();
        // v's read-right cell depends on u's grant-right cell (u granting
        // confers r on v).
        let from = m.cell("u", "a").unwrap();
        let to = m.cell("v", "a").unwrap();
        assert!(
            sd_core::Query::new(Phi::True, ObjSet::singleton(from).clone())
                .beta(to)
                .run_on(&m.system)
                .unwrap()
                .holds()
        );
    }

    #[test]
    fn dynamic_classification_is_covert_path() {
        // §7.3: reclassifying a file based on its content transmits the
        // content into the protection state.
        let m = MatrixBuilder::new()
            .subject("u")
            .file("a", 2)
            .with_dynamic_classification("a", 1)
            .build()
            .unwrap();
        m.system.validate().unwrap();
        let a = m.file("a").unwrap();
        let cell = m.cell("u", "a").unwrap();
        assert!(
            sd_core::Query::new(Phi::True, ObjSet::singleton(a).clone())
                .beta(cell)
                .run_on(&m.system)
                .unwrap()
                .holds(),
            "content flows into the access matrix"
        );
    }

    #[test]
    fn builder_rejects_empty() {
        assert!(MatrixBuilder::new().build().is_err());
        assert!(MatrixBuilder::new().subject("u").build().is_err());
    }

    #[test]
    fn name_helpers_resolve() {
        let m = small();
        assert!(m.cell("u", "a").is_ok());
        assert!(m.cell("u", "u").is_ok());
        assert!(m.cell("v", "a").is_err());
        assert_eq!(m.subjects(), &["u".to_string()]);
        assert_eq!(m.files(), &["a".to_string(), "b".to_string()]);
    }
}
