//! Compilation of programs to pc-guarded computational systems.
//!
//! Following §6.5 (after Lipton), a sequential program is modelled as a
//! computational system in which every statement becomes an operation
//! guarded by an explicit program counter:
//!
//! ```text
//! δi: if pc = i then ( …statement body…; pc ← next )
//! ```
//!
//! Branch-free `if` statements compile to a *single* atomic operation with
//! an internal conditional — exactly how the paper's flowchart boxes work
//! (`δ1: if pc = 1 then (if q > 10 then t ← tt else t ← ff; pc ← 2)`).
//! This keeps the program counter's trajectory data-independent for
//! branch-free programs, which is what makes the pc-indexed Floyd cover an
//! inductive cover (Def 6-2). `while` loops and `if`s with nested control
//! flow fall back to explicit pc branches.

use std::collections::BTreeMap;

use sd_core::{Cmd, Domain, Expr as CExpr, ObjId, Op, Phi, State, System, Universe};

use crate::ast::{BinOp, Expr, Program, Stmt, Type};
use crate::error::{LangError, Result};
use crate::eval::Val;

/// The inferred type of a lowered expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ETy {
    Bool,
    Int,
}

/// Lowers a source expression to a core expression, with type inference.
fn lower_expr(e: &Expr, vars: &BTreeMap<String, (ObjId, Type)>) -> Result<(CExpr, ETy)> {
    match e {
        Expr::Int(i) => Ok((CExpr::int(*i), ETy::Int)),
        Expr::Bool(b) => Ok((CExpr::bool(*b), ETy::Bool)),
        Expr::Var(v) => {
            let (id, ty) = vars
                .get(v)
                .ok_or_else(|| LangError::Semantic(format!("undeclared variable `{v}`")))?;
            let ety = match ty {
                Type::Bool => ETy::Bool,
                Type::Int { .. } => ETy::Int,
            };
            Ok((CExpr::var(*id), ety))
        }
        Expr::Neg(inner) => {
            let (ce, ty) = lower_expr(inner, vars)?;
            if ty != ETy::Int {
                return Err(LangError::Semantic("`-` needs an int operand".into()));
            }
            Ok((ce.neg(), ETy::Int))
        }
        Expr::Not(inner) => {
            let (ce, ty) = lower_expr(inner, vars)?;
            if ty != ETy::Bool {
                return Err(LangError::Semantic("`!` needs a bool operand".into()));
            }
            Ok((ce.not(), ETy::Bool))
        }
        Expr::Bin(op, l, r) => {
            let (cl, tl) = lower_expr(l, vars)?;
            let (cr, tr) = lower_expr(r, vars)?;
            let (core_op, need, out) = match op {
                BinOp::Add => (sd_core::BinOp::Add, ETy::Int, ETy::Int),
                BinOp::Sub => (sd_core::BinOp::Sub, ETy::Int, ETy::Int),
                BinOp::Mul => (sd_core::BinOp::Mul, ETy::Int, ETy::Int),
                BinOp::Div => (sd_core::BinOp::Div, ETy::Int, ETy::Int),
                BinOp::Mod => (sd_core::BinOp::Mod, ETy::Int, ETy::Int),
                BinOp::Lt => (sd_core::BinOp::Lt, ETy::Int, ETy::Bool),
                BinOp::Le => (sd_core::BinOp::Le, ETy::Int, ETy::Bool),
                BinOp::Gt => (sd_core::BinOp::Gt, ETy::Int, ETy::Bool),
                BinOp::Ge => (sd_core::BinOp::Ge, ETy::Int, ETy::Bool),
                BinOp::And => (sd_core::BinOp::And, ETy::Bool, ETy::Bool),
                BinOp::Or => (sd_core::BinOp::Or, ETy::Bool, ETy::Bool),
                BinOp::Eq | BinOp::Ne => {
                    if tl != tr {
                        return Err(LangError::Semantic(
                            "`==`/`!=` operands must have the same type".into(),
                        ));
                    }
                    let core_op = if *op == BinOp::Eq {
                        sd_core::BinOp::Eq
                    } else {
                        sd_core::BinOp::Ne
                    };
                    return Ok((CExpr::bin(core_op, cl, cr), ETy::Bool));
                }
            };
            if tl != need || tr != need {
                return Err(LangError::Semantic(format!(
                    "operator `{op}` needs {need:?} operands"
                )));
            }
            Ok((CExpr::bin(core_op, cl, cr), out))
        }
    }
}

/// Lowers an expression for use in assertions; returns the core expression
/// and whether it is boolean-typed.
pub(crate) fn lower_expr_pub(
    e: &Expr,
    vars: &BTreeMap<String, (ObjId, Type)>,
) -> Result<(CExpr, bool)> {
    let (ce, ty) = lower_expr(e, vars)?;
    Ok((ce, ty == ETy::Bool))
}

/// One compiled program point.
#[derive(Debug, Clone)]
pub struct FlatStmt {
    /// The pc value at which this statement executes.
    pub label: i64,
    /// Human-readable rendering.
    pub text: String,
    /// Variable written, if this is an assignment point.
    pub writes: Option<String>,
}

/// A program compiled to a computational system with an explicit pc.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The computational system.
    pub system: System,
    /// The pc object.
    pub pc: ObjId,
    /// The entry pc value.
    pub entry: i64,
    /// The exit (halt) pc value.
    pub exit: i64,
    /// Declared variables and their objects.
    pub vars: BTreeMap<String, ObjId>,
    /// The flattened program points (one operation per point).
    pub flat: Vec<FlatStmt>,
}

/// Whether a statement list is branch free (assignments and skips only) —
/// such a block can execute inside a single atomic operation.
fn branch_free(stmts: &[Stmt]) -> bool {
    stmts.iter().all(|s| match s {
        Stmt::Assign(..) | Stmt::Skip => true,
        Stmt::If(_, t, e) => branch_free(t) && branch_free(e),
        Stmt::While(..) => false,
    })
}

/// Lowers a branch-free statement list to a core command.
fn lower_branch_free(stmts: &[Stmt], vars: &BTreeMap<String, (ObjId, Type)>) -> Result<Cmd> {
    let mut cmds = Vec::new();
    for s in stmts {
        match s {
            Stmt::Skip => {}
            Stmt::Assign(x, e) => {
                let (id, ty) = vars
                    .get(x)
                    .ok_or_else(|| LangError::Semantic(format!("undeclared variable `{x}`")))?;
                let (ce, ety) = lower_expr(e, vars)?;
                let want = match ty {
                    Type::Bool => ETy::Bool,
                    Type::Int { .. } => ETy::Int,
                };
                if ety != want {
                    return Err(LangError::Semantic(format!(
                        "assignment to `{x}` has the wrong type"
                    )));
                }
                // Operations must be total functions on the whole state
                // space (§1.2), so an assignment whose value would leave
                // the declared range sticks (is a no-op). The interpreter
                // in `eval` has the same semantics.
                match ty {
                    Type::Bool => cmds.push(Cmd::assign(*id, ce)),
                    Type::Int { lo, hi } => {
                        let in_range = ce
                            .clone()
                            .ge(CExpr::int(*lo))
                            .and(ce.clone().le(CExpr::int(*hi)));
                        cmds.push(Cmd::when(in_range, Cmd::assign(*id, ce)));
                    }
                }
            }
            Stmt::If(g, t, e) => {
                let (cg, ty) = lower_expr(g, vars)?;
                if ty != ETy::Bool {
                    return Err(LangError::Semantic("if guard must be bool".into()));
                }
                cmds.push(Cmd::If(
                    cg,
                    Box::new(lower_branch_free(t, vars)?),
                    Box::new(lower_branch_free(e, vars)?),
                ));
            }
            Stmt::While(..) => {
                return Err(LangError::Semantic(
                    "while cannot appear in an atomic block".into(),
                ))
            }
        }
    }
    Ok(Cmd::Seq(cmds))
}

/// The flattening pass output: a command body plus a successor target, or a
/// branch.
enum Flat {
    /// Execute a command and jump.
    Step {
        body: Cmd,
        goto: usize,
        text: String,
        writes: Option<String>,
    },
    /// Evaluate a guard and jump either way.
    Branch {
        guard: CExpr,
        then_to: usize,
        else_to: usize,
        text: String,
    },
}

struct Lowerer<'a> {
    vars: &'a BTreeMap<String, (ObjId, Type)>,
    slots: Vec<Option<Flat>>,
}

impl Lowerer<'_> {
    fn push(&mut self, f: Flat) -> usize {
        self.slots.push(Some(f));
        self.slots.len() - 1
    }

    fn reserve(&mut self) -> usize {
        self.slots.push(None);
        self.slots.len() - 1
    }

    /// Emits a block; returns its entry slot (or `follow` if empty).
    fn emit_block(&mut self, stmts: &[Stmt], follow: usize) -> Result<usize> {
        let mut next = follow;
        for s in stmts.iter().rev() {
            next = self.emit_stmt(s, next)?;
        }
        Ok(next)
    }

    fn emit_stmt(&mut self, s: &Stmt, follow: usize) -> Result<usize> {
        match s {
            Stmt::Skip => Ok(self.push(Flat::Step {
                body: Cmd::Skip,
                goto: follow,
                text: "skip".into(),
                writes: None,
            })),
            Stmt::Assign(x, e) => {
                let body = lower_branch_free(std::slice::from_ref(s), self.vars)?;
                Ok(self.push(Flat::Step {
                    body,
                    goto: follow,
                    text: format!("{x} := {e}"),
                    writes: Some(x.clone()),
                }))
            }
            Stmt::If(g, t, e) if branch_free(t) && branch_free(e) => {
                // Atomic conditional — a single flowchart box, as in §6.5.
                let (cg, ty) = lower_expr(g, self.vars)?;
                if ty != ETy::Bool {
                    return Err(LangError::Semantic("if guard must be bool".into()));
                }
                let body = Cmd::If(
                    cg,
                    Box::new(lower_branch_free(t, self.vars)?),
                    Box::new(lower_branch_free(e, self.vars)?),
                );
                // Record every variable either arm can write.
                let mut ws = Vec::new();
                for arm in [t, e] {
                    collect_writes(arm, &mut ws);
                }
                Ok(self.push(Flat::Step {
                    body,
                    goto: follow,
                    text: format!("if {g} then …"),
                    writes: ws.first().cloned(),
                }))
            }
            Stmt::If(g, t, e) => {
                let (cg, ty) = lower_expr(g, self.vars)?;
                if ty != ETy::Bool {
                    return Err(LangError::Semantic("if guard must be bool".into()));
                }
                let t_entry = self.emit_block(t, follow)?;
                let e_entry = self.emit_block(e, follow)?;
                Ok(self.push(Flat::Branch {
                    guard: cg,
                    then_to: t_entry,
                    else_to: e_entry,
                    text: format!("branch {g}"),
                }))
            }
            Stmt::While(g, b) => {
                let (cg, ty) = lower_expr(g, self.vars)?;
                if ty != ETy::Bool {
                    return Err(LangError::Semantic("while guard must be bool".into()));
                }
                let slot = self.reserve();
                let body_entry = self.emit_block(b, slot)?;
                self.slots[slot] = Some(Flat::Branch {
                    guard: cg,
                    then_to: body_entry,
                    else_to: follow,
                    text: format!("while {g}"),
                });
                Ok(slot)
            }
        }
    }
}

fn collect_writes(stmts: &[Stmt], out: &mut Vec<String>) {
    for s in stmts {
        match s {
            Stmt::Assign(x, _) => out.push(x.clone()),
            Stmt::If(_, t, e) => {
                collect_writes(t, out);
                collect_writes(e, out);
            }
            Stmt::While(_, b) => collect_writes(b, out),
            Stmt::Skip => {}
        }
    }
}

/// Compiles a program to a computational system with an explicit pc.
///
/// The exit slot has pc value `slots + 1`; every operation is a no-op
/// unless the pc matches its label, so the compiled system is total.
///
/// # Examples
///
/// ```
/// let p = sd_lang::parse("var x: int 0..3; var y: int 0..3; y := x;")?;
/// let c = sd_lang::compile(&p)?;
/// assert_eq!(c.flat.len(), 1);
/// c.system.validate().expect("compiled systems are total");
/// # Ok::<(), sd_lang::LangError>(())
/// ```
pub fn compile(p: &Program) -> Result<Compiled> {
    if p.decls.iter().any(|(n, _)| n == "pc") {
        return Err(LangError::Semantic(
            "`pc` is reserved for the program counter".into(),
        ));
    }
    // First pass: lower the control structure with placeholder var ids.
    // We need the universe (including pc) before lowering expressions, so
    // declare objects first.
    let mut objects: Vec<(String, Domain)> = Vec::new();
    for (name, ty) in &p.decls {
        let dom = match ty {
            Type::Bool => Domain::boolean(),
            Type::Int { lo, hi } => Domain::int_range(*lo, *hi)?,
        };
        objects.push((name.clone(), dom));
    }
    // The pc domain is sized after flattening; flatten with a dry run to
    // count slots. The lowering needs var ids, so build a preliminary
    // universe without pc just for ids — ids are positional, and pc is
    // appended last so variable ids are stable.
    let prelim = Universe::new(objects.clone())?;
    let mut var_map: BTreeMap<String, (ObjId, Type)> = BTreeMap::new();
    for (name, ty) in &p.decls {
        var_map.insert(name.clone(), (prelim.obj(name)?, *ty));
    }

    // Exit is a virtual slot appended after real slots; reserve index 0 of
    // the lowerer's numbering for it by emitting with `follow = usize::MAX`
    // then patching. Simpler: lower with a sentinel and patch below.
    let mut low = Lowerer {
        vars: &var_map,
        slots: Vec::new(),
    };
    // Sentinel exit slot index: patched to `slots.len()` after emission.
    const EXIT: usize = usize::MAX;
    let entry_slot = low.emit_block(&p.body, EXIT)?;
    let n = low.slots.len();

    // Renumber slots in depth-first execution order from the entry, so
    // labels read like the source: entry is 1, exit is n + 1.
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut stack = Vec::new();
    if entry_slot != EXIT {
        stack.push(entry_slot);
    }
    while let Some(s) = stack.pop() {
        if seen[s] {
            continue;
        }
        seen[s] = true;
        order.push(s);
        match low.slots[s].as_ref().expect("slot filled") {
            Flat::Step { goto, .. } => {
                if *goto != EXIT {
                    stack.push(*goto);
                }
            }
            Flat::Branch {
                then_to, else_to, ..
            } => {
                // Push else first so the then-branch is numbered first.
                if *else_to != EXIT {
                    stack.push(*else_to);
                }
                if *then_to != EXIT {
                    stack.push(*then_to);
                }
            }
        }
    }
    // All emitted slots are reachable from the entry by construction.
    debug_assert_eq!(order.len(), n);
    let mut perm = vec![0usize; n];
    for (new, &old) in order.iter().enumerate() {
        perm[old] = new;
    }
    let remapped: Vec<Option<Flat>> = {
        let mut slots: Vec<Option<Flat>> = (0..n).map(|_| None).collect();
        for (old, slot) in low.slots.into_iter().enumerate() {
            slots[perm[old]] = slot;
        }
        slots
    };
    low.slots = remapped;
    // `fix` maps original slot indices (as stored in goto targets and in
    // `entry_slot`) to their renumbered positions.
    let perm_ref = perm;
    let fix = move |slot: usize| if slot == EXIT { n } else { perm_ref[slot] };

    // pc values are slot + 1; exit pc = n + 1; entry pc = entry_slot + 1.
    objects.push(("pc".into(), Domain::int_range(1, (n + 1) as i64)?));
    let u = Universe::new(objects)?;
    let pc = u.obj("pc")?;

    let mut ops = Vec::new();
    let mut flat = Vec::new();
    for (i, slot) in low.slots.iter().enumerate() {
        let label = (i + 1) as i64;
        let at = CExpr::var(pc).eq(CExpr::int(label));
        let slot = slot.as_ref().expect("all slots filled");
        let (cmd, text, writes) = match slot {
            Flat::Step {
                body,
                goto,
                text,
                writes,
            } => (
                Cmd::Seq(vec![
                    body.clone(),
                    Cmd::assign(pc, CExpr::int((fix(*goto) + 1) as i64)),
                ]),
                text.clone(),
                writes.clone(),
            ),
            Flat::Branch {
                guard,
                then_to,
                else_to,
                text,
            } => (
                Cmd::If(
                    guard.clone(),
                    Box::new(Cmd::assign(pc, CExpr::int((fix(*then_to) + 1) as i64))),
                    Box::new(Cmd::assign(pc, CExpr::int((fix(*else_to) + 1) as i64))),
                ),
                text.clone(),
                None,
            ),
        };
        ops.push(Op::from_cmd(format!("s{label}"), Cmd::when(at, cmd)));
        flat.push(FlatStmt {
            label,
            text,
            writes,
        });
    }
    let vars = var_map
        .iter()
        .map(|(k, (id, _))| (k.clone(), *id))
        .collect();
    Ok(Compiled {
        system: System::new(u, ops),
        pc,
        entry: (fix(entry_slot) + 1) as i64,
        exit: (n + 1) as i64,
        vars,
        flat,
    })
}

impl Compiled {
    /// Looks up a program variable's object.
    pub fn var(&self, name: &str) -> Result<ObjId> {
        self.vars
            .get(name)
            .copied()
            .ok_or_else(|| LangError::Semantic(format!("unknown variable `{name}`")))
    }

    /// The initial-control constraint `pc = entry` (the φ of §6.5).
    pub fn at_entry(&self) -> Phi {
        Phi::expr(CExpr::var(self.pc).eq(CExpr::int(self.entry)))
    }

    /// The constraint `pc = label`.
    pub fn at(&self, label: i64) -> Phi {
        Phi::expr(CExpr::var(self.pc).eq(CExpr::int(label)))
    }

    /// Builds an initial state from a variable environment (pc = entry).
    pub fn initial_state(&self, env: &crate::eval::Env) -> Result<State> {
        let u = self.system.universe();
        let mut idx = vec![0u32; u.num_objects()];
        for (name, id) in &self.vars {
            let val = env.get(name).ok_or_else(|| {
                LangError::Semantic(format!("missing initial value for `{name}`"))
            })?;
            let cv = match val {
                Val::Bool(b) => sd_core::Value::Bool(*b),
                Val::Int(i) => sd_core::Value::Int(*i),
            };
            let di = u.domain(*id).index_of(&cv).ok_or_else(|| {
                LangError::Semantic(format!("initial value for `{name}` out of domain"))
            })?;
            idx[id.index()] = di;
        }
        let pc_idx = u
            .domain(self.pc)
            .index_of(&sd_core::Value::Int(self.entry))
            .expect("entry pc in domain");
        idx[self.pc.index()] = pc_idx;
        Ok(State::from_indices(idx))
    }

    /// Drives the compiled system until the pc reaches the exit label,
    /// dispatching the operation matching the current pc.
    pub fn run_to_halt(&self, sigma: &State, fuel: u64) -> Result<State> {
        let u = self.system.universe();
        let mut cur = sigma.clone();
        let mut fuel = fuel;
        loop {
            let pc_val = cur.value(u, self.pc).as_int().expect("pc is int-valued");
            if pc_val == self.exit {
                return Ok(cur);
            }
            if fuel == 0 {
                return Err(LangError::OutOfFuel);
            }
            fuel -= 1;
            let op = sd_core::OpId((pc_val - 1) as u32);
            cur = self.system.apply(op, &cur)?;
        }
    }

    /// Reads a variable out of a state as a [`Val`].
    pub fn read(&self, sigma: &State, name: &str) -> Result<Val> {
        let id = self.var(name)?;
        match sigma.value(self.system.universe(), id) {
            sd_core::Value::Bool(b) => Ok(Val::Bool(*b)),
            sd_core::Value::Int(i) => Ok(Val::Int(*i)),
            other => Err(LangError::Semantic(format!(
                "variable `{name}` holds non-scalar value {other}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{run, Env};
    use crate::parser::parse;

    fn env(pairs: &[(&str, Val)]) -> Env {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn compiled_agrees_with_interpreter() {
        let src = "\
var alpha: int 0..1;
var beta: int 0..1;
var q: int 0..15;
var t: bool;
if q > 10 { t := true; } else { t := false; }
if t { beta := alpha; }
";
        let p = parse(src).unwrap();
        let c = compile(&p).unwrap();
        c.system.validate().unwrap();
        for q in [0i64, 5, 11, 15] {
            for alpha in [0i64, 1] {
                let e = env(&[
                    ("alpha", Val::Int(alpha)),
                    ("beta", Val::Int(0)),
                    ("q", Val::Int(q)),
                    ("t", Val::Bool(false)),
                ]);
                let direct = run(&p, &e, 100).unwrap();
                let s0 = c.initial_state(&e).unwrap();
                let end = c.run_to_halt(&s0, 100).unwrap();
                for v in ["alpha", "beta", "q", "t"] {
                    assert_eq!(c.read(&end, v).unwrap(), direct[v], "var {v}, q={q}");
                }
            }
        }
    }

    #[test]
    fn atomic_ifs_keep_pc_linear() {
        // The §6.5 program compiles to exactly two program points.
        let src = "\
var q: int 0..15;
var t: bool;
if q > 10 { t := true; } else { t := false; }
if t { skip; }
";
        let c = compile(&parse(src).unwrap()).unwrap();
        assert_eq!(c.flat.len(), 2);
        assert_eq!(c.entry, 1);
        assert_eq!(c.exit, 3);
    }

    #[test]
    fn while_loops_compile_and_run() {
        let src = "var x: int 0..10; while x < 10 { x := x + 1; }";
        let p = parse(src).unwrap();
        let c = compile(&p).unwrap();
        c.system.validate().unwrap();
        let e = env(&[("x", Val::Int(7))]);
        let end = c.run_to_halt(&c.initial_state(&e).unwrap(), 100).unwrap();
        assert_eq!(c.read(&end, "x").unwrap(), Val::Int(10));
    }

    #[test]
    fn nested_control_flow() {
        let src = "\
var x: int 0..20;
var y: int 0..20;
while x < 5 {
  x := x + 1;
  if x % 2 == 0 { y := y + x; }
}
";
        let p = parse(src).unwrap();
        let c = compile(&p).unwrap();
        let e = env(&[("x", Val::Int(0)), ("y", Val::Int(0))]);
        let direct = run(&p, &e, 1000).unwrap();
        let end = c.run_to_halt(&c.initial_state(&e).unwrap(), 1000).unwrap();
        assert_eq!(c.read(&end, "x").unwrap(), direct["x"]);
        assert_eq!(c.read(&end, "y").unwrap(), direct["y"]);
    }

    #[test]
    fn pc_reserved() {
        assert!(compile(&parse("var pc: bool;").unwrap()).is_err());
    }

    #[test]
    fn type_errors_rejected() {
        assert!(compile(&parse("var b: bool; b := 3;").unwrap()).is_err());
        assert!(compile(&parse("var x: int 0..3; if x { skip; }").unwrap()).is_err());
        assert!(compile(&parse("var x: int 0..3; while x + 1 { skip; }").unwrap()).is_err());
        assert!(compile(&parse("x := 1;").unwrap()).is_err());
    }

    #[test]
    fn empty_program_halts_immediately() {
        let c = compile(&parse("var x: bool;").unwrap()).unwrap();
        assert_eq!(c.entry, c.exit);
        let e = env(&[("x", Val::Bool(true))]);
        let s0 = c.initial_state(&e).unwrap();
        assert_eq!(c.run_to_halt(&s0, 10).unwrap(), s0);
    }

    #[test]
    fn infinite_loop_exhausts_fuel() {
        let c = compile(&parse("var b: bool; while true { skip; }").unwrap()).unwrap();
        let e = env(&[("b", Val::Bool(false))]);
        let s0 = c.initial_state(&e).unwrap();
        assert!(matches!(c.run_to_halt(&s0, 25), Err(LangError::OutOfFuel)));
    }
}
