//! Floyd assertions as inductive covers (§6.5).
//!
//! Attach an assertion to each program point; if the entry assertion holds
//! initially, the pc-indexed family `{φi ∧ pc = i}` is an inductive cover
//! (Def 6-2) for `entry ∧ pc = entry`, and Theorem 6-7 then proves absence
//! of information transmission: for each statement that assigns to β, its
//! assertion must pin the state so the assignment conveys no variety.
//!
//! The cover property requires the pc's trajectory to be data-independent
//! (the paper's flowcharts are straight-line chains of atomic boxes; see
//! [`crate::compile`]). Programs with data-dependent branching fail the
//! Def 6-2 check and are reported `Inapplicable` — for those, the exact
//! procedures in [`sd_core::reach`] still apply.

use std::collections::BTreeMap;

use sd_core::certificate::ProofOutcome;
use sd_core::{Expr as CExpr, Phi};

use crate::ast::Expr;
use crate::compile::Compiled;
use crate::error::{LangError, Result};

/// Floyd-style assertions for a compiled program.
#[derive(Debug, Clone, Default)]
pub struct Assertions {
    /// The entry assertion φ1 (about data, not the pc).
    pub entry: Option<Expr>,
    /// Intermediate assertions keyed by program-point label; points without
    /// an entry default to `true`.
    pub at: BTreeMap<i64, Expr>,
    /// The exit assertion, if any.
    pub exit: Option<Expr>,
}

impl Assertions {
    /// Creates an empty annotation (all assertions `true`).
    pub fn new() -> Assertions {
        Assertions::default()
    }

    /// Sets the entry assertion from source text.
    pub fn with_entry(mut self, src: &str) -> Result<Assertions> {
        self.entry = Some(crate::parser::parse_expr(src)?);
        Ok(self)
    }

    /// Attaches an assertion to a program point.
    pub fn with_at(mut self, label: i64, src: &str) -> Result<Assertions> {
        self.at.insert(label, crate::parser::parse_expr(src)?);
        Ok(self)
    }

    /// Sets the exit assertion from source text.
    pub fn with_exit(mut self, src: &str) -> Result<Assertions> {
        self.exit = Some(crate::parser::parse_expr(src)?);
        Ok(self)
    }
}

fn lower_assertion(c: &Compiled, e: Option<&Expr>) -> Result<CExpr> {
    let Some(e) = e else {
        return Ok(CExpr::bool(true));
    };
    // Reuse the compiler's expression lowering through a tiny shim: build
    // the var map from the compiled program.
    let vars: BTreeMap<String, (sd_core::ObjId, crate::ast::Type)> = c
        .vars
        .iter()
        .map(|(name, id)| {
            let dom = c.system.universe().domain(*id);
            let ty = if dom.values().iter().all(|v| v.as_bool().is_some()) {
                crate::ast::Type::Bool
            } else {
                let ints: Vec<i64> = dom.values().iter().filter_map(|v| v.as_int()).collect();
                crate::ast::Type::Int {
                    lo: ints.iter().copied().min().unwrap_or(0),
                    hi: ints.iter().copied().max().unwrap_or(0),
                }
            };
            (name.clone(), (*id, ty))
        })
        .collect();
    let (ce, ty) = crate::compile::lower_expr_pub(e, &vars)?;
    if !ty {
        return Err(LangError::Semantic("assertion must be boolean".into()));
    }
    Ok(ce)
}

/// Builds the pc-indexed cover `{assertion_i ∧ pc = i}` ∪ `{exit ∧ pc =
/// exit}` for a compiled program.
pub fn pc_cover(c: &Compiled, ann: &Assertions) -> Result<Vec<Phi>> {
    let mut cover = Vec::new();
    for f in &c.flat {
        let data = lower_assertion(c, ann.at.get(&f.label))?;
        let here = CExpr::var(c.pc).eq(CExpr::int(f.label));
        cover.push(Phi::expr(data.and(here)));
    }
    let exit_data = lower_assertion(c, ann.exit.as_ref())?;
    let at_exit = CExpr::var(c.pc).eq(CExpr::int(c.exit));
    cover.push(Phi::expr(exit_data.and(at_exit)));
    Ok(cover)
}

/// The initial constraint `entry_assertion ∧ pc = entry`.
pub fn entry_phi(c: &Compiled, ann: &Assertions) -> Result<Phi> {
    let data = lower_assertion(c, ann.entry.as_ref())?;
    let at = CExpr::var(c.pc).eq(CExpr::int(c.entry));
    Ok(Phi::expr(data.and(at)))
}

/// Verifies that the annotated assertions form an inductive cover
/// (Def 6-2) for the entry constraint — the legality condition for Floyd
/// assertions in §6.5.
pub fn verify_assertions(c: &Compiled, ann: &Assertions) -> Result<bool> {
    let phi = entry_phi(c, ann)?;
    let cover = pc_cover(c, ann)?;
    Ok(sd_core::cover::is_inductive_cover(&c.system, &phi, &cover)?)
}

/// Proves `¬from ▷φ to` for a compiled program using the annotated Floyd
/// assertions as an inductive cover (Theorem 6-7).
pub fn prove_no_flow(c: &Compiled, ann: &Assertions, from: &str, to: &str) -> Result<ProofOutcome> {
    let phi = entry_phi(c, ann)?;
    let cover = pc_cover(c, ann)?;
    let a = sd_core::ObjSet::singleton(c.var(from)?);
    let beta = c.var(to)?;
    Ok(sd_core::cover::prove_inductive_cover(
        &c.system, &phi, &cover, &a, beta,
    )?)
}

/// The exact answer, for comparison: does `to` strongly depend on `from`
/// given the entry constraint?
pub fn depends_exact(c: &Compiled, ann: &Assertions, from: &str, to: &str) -> Result<bool> {
    let phi = entry_phi(c, ann)?;
    let a = sd_core::ObjSet::singleton(c.var(from)?);
    let beta = c.var(to)?;
    Ok(sd_core::Query::new(phi, a)
        .beta(beta)
        .run_on(&c.system)?
        .holds())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::parser::parse;

    /// The §6.5 flowchart program.
    fn sec_6_5() -> Compiled {
        let src = "\
var alpha: int 0..1;
var beta: int 0..1;
var q: int 0..15;
var t: bool;
if q > 10 { t := true; } else { t := false; }
if t { beta := alpha; }
";
        compile(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn paper_proof_sec_6_5() {
        // Entry assertion q < 10; intermediate assertion ¬t at statement 2.
        let c = sec_6_5();
        let ann = Assertions::new()
            .with_entry("q < 10")
            .unwrap()
            .with_at(2, "!t")
            .unwrap();
        assert!(verify_assertions(&c, &ann).unwrap());
        let out = prove_no_flow(&c, &ann, "alpha", "beta").unwrap();
        assert!(out.is_proved(), "{:?}", out.reason());
        // Exact oracle agrees.
        assert!(!depends_exact(&c, &ann, "alpha", "beta").unwrap());
    }

    #[test]
    fn without_entry_assertion_flow_exists() {
        let c = sec_6_5();
        let ann = Assertions::new();
        assert!(depends_exact(&c, &ann, "alpha", "beta").unwrap());
        let out = prove_no_flow(&c, &ann, "alpha", "beta").unwrap();
        assert!(!out.is_proved());
    }

    #[test]
    fn wrong_assertion_is_not_inductive() {
        // Claiming t at statement 2 under entry q < 10 is false (t will be
        // set false), so the cover check fails.
        let c = sec_6_5();
        let ann = Assertions::new()
            .with_entry("q < 10")
            .unwrap()
            .with_at(2, "t")
            .unwrap();
        assert!(!verify_assertions(&c, &ann).unwrap());
    }

    #[test]
    fn exit_assertion_checked() {
        let c = sec_6_5();
        // With entry q < 10, at exit beta is unchanged… we can only state
        // data facts; ¬t holds at exit too.
        let ann = Assertions::new()
            .with_entry("q < 10")
            .unwrap()
            .with_at(2, "!t")
            .unwrap()
            .with_exit("!t")
            .unwrap();
        assert!(verify_assertions(&c, &ann).unwrap());
        // A false exit assertion breaks the cover.
        let bad = Assertions::new()
            .with_entry("q < 10")
            .unwrap()
            .with_at(2, "!t")
            .unwrap()
            .with_exit("t")
            .unwrap();
        assert!(!verify_assertions(&c, &bad).unwrap());
    }

    #[test]
    fn data_dependent_branching_is_reported_inapplicable() {
        // A while loop branching on data makes the pc trajectory
        // data-dependent: the pc-indexed family is not an inductive cover.
        let src = "\
var x: int 0..3;
var y: int 0..3;
while x > 0 { x := x - 1; }
y := 1;
";
        let c = compile(&parse(src).unwrap()).unwrap();
        let ann = Assertions::new();
        assert!(!verify_assertions(&c, &ann).unwrap());
        let out = prove_no_flow(&c, &ann, "x", "y").unwrap();
        assert!(!out.is_proved());
        // And indeed a flow exists: the loop's duration depends on x, so
        // an observer who knows the history can read x off whether the
        // `y := 1` statement has fired yet — the §6.5 timing channel.
        assert!(depends_exact(&c, &ann, "x", "y").unwrap());
    }

    #[test]
    fn assertions_reject_non_boolean() {
        let c = sec_6_5();
        let ann = Assertions::new().with_entry("q + 1").unwrap();
        assert!(matches!(
            verify_assertions(&c, &ann),
            Err(LangError::Semantic(_))
        ));
    }
}
