//! Abstract syntax for the mini imperative language.
//!
//! The paper analyzes sequential programs by modelling them as
//! computational systems with an explicit program counter (§6.5, following
//! Lipton). This crate provides a small structured language — declarations,
//! assignments, `if`, `while` — that compiles to exactly that model.

use std::fmt;

/// A variable's declared type, which fixes its finite domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Type {
    /// Booleans.
    Bool,
    /// Integers in an inclusive range.
    Int {
        /// Lower bound.
        lo: i64,
        /// Upper bound.
        hi: i64,
    },
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Bool => write!(f, "bool"),
            Type::Int { lo, hi } => write!(f, "int {lo}..{hi}"),
        }
    }
}

/// Binary operators (source-level).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (Euclidean)
    Div,
    /// `%` (Euclidean remainder)
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        };
        write!(f, "{s}")
    }
}

/// A source-level expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// Variable reference.
    Var(String),
    /// Unary negation `-e`.
    Neg(Box<Expr>),
    /// Boolean negation `!e`.
    Not(Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Variable reference helper.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Collects the variables read by this expression.
    pub fn reads(&self, out: &mut Vec<String>) {
        match self {
            Expr::Int(_) | Expr::Bool(_) => {}
            Expr::Var(v) => out.push(v.clone()),
            Expr::Neg(e) | Expr::Not(e) => e.reads(out),
            Expr::Bin(_, l, r) => {
                l.reads(out);
                r.reads(out);
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Int(i) => write!(f, "{i}"),
            Expr::Bool(b) => write!(f, "{b}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Neg(e) => write!(f, "-({e})"),
            Expr::Not(e) => write!(f, "!({e})"),
            Expr::Bin(op, l, r) => write!(f, "({l} {op} {r})"),
        }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `x := e;`
    Assign(String, Expr),
    /// `skip;`
    Skip,
    /// `if e { … } else { … }` (the else branch may be empty).
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while e { … }`
    While(Expr, Vec<Stmt>),
}

/// A program: typed declarations followed by a statement list.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Variable declarations, in order.
    pub decls: Vec<(String, Type)>,
    /// The program body.
    pub body: Vec<Stmt>,
}

impl Program {
    /// Looks up a declaration.
    pub fn decl(&self, name: &str) -> Option<Type> {
        self.decls.iter().find(|(n, _)| n == name).map(|(_, t)| *t)
    }

    /// Number of program points the pc compilation creates (excluding
    /// exit): branch-free `if`s compile to a single atomic operation (a
    /// flowchart box, §6.5); `if`s with nested control flow and `while`
    /// loops get an explicit branch point plus their bodies.
    pub fn atomic_count(&self) -> usize {
        fn branch_free(stmts: &[Stmt]) -> bool {
            stmts.iter().all(|s| match s {
                Stmt::Assign(..) | Stmt::Skip => true,
                Stmt::If(_, t, e) => branch_free(t) && branch_free(e),
                Stmt::While(..) => false,
            })
        }
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::Assign(..) | Stmt::Skip => 1,
                    Stmt::If(_, t, e) if branch_free(t) && branch_free(e) => 1,
                    // A branch statement plus both arms.
                    Stmt::If(_, t, e) => 1 + count(t) + count(e),
                    // A test statement plus the body.
                    Stmt::While(_, b) => 1 + count(b),
                })
                .sum()
        }
        count(&self.body)
    }
}

fn fmt_block(f: &mut fmt::Formatter<'_>, stmts: &[Stmt], indent: usize) -> fmt::Result {
    let pad = "  ".repeat(indent);
    for s in stmts {
        match s {
            Stmt::Assign(x, e) => writeln!(f, "{pad}{x} := {e};")?,
            Stmt::Skip => writeln!(f, "{pad}skip;")?,
            Stmt::If(g, t, e) => {
                writeln!(f, "{pad}if {g} {{")?;
                fmt_block(f, t, indent + 1)?;
                if e.is_empty() {
                    writeln!(f, "{pad}}}")?;
                } else {
                    writeln!(f, "{pad}}} else {{")?;
                    fmt_block(f, e, indent + 1)?;
                    writeln!(f, "{pad}}}")?;
                }
            }
            Stmt::While(g, b) => {
                writeln!(f, "{pad}while {g} {{")?;
                fmt_block(f, b, indent + 1)?;
                writeln!(f, "{pad}}}")?;
            }
        }
    }
    Ok(())
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, ty) in &self.decls {
            writeln!(f, "var {name}: {ty};")?;
        }
        fmt_block(f, &self.body, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Program {
        Program {
            decls: vec![
                ("x".into(), Type::Int { lo: 0, hi: 3 }),
                ("b".into(), Type::Bool),
            ],
            body: vec![
                Stmt::Assign("x".into(), Expr::Int(1)),
                Stmt::If(
                    Expr::var("b"),
                    vec![Stmt::Assign("x".into(), Expr::Int(2))],
                    vec![Stmt::Skip],
                ),
                Stmt::While(
                    Expr::Bin(BinOp::Lt, Box::new(Expr::var("x")), Box::new(Expr::Int(3))),
                    vec![Stmt::Assign(
                        "x".into(),
                        Expr::Bin(BinOp::Add, Box::new(Expr::var("x")), Box::new(Expr::Int(1))),
                    )],
                ),
            ],
        }
    }

    #[test]
    fn display_roundtrips_structure() {
        let p = sample();
        let s = p.to_string();
        assert!(s.contains("var x: int 0..3;"));
        assert!(s.contains("if b {"));
        assert!(s.contains("while (x < 3) {"));
        assert!(s.contains("} else {"));
    }

    #[test]
    fn atomic_count_counts_program_points() {
        let p = sample();
        // assign + atomic if + (while + assign) = 4.
        assert_eq!(p.atomic_count(), 4);
    }

    #[test]
    fn decl_lookup() {
        let p = sample();
        assert_eq!(p.decl("b"), Some(Type::Bool));
        assert_eq!(p.decl("zzz"), None);
    }

    #[test]
    fn expr_reads() {
        let e = Expr::Bin(
            BinOp::And,
            Box::new(Expr::var("a")),
            Box::new(Expr::Not(Box::new(Expr::var("b")))),
        );
        let mut reads = Vec::new();
        e.reads(&mut reads);
        assert_eq!(reads, vec!["a".to_string(), "b".to_string()]);
    }
}
