//! Errors for the language front end and compiler.

use std::fmt;

/// Errors from lexing, parsing, type checking or compiling programs.
#[derive(Debug, Clone, PartialEq)]
pub enum LangError {
    /// A lexical error at a source position.
    Lex {
        /// Source line, 1-based.
        line: u32,
        /// Source column, 1-based.
        col: u32,
        /// What went wrong.
        msg: String,
    },
    /// A parse error at a source position.
    Parse {
        /// Source line, 1-based.
        line: u32,
        /// Source column, 1-based.
        col: u32,
        /// What went wrong.
        msg: String,
    },
    /// A semantic error (undeclared variable, type mismatch, …).
    Semantic(String),
    /// An error bubbled up from the core model.
    Core(sd_core::Error),
    /// Program execution exhausted its fuel (a `while` did not terminate
    /// within the step budget).
    OutOfFuel,
}

impl LangError {
    /// Builds a lexical error.
    pub fn lex(line: u32, col: u32, msg: impl Into<String>) -> LangError {
        LangError::Lex {
            line,
            col,
            msg: msg.into(),
        }
    }

    /// Builds a parse error.
    pub fn parse(line: u32, col: u32, msg: impl Into<String>) -> LangError {
        LangError::Parse {
            line,
            col,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { line, col, msg } => write!(f, "lex error at {line}:{col}: {msg}"),
            LangError::Parse { line, col, msg } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
            LangError::Semantic(msg) => write!(f, "semantic error: {msg}"),
            LangError::Core(e) => write!(f, "core error: {e}"),
            LangError::OutOfFuel => write!(f, "execution exceeded its fuel budget"),
        }
    }
}

impl std::error::Error for LangError {}

impl From<sd_core::Error> for LangError {
    fn from(e: sd_core::Error) -> LangError {
        LangError::Core(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = core::result::Result<T, LangError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_positions() {
        let e = LangError::parse(3, 7, "expected `;`");
        assert_eq!(e.to_string(), "parse error at 3:7: expected `;`");
    }

    #[test]
    fn core_errors_convert() {
        let e: LangError = sd_core::Error::DivisionByZero.into();
        assert!(e.to_string().contains("division by zero"));
    }
}
