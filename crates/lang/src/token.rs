//! Tokens and lexer for the mini language.

use std::fmt;

use crate::error::{LangError, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Integer literal.
    Int(i64),
    /// Identifier or keyword-candidate.
    Ident(String),
    /// `var`
    KwVar,
    /// `bool`
    KwBool,
    /// `int`
    KwInt,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `while`
    KwWhile,
    /// `skip`
    KwSkip,
    /// `true`
    KwTrue,
    /// `false`
    KwFalse,
    /// `:=`
    Assign,
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `..`
    DotDot,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Int(i) => write!(f, "{i}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::KwVar => write!(f, "var"),
            Token::KwBool => write!(f, "bool"),
            Token::KwInt => write!(f, "int"),
            Token::KwIf => write!(f, "if"),
            Token::KwElse => write!(f, "else"),
            Token::KwWhile => write!(f, "while"),
            Token::KwSkip => write!(f, "skip"),
            Token::KwTrue => write!(f, "true"),
            Token::KwFalse => write!(f, "false"),
            Token::Assign => write!(f, ":="),
            Token::Colon => write!(f, ":"),
            Token::Semi => write!(f, ";"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::DotDot => write!(f, ".."),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::EqEq => write!(f, "=="),
            Token::NotEq => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::AndAnd => write!(f, "&&"),
            Token::OrOr => write!(f, "||"),
            Token::Bang => write!(f, "!"),
        }
    }
}

/// A token together with its source line/column (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Source line, 1-based.
    pub line: u32,
    /// Source column, 1-based.
    pub col: u32,
}

/// Lexes a complete source string.
pub fn lex(src: &str) -> Result<Vec<Spanned>> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line = 1u32;
    let mut col = 1u32;
    macro_rules! bump {
        () => {{
            let c = chars.next();
            if c == Some('\n') {
                line += 1;
                col = 1;
            } else if c.is_some() {
                col += 1;
            }
            c
        }};
    }
    loop {
        // Skip whitespace and `//` comments.
        loop {
            match chars.peek() {
                Some(c) if c.is_whitespace() => {
                    bump!();
                }
                Some('/') => {
                    let mut ahead = chars.clone();
                    ahead.next();
                    if ahead.peek() == Some(&'/') {
                        while let Some(&c) = chars.peek() {
                            if c == '\n' {
                                break;
                            }
                            bump!();
                        }
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        let (tline, tcol) = (line, col);
        let Some(&c) = chars.peek() else { break };
        let token = match c {
            '0'..='9' => {
                let mut n: i64 = 0;
                while let Some(&d) = chars.peek() {
                    if let Some(v) = d.to_digit(10) {
                        n = n
                            .checked_mul(10)
                            .and_then(|n| n.checked_add(v as i64))
                            .ok_or_else(|| LangError::lex(tline, tcol, "integer overflow"))?;
                        bump!();
                    } else {
                        break;
                    }
                }
                Token::Int(n)
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        s.push(d);
                        bump!();
                    } else {
                        break;
                    }
                }
                match s.as_str() {
                    "var" => Token::KwVar,
                    "bool" => Token::KwBool,
                    "int" => Token::KwInt,
                    "if" => Token::KwIf,
                    "else" => Token::KwElse,
                    "while" => Token::KwWhile,
                    "skip" => Token::KwSkip,
                    "true" => Token::KwTrue,
                    "false" => Token::KwFalse,
                    _ => Token::Ident(s),
                }
            }
            _ => {
                bump!();
                match c {
                    ':' => {
                        if chars.peek() == Some(&'=') {
                            bump!();
                            Token::Assign
                        } else {
                            Token::Colon
                        }
                    }
                    ';' => Token::Semi,
                    '{' => Token::LBrace,
                    '}' => Token::RBrace,
                    '(' => Token::LParen,
                    ')' => Token::RParen,
                    '.' => {
                        if chars.peek() == Some(&'.') {
                            bump!();
                            Token::DotDot
                        } else {
                            return Err(LangError::lex(tline, tcol, "expected `..`"));
                        }
                    }
                    '+' => Token::Plus,
                    '-' => Token::Minus,
                    '*' => Token::Star,
                    '/' => Token::Slash,
                    '%' => Token::Percent,
                    '=' => {
                        if chars.peek() == Some(&'=') {
                            bump!();
                            Token::EqEq
                        } else {
                            return Err(LangError::lex(
                                tline,
                                tcol,
                                "single `=`; use `:=` for assignment or `==` for equality",
                            ));
                        }
                    }
                    '!' => {
                        if chars.peek() == Some(&'=') {
                            bump!();
                            Token::NotEq
                        } else {
                            Token::Bang
                        }
                    }
                    '<' => {
                        if chars.peek() == Some(&'=') {
                            bump!();
                            Token::Le
                        } else {
                            Token::Lt
                        }
                    }
                    '>' => {
                        if chars.peek() == Some(&'=') {
                            bump!();
                            Token::Ge
                        } else {
                            Token::Gt
                        }
                    }
                    '&' => {
                        if chars.peek() == Some(&'&') {
                            bump!();
                            Token::AndAnd
                        } else {
                            return Err(LangError::lex(tline, tcol, "expected `&&`"));
                        }
                    }
                    '|' => {
                        if chars.peek() == Some(&'|') {
                            bump!();
                            Token::OrOr
                        } else {
                            return Err(LangError::lex(tline, tcol, "expected `||`"));
                        }
                    }
                    other => {
                        return Err(LangError::lex(
                            tline,
                            tcol,
                            format!("unexpected character `{other}`"),
                        ))
                    }
                }
            }
        };
        out.push(Spanned {
            token,
            line: tline,
            col: tcol,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lex_declaration() {
        assert_eq!(
            toks("var x: int 0..7;"),
            vec![
                Token::KwVar,
                Token::Ident("x".into()),
                Token::Colon,
                Token::KwInt,
                Token::Int(0),
                Token::DotDot,
                Token::Int(7),
                Token::Semi
            ]
        );
    }

    #[test]
    fn lex_operators() {
        assert_eq!(
            toks("a := b + 1 <= 2 && !c || d != e"),
            vec![
                Token::Ident("a".into()),
                Token::Assign,
                Token::Ident("b".into()),
                Token::Plus,
                Token::Int(1),
                Token::Le,
                Token::Int(2),
                Token::AndAnd,
                Token::Bang,
                Token::Ident("c".into()),
                Token::OrOr,
                Token::Ident("d".into()),
                Token::NotEq,
                Token::Ident("e".into()),
            ]
        );
    }

    #[test]
    fn lex_comments_and_positions() {
        let spanned = lex("// header\nx := 1;").unwrap();
        assert_eq!(spanned[0].token, Token::Ident("x".into()));
        assert_eq!((spanned[0].line, spanned[0].col), (2, 1));
        assert_eq!(spanned[1].token, Token::Assign);
        assert_eq!((spanned[1].line, spanned[1].col), (2, 3));
    }

    #[test]
    fn lex_errors() {
        assert!(lex("a = b").is_err());
        assert!(lex("a & b").is_err());
        assert!(lex("a # b").is_err());
        assert!(lex("x.y").is_err());
        assert!(lex("99999999999999999999").is_err());
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(
            toks("iffy while0"),
            vec![Token::Ident("iffy".into()), Token::Ident("while0".into()),]
        );
        assert_eq!(
            toks("true false skip"),
            vec![Token::KwTrue, Token::KwFalse, Token::KwSkip]
        );
    }
}
