//! Recursive-descent parser for the mini language.
//!
//! Grammar (standard precedence, tightest last):
//!
//! ```text
//! program := decl* stmt*
//! decl    := "var" ident ":" type ";"
//! type    := "bool" | "int" int ".." int
//! stmt    := ident ":=" expr ";"
//!          | "skip" ";"
//!          | "if" expr block ("else" block)?
//!          | "while" expr block
//! block   := "{" stmt* "}"
//! expr    := or
//! or      := and ("||" and)*
//! and     := cmp ("&&" cmp)*
//! cmp     := add (("=="|"!="|"<"|"<="|">"|">=") add)?
//! add     := mul (("+"|"-") mul)*
//! mul     := unary (("*"|"/"|"%") unary)*
//! unary   := ("!"|"-") unary | atom
//! atom    := int | "true" | "false" | ident | "(" expr ")"
//! ```

use crate::ast::{BinOp, Expr, Program, Stmt, Type};
use crate::error::{LangError, Result};
use crate::token::{lex, Spanned, Token};

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos).map(|s| &s.token)
    }

    fn here(&self) -> (u32, u32) {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map_or((1, 1), |s| (s.line, s.col))
    }

    fn err(&self, msg: impl Into<String>) -> LangError {
        let (line, col) = self.here();
        LangError::parse(line, col, msg)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Token) -> Result<()> {
        match self.peek() {
            Some(t) if t == want => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(self.err(format!("expected `{want}`, found `{t}`"))),
            None => Err(self.err(format!("expected `{want}`, found end of input"))),
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek() {
            Some(Token::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            Some(t) => Err(self.err(format!("expected identifier, found `{t}`"))),
            None => Err(self.err("expected identifier, found end of input")),
        }
    }

    fn int(&mut self) -> Result<i64> {
        // Allow a leading minus in literal positions (range bounds).
        let neg = if self.peek() == Some(&Token::Minus) {
            self.pos += 1;
            true
        } else {
            false
        };
        match self.peek() {
            Some(Token::Int(i)) => {
                let i = *i;
                self.pos += 1;
                Ok(if neg { -i } else { i })
            }
            Some(t) => Err(self.err(format!("expected integer, found `{t}`"))),
            None => Err(self.err("expected integer, found end of input")),
        }
    }

    fn program(&mut self) -> Result<Program> {
        let mut decls = Vec::new();
        while self.peek() == Some(&Token::KwVar) {
            self.pos += 1;
            let name = self.ident()?;
            self.expect(&Token::Colon)?;
            let ty = match self.bump() {
                Some(Token::KwBool) => Type::Bool,
                Some(Token::KwInt) => {
                    let lo = self.int()?;
                    self.expect(&Token::DotDot)?;
                    let hi = self.int()?;
                    if lo > hi {
                        return Err(self.err(format!("empty int range {lo}..{hi}")));
                    }
                    Type::Int { lo, hi }
                }
                other => {
                    return Err(self.err(format!(
                        "expected type, found `{}`",
                        other.map_or("end of input".to_string(), |t| t.to_string())
                    )))
                }
            };
            self.expect(&Token::Semi)?;
            if decls.iter().any(|(n, _)| n == &name) {
                return Err(LangError::Semantic(format!(
                    "variable `{name}` declared twice"
                )));
            }
            decls.push((name, ty));
        }
        let mut body = Vec::new();
        while self.peek().is_some() {
            body.push(self.stmt()?);
        }
        Ok(Program { decls, body })
    }

    fn block(&mut self) -> Result<Vec<Stmt>> {
        self.expect(&Token::LBrace)?;
        let mut out = Vec::new();
        while self.peek() != Some(&Token::RBrace) {
            if self.peek().is_none() {
                return Err(self.err("unclosed block"));
            }
            out.push(self.stmt()?);
        }
        self.expect(&Token::RBrace)?;
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt> {
        match self.peek() {
            Some(Token::KwSkip) => {
                self.pos += 1;
                self.expect(&Token::Semi)?;
                Ok(Stmt::Skip)
            }
            Some(Token::KwIf) => {
                self.pos += 1;
                let guard = self.expr()?;
                let then = self.block()?;
                let els = if self.peek() == Some(&Token::KwElse) {
                    self.pos += 1;
                    self.block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If(guard, then, els))
            }
            Some(Token::KwWhile) => {
                self.pos += 1;
                let guard = self.expr()?;
                let body = self.block()?;
                Ok(Stmt::While(guard, body))
            }
            Some(Token::Ident(_)) => {
                let name = self.ident()?;
                self.expect(&Token::Assign)?;
                let e = self.expr()?;
                self.expect(&Token::Semi)?;
                Ok(Stmt::Assign(name, e))
            }
            Some(t) => Err(self.err(format!("expected statement, found `{t}`"))),
            None => Err(self.err("expected statement, found end of input")),
        }
    }

    fn expr(&mut self) -> Result<Expr> {
        self.or()
    }

    fn or(&mut self) -> Result<Expr> {
        let mut lhs = self.and()?;
        while self.peek() == Some(&Token::OrOr) {
            self.pos += 1;
            let rhs = self.and()?;
            lhs = Expr::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and(&mut self) -> Result<Expr> {
        let mut lhs = self.cmp()?;
        while self.peek() == Some(&Token::AndAnd) {
            self.pos += 1;
            let rhs = self.cmp()?;
            lhs = Expr::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp(&mut self) -> Result<Expr> {
        let lhs = self.add()?;
        let op = match self.peek() {
            Some(Token::EqEq) => Some(BinOp::Eq),
            Some(Token::NotEq) => Some(BinOp::Ne),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::Le) => Some(BinOp::Le),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.add()?;
            Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn add(&mut self) -> Result<Expr> {
        let mut lhs = self.mul()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.mul()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul(&mut self) -> Result<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                Some(Token::Percent) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr> {
        match self.peek() {
            Some(Token::Bang) => {
                self.pos += 1;
                Ok(Expr::Not(Box::new(self.unary()?)))
            }
            Some(Token::Minus) => {
                self.pos += 1;
                Ok(Expr::Neg(Box::new(self.unary()?)))
            }
            _ => self.atom(),
        }
    }

    fn atom(&mut self) -> Result<Expr> {
        match self.bump() {
            Some(Token::Int(i)) => Ok(Expr::Int(i)),
            Some(Token::KwTrue) => Ok(Expr::Bool(true)),
            Some(Token::KwFalse) => Ok(Expr::Bool(false)),
            Some(Token::Ident(s)) => Ok(Expr::Var(s)),
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(t) => {
                self.pos -= 1;
                Err(self.err(format!("expected expression, found `{t}`")))
            }
            None => Err(self.err("expected expression, found end of input")),
        }
    }
}

/// Parses a complete program from source text.
///
/// # Examples
///
/// ```
/// let p = sd_lang::parse("var x: int 0..7; x := x + 1;")?;
/// assert_eq!(p.decls.len(), 1);
/// assert_eq!(p.atomic_count(), 1);
/// # Ok::<(), sd_lang::LangError>(())
/// ```
pub fn parse(src: &str) -> Result<Program> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

/// Parses a single expression (used for assertions).
pub fn parse_expr(src: &str) -> Result<Expr> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.expr()?;
    if p.peek().is_some() {
        return Err(p.err("trailing input after expression"));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_sec_6_5_program() {
        // The paper's first §6.5 flowchart, as structured source.
        let src = "\
var alpha: int 0..1;
var beta: int 0..1;
var q: int 0..15;
var t: bool;
if q > 10 { t := true; } else { t := false; }
if t { beta := alpha; }
";
        let p = parse(src).unwrap();
        assert_eq!(p.decls.len(), 4);
        assert_eq!(p.body.len(), 2);
        assert_eq!(p.atomic_count(), 2);
    }

    #[test]
    fn precedence() {
        let e = parse_expr("a + b * c == d && !e || f").unwrap();
        // ((((a + (b*c)) == d) && (!e)) || f)
        assert_eq!(e.to_string(), "((((a + (b * c)) == d) && !(e)) || f)");
    }

    #[test]
    fn parse_while_and_skip() {
        let p = parse("var x: int 0..3; while x < 3 { x := x + 1; } skip;").unwrap();
        assert!(matches!(p.body[0], Stmt::While(..)));
        assert!(matches!(p.body[1], Stmt::Skip));
    }

    #[test]
    fn negative_range_bounds() {
        let p = parse("var x: int -3..3;").unwrap();
        assert_eq!(p.decl("x"), Some(Type::Int { lo: -3, hi: 3 }));
    }

    #[test]
    fn error_messages_have_positions() {
        let e = parse("var x: int 0..3;\nx = 1;").unwrap_err();
        assert!(e.to_string().contains("2:3"), "{e}");
        let e2 = parse("if true {").unwrap_err();
        assert!(e2.to_string().contains("unclosed block"));
        let e3 = parse("var x: bool; var x: bool;").unwrap_err();
        assert!(e3.to_string().contains("declared twice"));
        let e4 = parse("var x: int 5..1;").unwrap_err();
        assert!(e4.to_string().contains("empty int range"));
    }

    #[test]
    fn parse_expr_rejects_trailing_tokens() {
        assert!(parse_expr("a + b ;").is_err());
        assert!(parse_expr("(a").is_err());
    }

    #[test]
    fn unary_chains() {
        let e = parse_expr("!!a").unwrap();
        assert_eq!(e.to_string(), "!(!(a))");
        let e2 = parse_expr("--3").unwrap();
        assert_eq!(e2.to_string(), "-(-(3))");
    }
}
