//! Direct big-step interpreter for programs.
//!
//! Used for differential testing: running a program directly must agree
//! with compiling it to a pc-guarded computational system and driving that
//! system to its halt state.

use std::collections::BTreeMap;

use crate::ast::{BinOp, Expr, Program, Stmt, Type};
use crate::error::{LangError, Result};

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Val {
    /// A boolean.
    Bool(bool),
    /// An integer.
    Int(i64),
}

impl Val {
    fn as_bool(self) -> Result<bool> {
        match self {
            Val::Bool(b) => Ok(b),
            Val::Int(_) => Err(LangError::Semantic("expected bool, found int".into())),
        }
    }

    fn as_int(self) -> Result<i64> {
        match self {
            Val::Int(i) => Ok(i),
            Val::Bool(_) => Err(LangError::Semantic("expected int, found bool".into())),
        }
    }
}

/// A variable environment.
pub type Env = BTreeMap<String, Val>;

/// Evaluates an expression in an environment.
pub fn eval_expr(e: &Expr, env: &Env) -> Result<Val> {
    match e {
        Expr::Int(i) => Ok(Val::Int(*i)),
        Expr::Bool(b) => Ok(Val::Bool(*b)),
        Expr::Var(v) => env
            .get(v)
            .copied()
            .ok_or_else(|| LangError::Semantic(format!("undeclared variable `{v}`"))),
        Expr::Neg(e) => Ok(Val::Int(-eval_expr(e, env)?.as_int()?)),
        Expr::Not(e) => Ok(Val::Bool(!eval_expr(e, env)?.as_bool()?)),
        Expr::Bin(op, l, r) => {
            match op {
                BinOp::And => {
                    return Ok(Val::Bool(
                        eval_expr(l, env)?.as_bool()? && eval_expr(r, env)?.as_bool()?,
                    ))
                }
                BinOp::Or => {
                    return Ok(Val::Bool(
                        eval_expr(l, env)?.as_bool()? || eval_expr(r, env)?.as_bool()?,
                    ))
                }
                _ => {}
            }
            let lv = eval_expr(l, env)?;
            let rv = eval_expr(r, env)?;
            match op {
                BinOp::Eq => Ok(Val::Bool(lv == rv)),
                BinOp::Ne => Ok(Val::Bool(lv != rv)),
                BinOp::Lt => Ok(Val::Bool(lv.as_int()? < rv.as_int()?)),
                BinOp::Le => Ok(Val::Bool(lv.as_int()? <= rv.as_int()?)),
                BinOp::Gt => Ok(Val::Bool(lv.as_int()? > rv.as_int()?)),
                BinOp::Ge => Ok(Val::Bool(lv.as_int()? >= rv.as_int()?)),
                BinOp::Add => Ok(Val::Int(lv.as_int()?.wrapping_add(rv.as_int()?))),
                BinOp::Sub => Ok(Val::Int(lv.as_int()?.wrapping_sub(rv.as_int()?))),
                BinOp::Mul => Ok(Val::Int(lv.as_int()?.wrapping_mul(rv.as_int()?))),
                BinOp::Div => {
                    let d = rv.as_int()?;
                    if d == 0 {
                        return Err(LangError::Core(sd_core::Error::DivisionByZero));
                    }
                    Ok(Val::Int(lv.as_int()?.div_euclid(d)))
                }
                BinOp::Mod => {
                    let d = rv.as_int()?;
                    if d == 0 {
                        return Err(LangError::Core(sd_core::Error::DivisionByZero));
                    }
                    Ok(Val::Int(lv.as_int()?.rem_euclid(d)))
                }
                BinOp::And | BinOp::Or => unreachable!("handled above"),
            }
        }
    }
}

/// Whether an assignment should take effect: `Ok(true)` in range,
/// `Ok(false)` when the value leaves the declared range (the assignment
/// sticks — same semantics as the compiled system), `Err` on type errors.
fn check_domain(p: &Program, var: &str, v: Val) -> Result<bool> {
    match (p.decl(var), v) {
        (Some(Type::Bool), Val::Bool(_)) => Ok(true),
        (Some(Type::Int { lo, hi }), Val::Int(i)) => Ok(lo <= i && i <= hi),
        (Some(_), _) => Err(LangError::Semantic(format!(
            "type mismatch assigning to `{var}`"
        ))),
        (None, _) => Err(LangError::Semantic(format!("undeclared variable `{var}`"))),
    }
}

fn exec_block(p: &Program, stmts: &[Stmt], env: &mut Env, fuel: &mut u64) -> Result<()> {
    for s in stmts {
        if *fuel == 0 {
            return Err(LangError::OutOfFuel);
        }
        *fuel -= 1;
        match s {
            Stmt::Skip => {}
            Stmt::Assign(x, e) => {
                let v = eval_expr(e, env)?;
                if check_domain(p, x, v)? {
                    env.insert(x.clone(), v);
                }
            }
            Stmt::If(g, t, els) => {
                if eval_expr(g, env)?.as_bool()? {
                    exec_block(p, t, env, fuel)?;
                } else {
                    exec_block(p, els, env, fuel)?;
                }
            }
            Stmt::While(g, b) => {
                while eval_expr(g, env)?.as_bool()? {
                    if *fuel == 0 {
                        return Err(LangError::OutOfFuel);
                    }
                    *fuel -= 1;
                    exec_block(p, b, env, fuel)?;
                }
            }
        }
    }
    Ok(())
}

/// Runs a program to completion from an initial environment.
///
/// The environment must assign every declared variable a value of its
/// declared type. `fuel` bounds the number of executed statements so
/// non-terminating loops are reported as [`LangError::OutOfFuel`].
pub fn run(p: &Program, init: &Env, fuel: u64) -> Result<Env> {
    for (name, ty) in &p.decls {
        match (init.get(name), ty) {
            (Some(Val::Bool(_)), Type::Bool) => {}
            (Some(Val::Int(i)), Type::Int { lo, hi }) if lo <= i && i <= hi => {}
            (Some(_), _) => {
                return Err(LangError::Semantic(format!(
                    "initial value for `{name}` has the wrong type or is out of range"
                )))
            }
            (None, _) => {
                return Err(LangError::Semantic(format!(
                    "missing initial value for `{name}`"
                )))
            }
        }
    }
    let mut env = init.clone();
    let mut fuel = fuel;
    exec_block(p, &p.body, &mut env, &mut fuel)?;
    Ok(env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn env(pairs: &[(&str, Val)]) -> Env {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn straight_line() {
        let p = parse("var x: int 0..10; var y: int 0..10; x := 3; y := x + 4;").unwrap();
        let out = run(&p, &env(&[("x", Val::Int(0)), ("y", Val::Int(0))]), 100).unwrap();
        assert_eq!(out["y"], Val::Int(7));
    }

    #[test]
    fn branching() {
        let p =
            parse("var q: int 0..15; var t: bool; if q > 10 { t := true; } else { t := false; }")
                .unwrap();
        let lo = run(&p, &env(&[("q", Val::Int(3)), ("t", Val::Bool(true))]), 100).unwrap();
        assert_eq!(lo["t"], Val::Bool(false));
        let hi = run(
            &p,
            &env(&[("q", Val::Int(12)), ("t", Val::Bool(false))]),
            100,
        )
        .unwrap();
        assert_eq!(hi["t"], Val::Bool(true));
    }

    #[test]
    fn while_loop_and_fuel() {
        let p = parse("var x: int 0..10; while x < 10 { x := x + 1; }").unwrap();
        let out = run(&p, &env(&[("x", Val::Int(2))]), 100).unwrap();
        assert_eq!(out["x"], Val::Int(10));
        // Infinite loop exhausts fuel.
        let bad = parse("var b: bool; while true { skip; }").unwrap();
        assert!(matches!(
            run(&bad, &env(&[("b", Val::Bool(false))]), 50),
            Err(LangError::OutOfFuel)
        ));
    }

    #[test]
    fn out_of_range_assignment_sticks() {
        // An assignment whose value leaves the declared range is a no-op
        // (matching the compiled system's total-function semantics).
        let p = parse("var x: int 0..3; x := x + 1;").unwrap();
        let r = run(&p, &env(&[("x", Val::Int(3))]), 10).unwrap();
        assert_eq!(r["x"], Val::Int(3));
        let ok = run(&p, &env(&[("x", Val::Int(2))]), 10).unwrap();
        assert_eq!(ok["x"], Val::Int(3));
    }

    #[test]
    fn type_mismatch_assignment_is_an_error() {
        let p = parse("var x: int 0..3; x := true;").unwrap();
        assert!(matches!(
            run(&p, &env(&[("x", Val::Int(0))]), 10),
            Err(LangError::Semantic(_))
        ));
    }

    #[test]
    fn initial_env_validated() {
        let p = parse("var x: int 0..3;").unwrap();
        assert!(run(&p, &env(&[]), 10).is_err());
        assert!(run(&p, &env(&[("x", Val::Bool(true))]), 10).is_err());
        assert!(run(&p, &env(&[("x", Val::Int(9))]), 10).is_err());
    }

    #[test]
    fn division_semantics() {
        let e = crate::parser::parse_expr("(-7) / 2").unwrap();
        assert_eq!(eval_expr(&e, &Env::new()).unwrap(), Val::Int(-4));
        let m = crate::parser::parse_expr("(-7) % 2").unwrap();
        assert_eq!(eval_expr(&m, &Env::new()).unwrap(), Val::Int(1));
        let z = crate::parser::parse_expr("1 / 0").unwrap();
        assert!(eval_expr(&z, &Env::new()).is_err());
    }

    #[test]
    fn type_errors_in_expressions() {
        let e = crate::parser::parse_expr("true + 1").unwrap();
        assert!(eval_expr(&e, &Env::new()).is_err());
        let e2 = crate::parser::parse_expr("!3").unwrap();
        assert!(eval_expr(&e2, &Env::new()).is_err());
    }
}
