//! Lowering φ source text against an arbitrary [`Universe`].
//!
//! The compiler's expression lowering ([`crate::compile`]) works over the
//! variable map of a compiled program. Serving layers (`sd-server`) need
//! the inverse direction: given a *system* — any system, including the
//! paper examples built directly in core — and a constraint written as
//! source text (`"m && x < 2"`), produce the [`Phi`] it denotes. This
//! module derives the variable map from the universe itself: every object
//! whose domain is all-boolean or all-integer becomes a variable; records
//! and mixed domains are not expressible in the mini language and yield a
//! structured error when referenced.

use std::collections::BTreeMap;

use sd_core::{ObjId, Phi, Universe};

use crate::ast::Type;
use crate::error::{LangError, Result};

/// Derives the expression-language variable map of a universe: object
/// name → (id, inferred [`Type`]). Objects whose domains are neither
/// all-boolean nor all-integer are omitted (they cannot appear in φ
/// source text).
fn universe_vars(u: &Universe) -> BTreeMap<String, (ObjId, Type)> {
    let mut vars = BTreeMap::new();
    for id in u.objects() {
        let dom = u.domain(id);
        let ty = if dom.values().iter().all(|v| v.as_bool().is_some()) {
            Type::Bool
        } else if dom.values().iter().all(|v| v.as_int().is_some()) {
            let ints: Vec<i64> = dom.values().iter().filter_map(|v| v.as_int()).collect();
            Type::Int {
                lo: ints.iter().copied().min().unwrap_or(0),
                hi: ints.iter().copied().max().unwrap_or(0),
            }
        } else {
            continue;
        };
        vars.insert(u.name(id).to_string(), (id, ty));
    }
    vars
}

/// Parses and lowers φ source text (e.g. `"m && x < 2"`) into a [`Phi`]
/// over `u`. Variables are the universe's boolean- and integer-domain
/// objects; the expression must be boolean-typed.
///
/// Errors are structured [`LangError`]s — parse errors for bad syntax,
/// semantic errors for undeclared variables or a non-boolean result —
/// never panics, which is what makes this safe to call on untrusted
/// input from the query service.
pub fn lower_phi(u: &Universe, src: &str) -> Result<Phi> {
    let e = crate::parser::parse_expr(src)?;
    let vars = universe_vars(u);
    let (ce, is_bool) = crate::compile::lower_expr_pub(&e, &vars)?;
    if !is_bool {
        return Err(LangError::Semantic(format!(
            "constraint `{src}` must be boolean-typed"
        )));
    }
    Ok(Phi::expr(ce))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_core::{examples, ObjSet, Query};

    #[test]
    fn lowers_against_example_universe() {
        let sys = examples::guarded_copy_system(2).unwrap();
        let u = sys.universe();
        let phi = lower_phi(u, "!m").unwrap();
        let alpha = u.obj("alpha").unwrap();
        let beta = u.obj("beta").unwrap();
        let out = Query::new(phi, ObjSet::singleton(alpha))
            .beta(beta)
            .run_on(&sys)
            .unwrap();
        assert!(!out.holds(), "pinning the guard kills the flow");
        let phi = lower_phi(u, "m").unwrap();
        let out = Query::new(phi, ObjSet::singleton(alpha))
            .beta(beta)
            .run_on(&sys)
            .unwrap();
        assert!(out.holds());
    }

    #[test]
    fn integer_domains_get_range_types() {
        let sys = examples::threshold_system(3).unwrap();
        let u = sys.universe();
        let phi = lower_phi(u, "alpha < 2").unwrap();
        assert!(matches!(phi, Phi::Expr(_)));
    }

    #[test]
    fn undeclared_variable_is_structured_error() {
        let sys = examples::flag_copy_system(2).unwrap();
        let err = lower_phi(sys.universe(), "nonexistent").unwrap_err();
        assert!(matches!(err, LangError::Semantic(_)));
    }

    #[test]
    fn parse_error_is_structured() {
        let sys = examples::flag_copy_system(2).unwrap();
        assert!(lower_phi(sys.universe(), "&& &&").is_err());
    }

    #[test]
    fn non_boolean_constraint_rejected() {
        let sys = examples::threshold_system(3).unwrap();
        let err = lower_phi(sys.universe(), "alpha + 1").unwrap_err();
        assert!(matches!(err, LangError::Semantic(_)));
    }
}
