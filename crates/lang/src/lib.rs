//! Sequential-program substrate for the Strong Dependency reproduction.
//!
//! §6.5 of the paper analyzes information transmission in sequential
//! programs by (1) modelling a program as a computational system with an
//! explicit program counter and (2) using Floyd assertions as an inductive
//! cover for Strong Dependency Induction. This crate provides the whole
//! pipeline:
//!
//! - a mini imperative language ([`ast`], [`token`], [`parser`]);
//! - a direct interpreter for differential testing ([`eval`]);
//! - the Lipton-style pc compilation to [`sd_core::System`] ([`compile`]);
//! - Floyd assertions and the §6.5 no-flow prover ([`floyd`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod error;
pub mod eval;
pub mod floyd;
pub mod parser;
pub mod phi;
pub mod token;

pub use crate::ast::{Expr, Program, Stmt, Type};
pub use crate::compile::{compile, Compiled};
pub use crate::error::{LangError, Result};
pub use crate::eval::{run, Env, Val};
pub use crate::floyd::{prove_no_flow, verify_assertions, Assertions};
pub use crate::parser::{parse, parse_expr};
pub use crate::phi::lower_phi;
