//! Program corpus tests: realistic little programs through the whole
//! pipeline — parse, compile, analyze.

use sd_core::{ObjSet, Phi};
use sd_lang::{compile, eval, floyd, parse, Assertions, Val};

fn env(pairs: &[(&str, Val)]) -> eval::Env {
    pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
}

/// A password check leaks exactly whether the guess matched — the classic
/// one-bit flow.
#[test]
fn password_check_leaks_one_bit() {
    let src = "\
var secret: int 0..7;
var guess: int 0..7;
var ok: bool;
if guess == secret { ok := true; } else { ok := false; }
";
    let p = parse(src).unwrap();
    let c = compile(&p).unwrap();
    let secret = c.var("secret").unwrap();
    let ok = c.var("ok").unwrap();
    // The flow exists…
    let dep = sd_core::Query::new(c.at_entry(), ObjSet::singleton(secret))
        .beta(ok)
        .run_on(&c.system)
        .unwrap()
        .into_witness();
    assert!(dep.is_some());
    // Quantitatively this is *contingent* transmission: an observer of
    // `ok` who does not know the guess learns nothing about the secret
    // (equivocation measure = 0), while an observer who fixes the guess
    // learns H(1/8) ≈ 0.54 bits per try (held-constant measure).
    let dist = sd_info::Dist::uniform(&c.system, &c.at_entry()).unwrap();
    let h = sd_core::History::single(sd_core::OpId(0));
    let blind =
        sd_info::bits_equivocation(&c.system, &dist, &ObjSet::singleton(secret), ok, &h).unwrap();
    assert!(blind.abs() < 1e-9, "blind observer learns nothing: {blind}");
    let knowing = sd_info::bits_held_constant(&c.system, &dist, secret, ok, &h).unwrap();
    let expected = sd_info::binary_entropy(1.0 / 8.0);
    assert!(
        (knowing - expected).abs() < 1e-9,
        "got {knowing}, want {expected}"
    );
    // Jointly, {secret, guess} determine ok: the pair transmits the full
    // H(1/8) as well.
    let pair = ObjSet::from_iter([secret, c.var("guess").unwrap()]);
    let joint = sd_info::bits_equivocation(&c.system, &dist, &pair, ok, &h).unwrap();
    assert!((joint - expected).abs() < 1e-9);
}

/// Overwriting the secret before any output destroys the flow (§3.3's
/// initial-vs-invariant point at the program level).
#[test]
fn scrubbed_secret_does_not_leak() {
    let src = "\
var secret: int 0..3;
var out: int 0..3;
secret := 0;
out := secret;
";
    let p = parse(src).unwrap();
    let c = compile(&p).unwrap();
    let dep = sd_core::Query::new(c.at_entry(), ObjSet::singleton(c.var("secret").unwrap()))
        .beta(c.var("out").unwrap())
        .run_on(&c.system)
        .unwrap()
        .into_witness();
    assert!(dep.is_none(), "the scrub kills the initial variety");
}

/// …but scrubbing *after* the copy is too late.
#[test]
fn late_scrub_still_leaks() {
    let src = "\
var secret: int 0..3;
var out: int 0..3;
out := secret;
secret := 0;
";
    let p = parse(src).unwrap();
    let c = compile(&p).unwrap();
    let dep = sd_core::Query::new(c.at_entry(), ObjSet::singleton(c.var("secret").unwrap()))
        .beta(c.var("out").unwrap())
        .run_on(&c.system)
        .unwrap()
        .into_witness();
    assert!(dep.is_some());
}

/// A branch-balanced program (both arms write the same constant) carries
/// no data flow — but only statement-atomic compilation sees that; see
/// the §6.5 paradox for the pc-branching variant.
#[test]
fn balanced_branches_atomic() {
    let src = "\
var h: bool;
var l: int 0..1;
if h { l := 0; } else { l := 0; }
";
    let p = parse(src).unwrap();
    let c = compile(&p).unwrap();
    assert_eq!(c.flat.len(), 1, "branch-free if compiles atomically");
    let dep = sd_core::Query::new(c.at_entry(), ObjSet::singleton(c.var("h").unwrap()))
        .beta(c.var("l").unwrap())
        .run_on(&c.system)
        .unwrap()
        .into_witness();
    assert!(dep.is_none());
}

/// Floyd assertions on a three-statement pipeline with a mid-point
/// assertion that pins the tainted flag.
#[test]
fn floyd_on_three_statement_pipeline() {
    let src = "\
var x: int 0..7;
var y: int 0..7;
var z: int 0..7;
y := x;
y := 0;
z := y;
";
    let p = parse(src).unwrap();
    let c = compile(&p).unwrap();
    // y is zero at statement 3, so nothing about x reaches z.
    let ann = Assertions::new().with_at(3, "y == 0").unwrap();
    assert!(floyd::verify_assertions(&c, &ann).unwrap());
    let out = floyd::prove_no_flow(&c, &ann, "x", "z").unwrap();
    assert!(out.is_proved(), "{:?}", out.reason());
    assert!(!floyd::depends_exact(&c, &ann, "x", "z").unwrap());
    // x → y over the FIRST statement alone is real, so the all-histories
    // relation x ▷ y holds.
    assert!(floyd::depends_exact(&c, &ann, "x", "y").unwrap());
}

/// Euclid's gcd runs correctly through both the interpreter and the
/// compiled machine.
#[test]
fn gcd_program_runs() {
    let src = "\
var a: int 0..30;
var b: int 0..30;
while b > 0 {
  a := a % b;
  if a < b { skip; }
  a := a + b;
  b := a - b;
  a := a - b;
  while b > 0 && a < b {
    a := a + 0;
    b := b - 0;
    a := a + b;
    b := a - b;
    a := a - b;
  }
}
";
    // A simpler swap-based gcd: a, b := b, a mod b until b = 0.
    let simple = "\
var a: int 0..30;
var b: int 0..30;
var t: int 0..30;
while b > 0 {
  t := a % b;
  a := b;
  b := t;
}
";
    let _ = src; // The contorted version above documents why we use `t`.
    let p = parse(simple).unwrap();
    let c = compile(&p).unwrap();
    for (a, b, g) in [(12, 18, 6), (30, 7, 1), (0, 5, 5), (21, 14, 7)] {
        let e = env(&[("a", Val::Int(a)), ("b", Val::Int(b)), ("t", Val::Int(0))]);
        let direct = eval::run(&p, &e, 10_000).unwrap();
        assert_eq!(direct["a"], Val::Int(g), "gcd({a},{b})");
        let end = c
            .run_to_halt(&c.initial_state(&e).unwrap(), 10_000)
            .unwrap();
        assert_eq!(c.read(&end, "a").unwrap(), Val::Int(g));
    }
}

/// Parser error corpus: every bad program is rejected with a useful
/// message.
#[test]
fn parser_error_corpus() {
    let cases = [
        ("var : int 0..1;", "identifier"),
        ("var x int 0..1;", "expected `:`"),
        ("var x: float;", "expected type"),
        ("x := ;", "expected expression"),
        ("if x { skip; ", "unclosed block"),
        ("while { }", "expected expression"),
        ("var x: bool; x := (true;", "expected `)`"),
        ("skip", "expected `;`"),
    ];
    for (src, needle) in cases {
        let err = parse(src).expect_err(src).to_string();
        assert!(
            err.contains(needle),
            "src `{src}`: error `{err}` lacks `{needle}`"
        );
    }
}

/// Compile-level semantic error corpus.
#[test]
fn semantic_error_corpus() {
    let cases = [
        "var x: int 0..1; y := x;",        // undeclared target
        "var x: int 0..1; x := y;",        // undeclared source
        "var x: int 0..1; x := true;",     // type mismatch
        "var b: bool; b := b + 1;",        // bool arithmetic
        "var b: bool; if b + 1 { skip; }", // non-bool guard
        "var pc: int 0..1;",               // reserved name
    ];
    for src in cases {
        let p = parse(src).expect(src);
        assert!(compile(&p).is_err(), "should reject `{src}`");
    }
}

/// The compiled pc domain is exactly the label range, and entry/exit are
/// consistent across a grab-bag of shapes.
#[test]
fn pc_layout_invariants() {
    for src in [
        "var x: bool;",
        "var x: int 0..1; x := 1;",
        "var x: int 0..1; if x == 0 { x := 1; } else { skip; }",
        "var x: int 0..3; while x > 0 { x := x - 1; }",
        "var x: int 0..3; while x > 0 { if x == 2 { x := 0; } x := x - 1; }",
    ] {
        let c = compile(&parse(src).unwrap()).unwrap();
        assert_eq!(c.exit as usize, c.flat.len() + 1, "src: {src}");
        assert!(c.entry >= 1 && c.entry <= c.exit);
        // Labels are 1..=n in order.
        for (i, f) in c.flat.iter().enumerate() {
            assert_eq!(f.label as usize, i + 1);
        }
        // Validate totality (stick semantics).
        c.system.validate().unwrap();
        let _ = Phi::True;
    }
}
