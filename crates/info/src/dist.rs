//! Probability distributions over system states (§7.4).
//!
//! §7.4 observes that "pr is a generalization of an initial constraint φ":
//! a distribution over initial states both constrains (support) and weighs
//! the variety available for transmission. [`Dist`] is a sparse
//! distribution over encoded states with pushforward along operations and
//! histories (`[H]pr`).

use std::collections::HashMap;

use sd_core::{History, ObjSet, Phi, Result, State, System};

/// A joint distribution over (initial A-projection, final B-projection)
/// assignment pairs.
pub type JointDist = HashMap<(Vec<u32>, Vec<u32>), f64>;

/// A probability distribution over states of a fixed system, keyed by
/// encoded state index.
#[derive(Debug, Clone)]
pub struct Dist {
    probs: HashMap<u64, f64>,
}

impl Dist {
    /// The uniform distribution over Sat(φ) — the implicit assumption of
    /// §7.4's examples ("each state satisfying φ occurs with equal
    /// probability").
    pub fn uniform(sys: &System, phi: &Phi) -> Result<Dist> {
        let sat = phi.sat(sys)?;
        let n = sat.count();
        if n == 0 {
            return Err(sd_core::Error::Invalid(
                "cannot build a distribution over an empty support".into(),
            ));
        }
        let p = 1.0 / n as f64;
        Ok(Dist {
            probs: sat.iter().map(|code| (code, p)).collect(),
        })
    }

    /// A distribution from explicit weights (normalized).
    pub fn from_weights(weights: impl IntoIterator<Item = (u64, f64)>) -> Result<Dist> {
        let mut probs: HashMap<u64, f64> = HashMap::new();
        for (code, w) in weights {
            if w < 0.0 || !w.is_finite() {
                return Err(sd_core::Error::Invalid(
                    "weights must be finite and non-negative".into(),
                ));
            }
            if w > 0.0 {
                *probs.entry(code).or_insert(0.0) += w;
            }
        }
        let total: f64 = probs.values().sum();
        if total <= 0.0 {
            return Err(sd_core::Error::Invalid(
                "weights must sum to a positive value".into(),
            ));
        }
        for p in probs.values_mut() {
            *p /= total;
        }
        Ok(Dist { probs })
    }

    /// Iterates `(state code, probability)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.probs.iter().map(|(&c, &p)| (c, p))
    }

    /// The probability of one state.
    pub fn prob(&self, code: u64) -> f64 {
        self.probs.get(&code).copied().unwrap_or(0.0)
    }

    /// Support size.
    pub fn support_len(&self) -> usize {
        self.probs.len()
    }

    /// Total mass (should always be ≈ 1; exposed for test assertions).
    pub fn total(&self) -> f64 {
        self.probs.values().sum()
    }

    /// The pushforward `[H]pr` (§7.4): the distribution of `H(σ)` when σ
    /// is drawn from this distribution.
    pub fn after(&self, sys: &System, h: &History) -> Result<Dist> {
        let u = sys.universe();
        let mut probs: HashMap<u64, f64> = HashMap::new();
        for (&code, &p) in &self.probs {
            let sigma = State::decode(u, code);
            let end = sys.run(&sigma, h)?;
            *probs.entry(end.encode(u)).or_insert(0.0) += p;
        }
        Ok(Dist { probs })
    }

    /// The marginal distribution of a projection onto `objs`.
    pub fn marginal(&self, sys: &System, objs: &ObjSet) -> HashMap<Vec<u32>, f64> {
        let u = sys.universe();
        let mut out: HashMap<Vec<u32>, f64> = HashMap::new();
        for (&code, &p) in &self.probs {
            let sigma = State::decode(u, code);
            *out.entry(sigma.project(objs)).or_insert(0.0) += p;
        }
        out
    }

    /// The joint distribution of (initial projection onto `a`, final
    /// projection onto `b` after `h`) — the channel from `σ0.A` to
    /// `H(σ).B`.
    pub fn joint_initial_final(
        &self,
        sys: &System,
        a: &ObjSet,
        b: &ObjSet,
        h: &History,
    ) -> Result<JointDist> {
        let u = sys.universe();
        let mut out: JointDist = HashMap::new();
        for (&code, &p) in &self.probs {
            let sigma = State::decode(u, code);
            let end = sys.run(&sigma, h)?;
            *out.entry((sigma.project(a), end.project(b))).or_insert(0.0) += p;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_core::examples;
    use sd_core::{Expr, OpId};

    #[test]
    fn uniform_over_constraint() {
        let sys = examples::copy_system(4).unwrap();
        let a = sys.universe().obj("alpha").unwrap();
        let phi = Phi::expr(Expr::var(a).lt(Expr::int(2)));
        let d = Dist::uniform(&sys, &phi).unwrap();
        assert_eq!(d.support_len(), 2 * 4);
        assert!((d.total() - 1.0).abs() < 1e-12);
        assert!(Dist::uniform(&sys, &Phi::False).is_err());
    }

    #[test]
    fn pushforward_concentrates() {
        // After β ← α, the states collapse onto the diagonal β = α.
        let sys = examples::copy_system(4).unwrap();
        let d = Dist::uniform(&sys, &Phi::True).unwrap();
        let after = d.after(&sys, &History::single(OpId(0))).unwrap();
        assert_eq!(after.support_len(), 4);
        assert!((after.total() - 1.0).abs() < 1e-12);
        for (_, p) in after.iter() {
            assert!((p - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn marginals_sum_to_one() {
        let sys = examples::mod_adder_system(2).unwrap();
        let d = Dist::uniform(&sys, &Phi::True).unwrap();
        let a1 = ObjSet::singleton(sys.universe().obj("a1").unwrap());
        let m = d.marginal(&sys, &a1);
        assert_eq!(m.len(), 4);
        let total: f64 = m.values().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weights_validated() {
        assert!(Dist::from_weights([(0u64, -1.0)]).is_err());
        assert!(Dist::from_weights([(0u64, 0.0)]).is_err());
        assert!(Dist::from_weights([(0u64, f64::NAN)]).is_err());
        let d = Dist::from_weights([(0u64, 1.0), (1, 3.0)]).unwrap();
        assert!((d.prob(1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn joint_matches_function() {
        let sys = examples::copy_system(2).unwrap();
        let u = sys.universe();
        let a = ObjSet::singleton(u.obj("alpha").unwrap());
        let b = ObjSet::singleton(u.obj("beta").unwrap());
        let d = Dist::uniform(&sys, &Phi::True).unwrap();
        let j = d
            .joint_initial_final(&sys, &a, &b, &History::single(OpId(0)))
            .unwrap();
        // β' always equals initial α: only diagonal entries.
        for ((av, bv), p) in j {
            assert_eq!(av, bv);
            assert!((p - 0.5).abs() < 1e-12);
        }
    }
}
