//! Noisy channels and capacity (§1.8).
//!
//! The paper's cybernetic framing notes that one may not be able to close
//! a covert channel completely — "one might simply be satisfied to
//! introduce enough noise to guarantee that the bandwidth … is
//! sufficiently low". This module makes that quantitative: discrete
//! memoryless channels, their mutual information, and capacity via the
//! Blahut–Arimoto algorithm.

use sd_core::{Error, Result};

/// A discrete memoryless channel: `p[x][y]` is `P(Y = y | X = x)`.
#[derive(Debug, Clone)]
pub struct Channel {
    p: Vec<Vec<f64>>,
}

impl Channel {
    /// Builds a channel from transition rows (each row must be a
    /// probability distribution).
    pub fn from_rows(p: Vec<Vec<f64>>) -> Result<Channel> {
        if p.is_empty() || p[0].is_empty() {
            return Err(Error::Invalid(
                "channel must have inputs and outputs".into(),
            ));
        }
        let m = p[0].len();
        for row in &p {
            if row.len() != m {
                return Err(Error::Invalid("ragged channel matrix".into()));
            }
            if row.iter().any(|&x| x < 0.0 || !x.is_finite()) {
                return Err(Error::Invalid("probabilities must be in [0, 1]".into()));
            }
            let total: f64 = row.iter().sum();
            if (total - 1.0).abs() > 1e-9 {
                return Err(Error::Invalid(format!(
                    "channel row sums to {total}, expected 1"
                )));
            }
        }
        Ok(Channel { p })
    }

    /// The binary symmetric channel with crossover probability `eps`.
    ///
    /// # Examples
    ///
    /// ```
    /// let ch = sd_info::Channel::bsc(0.11)?;
    /// let (cap, _iters, _px) = ch.capacity(1e-9, 10_000)?;
    /// let closed_form = 1.0 - sd_info::binary_entropy(0.11);
    /// assert!((cap - closed_form).abs() < 1e-6);
    /// # Ok::<(), sd_core::Error>(())
    /// ```
    pub fn bsc(eps: f64) -> Result<Channel> {
        Channel::from_rows(vec![vec![1.0 - eps, eps], vec![eps, 1.0 - eps]])
    }

    /// The m-ary symmetric channel: correct with probability `1 − eps`,
    /// otherwise uniform over the other symbols.
    pub fn symmetric(m: usize, eps: f64) -> Result<Channel> {
        if m < 2 {
            return Err(Error::Invalid("need at least two symbols".into()));
        }
        let off = eps / (m as f64 - 1.0);
        let rows = (0..m)
            .map(|x| {
                (0..m)
                    .map(|y| if x == y { 1.0 - eps } else { off })
                    .collect()
            })
            .collect();
        Channel::from_rows(rows)
    }

    /// Number of input symbols.
    pub fn inputs(&self) -> usize {
        self.p.len()
    }

    /// Number of output symbols.
    pub fn outputs(&self) -> usize {
        self.p[0].len()
    }

    /// Mutual information `I(X; Y)` in bits for a given input
    /// distribution.
    pub fn mutual_information(&self, px: &[f64]) -> Result<f64> {
        if px.len() != self.inputs() {
            return Err(Error::Invalid("input distribution size mismatch".into()));
        }
        let m = self.outputs();
        let mut py = vec![0.0f64; m];
        for (x, &pxv) in px.iter().enumerate() {
            for (y, slot) in py.iter_mut().enumerate() {
                *slot += pxv * self.p[x][y];
            }
        }
        let mut i = 0.0;
        for (x, &pxv) in px.iter().enumerate() {
            if pxv <= 0.0 {
                continue;
            }
            for (y, &pyv) in py.iter().enumerate() {
                let pxy = pxv * self.p[x][y];
                if pxy > 0.0 {
                    i += pxy * (self.p[x][y] / pyv).log2();
                }
            }
        }
        Ok(i.max(0.0))
    }

    /// Channel capacity in bits via Blahut–Arimoto: maximizes mutual
    /// information over input distributions. Returns `(capacity,
    /// iterations, maximizing input distribution)`.
    pub fn capacity(&self, tol: f64, max_iters: usize) -> Result<(f64, usize, Vec<f64>)> {
        let n = self.inputs();
        let m = self.outputs();
        let mut px = vec![1.0 / n as f64; n];
        let mut iters = 0;
        loop {
            iters += 1;
            // q(y) = Σx px(x) p(y|x).
            let mut py = vec![0.0f64; m];
            for (x, &pxv) in px.iter().enumerate() {
                for (y, slot) in py.iter_mut().enumerate() {
                    *slot += pxv * self.p[x][y];
                }
            }
            // c(x) = exp(Σy p(y|x) ln(p(y|x)/q(y))).
            let mut c = vec![0.0f64; n];
            for (x, slot) in c.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (y, &pyv) in py.iter().enumerate() {
                    let pyx = self.p[x][y];
                    if pyx > 0.0 && pyv > 0.0 {
                        acc += pyx * (pyx / pyv).ln();
                    }
                }
                *slot = acc.exp();
            }
            let z: f64 = px.iter().zip(&c).map(|(p, c)| p * c).sum();
            // Bounds: ln(z) ≤ C·ln2 ≤ ln(max c).
            let lower = z.ln() / std::f64::consts::LN_2;
            let upper = c.iter().fold(f64::MIN, |a, &b| a.max(b)).ln() / std::f64::consts::LN_2;
            if upper - lower < tol || iters >= max_iters {
                // One more normalization for the reported distribution.
                for (p, cv) in px.iter_mut().zip(&c) {
                    *p *= cv / z;
                }
                return Ok((lower.max(0.0), iters, px));
            }
            for (p, cv) in px.iter_mut().zip(&c) {
                *p *= cv / z;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entropy::binary_entropy;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn bsc_capacity_closed_form() {
        for eps in [0.0, 0.05, 0.11, 0.25, 0.5] {
            let ch = Channel::bsc(eps).unwrap();
            let (cap, _, px) = ch.capacity(1e-9, 10_000).unwrap();
            let expected = 1.0 - binary_entropy(eps);
            assert!(
                close(cap, expected, 1e-6),
                "eps={eps}: got {cap}, want {expected}"
            );
            // Maximizing input is uniform by symmetry.
            if eps < 0.5 {
                assert!(close(px[0], 0.5, 1e-4));
            }
        }
    }

    #[test]
    fn noise_monotonically_kills_bandwidth() {
        // The §1.8 claim: adding noise lowers the covert channel's
        // bandwidth, to zero at full noise.
        let mut last = f64::INFINITY;
        for eps in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5] {
            let (cap, _, _) = Channel::bsc(eps).unwrap().capacity(1e-9, 10_000).unwrap();
            assert!(cap <= last + 1e-9);
            last = cap;
        }
        assert!(close(last, 0.0, 1e-6));
    }

    #[test]
    fn mary_symmetric_capacity() {
        // C = log2(m) − H(eps) − eps·log2(m − 1).
        let m = 4;
        let eps = 0.1;
        let ch = Channel::symmetric(m, eps).unwrap();
        let (cap, _, _) = ch.capacity(1e-9, 10_000).unwrap();
        let expected = (m as f64).log2() - binary_entropy(eps) - eps * ((m - 1) as f64).log2();
        assert!(close(cap, expected, 1e-6));
    }

    #[test]
    fn noiseless_channel_capacity_is_log_m() {
        let ch = Channel::symmetric(8, 0.0).unwrap();
        let (cap, _, _) = ch.capacity(1e-9, 10_000).unwrap();
        assert!(close(cap, 3.0, 1e-6));
    }

    #[test]
    fn mutual_information_bounded_by_capacity() {
        let ch = Channel::bsc(0.2).unwrap();
        let (cap, _, _) = ch.capacity(1e-9, 10_000).unwrap();
        for px in [vec![0.5, 0.5], vec![0.9, 0.1], vec![1.0, 0.0]] {
            let mi = ch.mutual_information(&px).unwrap();
            assert!(mi <= cap + 1e-6);
        }
    }

    #[test]
    fn invalid_channels_rejected() {
        assert!(Channel::from_rows(vec![]).is_err());
        assert!(Channel::from_rows(vec![vec![0.5, 0.4]]).is_err());
        assert!(Channel::from_rows(vec![vec![1.0], vec![0.5, 0.5]]).is_err());
        assert!(Channel::from_rows(vec![vec![-0.1, 1.1]]).is_err());
        assert!(Channel::symmetric(1, 0.1).is_err());
        assert!(Channel::bsc(0.3)
            .unwrap()
            .mutual_information(&[1.0])
            .is_err());
    }
}
