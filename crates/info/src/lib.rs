//! Quantitative extension of the Strong Dependency formalism (§1.8, §7.4).
//!
//! Strong dependency is qualitative — *whether* information can be
//! transmitted. §7.4 sketches the quantitative theory this crate
//! implements:
//!
//! - distributions over states, generalizing initial constraints, with
//!   pushforward `[H]pr` ([`dist`]);
//! - Shannon entropy, equivocation and mutual information ([`entropy`]);
//! - the two §7.4 measures of transmitted bits — equivocation-based and
//!   held-constant average — plus interference and the data-processing
//!   bound ([`measure`]);
//! - noisy channels and Blahut–Arimoto capacity for the §1.8
//!   "lower the covert bandwidth with noise" remark ([`channel`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod dist;
pub mod entropy;
pub mod measure;

pub use crate::channel::Channel;
pub use crate::dist::Dist;
pub use crate::entropy::{binary_entropy, conditional_entropy, entropy, mutual_information};
pub use crate::measure::{
    bits_equivocation, bits_held_constant, data_processing_bound, interference, max_bits,
    source_entropy,
};
