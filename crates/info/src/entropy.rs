//! Shannon entropy primitives.
//!
//! §7.4 grounds the quantitative measures in "Shannon's information
//! entropy [Shannon & Weaver 49]". All quantities are in bits.

use std::collections::HashMap;
use std::hash::Hash;

/// Shannon entropy of a probability mass function, in bits. Zero-mass
/// entries contribute nothing.
pub fn entropy<'a>(probs: impl IntoIterator<Item = &'a f64>) -> f64 {
    probs
        .into_iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -p * p.log2())
        .sum()
}

/// Entropy of a keyed mass function.
pub fn entropy_map<K>(m: &HashMap<K, f64>) -> f64
where
    K: Eq + Hash,
{
    entropy(m.values())
}

/// Mutual information `I(X; Y)` of a joint mass function, in bits:
/// `H(X) + H(Y) − H(X, Y)`.
pub fn mutual_information<X, Y>(joint: &HashMap<(X, Y), f64>) -> f64
where
    X: Eq + Hash + Clone,
    Y: Eq + Hash + Clone,
{
    let mut mx: HashMap<X, f64> = HashMap::new();
    let mut my: HashMap<Y, f64> = HashMap::new();
    for ((x, y), &p) in joint {
        *mx.entry(x.clone()).or_insert(0.0) += p;
        *my.entry(y.clone()).or_insert(0.0) += p;
    }
    let hx = entropy_map(&mx);
    let hy = entropy_map(&my);
    let hxy = entropy(joint.values());
    (hx + hy - hxy).max(0.0)
}

/// Conditional entropy `H(Y | X)` of a joint mass function, in bits —
/// the *equivocation* of §7.4.
pub fn conditional_entropy<X, Y>(joint: &HashMap<(X, Y), f64>) -> f64
where
    X: Eq + Hash + Clone,
    Y: Eq + Hash + Clone,
{
    let mut mx: HashMap<X, f64> = HashMap::new();
    for ((x, _), &p) in joint {
        *mx.entry(x.clone()).or_insert(0.0) += p;
    }
    let hx = entropy_map(&mx);
    let hxy = entropy(joint.values());
    (hxy - hx).max(0.0)
}

/// Binary entropy function `H2(p)` in bits.
pub fn binary_entropy(p: f64) -> f64 {
    if p <= 0.0 || p >= 1.0 {
        0.0
    } else {
        -p * p.log2() - (1.0 - p) * (1.0 - p).log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn uniform_entropy_is_log() {
        let m: HashMap<u32, f64> = (0..8).map(|i| (i, 0.125)).collect();
        assert!(close(entropy_map(&m), 3.0));
    }

    #[test]
    fn deterministic_entropy_is_zero() {
        let m: HashMap<u32, f64> = [(7u32, 1.0)].into_iter().collect();
        assert!(close(entropy_map(&m), 0.0));
        assert!(close(entropy([0.0f64, 1.0].iter()), 0.0));
    }

    #[test]
    fn mi_of_identity_channel() {
        // Y = X uniform over 4 values: I = 2 bits.
        let joint: HashMap<(u32, u32), f64> = (0..4u32).map(|x| ((x, x), 0.25)).collect();
        assert!(close(mutual_information(&joint), 2.0));
        assert!(close(conditional_entropy(&joint), 0.0));
    }

    #[test]
    fn mi_of_independent_variables() {
        let mut joint = HashMap::new();
        for x in 0..2u32 {
            for y in 0..2u32 {
                joint.insert((x, y), 0.25);
            }
        }
        assert!(close(mutual_information(&joint), 0.0));
        assert!(close(conditional_entropy(&joint), 1.0));
    }

    #[test]
    fn binary_entropy_props() {
        assert!(close(binary_entropy(0.5), 1.0));
        assert!(close(binary_entropy(0.0), 0.0));
        assert!(close(binary_entropy(1.0), 0.0));
        assert!(binary_entropy(0.11) < 1.0);
        assert!(close(binary_entropy(0.25), binary_entropy(0.75)));
    }

    #[test]
    fn chain_rule() {
        // H(X, Y) = H(X) + H(Y | X) on an arbitrary joint.
        let joint: HashMap<(u32, u32), f64> = [
            ((0, 0), 0.5),
            ((0, 1), 0.25),
            ((1, 0), 0.125),
            ((1, 1), 0.125),
        ]
        .into_iter()
        .collect();
        let mut mx: HashMap<u32, f64> = HashMap::new();
        for ((x, _), p) in &joint {
            *mx.entry(*x).or_insert(0.0) += p;
        }
        let lhs = entropy(joint.values());
        let rhs = entropy_map(&mx) + conditional_entropy(&joint);
        assert!(close(lhs, rhs));
    }
}
