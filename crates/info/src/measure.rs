//! Quantitative measures of information transmission (§7.4).
//!
//! `b(A -(pr:: H)-> β)`: how many bits does executing H transmit from the
//! initial values of A to the final value of β? §7.4 identifies *two*
//! defensible measures that differ on "contingent" transmission (the
//! mod-128 adder):
//!
//! - the **equivocation measure** — `I(σ0.A ; H(σ).β)` = initial entropy
//!   minus equivocation. For `β ← (α1 + α2) mod 128`, α1 alone transmits
//!   **0** bits: no observation of β says anything about α1.
//! - the **held-constant average** — average, over ways of holding every
//!   other object constant, of the variety α conveys to β. For the same
//!   adder, α1 transmits **7** bits: fix α2 and all of α1's variety
//!   arrives.
//!
//! Strong dependency corresponds to the second: `A ▷ β` iff some
//! held-constant context conveys variety.

use sd_core::{History, ObjId, ObjSet, Result, State, System};

use crate::dist::Dist;
use crate::entropy::{entropy_map, mutual_information};

/// The equivocation measure: `b(A -(pr::H)-> β) = I(σ0.A ; H(σ).β)` bits.
pub fn bits_equivocation(
    sys: &System,
    dist: &Dist,
    a: &ObjSet,
    beta: ObjId,
    h: &History,
) -> Result<f64> {
    let joint = dist.joint_initial_final(sys, a, &ObjSet::singleton(beta), h)?;
    Ok(mutual_information(&joint))
}

/// The held-constant average measure for a single source object: average
/// over assignments `c` to the other objects (weighted by probability) of
/// `I(σ0.α ; H(σ).β | others = c)`.
pub fn bits_held_constant(
    sys: &System,
    dist: &Dist,
    alpha: ObjId,
    beta: ObjId,
    h: &History,
) -> Result<f64> {
    let u = sys.universe();
    let others: ObjSet = u.objects().filter(|&o| o != alpha).collect();
    // Group mass by the complement assignment; within each group, build
    // the joint (α0, β') distribution.
    use std::collections::HashMap;
    type Groups = HashMap<Vec<u32>, (f64, HashMap<(u32, u32), f64>)>;
    let mut groups: Groups = HashMap::new();
    for (code, p) in dist.iter() {
        let sigma = State::decode(u, code);
        let end = sys.run(&sigma, h)?;
        let key = sigma.project(&others);
        let entry = groups.entry(key).or_insert_with(|| (0.0, HashMap::new()));
        entry.0 += p;
        *entry
            .1
            .entry((sigma.index(alpha), end.index(beta)))
            .or_insert(0.0) += p;
    }
    let mut acc = 0.0;
    for (mass, joint) in groups.values() {
        if *mass <= 0.0 {
            continue;
        }
        // Normalize the group's joint to a conditional distribution.
        let cond: HashMap<(u32, u32), f64> = joint.iter().map(|(&k, &p)| (k, p / mass)).collect();
        acc += mass * mutual_information(&cond);
    }
    Ok(acc)
}

/// The initial entropy of a source set under `dist`, in bits.
pub fn source_entropy(sys: &System, dist: &Dist, a: &ObjSet) -> f64 {
    entropy_map(&dist.marginal(sys, a))
}

/// Relative interference (§7.4): `b(A1) + b(A2) − b(A1 ∪ A2)` under the
/// equivocation measure. Zero when the additive property holds; §7.4
/// predicts it usually does not.
pub fn interference(
    sys: &System,
    dist: &Dist,
    a1: &ObjSet,
    a2: &ObjSet,
    beta: ObjId,
    h: &History,
) -> Result<f64> {
    let b1 = bits_equivocation(sys, dist, a1, beta, h)?;
    let b2 = bits_equivocation(sys, dist, a2, beta, h)?;
    let both = bits_equivocation(sys, dist, &a1.union(a2), beta, h)?;
    Ok(b1 + b2 - both)
}

/// The maximum information transmissible from A to β over any history of
/// length ≤ `max_len` (equivocation measure) — a bounded "capacity" of
/// the system as a channel from A's initial value to β.
///
/// Returns `(bits, best history)`.
pub fn max_bits(
    sys: &System,
    dist: &Dist,
    a: &ObjSet,
    beta: ObjId,
    max_len: usize,
) -> Result<(f64, History)> {
    let mut best = (0.0f64, History::empty());
    for h in sd_core::history::histories_up_to(sys.num_ops(), max_len) {
        let bits = bits_equivocation(sys, dist, a, beta, &h)?;
        if bits > best.0 {
            best = (bits, h);
        }
    }
    Ok(best)
}

/// Data-processing check for the §7.4 induction sketch: information about
/// A reaching β through `h1 · h2` is bounded by the information about A
/// available in the *whole* intermediate state after `h1`. Returns
/// `(through, intermediate)`; the first must never exceed the second.
pub fn data_processing_bound(
    sys: &System,
    dist: &Dist,
    a: &ObjSet,
    beta: ObjId,
    h1: &History,
    h2: &History,
) -> Result<(f64, f64)> {
    let through = bits_equivocation(sys, dist, a, beta, &h1.concat(h2))?;
    let all = sys.universe().all_objects();
    let joint = dist.joint_initial_final(sys, a, &all, h1)?;
    let intermediate = mutual_information(&joint);
    Ok((through, intermediate))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_core::examples;
    use sd_core::{OpId, Phi};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn copy_transmits_all_bits() {
        // §2.2: β ← α over k values transmits log2(k) bits.
        let sys = examples::copy_system(16).unwrap();
        let u = sys.universe();
        let a = ObjSet::singleton(u.obj("alpha").unwrap());
        let b = u.obj("beta").unwrap();
        let d = Dist::uniform(&sys, &Phi::True).unwrap();
        let h = History::single(OpId(0));
        assert!(close(bits_equivocation(&sys, &d, &a, b, &h).unwrap(), 4.0));
        assert!(close(source_entropy(&sys, &d, &a), 4.0));
    }

    #[test]
    fn constrained_source_transmits_less() {
        // §2.2 threshold: unconstrained, 1 bit crosses; under α < 10,
        // none does.
        let sys = examples::threshold_system(15).unwrap();
        let u = sys.universe();
        let a = ObjSet::singleton(u.obj("alpha").unwrap());
        let b = u.obj("beta").unwrap();
        let h = History::single(OpId(0));
        let d_free = Dist::uniform(&sys, &Phi::True).unwrap();
        let bits_free = bits_equivocation(&sys, &d_free, &a, b, &h).unwrap();
        // 10/16 vs 6/16 split: H(10/16) ≈ 0.954 bits.
        assert!(bits_free > 0.9 && bits_free < 1.0);
        let phi = Phi::expr(sd_core::Expr::var(u.obj("alpha").unwrap()).lt(sd_core::Expr::int(10)));
        let d_con = Dist::uniform(&sys, &phi).unwrap();
        assert!(close(
            bits_equivocation(&sys, &d_con, &a, b, &h).unwrap(),
            0.0
        ));
    }

    #[test]
    fn mod_adder_sec_7_4() {
        // β ← (α1 + α2) mod 2^k: {α1, α2} transmits k bits; α1 alone
        // transmits 0 (equivocation) but k (held-constant average).
        let k = 4;
        let sys = examples::mod_adder_system(k).unwrap();
        let u = sys.universe();
        let a1 = u.obj("a1").unwrap();
        let a2 = u.obj("a2").unwrap();
        let b = u.obj("beta").unwrap();
        let d = Dist::uniform(&sys, &Phi::True).unwrap();
        let h = History::single(OpId(0));
        let pair = ObjSet::from_iter([a1, a2]);
        assert!(close(
            bits_equivocation(&sys, &d, &pair, b, &h).unwrap(),
            k as f64
        ));
        assert!(close(
            bits_equivocation(&sys, &d, &ObjSet::singleton(a1), b, &h).unwrap(),
            0.0
        ));
        assert!(close(
            bits_held_constant(&sys, &d, a1, b, &h).unwrap(),
            k as f64
        ));
    }

    #[test]
    fn interference_of_the_adder() {
        // b(α1) + b(α2) − b({α1, α2}) = 0 + 0 − k = −k: the sources are
        // jointly informative but individually silent.
        let k = 3;
        let sys = examples::mod_adder_system(k).unwrap();
        let u = sys.universe();
        let a1 = ObjSet::singleton(u.obj("a1").unwrap());
        let a2 = ObjSet::singleton(u.obj("a2").unwrap());
        let b = u.obj("beta").unwrap();
        let d = Dist::uniform(&sys, &Phi::True).unwrap();
        let h = History::single(OpId(0));
        let i = interference(&sys, &d, &a1, &a2, b, &h).unwrap();
        assert!(close(i, -(k as f64)));
    }

    #[test]
    fn data_processing_holds() {
        for sys in [
            examples::copy_system(4).unwrap(),
            examples::nontransitive_system(2).unwrap(),
            examples::m1m2_system(2).unwrap(),
        ] {
            let u = sys.universe();
            let a = ObjSet::singleton(u.obj("alpha").unwrap());
            let b = u.obj("beta").unwrap();
            let d = Dist::uniform(&sys, &Phi::True).unwrap();
            let ops: Vec<OpId> = sys.op_ids().collect();
            let h1 = History::from_ops(vec![ops[0]]);
            let h2 = History::from_ops(vec![*ops.last().unwrap()]);
            let (through, intermediate) = data_processing_bound(&sys, &d, &a, b, &h1, &h2).unwrap();
            assert!(
                through <= intermediate + 1e-9,
                "DPI violated: {through} > {intermediate}"
            );
        }
    }

    #[test]
    fn zero_bits_iff_no_strong_dependency_on_uniform_support() {
        // With a full-support uniform distribution, the equivocation
        // measure is positive exactly when β strongly depends on A after
        // H… for the single-history case.
        let sys = examples::nontransitive_system(2).unwrap();
        let u = sys.universe();
        let a = ObjSet::singleton(u.obj("alpha").unwrap());
        let b = u.obj("beta").unwrap();
        let d = Dist::uniform(&sys, &Phi::True).unwrap();
        // δ1 then δ2: no transmission (§4.4), so zero bits.
        let h = History::from_ops(vec![OpId(0), OpId(1)]);
        assert!(close(bits_equivocation(&sys, &d, &a, b, &h).unwrap(), 0.0));
        assert!(
            sd_core::depend::strongly_depends_after(&sys, &Phi::True, &a, b, &h)
                .unwrap()
                .is_none()
        );
    }
}

#[cfg(test)]
mod max_bits_tests {
    use super::*;
    use sd_core::examples;
    use sd_core::Phi;

    #[test]
    fn max_bits_finds_the_copy() {
        // In the §3.3 flag system, the best history copies α before δ2
        // destroys it; the λ history transmits nothing to β.
        let sys = examples::flag_copy_system(4).unwrap();
        let u = sys.universe();
        let a = sd_core::ObjSet::singleton(u.obj("alpha").unwrap());
        let b = u.obj("beta").unwrap();
        let d = Dist::uniform(&sys, &Phi::True).unwrap();
        let (bits, h) = max_bits(&sys, &d, &a, b, 2).unwrap();
        // Best history: δ1 while the flag is still a coin flip — about
        // 0.8 bits of α cross into β.
        assert!(bits > 0.7, "got {bits}");
        assert!(!h.is_empty());
        // Under φ: ¬flag, only ≤ one-step histories carry anything, and
        // the one-step δ1 run sets β ← 0 — zero bits; δ2 then δ1 copies
        // the *new* α (= x), still nothing about α's initial value.
        let phi = Phi::expr(sd_core::Expr::var(u.obj("flag").unwrap()).not());
        let dc = Dist::uniform(&sys, &phi).unwrap();
        let (blocked, _) = max_bits(&sys, &dc, &a, b, 2).unwrap();
        assert!(blocked.abs() < 1e-9, "got {blocked}");
    }
}
