//! Property tests for the quantitative theory: information inequalities
//! that must hold for every system and distribution.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sd_core::{examples, Cmd, Domain, Expr, History, ObjSet, Op, OpId, Phi, System, Universe};
use sd_info::{bits_equivocation, source_entropy, Channel, Dist};

const EPS: f64 = 1e-9;

fn random_system(seed: u64) -> System {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 3usize;
    let k = 3i64;
    let objects = (0..n)
        .map(|i| (format!("x{i}"), Domain::int_range(0, k - 1).unwrap()))
        .collect();
    let u = Universe::new(objects).unwrap();
    let ids: Vec<_> = u.objects().collect();
    let ops = (0..3)
        .map(|i| {
            let g = ids[rng.gen_range(0..n)];
            let c = rng.gen_range(0..k);
            let dst = ids[rng.gen_range(0..n)];
            let src = ids[rng.gen_range(0..n)];
            Op::from_cmd(
                format!("o{i}"),
                Cmd::when(
                    Expr::var(g).lt(Expr::int(c)),
                    Cmd::assign(dst, Expr::var(src)),
                ),
            )
        })
        .collect();
    System::new(u, ops)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// 0 ≤ transmitted bits ≤ source entropy.
    #[test]
    fn bits_bounded_by_source_entropy(seed in 0u64..100, hlen in 0usize..3) {
        let sys = random_system(seed);
        let u = sys.universe();
        let a = ObjSet::singleton(u.obj("x0").unwrap());
        let beta = u.obj("x2").unwrap();
        let d = Dist::uniform(&sys, &Phi::True).unwrap();
        let h = History::from_ops(vec![OpId((seed % 3) as u32); hlen]);
        let bits = bits_equivocation(&sys, &d, &a, beta, &h).unwrap();
        let h_src = source_entropy(&sys, &d, &a);
        prop_assert!(bits >= -EPS);
        prop_assert!(bits <= h_src + EPS, "{bits} > H(A) = {h_src}");
    }

    /// Monotonicity in the source (information inequality counterpart of
    /// Thm 2-2): b(A1 → β) ≤ b(A2 → β) when A1 ⊆ A2.
    #[test]
    fn bits_monotone_in_source(seed in 0u64..100) {
        let sys = random_system(seed);
        let u = sys.universe();
        let x0 = u.obj("x0").unwrap();
        let x1 = u.obj("x1").unwrap();
        let beta = u.obj("x2").unwrap();
        let d = Dist::uniform(&sys, &Phi::True).unwrap();
        let h = History::from_ops(vec![OpId(0), OpId(1 % sys.num_ops() as u32)]);
        let small = bits_equivocation(&sys, &d, &ObjSet::singleton(x0), beta, &h).unwrap();
        let big = bits_equivocation(&sys, &d, &ObjSet::from_iter([x0, x1]), beta, &h).unwrap();
        prop_assert!(small <= big + EPS, "{small} > {big}");
    }

    /// Pushforward preserves probability mass.
    #[test]
    fn pushforward_preserves_mass(seed in 0u64..100, hlen in 0usize..4) {
        let sys = random_system(seed);
        let d = Dist::uniform(&sys, &Phi::True).unwrap();
        let h = History::from_ops(vec![OpId((seed % 3) as u32); hlen]);
        let after = d.after(&sys, &h).unwrap();
        prop_assert!((after.total() - 1.0).abs() < EPS);
    }

    /// The data-processing bound holds on random systems and splits.
    #[test]
    fn data_processing_inequality(seed in 0u64..60) {
        let sys = random_system(seed);
        let u = sys.universe();
        let a = ObjSet::singleton(u.obj("x0").unwrap());
        let beta = u.obj("x1").unwrap();
        let d = Dist::uniform(&sys, &Phi::True).unwrap();
        let h1 = History::single(OpId(0));
        let h2 = History::single(OpId((seed % 3) as u32));
        let (through, intermediate) =
            sd_info::data_processing_bound(&sys, &d, &a, beta, &h1, &h2).unwrap();
        prop_assert!(through <= intermediate + EPS, "{through} > {intermediate}");
    }

    /// Channel capacity dominates the mutual information of any input
    /// distribution.
    #[test]
    fn capacity_is_supremum(rows in 2usize..5, eps in 0.0f64..0.49, p0 in 0.01f64..0.99) {
        let ch = Channel::symmetric(rows, eps).unwrap();
        let (cap, _, _) = ch.capacity(1e-10, 10_000).unwrap();
        // A skewed input: p0 on symbol 0, the rest uniform.
        let rest = (1.0 - p0) / (rows as f64 - 1.0);
        let mut px = vec![rest; rows];
        px[0] = p0;
        let mi = ch.mutual_information(&px).unwrap();
        prop_assert!(mi <= cap + 1e-6, "MI {mi} exceeds capacity {cap}");
    }
}

/// For deterministic systems under a uniform full-support distribution,
/// the equivocation measure is exactly H(β′) − H(β′ | A), and summing
/// measure identities hold (chain-rule sanity).
#[test]
fn equivocation_identity() {
    let sys = examples::mod_adder_system(3).unwrap();
    let u = sys.universe();
    let a1 = u.obj("a1").unwrap();
    let beta = u.obj("beta").unwrap();
    let d = Dist::uniform(&sys, &Phi::True).unwrap();
    let h = History::single(OpId(0));
    let joint = d
        .joint_initial_final(&sys, &ObjSet::singleton(a1), &ObjSet::singleton(beta), &h)
        .unwrap();
    let mi = sd_info::mutual_information(&joint);
    // β′ is uniform over 8 values; H(β′|α1) is also 3 bits (α2 uniform).
    let after = d.after(&sys, &h).unwrap();
    let h_beta = sd_info::entropy(
        after
            .marginal(&sys, &ObjSet::singleton(beta))
            .values()
            .collect::<Vec<_>>(),
    );
    let equivocation = sd_info::conditional_entropy(&joint);
    assert!((h_beta - 3.0).abs() < EPS);
    assert!((mi - (h_beta - equivocation)).abs() < EPS);
    assert!(mi.abs() < EPS, "adder transmits nothing from α1 alone");
}

/// §7.4's "initial entropy − equivocation" phrasing, verified directly:
/// for the copy system, equivocation is 0 and everything crosses.
#[test]
fn copy_has_zero_equivocation() {
    let sys = examples::copy_system(8).unwrap();
    let u = sys.universe();
    let a = u.obj("alpha").unwrap();
    let beta = u.obj("beta").unwrap();
    let d = Dist::uniform(&sys, &Phi::True).unwrap();
    let h = History::single(OpId(0));
    let joint = d
        .joint_initial_final(&sys, &ObjSet::singleton(a), &ObjSet::singleton(beta), &h)
        .unwrap();
    assert!(sd_info::conditional_entropy(&joint).abs() < EPS);
    assert!((sd_info::mutual_information(&joint) - 3.0).abs() < EPS);
}
