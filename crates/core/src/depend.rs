//! Strong dependency over a fixed history (Defs 2-3 … 2-11, 5-5 … 5-7).
//!
//! `β` strongly depends on `A` after `H` given φ when two states that
//! satisfy φ and differ only at `A` lead, via `H`, to different values of
//! `β`. This module decides that *for a given H*, exhaustively; the
//! all-histories relation `A ▷φ β` lives in [`crate::reach`].
//!
//! The decision groups Sat(φ) into equivalence classes of the
//! "equal-except-at-A" relation (`σ1 =A= σ2`, Def 1-1) and compares
//! β-outcomes within each class, which is linear in |Sat(φ)| rather than
//! quadratic.

use std::collections::HashMap;

use crate::constraint::Phi;
use crate::error::Result;
use crate::history::History;
use crate::state::State;
use crate::system::System;
use crate::universe::{ObjId, ObjSet};

/// A witnessing state pair `σ1 (A ▷H β) σ2` (Def 2-9).
#[derive(Debug, Clone, PartialEq)]
pub struct Witness {
    /// First state of the differing pair.
    pub sigma1: State,
    /// Second state of the differing pair.
    pub sigma2: State,
}

/// Partitions Sat(φ) into `=A=` equivalence classes.
///
/// Two states are in the same class iff they agree on every object outside
/// `A`. Classes with a single member can never witness a dependency, but
/// they are still returned (callers may reuse the partition).
pub fn classes(sys: &System, phi: &Phi, a: &ObjSet) -> Result<Vec<Vec<State>>> {
    let mut map: HashMap<Vec<u32>, Vec<State>> = HashMap::new();
    for sigma in sys.states()? {
        if phi.holds(sys, &sigma)? {
            map.entry(sigma.project_complement(a))
                .or_default()
                .push(sigma);
        }
    }
    Ok(map.into_values().collect())
}

/// Decides `A ▷φH β` (Def 2-10): returns a witness pair if β strongly
/// depends on A after H given φ, or `None` if no information can be
/// transmitted from A to β by H under φ.
///
/// # Examples
///
/// ```
/// use sd_core::{depend, examples, History, ObjSet, OpId, Phi};
///
/// // §4.4: δ1·δ2 transmits nothing from α to β even though each step
/// // transmits individually.
/// let sys = examples::nontransitive_system(2)?;
/// let u = sys.universe();
/// let (alpha, beta) = (u.obj("alpha")?, u.obj("beta")?);
/// let h = History::from_ops(vec![OpId(0), OpId(1)]);
/// let w = depend::strongly_depends_after(
///     &sys, &Phi::True, &ObjSet::singleton(alpha), beta, &h)?;
/// assert!(w.is_none());
/// # Ok::<(), sd_core::Error>(())
/// ```
pub fn strongly_depends_after(
    sys: &System,
    phi: &Phi,
    a: &ObjSet,
    beta: ObjId,
    h: &History,
) -> Result<Option<Witness>> {
    for class in classes(sys, phi, a)? {
        if class.len() < 2 {
            continue;
        }
        let mut first: Option<(u32, &State)> = None;
        for sigma in &class {
            let out = sys.run(sigma, h)?;
            let b = out.index(beta);
            match first {
                None => first = Some((b, sigma)),
                Some((b0, s0)) => {
                    if b != b0 {
                        return Ok(Some(Witness {
                            sigma1: s0.clone(),
                            sigma2: sigma.clone(),
                        }));
                    }
                }
            }
        }
    }
    Ok(None)
}

/// Decides the set-target relation `A ▷φH B` (Def 5-6): some pair of
/// φ-states differing only at A leads to values differing at *every*
/// object of `B` after H.
pub fn strongly_depends_set_after(
    sys: &System,
    phi: &Phi,
    a: &ObjSet,
    b: &ObjSet,
    h: &History,
) -> Result<Option<Witness>> {
    if b.is_empty() {
        // Vacuously, any in-class pair differs at every member of ∅; the
        // paper never uses B = ∅, so we treat it as "no dependency".
        return Ok(None);
    }
    for class in classes(sys, phi, a)? {
        if class.len() < 2 {
            continue;
        }
        // Project each outcome onto B; we need a pair differing in every
        // coordinate. Classes are small (they range only over A's domain),
        // so a pairwise scan is fine.
        let outcomes: Vec<Vec<u32>> = class
            .iter()
            .map(|s| -> Result<Vec<u32>> { Ok(sys.run(s, h)?.project(b)) })
            .collect::<Result<_>>()?;
        for i in 0..class.len() {
            for j in (i + 1)..class.len() {
                let all_differ = outcomes[i].iter().zip(&outcomes[j]).all(|(x, y)| x != y);
                if all_differ {
                    return Ok(Some(Witness {
                        sigma1: class[i].clone(),
                        sigma2: class[j].clone(),
                    }));
                }
            }
        }
    }
    Ok(None)
}

/// Def 2-1 specialized: whether *no* information is transmitted from α to β
/// by H (no constraint, i.e. φ = tt).
pub fn no_information_transmitted(
    sys: &System,
    alpha: ObjId,
    beta: ObjId,
    h: &History,
) -> Result<bool> {
    Ok(strongly_depends_after(sys, &Phi::True, &ObjSet::singleton(alpha), beta, h)?.is_none())
}

/// All sinks β with `A ▷φH β` for a fixed history.
pub fn sinks_after(sys: &System, phi: &Phi, a: &ObjSet, h: &History) -> Result<ObjSet> {
    let mut out = ObjSet::empty();
    for class in classes(sys, phi, a)? {
        if class.len() < 2 {
            continue;
        }
        let outcomes: Vec<State> = class.iter().map(|s| sys.run(s, h)).collect::<Result<_>>()?;
        for i in 0..outcomes.len() {
            for j in (i + 1)..outcomes.len() {
                for obj in outcomes[i].diff(&outcomes[j]).iter() {
                    out.insert(obj);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::history::OpId;
    use crate::op::{Cmd, Op};
    use crate::universe::{Domain, Universe};

    /// δ: β ← α over k-valued ints — the §2.2 copy example.
    fn copy_sys(k: i64) -> System {
        let u = Universe::new(vec![
            ("alpha".into(), Domain::int_range(0, k - 1).unwrap()),
            ("beta".into(), Domain::int_range(0, k - 1).unwrap()),
        ])
        .unwrap();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        System::new(u, vec![Op::from_cmd("copy", Cmd::assign(b, Expr::var(a)))])
    }

    #[test]
    fn copy_transmits_variety() {
        let sys = copy_sys(16);
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let h = History::single(OpId(0));
        let w = strongly_depends_after(&sys, &Phi::True, &ObjSet::singleton(a), b, &h)
            .unwrap()
            .unwrap();
        assert!(w.sigma1.eq_except(&w.sigma2, &ObjSet::singleton(a)));
        assert_ne!(
            sys.run(&w.sigma1, &h).unwrap().index(b),
            sys.run(&w.sigma2, &h).unwrap().index(b)
        );
    }

    #[test]
    fn constant_constraint_blocks_transmission() {
        // §2.2: if α is known to be a constant, no information flows.
        let sys = copy_sys(16);
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let phi = Phi::expr(Expr::var(a).eq(Expr::int(7)));
        let h = History::single(OpId(0));
        assert!(
            strongly_depends_after(&sys, &phi, &ObjSet::singleton(a), b, &h)
                .unwrap()
                .is_none()
        );
    }

    /// δ: if α < 10 then β ← 0 else β ← 1 — the §2.2 threshold example.
    fn threshold_sys() -> System {
        let u = Universe::new(vec![
            ("alpha".into(), Domain::int_range(0, 15).unwrap()),
            ("beta".into(), Domain::int_range(0, 1).unwrap()),
        ])
        .unwrap();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        System::new(
            u,
            vec![Op::from_cmd(
                "thresh",
                Cmd::If(
                    Expr::var(a).lt(Expr::int(10)),
                    Box::new(Cmd::assign(b, Expr::int(0))),
                    Box::new(Cmd::assign(b, Expr::int(1))),
                ),
            )],
        )
    }

    #[test]
    fn threshold_example_sec_2_2() {
        let sys = threshold_sys();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let h = History::single(OpId(0));
        // Unconstrained: one bit flows.
        assert!(
            strongly_depends_after(&sys, &Phi::True, &ObjSet::singleton(a), b, &h)
                .unwrap()
                .is_some()
        );
        // With φ: α < 10, nothing flows.
        let phi = Phi::expr(Expr::var(a).lt(Expr::int(10)));
        assert!(
            strongly_depends_after(&sys, &phi, &ObjSet::singleton(a), b, &h)
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn reflexivity_sec_2_5() {
        // α ▷δ α when δ preserves α; and over λ, dependency is reflexive
        // unless φ kills α's variety (Thm 2-4).
        let sys = copy_sys(4);
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let lambda = History::empty();
        assert!(
            strongly_depends_after(&sys, &Phi::True, &ObjSet::singleton(a), a, &lambda)
                .unwrap()
                .is_some()
        );
        let constant = Phi::expr(Expr::var(a).eq(Expr::int(2)));
        assert!(
            strongly_depends_after(&sys, &constant, &ObjSet::singleton(a), a, &lambda)
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn theorem_2_5_lambda_transmission_is_reflexive() {
        // A ▷φλ β ⊃ β ∈ A.
        let sys = copy_sys(4);
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let lambda = History::empty();
        // β ∉ {α}: no λ-dependency.
        assert!(
            strongly_depends_after(&sys, &Phi::True, &ObjSet::singleton(a), b, &lambda)
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn set_sources_thm_2_1() {
        // δ: β ← α1 + α2 (§2.3): {α1,α2} ▷ β and each αi ▷ β.
        let u = Universe::new(vec![
            ("a1".into(), Domain::int_range(0, 3).unwrap()),
            ("a2".into(), Domain::int_range(0, 3).unwrap()),
            ("beta".into(), Domain::int_range(0, 6).unwrap()),
        ])
        .unwrap();
        let a1 = u.obj("a1").unwrap();
        let a2 = u.obj("a2").unwrap();
        let b = u.obj("beta").unwrap();
        let sys = System::new(
            u,
            vec![Op::from_cmd(
                "add",
                Cmd::assign(b, Expr::var(a1).add(Expr::var(a2))),
            )],
        );
        let h = History::single(OpId(0));
        let pair = ObjSet::from_iter([a1, a2]);
        assert!(strongly_depends_after(&sys, &Phi::True, &pair, b, &h)
            .unwrap()
            .is_some());
        for alpha in [a1, a2] {
            assert!(
                strongly_depends_after(&sys, &Phi::True, &ObjSet::singleton(alpha), b, &h)
                    .unwrap()
                    .is_some()
            );
        }
        // Theorem 2-2 (monotonicity in A): α1 alone implies the pair.
        assert!(strongly_depends_after(&sys, &Phi::True, &pair, b, &h)
            .unwrap()
            .is_some());
    }

    #[test]
    fn set_target_def_5_6() {
        // δ1: (m1 ← α; m2 ← α) transmits from α to the *set* {m1, m2}.
        let u = Universe::new(vec![
            ("alpha".into(), Domain::int_range(0, 2).unwrap()),
            ("m1".into(), Domain::int_range(0, 2).unwrap()),
            ("m2".into(), Domain::int_range(0, 2).unwrap()),
        ])
        .unwrap();
        let a = u.obj("alpha").unwrap();
        let m1 = u.obj("m1").unwrap();
        let m2 = u.obj("m2").unwrap();
        let sys = System::new(
            u,
            vec![Op::from_cmd(
                "fanout",
                Cmd::Seq(vec![
                    Cmd::assign(m1, Expr::var(a)),
                    Cmd::assign(m2, Expr::var(a)),
                ]),
            )],
        );
        let h = History::single(OpId(0));
        let m12 = ObjSet::from_iter([m1, m2]);
        let w = strongly_depends_set_after(&sys, &Phi::True, &ObjSet::singleton(a), &m12, &h)
            .unwrap()
            .unwrap();
        let o1 = sys.run(&w.sigma1, &h).unwrap();
        let o2 = sys.run(&w.sigma2, &h).unwrap();
        assert!(o1.index(m1) != o2.index(m1) && o1.index(m2) != o2.index(m2));
        // Theorem 5-3: set-target dependency implies each member singly.
        for m in [m1, m2] {
            assert!(
                strongly_depends_after(&sys, &Phi::True, &ObjSet::singleton(a), m, &h)
                    .unwrap()
                    .is_some()
            );
        }
        // Empty target is never a dependency.
        assert!(strongly_depends_set_after(
            &sys,
            &Phi::True,
            &ObjSet::singleton(a),
            &ObjSet::empty(),
            &h
        )
        .unwrap()
        .is_none());
    }

    #[test]
    fn sinks_after_collects_all_targets() {
        let sys = copy_sys(4);
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let h = History::single(OpId(0));
        let sinks = sinks_after(&sys, &Phi::True, &ObjSet::singleton(a), &h).unwrap();
        // α's variety reaches both α itself (preserved) and β (copied).
        assert!(sinks.contains(a) && sinks.contains(b));
    }
}
