//! Strong dependency over a fixed history (Defs 2-3 … 2-11, 5-5 … 5-7).
//!
//! `β` strongly depends on `A` after `H` given φ when two states that
//! satisfy φ and differ only at `A` lead, via `H`, to different values of
//! `β`. This module decides that *for a given H*, exhaustively; the
//! all-histories relation `A ▷φ β` lives in [`crate::reach`].
//!
//! The decision groups Sat(φ) into equivalence classes of the
//! "equal-except-at-A" relation (`σ1 =A= σ2`, Def 1-1) and compares
//! β-outcomes within each class, which is linear in |Sat(φ)| rather than
//! quadratic.

use crate::constraint::Phi;
use crate::error::Result;
use crate::fastmap::U64Map;
use crate::history::History;
use crate::state::State;
use crate::system::System;
use crate::universe::{ObjId, ObjSet, Universe};

/// A witnessing state pair `σ1 (A ▷H β) σ2` (Def 2-9).
#[derive(Debug, Clone, PartialEq)]
pub struct Witness {
    /// First state of the differing pair.
    pub sigma1: State,
    /// Second state of the differing pair.
    pub sigma2: State,
}

/// Enumerates `Sat(φ)` as ascending state codes.
///
/// Extensional and trivial constraints short-circuit without touching
/// the state space; everything else is one enumeration pass. This is the
/// single Sat(φ) sweep shared by [`SatPartition`], [`crate::reach`] and
/// the worth matrix.
pub fn sat_codes(sys: &System, phi: &Phi) -> Result<Vec<u64>> {
    let n = sys.state_count()?;
    match phi {
        Phi::True => Ok((0..n).collect()),
        Phi::False => Ok(Vec::new()),
        Phi::Set(s) => Ok(s.iter().filter(|&i| i < n).collect()),
        _ => {
            let mut out = Vec::new();
            // `StateIter` yields states in encoding order, so a running
            // counter doubles as the code (checked by the state
            // round-trip property tests).
            for (code, sigma) in (0..n).zip(sys.states()?) {
                if phi.holds(sys, &sigma)? {
                    out.push(code);
                }
            }
            Ok(out)
        }
    }
}

/// `Sat(φ)` partitioned into `=A=` equivalence classes, by state code.
///
/// Two states are in the same class iff they agree on every object
/// outside `A`. The class key is computed arithmetically — the encoding
/// of the state with every A-object zeroed — so no per-state projection
/// vector is allocated or hashed. One partition serves every consumer
/// of the classes: [`crate::reach`] builds its initial pair frontier
/// from it, and [`strongly_depends_after_with`] reuses it across the
/// histories of a bounded enumeration.
#[derive(Debug, Clone)]
pub struct SatPartition {
    classes: Vec<Vec<u64>>,
}

impl SatPartition {
    /// Partitions `Sat(φ)` under `=A=`.
    pub fn new(sys: &System, phi: &Phi, a: &ObjSet) -> Result<SatPartition> {
        Ok(SatPartition::from_codes(
            sys.universe(),
            &sat_codes(sys, phi)?,
            a,
        ))
    }

    /// Partitions an explicit ascending code list under `=A=`. Useful
    /// when one Sat(φ) enumeration is shared across several source sets
    /// (the worth matrix re-partitions the same codes per row).
    pub fn from_codes(u: &Universe, codes: &[u64], a: &ObjSet) -> SatPartition {
        let strides: Vec<(u64, u64)> = a
            .iter()
            .map(|obj| (u.stride(obj) as u64, u.domain(obj).size() as u64))
            .collect();
        let mut index = U64Map::new();
        let mut classes: Vec<Vec<u64>> = Vec::new();
        for &code in codes {
            // key = code with every A-coordinate zeroed: a perfect,
            // allocation-free key for the =A= relation.
            let mut key = code;
            for &(stride, dom) in &strides {
                key -= stride * ((code / stride) % dom);
            }
            match index.get(key) {
                Some(i) => classes[i].push(code),
                None => {
                    index.insert(key, classes.len());
                    classes.push(vec![code]);
                }
            }
        }
        // Deterministic class order (members are already ascending
        // because `codes` is ascending).
        classes.sort_unstable();
        SatPartition { classes }
    }

    /// A partition assembled from explicit classes (each internally
    /// ascending). The maximal-solution sweep uses this to search one
    /// cylinder class at a time against a shared compiled system.
    pub(crate) fn from_classes(mut classes: Vec<Vec<u64>>) -> SatPartition {
        classes.sort_unstable();
        SatPartition { classes }
    }

    /// The classes; each inner vector is ascending, classes are sorted
    /// by first member.
    pub fn classes(&self) -> &[Vec<u64>] {
        &self.classes
    }

    /// Total number of φ-states across all classes.
    pub fn num_states(&self) -> usize {
        self.classes.iter().map(Vec::len).sum()
    }
}

/// Partitions Sat(φ) into `=A=` equivalence classes, as decoded states.
///
/// Kept for callers that want `State` values; the partition itself is
/// computed code-wise via [`SatPartition`] (no per-state key
/// allocation).
pub fn classes(sys: &System, phi: &Phi, a: &ObjSet) -> Result<Vec<Vec<State>>> {
    let u = sys.universe();
    Ok(SatPartition::new(sys, phi, a)?
        .classes()
        .iter()
        .map(|class| class.iter().map(|&c| State::decode(u, c)).collect())
        .collect())
}

/// Decides `A ▷φH β` (Def 2-10): returns a witness pair if β strongly
/// depends on A after H given φ, or `None` if no information can be
/// transmitted from A to β by H under φ.
///
/// # Examples
///
/// ```
/// use sd_core::{depend, examples, History, ObjSet, OpId, Phi};
///
/// // §4.4: δ1·δ2 transmits nothing from α to β even though each step
/// // transmits individually.
/// let sys = examples::nontransitive_system(2)?;
/// let u = sys.universe();
/// let (alpha, beta) = (u.obj("alpha")?, u.obj("beta")?);
/// let h = History::from_ops(vec![OpId(0), OpId(1)]);
/// let w = depend::strongly_depends_after(
///     &sys, &Phi::True, &ObjSet::singleton(alpha), beta, &h)?;
/// assert!(w.is_none());
/// # Ok::<(), sd_core::Error>(())
/// ```
pub fn strongly_depends_after(
    sys: &System,
    phi: &Phi,
    a: &ObjSet,
    beta: ObjId,
    h: &History,
) -> Result<Option<Witness>> {
    strongly_depends_after_with(sys, &SatPartition::new(sys, phi, a)?, beta, h)
}

/// [`strongly_depends_after`] against a precomputed partition, so one
/// Sat(φ) enumeration serves many histories (this is what
/// [`crate::reach::depends_bounded`] iterates with).
pub fn strongly_depends_after_with(
    sys: &System,
    partition: &SatPartition,
    beta: ObjId,
    h: &History,
) -> Result<Option<Witness>> {
    let u = sys.universe();
    for class in partition.classes() {
        if class.len() < 2 {
            continue;
        }
        let mut first: Option<(u32, u64)> = None;
        for &code in class {
            let sigma = State::decode(u, code);
            let out = sys.run(&sigma, h)?;
            let b = out.index(beta);
            match first {
                None => first = Some((b, code)),
                Some((b0, c0)) => {
                    if b != b0 {
                        return Ok(Some(Witness {
                            sigma1: State::decode(u, c0),
                            sigma2: sigma,
                        }));
                    }
                }
            }
        }
    }
    Ok(None)
}

/// Decides the set-target relation `A ▷φH B` (Def 5-6): some pair of
/// φ-states differing only at A leads to values differing at *every*
/// object of `B` after H.
pub fn strongly_depends_set_after(
    sys: &System,
    phi: &Phi,
    a: &ObjSet,
    b: &ObjSet,
    h: &History,
) -> Result<Option<Witness>> {
    if b.is_empty() {
        // Vacuously, any in-class pair differs at every member of ∅; the
        // paper never uses B = ∅, so we treat it as "no dependency".
        return Ok(None);
    }
    for class in classes(sys, phi, a)? {
        if class.len() < 2 {
            continue;
        }
        // Project each outcome onto B; we need a pair differing in every
        // coordinate. Classes are small (they range only over A's domain),
        // so a pairwise scan is fine.
        let outcomes: Vec<Vec<u32>> = class
            .iter()
            .map(|s| -> Result<Vec<u32>> { Ok(sys.run(s, h)?.project(b)) })
            .collect::<Result<_>>()?;
        for i in 0..class.len() {
            for j in (i + 1)..class.len() {
                let all_differ = outcomes[i].iter().zip(&outcomes[j]).all(|(x, y)| x != y);
                if all_differ {
                    return Ok(Some(Witness {
                        sigma1: class[i].clone(),
                        sigma2: class[j].clone(),
                    }));
                }
            }
        }
    }
    Ok(None)
}

/// Def 2-1 specialized: whether *no* information is transmitted from α to β
/// by H (no constraint, i.e. φ = tt).
pub fn no_information_transmitted(
    sys: &System,
    alpha: ObjId,
    beta: ObjId,
    h: &History,
) -> Result<bool> {
    Ok(strongly_depends_after(sys, &Phi::True, &ObjSet::singleton(alpha), beta, h)?.is_none())
}

/// All sinks β with `A ▷φH β` for a fixed history.
pub fn sinks_after(sys: &System, phi: &Phi, a: &ObjSet, h: &History) -> Result<ObjSet> {
    let mut out = ObjSet::empty();
    for class in classes(sys, phi, a)? {
        if class.len() < 2 {
            continue;
        }
        let outcomes: Vec<State> = class.iter().map(|s| sys.run(s, h)).collect::<Result<_>>()?;
        for i in 0..outcomes.len() {
            for j in (i + 1)..outcomes.len() {
                for obj in outcomes[i].diff(&outcomes[j]).iter() {
                    out.insert(obj);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::history::OpId;
    use crate::op::{Cmd, Op};
    use crate::universe::{Domain, Universe};
    use std::collections::HashMap;

    /// δ: β ← α over k-valued ints — the §2.2 copy example.
    fn copy_sys(k: i64) -> System {
        let u = Universe::new(vec![
            ("alpha".into(), Domain::int_range(0, k - 1).unwrap()),
            ("beta".into(), Domain::int_range(0, k - 1).unwrap()),
        ])
        .unwrap();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        System::new(u, vec![Op::from_cmd("copy", Cmd::assign(b, Expr::var(a)))])
    }

    #[test]
    fn copy_transmits_variety() {
        let sys = copy_sys(16);
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let h = History::single(OpId(0));
        let w = strongly_depends_after(&sys, &Phi::True, &ObjSet::singleton(a), b, &h)
            .unwrap()
            .unwrap();
        assert!(w.sigma1.eq_except(&w.sigma2, &ObjSet::singleton(a)));
        assert_ne!(
            sys.run(&w.sigma1, &h).unwrap().index(b),
            sys.run(&w.sigma2, &h).unwrap().index(b)
        );
    }

    #[test]
    fn constant_constraint_blocks_transmission() {
        // §2.2: if α is known to be a constant, no information flows.
        let sys = copy_sys(16);
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let phi = Phi::expr(Expr::var(a).eq(Expr::int(7)));
        let h = History::single(OpId(0));
        assert!(
            strongly_depends_after(&sys, &phi, &ObjSet::singleton(a), b, &h)
                .unwrap()
                .is_none()
        );
    }

    /// δ: if α < 10 then β ← 0 else β ← 1 — the §2.2 threshold example.
    fn threshold_sys() -> System {
        let u = Universe::new(vec![
            ("alpha".into(), Domain::int_range(0, 15).unwrap()),
            ("beta".into(), Domain::int_range(0, 1).unwrap()),
        ])
        .unwrap();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        System::new(
            u,
            vec![Op::from_cmd(
                "thresh",
                Cmd::If(
                    Expr::var(a).lt(Expr::int(10)),
                    Box::new(Cmd::assign(b, Expr::int(0))),
                    Box::new(Cmd::assign(b, Expr::int(1))),
                ),
            )],
        )
    }

    #[test]
    fn threshold_example_sec_2_2() {
        let sys = threshold_sys();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let h = History::single(OpId(0));
        // Unconstrained: one bit flows.
        assert!(
            strongly_depends_after(&sys, &Phi::True, &ObjSet::singleton(a), b, &h)
                .unwrap()
                .is_some()
        );
        // With φ: α < 10, nothing flows.
        let phi = Phi::expr(Expr::var(a).lt(Expr::int(10)));
        assert!(
            strongly_depends_after(&sys, &phi, &ObjSet::singleton(a), b, &h)
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn reflexivity_sec_2_5() {
        // α ▷δ α when δ preserves α; and over λ, dependency is reflexive
        // unless φ kills α's variety (Thm 2-4).
        let sys = copy_sys(4);
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let lambda = History::empty();
        assert!(
            strongly_depends_after(&sys, &Phi::True, &ObjSet::singleton(a), a, &lambda)
                .unwrap()
                .is_some()
        );
        let constant = Phi::expr(Expr::var(a).eq(Expr::int(2)));
        assert!(
            strongly_depends_after(&sys, &constant, &ObjSet::singleton(a), a, &lambda)
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn theorem_2_5_lambda_transmission_is_reflexive() {
        // A ▷φλ β ⊃ β ∈ A.
        let sys = copy_sys(4);
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let lambda = History::empty();
        // β ∉ {α}: no λ-dependency.
        assert!(
            strongly_depends_after(&sys, &Phi::True, &ObjSet::singleton(a), b, &lambda)
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn set_sources_thm_2_1() {
        // δ: β ← α1 + α2 (§2.3): {α1,α2} ▷ β and each αi ▷ β.
        let u = Universe::new(vec![
            ("a1".into(), Domain::int_range(0, 3).unwrap()),
            ("a2".into(), Domain::int_range(0, 3).unwrap()),
            ("beta".into(), Domain::int_range(0, 6).unwrap()),
        ])
        .unwrap();
        let a1 = u.obj("a1").unwrap();
        let a2 = u.obj("a2").unwrap();
        let b = u.obj("beta").unwrap();
        let sys = System::new(
            u,
            vec![Op::from_cmd(
                "add",
                Cmd::assign(b, Expr::var(a1).add(Expr::var(a2))),
            )],
        );
        let h = History::single(OpId(0));
        let pair = ObjSet::from_iter([a1, a2]);
        assert!(strongly_depends_after(&sys, &Phi::True, &pair, b, &h)
            .unwrap()
            .is_some());
        for alpha in [a1, a2] {
            assert!(
                strongly_depends_after(&sys, &Phi::True, &ObjSet::singleton(alpha), b, &h)
                    .unwrap()
                    .is_some()
            );
        }
        // Theorem 2-2 (monotonicity in A): α1 alone implies the pair.
        assert!(strongly_depends_after(&sys, &Phi::True, &pair, b, &h)
            .unwrap()
            .is_some());
    }

    #[test]
    fn set_target_def_5_6() {
        // δ1: (m1 ← α; m2 ← α) transmits from α to the *set* {m1, m2}.
        let u = Universe::new(vec![
            ("alpha".into(), Domain::int_range(0, 2).unwrap()),
            ("m1".into(), Domain::int_range(0, 2).unwrap()),
            ("m2".into(), Domain::int_range(0, 2).unwrap()),
        ])
        .unwrap();
        let a = u.obj("alpha").unwrap();
        let m1 = u.obj("m1").unwrap();
        let m2 = u.obj("m2").unwrap();
        let sys = System::new(
            u,
            vec![Op::from_cmd(
                "fanout",
                Cmd::Seq(vec![
                    Cmd::assign(m1, Expr::var(a)),
                    Cmd::assign(m2, Expr::var(a)),
                ]),
            )],
        );
        let h = History::single(OpId(0));
        let m12 = ObjSet::from_iter([m1, m2]);
        let w = strongly_depends_set_after(&sys, &Phi::True, &ObjSet::singleton(a), &m12, &h)
            .unwrap()
            .unwrap();
        let o1 = sys.run(&w.sigma1, &h).unwrap();
        let o2 = sys.run(&w.sigma2, &h).unwrap();
        assert!(o1.index(m1) != o2.index(m1) && o1.index(m2) != o2.index(m2));
        // Theorem 5-3: set-target dependency implies each member singly.
        for m in [m1, m2] {
            assert!(
                strongly_depends_after(&sys, &Phi::True, &ObjSet::singleton(a), m, &h)
                    .unwrap()
                    .is_some()
            );
        }
        // Empty target is never a dependency.
        assert!(strongly_depends_set_after(
            &sys,
            &Phi::True,
            &ObjSet::singleton(a),
            &ObjSet::empty(),
            &h
        )
        .unwrap()
        .is_none());
    }

    #[test]
    fn sat_partition_matches_projection_classes() {
        // The arithmetic comp-key partition must agree with the
        // reference grouping by the projected complement vector.
        let sys = copy_sys(4);
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        for phi in [
            Phi::True,
            Phi::expr(Expr::var(a).lt(Expr::int(2))),
            Phi::expr(Expr::var(a).le(Expr::var(u.obj("beta").unwrap()))),
        ] {
            for src in [ObjSet::singleton(a), ObjSet::empty()] {
                let part = SatPartition::new(&sys, &phi, &src).unwrap();
                let mut reference: HashMap<Vec<u32>, Vec<u64>> = HashMap::new();
                for sigma in sys.states().unwrap() {
                    if phi.holds(&sys, &sigma).unwrap() {
                        reference
                            .entry(sigma.project_complement(&src))
                            .or_default()
                            .push(sigma.encode(u));
                    }
                }
                let mut expected: Vec<Vec<u64>> = reference.into_values().collect();
                expected.sort_unstable();
                assert_eq!(part.classes(), &expected[..]);
                assert_eq!(part.num_states(), expected.iter().map(Vec::len).sum());
            }
        }
    }

    #[test]
    fn sat_codes_fast_paths_agree() {
        let sys = copy_sys(4);
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let phi = Phi::expr(Expr::var(a).lt(Expr::int(2)));
        let slow = sat_codes(&sys, &phi).unwrap();
        let as_set = Phi::from_set(phi.sat(&sys).unwrap());
        assert_eq!(sat_codes(&sys, &as_set).unwrap(), slow);
        assert_eq!(
            sat_codes(&sys, &Phi::True).unwrap().len() as u64,
            sys.state_count().unwrap()
        );
        assert!(sat_codes(&sys, &Phi::False).unwrap().is_empty());
    }

    #[test]
    fn sinks_after_collects_all_targets() {
        let sys = copy_sys(4);
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let h = History::single(OpId(0));
        let sinks = sinks_after(&sys, &Phi::True, &ObjSet::singleton(a), &h).unwrap();
        // α's variety reaches both α itself (preserved) and β (copied).
        assert!(sinks.contains(a) && sinks.contains(b));
    }
}
