//! A compact bit set over dense `u64` indices.
//!
//! Used to represent sets of states (see [`crate::constraint::StateSet`]
//! usage sites) without pulling in an external dependency. States are
//! identified by their mixed-radix index in the enumerated state space, so a
//! dense bit set is the natural representation.

use core::fmt;

/// A fixed-capacity set of `u64` indices in `0..len`.
///
/// All operations treat indices `>= len` as out of range and panic, matching
/// the invariant that state indices are always produced by the same
/// [`crate::universe::Universe`] the set was sized for.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    len: u64,
}

impl BitSet {
    /// Creates an empty set with capacity for indices `0..len`.
    pub fn new(len: u64) -> Self {
        let words = vec![0u64; len.div_ceil(64) as usize];
        BitSet { words, len }
    }

    /// Creates a set containing every index in `0..len`.
    pub fn full(len: u64) -> Self {
        let mut s = BitSet::new(len);
        for (i, w) in s.words.iter_mut().enumerate() {
            let base = (i as u64) * 64;
            let in_range = len.saturating_sub(base).min(64);
            *w = if in_range == 64 {
                u64::MAX
            } else {
                (1u64 << in_range) - 1
            };
        }
        s
    }

    /// The index capacity this set was created with.
    pub fn capacity(&self) -> u64 {
        self.len
    }

    /// Inserts `i`, returning whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    pub fn insert(&mut self, i: u64) -> bool {
        assert!(i < self.len, "bitset index {i} out of range {}", self.len);
        let w = &mut self.words[(i / 64) as usize];
        let mask = 1u64 << (i % 64);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Removes `i`, returning whether it was present.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    pub fn remove(&mut self, i: u64) -> bool {
        assert!(i < self.len, "bitset index {i} out of range {}", self.len);
        let w = &mut self.words[(i / 64) as usize];
        let mask = 1u64 << (i % 64);
        let present = *w & mask != 0;
        *w &= !mask;
        present
    }

    /// Tests membership of `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    pub fn contains(&self, i: u64) -> bool {
        assert!(i < self.len, "bitset index {i} out of range {}", self.len);
        self.words[(i / 64) as usize] & (1u64 << (i % 64)) != 0
    }

    /// Number of elements in the set.
    pub fn count(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Whether `self ⊆ other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference `self \ other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Complements the set in place (relative to `0..capacity`).
    pub fn complement(&mut self) {
        let len = self.len;
        for (i, w) in self.words.iter_mut().enumerate() {
            let base = (i as u64) * 64;
            let in_range = len.saturating_sub(base).min(64);
            let mask = if in_range == 64 {
                u64::MAX
            } else {
                (1u64 << in_range) - 1
            };
            *w = !*w & mask;
        }
    }

    /// Iterates over set elements in increasing order.
    pub fn iter(&self) -> BitSetIter<'_> {
        BitSetIter {
            set: self,
            word: 0,
            bits: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Iterator over the elements of a [`BitSet`].
pub struct BitSetIter<'a> {
    set: &'a BitSet,
    word: usize,
    bits: u64,
}

impl Iterator for BitSetIter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        loop {
            if self.bits != 0 {
                let tz = self.bits.trailing_zeros() as u64;
                self.bits &= self.bits - 1;
                return Some((self.word as u64) * 64 + tz);
            }
            self.word += 1;
            if self.word >= self.set.words.len() {
                return None;
            }
            self.bits = self.set.words[self.word];
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = u64;
    type IntoIter = BitSetIter<'a>;

    fn into_iter(self) -> BitSetIter<'a> {
        self.iter()
    }
}

impl FromIterator<u64> for BitSet {
    /// Builds a set sized to the maximum element plus one.
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let items: Vec<u64> = iter.into_iter().collect();
        let len = items.iter().copied().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(len);
        for i in items {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.count(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn full_and_complement() {
        let mut s = BitSet::full(100);
        assert_eq!(s.count(), 100);
        s.complement();
        assert!(s.is_empty());
        s.complement();
        assert_eq!(s.count(), 100);
        assert!(s.contains(99));
    }

    #[test]
    fn full_multiple_of_64() {
        let s = BitSet::full(128);
        assert_eq!(s.count(), 128);
        assert!(s.contains(127));
    }

    #[test]
    fn set_algebra() {
        let a: BitSet = [1u64, 2, 3, 70].into_iter().collect();
        let mut b = BitSet::new(71);
        b.insert(2);
        b.insert(70);
        assert!(b.is_subset(&a));
        assert!(!a.is_subset(&b));

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.count(), 4);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2, 70]);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn iter_order() {
        let s: BitSet = [5u64, 0, 63, 64, 127].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 5, 63, 64, 127]);
    }

    #[test]
    fn empty_set_iter() {
        let s = BitSet::new(0);
        assert_eq!(s.iter().count(), 0);
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let s = BitSet::new(10);
        s.contains(10);
    }
}
