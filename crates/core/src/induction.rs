//! Strong Dependency Induction (chapters 4–6).
//!
//! The induction theorems reduce an all-histories claim `¬A ▷φ β` to
//! per-operation checks:
//!
//! - **Corollary 4-2** (φ autonomous and invariant): either no operation
//!   transmits information out of α, or none transmits information into β.
//! - **Corollary 4-3** (φ autonomous and invariant): if every one-operation
//!   dependency respects a reflexive transitive relation q, every
//!   dependency does — the engine behind the Security Problem (§3.4).
//! - **Corollary 5-6** (φ invariant, possibly non-autonomous): the same
//!   disjunction with set-valued sources and intermediate sets.
//! - **Corollary 6-5** (φ arbitrary): quantify the per-operation checks
//!   over every reachable `[H]φ`.
//!
//! The two per-operation side conditions have linear-time formulations
//! (see DESIGN.md): "differences confined to A stay confined to A" and
//! "no operation creates a new difference at β".
//!
//! Every prover has a `_with` variant taking a prepared [`Oracle`]: the
//! system compiles once, per-operation checks read compiled successor rows
//! (falling back to the AST interpreter when the Oracle runs interpreted),
//! and the `(constraint set, operation)` check matrix is discharged in
//! parallel. Grouping inside the kernels uses arithmetic projection keys
//! over packed `u64` codes — no `State` is decoded on the hot path.

use crate::certificate::{Certificate, Fact, ProofOutcome};
use crate::classify;
use crate::compiled::{par_map_chunks, POISON};
use crate::constraint::{Phi, StateSet};
use crate::depend::SatPartition;
use crate::error::Result;
use crate::fastmap::U64U64Map;
use crate::history::OpId;
use crate::oracle::Oracle;
use crate::state::State;
use crate::system::System;
use crate::universe::{proj_key, ObjId, ObjSet};

/// Kernel behind [`op_confines_diffs`]: checks
/// `∀σ1 =A= σ2 ∈ Sat(φ): δ(σ1) =A= δ(σ2)` over packed codes, grouping by
/// the arithmetic complement-projection key. `succ` supplies δ's successor
/// code (compiled row probe or AST interpretation).
fn confines_kernel(
    dims: &[(u64, u64)],
    a: &ObjSet,
    codes: &[u64],
    succ: &mut dyn FnMut(u64) -> Result<u64>,
) -> Result<bool> {
    let mut groups = U64U64Map::new();
    for &code in codes {
        let next = succ(code)?;
        let key = code - proj_key(dims, a, code);
        let val = next - proj_key(dims, a, next);
        match groups.get(key) {
            None => {
                groups.insert(key, val);
            }
            Some(prev) => {
                if prev != val {
                    return Ok(false);
                }
            }
        }
    }
    Ok(true)
}

/// Kernel behind [`op_no_new_diff_at`]: checks
/// `∀σ1, σ2 ∈ Sat(φ): σ1.β = σ2.β ⊃ δ(σ1).β = δ(σ2).β` over packed codes.
/// A flat per-β-value table (sentinel `u32::MAX`) replaces the hash map;
/// domains large enough to collide with the sentinel use the map instead.
fn no_new_diff_kernel(
    dims: &[(u64, u64)],
    beta: ObjId,
    codes: &[u64],
    succ: &mut dyn FnMut(u64) -> Result<u64>,
) -> Result<bool> {
    let (stride, dom) = dims[beta.index()];
    if dom >= u32::MAX as u64 {
        let mut seen = U64U64Map::new();
        for &code in codes {
            let next = succ(code)?;
            let before = (code / stride) % dom;
            let after = (next / stride) % dom;
            match seen.get(before) {
                None => {
                    seen.insert(before, after);
                }
                Some(prev) => {
                    if prev != after {
                        return Ok(false);
                    }
                }
            }
        }
        return Ok(true);
    }
    let mut seen = vec![u32::MAX; dom as usize];
    for &code in codes {
        let next = succ(code)?;
        let before = ((code / stride) % dom) as usize;
        let after = ((next / stride) % dom) as u32;
        if seen[before] == u32::MAX {
            seen[before] = after;
        } else if seen[before] != after {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Evaluates `kernel` for every `(constraint set, operation)` pair, in
/// parallel, against compiled successor rows when the Oracle compiles and
/// the AST interpreter otherwise. Results are returned in pair order, so
/// callers can replay the sequential first-failure semantics exactly.
fn eval_pairs<K>(
    oracle: &Oracle,
    sat_codes: &[Vec<u64>],
    pairs: &[(usize, usize)],
    kernel: K,
) -> Vec<Result<bool>>
where
    K: Fn(&[u64], &mut dyn FnMut(u64) -> Result<u64>) -> Result<bool> + Sync,
{
    let sys = oracle.system();
    let u = sys.universe();
    let mut all: Vec<u64> = sat_codes.iter().flatten().copied().collect();
    all.sort_unstable();
    all.dedup();
    oracle
        .with_rows(&all, |cs, memo| {
            par_map_chunks(pairs, 1, |chunk| {
                chunk
                    .iter()
                    .map(|&(si, op)| {
                        kernel(&sat_codes[si], &mut |code| {
                            let next = cs.succ(memo, code, op);
                            if next == POISON {
                                Err(cs.poison_error(code, op))
                            } else {
                                Ok(next)
                            }
                        })
                    })
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect::<Vec<_>>()
        })
        .unwrap_or_else(|| {
            par_map_chunks(pairs, 1, |chunk| {
                chunk
                    .iter()
                    .map(|&(si, op)| {
                        kernel(&sat_codes[si], &mut |code| {
                            Ok(sys
                                .apply(OpId(op as u32), &State::decode(u, code))?
                                .encode(u))
                        })
                    })
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect()
        })
}

/// Per-operation check `∀m: A ▷δφ m ⊃ m ∈ A`, in the linear form
/// `∀σ1 =A= σ2 ∈ Sat(φ): δ(σ1) =A= δ(σ2)`.
pub fn op_confines_diffs(sys: &System, sat: &StateSet, a: &ObjSet, op: OpId) -> Result<bool> {
    let u = sys.universe();
    let dims = u.dims();
    let codes: Vec<u64> = sat.iter().collect();
    confines_kernel(&dims, a, &codes, &mut |code| {
        Ok(sys.apply(op, &State::decode(u, code))?.encode(u))
    })
}

/// [`op_confines_diffs`] against a prepared [`Oracle`], probing compiled
/// successor rows instead of interpreting the operation per state.
pub(crate) fn op_confines_diffs_with(
    oracle: &Oracle,
    sat: &StateSet,
    a: &ObjSet,
    op: OpId,
) -> Result<bool> {
    let sys = oracle.system();
    let dims = sys.universe().dims();
    let codes: Vec<u64> = sat.iter().collect();
    let op = op.0 as usize;
    oracle
        .with_rows(&codes, |cs, memo| {
            confines_kernel(&dims, a, &codes, &mut |code| {
                let next = cs.succ(memo, code, op);
                if next == POISON {
                    Err(cs.poison_error(code, op))
                } else {
                    Ok(next)
                }
            })
        })
        .unwrap_or_else(|| op_confines_diffs(sys, sat, a, OpId(op as u32)))
}

/// Per-operation check `∀M: M ▷δφ β ⊃ β ∈ M`, in the linear form
/// `∀σ1, σ2 ∈ Sat(φ): σ1.β = σ2.β ⊃ δ(σ1).β = δ(σ2).β`.
pub fn op_no_new_diff_at(sys: &System, sat: &StateSet, beta: ObjId, op: OpId) -> Result<bool> {
    let u = sys.universe();
    let dims = u.dims();
    let codes: Vec<u64> = sat.iter().collect();
    no_new_diff_kernel(&dims, beta, &codes, &mut |code| {
        Ok(sys.apply(op, &State::decode(u, code))?.encode(u))
    })
}

/// [`op_no_new_diff_at`] against a prepared [`Oracle`].
pub(crate) fn op_no_new_diff_at_with(
    oracle: &Oracle,
    sat: &StateSet,
    beta: ObjId,
    op: OpId,
) -> Result<bool> {
    let sys = oracle.system();
    let dims = sys.universe().dims();
    let codes: Vec<u64> = sat.iter().collect();
    let op = op.0 as usize;
    oracle
        .with_rows(&codes, |cs, memo| {
            no_new_diff_kernel(&dims, beta, &codes, &mut |code| {
                let next = cs.succ(memo, code, op);
                if next == POISON {
                    Err(cs.poison_error(code, op))
                } else {
                    Ok(next)
                }
            })
        })
        .unwrap_or_else(|| op_no_new_diff_at(sys, sat, beta, OpId(op as u32)))
}

fn render_objset(sys: &System, a: &ObjSet) -> String {
    let names: Vec<&str> = a.iter().map(|o| sys.universe().name(o)).collect();
    format!("{{{}}}", names.join(", "))
}

/// Corollary 5-6: for invariant φ and β ∉ A, if no operation spreads
/// differences out of A, or no operation creates a new difference at β,
/// then `¬A ▷φ β`.
pub fn prove_cor_5_6(sys: &System, phi: &Phi, a: &ObjSet, beta: ObjId) -> Result<ProofOutcome> {
    let oracle = Oracle::new(sys)?;
    prove_cor_5_6_with(&oracle, phi, a, beta)
}

/// [`prove_cor_5_6`] against a prepared [`Oracle`]: the compile, Sat(φ)
/// enumeration and successor rows are shared with the caller's other
/// queries, and the per-operation checks run in parallel.
pub fn prove_cor_5_6_with(
    oracle: &Oracle,
    phi: &Phi,
    a: &ObjSet,
    beta: ObjId,
) -> Result<ProofOutcome> {
    let sys = oracle.system();
    if a.contains(beta) {
        return Ok(ProofOutcome::Inapplicable("β ∈ A".into()));
    }
    if !classify::is_invariant_with(oracle, phi)? {
        return Ok(ProofOutcome::Inapplicable("φ is not invariant".into()));
    }
    let sat = phi.sat(sys)?;
    let mut cert = Certificate::new(
        "Corollary 5-6",
        format!(
            "¬ {} ▷φ {}",
            render_objset(sys, a),
            sys.universe().name(beta)
        ),
    );
    cert.record(Fact::Invariant);
    match disjunction(oracle, &[sat], a, beta, &mut cert)? {
        Ok(()) => Ok(ProofOutcome::Proved(cert)),
        Err(reason) => Ok(ProofOutcome::Inapplicable(reason)),
    }
}

/// Checks the Cor 5-6 / 6-5 / Thm 6-7 disjunction over a family of
/// satisfying sets, recording the successful branch in `cert`.
///
/// Both branches evaluate their whole `(constraint set, operation)` check
/// matrix in parallel, then replay the results in sequential order so the
/// recorded facts, failure reasons and surfaced errors are identical to
/// the one-check-at-a-time formulation.
fn disjunction(
    oracle: &Oracle,
    sats: &[StateSet],
    a: &ObjSet,
    beta: ObjId,
    cert: &mut Certificate,
) -> Result<core::result::Result<(), String>> {
    let sys = oracle.system();
    let dims = sys.universe().dims();
    let num_ops = sys.num_ops();
    let sat_codes: Vec<Vec<u64>> = sats.iter().map(|s| s.iter().collect()).collect();
    let pairs: Vec<(usize, usize)> = (0..sats.len())
        .flat_map(|si| (0..num_ops).map(move |op| (si, op)))
        .collect();
    // Branch 1: ∀(sat, δ): differences confined to A stay confined.
    let branch1 = eval_pairs(oracle, &sat_codes, &pairs, |codes, succ| {
        confines_kernel(&dims, a, codes, succ)
    });
    let mut confined = true;
    for check in branch1 {
        match check {
            Err(e) => return Err(e),
            Ok(false) => {
                confined = false;
                break;
            }
            Ok(true) => {}
        }
    }
    if confined {
        cert.record(Fact::NoSpreadFrom {
            sources: render_objset(sys, a),
            checks: pairs.len(),
        });
        return Ok(Ok(()));
    }
    // Branch 2: ∀(sat, δ): no new difference at β.
    let branch2 = eval_pairs(oracle, &sat_codes, &pairs, |codes, succ| {
        no_new_diff_kernel(&dims, beta, codes, succ)
    });
    for check in branch2 {
        match check {
            Err(e) => return Err(e),
            Ok(false) => {
                return Ok(Err(format!(
                    "both disjuncts fail: some operation spreads differences out of A \
                     and some operation writes β under {} constraint sets",
                    sats.len()
                )));
            }
            Ok(true) => {}
        }
    }
    cert.record(Fact::NoNewDifferenceAt {
        sink: sys.universe().name(beta).to_string(),
        checks: pairs.len(),
    });
    Ok(Ok(()))
}

/// Corollary 4-2: for autonomous invariant φ and α ≠ β, if either no
/// operation transmits from α to another object, or none transmits into β
/// from another object, then `¬α ▷φ β`.
///
/// # Examples
///
/// ```
/// use sd_core::{examples, induction, Expr, Phi};
///
/// let sys = examples::guarded_copy_system(2)?;
/// let u = sys.universe();
/// let (alpha, beta, m) = (u.obj("alpha")?, u.obj("beta")?, u.obj("m")?);
/// let phi = Phi::expr(Expr::var(m).not());
/// let outcome = induction::prove_cor_4_2(&sys, &phi, alpha, beta)?;
/// let cert = outcome.certificate().expect("φ = ¬m blocks the copy");
/// assert!(cert.conclusion.contains("beta"));
/// # Ok::<(), sd_core::Error>(())
/// ```
pub fn prove_cor_4_2(sys: &System, phi: &Phi, alpha: ObjId, beta: ObjId) -> Result<ProofOutcome> {
    let oracle = Oracle::new(sys)?;
    prove_cor_4_2_with(&oracle, phi, alpha, beta)
}

/// [`prove_cor_4_2`] against a prepared [`Oracle`].
pub fn prove_cor_4_2_with(
    oracle: &Oracle,
    phi: &Phi,
    alpha: ObjId,
    beta: ObjId,
) -> Result<ProofOutcome> {
    let sys = oracle.system();
    if alpha == beta {
        return Ok(ProofOutcome::Inapplicable("α = β".into()));
    }
    if !classify::is_autonomous(sys, phi)? {
        return Ok(ProofOutcome::Inapplicable("φ is not autonomous".into()));
    }
    if !classify::is_invariant_with(oracle, phi)? {
        return Ok(ProofOutcome::Inapplicable("φ is not invariant".into()));
    }
    let sat = phi.sat(sys)?;
    let mut cert = Certificate::new(
        "Corollary 4-2",
        format!(
            "¬ {} ▷φ {}",
            sys.universe().name(alpha),
            sys.universe().name(beta)
        ),
    );
    cert.record(Fact::Autonomous);
    cert.record(Fact::Invariant);
    match disjunction(oracle, &[sat], &ObjSet::singleton(alpha), beta, &mut cert)? {
        Ok(()) => Ok(ProofOutcome::Proved(cert)),
        Err(reason) => Ok(ProofOutcome::Inapplicable(reason)),
    }
}

/// Kernel behind the Cor 4-3 per-operation sweep: the sinks of a
/// single-operation history from source partition `part` — the union over
/// `=A=` classes of the objects at which two successor codes differ.
/// Pairwise diffs reduce to first-vs-rest diffs: if two successors differ
/// at y, at least one differs from the class's first successor at y.
fn op_sinks_kernel(
    dims: &[(u64, u64)],
    part: &SatPartition,
    succ: &mut dyn FnMut(u64) -> Result<u64>,
) -> Result<ObjSet> {
    let mut out = ObjSet::empty();
    for class in part.classes() {
        if class.len() < 2 {
            continue;
        }
        let mut first: Option<u64> = None;
        for &code in class {
            let next = succ(code)?;
            match first {
                None => first = Some(next),
                Some(f) => {
                    if f != next {
                        for (i, &(stride, dom)) in dims.iter().enumerate() {
                            if (f / stride) % dom != (next / stride) % dom {
                                out.insert(ObjId::from_index(i));
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Corollary 4-3: for autonomous invariant φ and a reflexive transitive
/// relation q over objects, if every one-operation dependency respects q,
/// then every dependency over every history respects q:
/// `∀x, y: x ▷φ y ⊃ q(x, y)`.
///
/// This is the engine behind Security-Problem style proofs, with
/// `q(x, y) ≡ Cls(x) ≤ Cls(y)`.
pub fn prove_cor_4_3(
    sys: &System,
    phi: &Phi,
    q: &dyn Fn(ObjId, ObjId) -> bool,
    q_name: &str,
) -> Result<ProofOutcome> {
    let oracle = Oracle::new(sys)?;
    prove_cor_4_3_with(&oracle, phi, q, q_name)
}

/// [`prove_cor_4_3`] against a prepared [`Oracle`]: the per-`(operation,
/// source)` sink sets are computed in parallel over compiled successor
/// rows, then checked against q in the sequential sweep order, so the
/// reported first violation is identical.
pub fn prove_cor_4_3_with(
    oracle: &Oracle,
    phi: &Phi,
    q: &dyn Fn(ObjId, ObjId) -> bool,
    q_name: &str,
) -> Result<ProofOutcome> {
    let sys = oracle.system();
    if !classify::is_autonomous(sys, phi)? {
        return Ok(ProofOutcome::Inapplicable("φ is not autonomous".into()));
    }
    if !classify::is_invariant_with(oracle, phi)? {
        return Ok(ProofOutcome::Inapplicable("φ is not invariant".into()));
    }
    // q must be reflexive and transitive over the (finite) object universe.
    let objs: Vec<ObjId> = sys.universe().objects().collect();
    for &x in &objs {
        if !q(x, x) {
            return Ok(ProofOutcome::Inapplicable(format!(
                "{q_name} is not reflexive at {}",
                sys.universe().name(x)
            )));
        }
    }
    for &x in &objs {
        for &y in &objs {
            for &z in &objs {
                if q(x, y) && q(y, z) && !q(x, z) {
                    return Ok(ProofOutcome::Inapplicable(format!(
                        "{q_name} is not transitive at ({}, {}, {})",
                        sys.universe().name(x),
                        sys.universe().name(y),
                        sys.universe().name(z)
                    )));
                }
            }
        }
    }
    // Per-operation: x ▷δφ y ⊃ q(x, y), via the single-history sink set.
    // Sink sets for every (op, x) pair are computed in parallel; q itself
    // (an opaque, possibly non-Sync closure) is applied afterwards in
    // sweep order.
    let u = sys.universe();
    let dims = u.dims();
    let parts: Vec<SatPartition> = objs
        .iter()
        .map(|&x| oracle.partition(phi, &ObjSet::singleton(x)))
        .collect::<Result<_>>()?;
    let pairs: Vec<(usize, usize)> = (0..sys.num_ops())
        .flat_map(|op| (0..objs.len()).map(move |xi| (op, xi)))
        .collect();
    let all: Vec<u64> = oracle.sat_codes(phi)?.to_vec();
    let sinks: Vec<Result<ObjSet>> = oracle
        .with_rows(&all, |cs, memo| {
            par_map_chunks(&pairs, 1, |chunk| {
                chunk
                    .iter()
                    .map(|&(op, xi)| {
                        op_sinks_kernel(&dims, &parts[xi], &mut |code| {
                            let next = cs.succ(memo, code, op);
                            if next == POISON {
                                Err(cs.poison_error(code, op))
                            } else {
                                Ok(next)
                            }
                        })
                    })
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect::<Vec<_>>()
        })
        .unwrap_or_else(|| {
            par_map_chunks(&pairs, 1, |chunk| {
                chunk
                    .iter()
                    .map(|&(op, xi)| {
                        op_sinks_kernel(&dims, &parts[xi], &mut |code| {
                            Ok(sys
                                .apply(OpId(op as u32), &State::decode(u, code))?
                                .encode(u))
                        })
                    })
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect()
        });
    for (&(op, xi), sinks) in pairs.iter().zip(sinks) {
        let x = objs[xi];
        for y in sinks?.iter() {
            if !q(x, y) {
                return Ok(ProofOutcome::Inapplicable(format!(
                    "operation δ{op} transmits {} ▷ {} violating {q_name}",
                    sys.universe().name(x),
                    sys.universe().name(y)
                )));
            }
        }
    }
    let mut cert = Certificate::new("Corollary 4-3", format!("∀x, y: x ▷φ y ⊃ {q_name}(x, y)"));
    cert.record(Fact::Autonomous);
    cert.record(Fact::Invariant);
    cert.record(Fact::ReflexiveTransitive(q_name.to_string()));
    cert.record(Fact::RelationRespected {
        relation: q_name.to_string(),
        checks: pairs.len(),
    });
    Ok(ProofOutcome::Proved(cert))
}

/// Corollary 6-5: for arbitrary (possibly non-invariant) φ and β ∉ A,
/// the Cor 5-6 disjunction checked over *every* reachable `[H]φ` proves
/// `¬A ▷φ β`.
pub fn prove_cor_6_5(sys: &System, phi: &Phi, a: &ObjSet, beta: ObjId) -> Result<ProofOutcome> {
    let oracle = Oracle::new(sys)?;
    prove_cor_6_5_with(&oracle, phi, a, beta)
}

/// [`prove_cor_6_5`] against a prepared [`Oracle`]: image enumeration and
/// the disjunction over all images share one compile.
pub fn prove_cor_6_5_with(
    oracle: &Oracle,
    phi: &Phi,
    a: &ObjSet,
    beta: ObjId,
) -> Result<ProofOutcome> {
    let sys = oracle.system();
    if a.contains(beta) {
        return Ok(ProofOutcome::Inapplicable("β ∈ A".into()));
    }
    let images = crate::after::reachable_images_with(oracle, phi)?;
    let mut cert = Certificate::new(
        "Corollary 6-5",
        format!(
            "¬ {} ▷φ {}",
            render_objset(sys, a),
            sys.universe().name(beta)
        ),
    );
    cert.record(Fact::Note(format!(
        "{} reachable [H]φ constraint sets enumerated",
        images.len()
    )));
    match disjunction(oracle, &images, a, beta, &mut cert)? {
        Ok(()) => Ok(ProofOutcome::Proved(cert)),
        Err(reason) => Ok(ProofOutcome::Inapplicable(reason)),
    }
}

/// Theorem 4-1 as a runtime check (for tests): for autonomous invariant φ,
/// `α ▷φ(H·H′) β ⊃ ∃m: α ▷φH m ∧ m ▷φH′ β`, verified over all splits of
/// all histories up to `max_len`.
pub fn check_theorem_4_1(
    sys: &System,
    phi: &Phi,
    alpha: ObjId,
    beta: ObjId,
    max_len: usize,
) -> Result<bool> {
    for h in crate::history::histories_up_to(sys.num_ops(), max_len) {
        let full =
            crate::depend::strongly_depends_after(sys, phi, &ObjSet::singleton(alpha), beta, &h)?;
        if full.is_none() {
            continue;
        }
        for split in 0..=h.len() {
            let (h1, h2) = h.split_at(split);
            let mut found = false;
            for m in sys.universe().objects() {
                let first = crate::depend::strongly_depends_after(
                    sys,
                    phi,
                    &ObjSet::singleton(alpha),
                    m,
                    &h1,
                )?;
                if first.is_none() {
                    continue;
                }
                let second = crate::depend::strongly_depends_after(
                    sys,
                    phi,
                    &ObjSet::singleton(m),
                    beta,
                    &h2,
                )?;
                if second.is_some() {
                    found = true;
                    break;
                }
            }
            if !found {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

/// Theorem 5-5 as a runtime check (for tests): for invariant φ, with
/// `M = { m | H(σ1).m ≠ H(σ2).m }`,
/// `σ1 (A ▷HH′ β) σ2  ⟺  σ1 (A ▷H M) σ2 ∧ H(σ1) (M ▷H′ β) H(σ2)`,
/// verified pointwise over all φ-pairs and all splits of histories up to
/// `max_len`.
pub fn check_theorem_5_5(
    sys: &System,
    phi: &Phi,
    a: &ObjSet,
    beta: ObjId,
    max_len: usize,
) -> Result<bool> {
    for h in crate::history::histories_up_to(sys.num_ops(), max_len) {
        for split in 0..=h.len() {
            let (h1, h2) = h.split_at(split);
            for class in crate::depend::classes(sys, phi, a)? {
                for i in 0..class.len() {
                    for j in (i + 1)..class.len() {
                        let s1 = &class[i];
                        let s2 = &class[j];
                        let m1 = sys.run(s1, &h1)?;
                        let m2 = sys.run(s2, &h1)?;
                        let m_set = m1.diff(&m2);
                        // Left side: β differs after the full history.
                        let lhs = sys.run(&m1, &h2)?.index(beta) != sys.run(&m2, &h2)?.index(beta);
                        // Right side: the mid states differ exactly at M
                        // (true by construction) and continue to differ at
                        // β over h2.
                        let rhs = if m_set.is_empty() {
                            false
                        } else {
                            sys.run(&m1, &h2)?.index(beta) != sys.run(&m2, &h2)?.index(beta)
                        };
                        if lhs != rhs {
                            return Ok(false);
                        }
                        // And the decomposed pair relations hold when the
                        // left side does: σ1 (A ▷h1 M) σ2 means the runs
                        // differ at every m ∈ M — immediate from the
                        // definition of M, but check it anyway.
                        if lhs {
                            for m in m_set.iter() {
                                if m1.index(m) == m2.index(m) {
                                    return Ok(false);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(true)
}

/// Theorem 6-3 as a runtime check (for tests): for any φ,
/// `A ▷φHH′ β ⊃ ∃M: A ▷φH M ∧ M ▷[H]φH′ β` — the intermediate step is
/// taken under the *evolved* constraint `[H]φ`.
pub fn check_theorem_6_3(
    sys: &System,
    phi: &Phi,
    a: &ObjSet,
    beta: ObjId,
    max_len: usize,
) -> Result<bool> {
    for h in crate::history::histories_up_to(sys.num_ops(), max_len) {
        for split in 0..=h.len() {
            let (h1, h2) = h.split_at(split);
            let full = crate::depend::strongly_depends_after(sys, phi, a, beta, &h)?;
            let Some(w) = full else { continue };
            // Take M as the difference set of the mid states of the
            // witness pair; Thm 6-4 says this particular M works.
            let m1 = sys.run(&w.sigma1, &h1)?;
            let m2 = sys.run(&w.sigma2, &h1)?;
            let m_set = m1.diff(&m2);
            if m_set.is_empty() {
                return Ok(false);
            }
            // A ▷φh1 M: the witness pair differs at every member of M.
            let fan = crate::depend::strongly_depends_set_after(sys, phi, a, &m_set, &h1)?;
            if fan.is_none() {
                return Ok(false);
            }
            // M ▷[h1]φ h2 β: the mid pair lies in [h1]φ and leads to a β
            // difference.
            let evolved = crate::after::after_history_phi(sys, phi, &h1)?;
            let cont = crate::depend::strongly_depends_after(sys, &evolved, &m_set, beta, &h2)?;
            if cont.is_none() {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::op::{Cmd, Op};
    use crate::universe::{Domain, Universe};

    /// Exact `A ▷φ β` verdict through the Query builder.
    fn exact_depends(
        sys: &System,
        phi: &Phi,
        a: &ObjSet,
        beta: crate::universe::ObjId,
    ) -> Option<crate::reach::DependsWitness> {
        crate::query::Query::new(phi.clone(), a.clone())
            .beta(beta)
            .run_on(sys)
            .unwrap()
            .into_witness()
    }

    /// δ: if m then β ← α, from §3.2.
    fn guarded_copy() -> System {
        let u = Universe::new(vec![
            ("alpha".into(), Domain::int_range(0, 3).unwrap()),
            ("beta".into(), Domain::int_range(0, 3).unwrap()),
            ("m".into(), Domain::boolean()),
        ])
        .unwrap();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let m = u.obj("m").unwrap();
        System::new(
            u,
            vec![Op::from_cmd(
                "copy",
                Cmd::when(Expr::var(m), Cmd::assign(b, Expr::var(a))),
            )],
        )
    }

    #[test]
    fn cor_4_2_proves_guarded_copy_blocked() {
        // φ(σ) ≡ ¬σ.m is autonomous and invariant (δ never writes m); no
        // operation then writes β, so ¬α ▷φ β.
        let sys = guarded_copy();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let m = u.obj("m").unwrap();
        let phi = Phi::expr(Expr::var(m).not());
        let out = prove_cor_4_2(&sys, &phi, a, b).unwrap();
        let cert = out.certificate().expect("should prove");
        assert!(cert.facts.contains(&Fact::Autonomous));
        // Cross-check against the exact oracle.
        assert!(exact_depends(&sys, &phi, &ObjSet::singleton(a), b).is_none());
    }

    #[test]
    fn cor_4_2_inapplicable_when_flow_exists() {
        let sys = guarded_copy();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let out = prove_cor_4_2(&sys, &Phi::True, a, b).unwrap();
        assert!(!out.is_proved());
        // And indeed the flow exists.
        assert!(exact_depends(&sys, &Phi::True, &ObjSet::singleton(a), b).is_some());
    }

    #[test]
    fn cor_4_2_rejects_non_autonomous_phi() {
        let sys = guarded_copy();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let phi = Phi::expr(Expr::var(a).eq(Expr::var(b)));
        let out = prove_cor_4_2(&sys, &phi, a, b).unwrap();
        assert_eq!(out.reason(), Some("φ is not autonomous"));
    }

    #[test]
    fn cor_5_6_handles_non_autonomous_invariant_phi() {
        // §5.5 system: δ1: (m1 ← α; m2 ← α); δ2: β ← m1, with the
        // invariant non-autonomous φ(σ) ≡ σ.m1 = σ.m2.
        let u = Universe::new(vec![
            ("alpha".into(), Domain::int_range(0, 1).unwrap()),
            ("beta".into(), Domain::int_range(0, 1).unwrap()),
            ("m1".into(), Domain::int_range(0, 1).unwrap()),
            ("m2".into(), Domain::int_range(0, 1).unwrap()),
        ])
        .unwrap();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let m1 = u.obj("m1").unwrap();
        let m2 = u.obj("m2").unwrap();
        let sys = System::new(
            u,
            vec![
                Op::from_cmd(
                    "d1",
                    Cmd::Seq(vec![
                        Cmd::assign(m1, Expr::var(a)),
                        Cmd::assign(m2, Expr::var(a)),
                    ]),
                ),
                Op::from_cmd("d2", Cmd::assign(b, Expr::var(m1))),
            ],
        );
        let phi = Phi::expr(Expr::var(m1).eq(Expr::var(m2)));
        assert!(classify::is_invariant(&sys, &phi).unwrap());
        assert!(!classify::is_autonomous(&sys, &phi).unwrap());
        // β does flow from α here, so the proof must fail…
        let out = prove_cor_5_6(&sys, &phi, &ObjSet::singleton(a), b).unwrap();
        assert!(!out.is_proved());
        // …but {β} is genuinely isolated as a source: nothing reads β.
        let out2 = prove_cor_5_6(&sys, &phi, &ObjSet::singleton(b), m1).unwrap();
        assert!(out2.is_proved(), "{:?}", out2.reason());
        assert!(exact_depends(&sys, &phi, &ObjSet::singleton(b), m1).is_none());
    }

    #[test]
    fn cor_5_6_requires_beta_not_in_a() {
        let sys = guarded_copy();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let out = prove_cor_5_6(&sys, &Phi::True, &ObjSet::singleton(a), a).unwrap();
        assert_eq!(out.reason(), Some("β ∈ A"));
    }

    #[test]
    fn cor_4_3_with_chain_relation() {
        // In the guarded-copy system with φ ≡ ¬m, the relation
        // q(x, y) = (x = y) ∨ (y = beta) is respected trivially since no op
        // moves information; a more meaningful use is in examples::pointer.
        let sys = guarded_copy();
        let u = sys.universe();
        let m = u.obj("m").unwrap();
        let phi = Phi::expr(Expr::var(m).not());
        let q = |x: ObjId, y: ObjId| x == y;
        let out = prove_cor_4_3(&sys, &phi, &q, "identity").unwrap();
        assert!(out.is_proved(), "{:?}", out.reason());
    }

    #[test]
    fn cor_4_3_rejects_non_transitive_relation() {
        let sys = guarded_copy();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let m = u.obj("m").unwrap();
        let phi = Phi::expr(Expr::var(m).not());
        // q relating a→b and b→m but not a→m is not transitive.
        let q = move |x: ObjId, y: ObjId| x == y || (x == a && y == b) || (x == b && y == m);
        let out = prove_cor_4_3(&sys, &phi, &q, "broken").unwrap();
        assert!(out.reason().unwrap().contains("not transitive"));
    }

    #[test]
    fn cor_6_5_handles_non_invariant_phi() {
        // §6.4 oscillator: δ: (β ← α; α ← -α), φ(σ) ≡ σ.α = 37.
        // φ is not invariant, but every [H]φ pins α to a constant, so no
        // information flows from α to β.
        let u = Universe::new(vec![
            ("alpha".into(), Domain::ints([-37, 37]).unwrap()),
            ("beta".into(), Domain::ints([-37, 0, 37]).unwrap()),
        ])
        .unwrap();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let sys = System::new(
            u,
            vec![Op::from_cmd(
                "osc",
                Cmd::Seq(vec![
                    Cmd::assign(b, Expr::var(a)),
                    Cmd::assign(a, Expr::var(a).neg()),
                ]),
            )],
        );
        let phi = Phi::expr(Expr::var(a).eq(Expr::int(37)));
        assert!(!classify::is_invariant(&sys, &phi).unwrap());
        let out = prove_cor_6_5(&sys, &phi, &ObjSet::singleton(a), b).unwrap();
        assert!(out.is_proved(), "{:?}", out.reason());
        assert!(exact_depends(&sys, &phi, &ObjSet::singleton(a), b).is_none());
        // Cor 5-6 is inapplicable here (φ not invariant).
        let weak = prove_cor_5_6(&sys, &phi, &ObjSet::singleton(a), b).unwrap();
        assert!(!weak.is_proved());
    }

    #[test]
    fn theorem_4_1_holds_on_guarded_copy() {
        let sys = guarded_copy();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let m = u.obj("m").unwrap();
        let phi = Phi::expr(Expr::var(m).not());
        assert!(check_theorem_4_1(&sys, &phi, a, b, 3).unwrap());
        assert!(check_theorem_4_1(&sys, &Phi::True, a, b, 3).unwrap());
    }

    #[test]
    fn shared_oracle_provers_match_free_functions() {
        // One Oracle discharging all four provers must compile exactly
        // once and agree with the per-call entry points.
        let sys = guarded_copy();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let m = u.obj("m").unwrap();
        let phi = Phi::expr(Expr::var(m).not());
        let oracle = Oracle::new(&sys).unwrap();
        let shared = [
            prove_cor_4_2_with(&oracle, &phi, a, b).unwrap(),
            prove_cor_5_6_with(&oracle, &phi, &ObjSet::singleton(a), b).unwrap(),
            prove_cor_6_5_with(&oracle, &phi, &ObjSet::singleton(a), b).unwrap(),
            prove_cor_4_3_with(&oracle, &phi, &|x, y| x == y, "identity").unwrap(),
        ];
        let free = [
            prove_cor_4_2(&sys, &phi, a, b).unwrap(),
            prove_cor_5_6(&sys, &phi, &ObjSet::singleton(a), b).unwrap(),
            prove_cor_6_5(&sys, &phi, &ObjSet::singleton(a), b).unwrap(),
            prove_cor_4_3(&sys, &phi, &|x, y| x == y, "identity").unwrap(),
        ];
        for (s, f) in shared.iter().zip(&free) {
            assert_eq!(s.is_proved(), f.is_proved());
            assert_eq!(
                s.certificate().map(|c| &c.facts),
                f.certificate().map(|c| &c.facts)
            );
        }
        assert_eq!(oracle.stats().compiles, 1);
    }
}
