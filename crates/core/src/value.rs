//! Object values.
//!
//! The paper's states are vectors of *objects*, each holding a value (§1.2).
//! Values may have internal structure (records with named fields, pointers
//! to other objects by name, access-right sets for the §1.3 matrix model);
//! that structure is "part of an interpretation", so it lives here in a
//! single dynamically-checked [`Value`] type rather than in the abstract
//! state machinery.

use core::fmt;

use crate::universe::ObjId;

/// A set of access rights, as in the §1.3 access-matrix model.
///
/// The paper's simple system uses three rights: `s` (subject), `r` (read)
/// and `w` (write). Five extra generic bits are available for richer matrix
/// models (e.g. grant/take variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Rights(pub u8);

impl Rights {
    /// The empty right set.
    pub const NONE: Rights = Rights(0);
    /// `s`: may execute operations (is a subject).
    pub const S: Rights = Rights(1);
    /// `r`: may read.
    pub const R: Rights = Rights(2);
    /// `w`: may write.
    pub const W: Rights = Rights(4);
    /// `g`: may grant rights it holds to others.
    pub const G: Rights = Rights(8);
    /// `c`: confinement marker used by the matrix substrate.
    pub const C: Rights = Rights(16);

    /// Union of two right sets.
    #[must_use]
    pub fn union(self, other: Rights) -> Rights {
        Rights(self.0 | other.0)
    }

    /// Intersection of two right sets.
    #[must_use]
    pub fn intersect(self, other: Rights) -> Rights {
        Rights(self.0 & other.0)
    }

    /// Removes `other`'s rights from `self`.
    #[must_use]
    pub fn minus(self, other: Rights) -> Rights {
        Rights(self.0 & !other.0)
    }

    /// Whether every right in `other` is present in `self`.
    pub fn has(self, other: Rights) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Rights {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "{{}}");
        }
        let mut out = String::new();
        for (bit, ch) in [
            (Rights::S, 's'),
            (Rights::R, 'r'),
            (Rights::W, 'w'),
            (Rights::G, 'g'),
            (Rights::C, 'c'),
        ] {
            if self.has(bit) {
                out.push(ch);
            }
        }
        // Any remaining generic bits are printed numerically.
        let known = Rights::S.0 | Rights::R.0 | Rights::W.0 | Rights::G.0 | Rights::C.0;
        let rest = self.0 & !known;
        if rest != 0 {
            out.push_str(&format!("+{rest:#x}"));
        }
        write!(f, "{{{out}}}")
    }
}

/// The value of an object in some state (σ.α in the paper's notation).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// The unit value, for objects that exist only to be pointed at.
    Unit,
    /// A boolean.
    Bool(bool),
    /// A (bounded) integer.
    Int(i64),
    /// The name of another object — a pointer, as in the §4.3 example.
    Name(ObjId),
    /// An access-right set — an access-matrix entry, as in §1.3.
    Rights(Rights),
    /// A record with positional fields; field names live in the object's
    /// [`crate::universe::Domain`]. Models "objects with internal structure"
    /// such as `x.data` / `x.ptr` (§4.3) or `m.left` / `m.right` (§4.6).
    Record(Vec<Value>),
}

impl Value {
    /// A short name for the value's kind, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Unit => "unit",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Name(_) => "name",
            Value::Rights(_) => "rights",
            Value::Record(_) => "record",
        }
    }

    /// Extracts a boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extracts an integer, if this is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Extracts an object name, if this is one.
    pub fn as_name(&self) -> Option<ObjId> {
        match self {
            Value::Name(n) => Some(*n),
            _ => None,
        }
    }

    /// Extracts a right set, if this is one.
    pub fn as_rights(&self) -> Option<Rights> {
        match self {
            Value::Rights(r) => Some(*r),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Name(n) => write!(f, "@{}", n.index()),
            Value::Rights(r) => write!(f, "{r}"),
            Value::Record(fields) => {
                write!(f, "(")?;
                for (i, v) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<Rights> for Value {
    fn from(r: Rights) -> Value {
        Value::Rights(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rights_algebra() {
        let srw = Rights::S.union(Rights::R).union(Rights::W);
        assert!(srw.has(Rights::R));
        assert!(srw.has(Rights::S.union(Rights::W)));
        assert!(!srw.has(Rights::G));
        assert_eq!(srw.minus(Rights::R), Rights::S.union(Rights::W));
        assert_eq!(srw.intersect(Rights::R.union(Rights::G)), Rights::R);
        assert!(Rights::NONE.is_empty());
    }

    #[test]
    fn rights_display() {
        assert_eq!(Rights::NONE.to_string(), "{}");
        assert_eq!(Rights::S.union(Rights::W).to_string(), "{sw}");
        assert_eq!(Rights(32).to_string(), "{+0x20}");
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_bool(), None);
        assert_eq!(Value::Rights(Rights::R).as_rights(), Some(Rights::R));
        assert_eq!(Value::Unit.kind(), "unit");
    }

    #[test]
    fn value_display() {
        let v = Value::Record(vec![Value::Int(1), Value::Bool(false)]);
        assert_eq!(v.to_string(), "(1, false)");
    }

    #[test]
    fn value_ordering_is_total() {
        let mut vals = [Value::Int(2), Value::Bool(true), Value::Int(1), Value::Unit];
        vals.sort();
        // Sorting must not panic, and equal values compare equal.
        assert_eq!(vals.len(), 4);
        assert_eq!(
            Value::Int(1).cmp(&Value::Int(1)),
            core::cmp::Ordering::Equal
        );
    }
}
