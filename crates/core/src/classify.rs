//! Semantic classification of constraints.
//!
//! The paper distinguishes several classes of constraints, each with its own
//! role in the theory:
//!
//! - **A-independent** (Def 3-1): φ in no way constrains the objects in A —
//!   required of solutions so they do not "cheat" by squeezing the source's
//!   variety (§3.2), and of the covers used by Separation of Variety.
//! - **A-strict** (Def 5-1): φ constrains *only* the objects in A.
//! - **A-autonomous** (Def 5-2 / Thm 5-1): φ splits into an A-strict part
//!   and an A-independent part; equivalently, Sat(φ) is closed under
//!   substitution at A.
//! - **autonomous** (Def 5-4, §2.6): φ is α-autonomous for every single
//!   object α; constrains each object independently of the others.
//! - **invariant**: every operation preserves φ — the hypothesis of the
//!   chapter-4/5 induction theorems.
//!
//! All checks here are exact, by enumeration of the finite state space. The
//! autonomy checks exploit the product characterization derived from
//! Thm 5-1: φ is A-autonomous iff Sat(φ) = proj_A(Sat) × proj_Ā(Sat).
//!
//! Enumeration works over packed state codes: a state's projection onto A
//! (or onto its complement) is summarised by the arithmetic key
//! `Σ_{α∈A} stride_α · digit_α(code)`, which is injective on projection
//! classes, so grouping needs only [`crate::fastmap`] integer containers —
//! no `State` is decoded until a witness is returned. The invariance check
//! additionally reads successor rows from a compiled [`Oracle`] when the
//! state space compiles, falling back to AST interpretation otherwise.

use crate::constraint::Phi;
use crate::error::Result;
use crate::fastmap::{U64Set, U64U64Map};
use crate::history::OpId;
use crate::oracle::Oracle;
use crate::state::State;
use crate::system::System;
use crate::universe::{proj_key, ObjSet};

/// Whether φ is A-independent (Def 3-1):
/// `∀σ1 =A= σ2: φ(σ1) = φ(σ2)`.
pub fn is_independent(sys: &System, phi: &Phi, a: &ObjSet) -> Result<bool> {
    Ok(independence_witness(sys, phi, a)?.is_none())
}

/// A pair of states violating A-independence, if any.
///
/// The witness is canonical: scanning states in code order, it is the
/// first (satisfying, violating) pair completed within one `=A=` class.
pub fn independence_witness(sys: &System, phi: &Phi, a: &ObjSet) -> Result<Option<(State, State)>> {
    // Group states by their projection outside A; φ must be constant on
    // each group. Groups are keyed by the arithmetic complement key.
    let u = sys.universe();
    let n = sys.state_count()?;
    let sat = phi.sat(sys)?;
    let dims = u.dims();
    let mut first_true = U64U64Map::new();
    let mut first_false = U64U64Map::new();
    for code in 0..n {
        let key = code - proj_key(&dims, a, code);
        if sat.contains(code) {
            if first_true.get(key).is_none() {
                first_true.insert(key, code);
            }
        } else if first_false.get(key).is_none() {
            first_false.insert(key, code);
        }
        if let (Some(t), Some(f)) = (first_true.get(key), first_false.get(key)) {
            return Ok(Some((State::decode(u, t), State::decode(u, f))));
        }
    }
    Ok(None)
}

/// Whether φ is A-strict (Def 5-1):
/// `∀σ1, σ2: σ1.A = σ2.A ⊃ φ(σ1) = φ(σ2)`.
pub fn is_strict(sys: &System, phi: &Phi, a: &ObjSet) -> Result<bool> {
    let n = sys.state_count()?;
    let sat = phi.sat(sys)?;
    let dims = sys.universe().dims();
    // Per `σ.A` projection class, a 2-bit mask: bit 0 = saw a satisfying
    // state, bit 1 = saw a violating one. Both ⇒ not strict.
    let mut seen = U64U64Map::new();
    for code in 0..n {
        let key = proj_key(&dims, a, code);
        let bit = if sat.contains(code) { 1 } else { 2 };
        let cur = seen.get(key).unwrap_or(0);
        if cur | bit == 3 {
            return Ok(false);
        }
        if cur | bit != cur {
            seen.insert(key, cur | bit);
        }
    }
    Ok(true)
}

/// Whether φ is A-autonomous (Def 5-2, via the Thm 5-1 substitution
/// characterization): `∀σ1, σ2 ∈ Sat(φ): φ(σ2 ←A σ1)`.
///
/// Checked through the product form: Sat(φ) must equal the full cross
/// product of its projection onto A and its projection onto the complement.
pub fn is_autonomous_relative(sys: &System, phi: &Phi, a: &ObjSet) -> Result<bool> {
    let sat = phi.sat(sys)?;
    let dims = sys.universe().dims();
    let mut proj_a = U64Set::new();
    let mut proj_c = U64Set::new();
    let mut sat_count: u128 = 0;
    for code in sat.iter() {
        sat_count += 1;
        let p = proj_key(&dims, a, code);
        proj_a.insert(p);
        proj_c.insert(code - p);
    }
    Ok(sat_count == (proj_a.len() as u128) * (proj_c.len() as u128))
}

/// Whether φ is autonomous (Def 5-4): α-autonomous for every object α.
///
/// Checked through the full product form: Sat(φ) must equal the product of
/// its per-object projections.
pub fn is_autonomous(sys: &System, phi: &Phi) -> Result<bool> {
    let u = sys.universe();
    let sat = phi.sat(sys)?;
    let dims = u.dims();
    let mut per_obj: Vec<Vec<bool>> = dims.iter().map(|&(_, d)| vec![false; d as usize]).collect();
    let mut sat_count: u128 = 0;
    for code in sat.iter() {
        sat_count += 1;
        for (seen, &(stride, dom)) in per_obj.iter_mut().zip(&dims) {
            seen[((code / stride) % dom) as usize] = true;
        }
    }
    if sat_count == 0 {
        // ff is vacuously autonomous (the substitution condition has no
        // witnesses).
        return Ok(true);
    }
    let product: u128 = per_obj
        .iter()
        .map(|s| s.iter().filter(|&&b| b).count() as u128)
        .product();
    Ok(sat_count == product)
}

/// Whether φ is invariant: `∀σ ∈ Sat(φ), ∀δ: φ(δ(σ))`.
pub fn is_invariant(sys: &System, phi: &Phi) -> Result<bool> {
    Ok(invariance_witness(sys, phi)?.is_none())
}

/// A `(state, op)` pair escaping φ, if φ is not invariant.
///
/// The witness is canonical: the first escaping pair in (state code,
/// operation index) order. Successors come from compiled transition rows
/// when the system compiles; the AST interpreter is the fallback.
pub fn invariance_witness(sys: &System, phi: &Phi) -> Result<Option<(State, OpId)>> {
    let oracle = Oracle::new(sys)?;
    invariance_witness_with(&oracle, phi)
}

/// [`is_invariant`] against a prepared [`Oracle`], sharing its compiled
/// tables with the caller's other queries.
pub(crate) fn is_invariant_with(oracle: &Oracle, phi: &Phi) -> Result<bool> {
    Ok(invariance_witness_with(oracle, phi)?.is_none())
}

/// [`invariance_witness`] against a prepared [`Oracle`].
pub(crate) fn invariance_witness_with(oracle: &Oracle, phi: &Phi) -> Result<Option<(State, OpId)>> {
    let sys = oracle.system();
    let u = sys.universe();
    let sat = phi.sat(sys)?;
    let codes: Vec<u64> = sat.iter().collect();
    if let Some(found) = oracle.with_rows(&codes, |cs, memo| {
        for &code in &codes {
            for op in 0..cs.num_ops() {
                let next = cs.succ(memo, code, op);
                if next == crate::compiled::POISON {
                    return Err(cs.poison_error(code, op));
                }
                if !sat.contains(next) {
                    return Ok(Some((code, op)));
                }
            }
        }
        Ok(None)
    }) {
        return Ok(found?.map(|(code, op)| (State::decode(u, code), OpId(op as u32))));
    }
    // Interpreted fallback: the state space exceeds the compiled range.
    for sigma in sys.states()? {
        if !phi.holds(sys, &sigma)? {
            continue;
        }
        for op in sys.op_ids() {
            let next = sys.apply(op, &sigma)?;
            if !phi.holds(sys, &next)? {
                return Ok(Some((sigma, op)));
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::op::{Cmd, Op};
    use crate::universe::{Domain, Universe};

    /// Universe with α, β, m over small int domains (plus a flag).
    fn sys() -> System {
        let u = Universe::new(vec![
            ("alpha".into(), Domain::int_range(0, 3).unwrap()),
            ("beta".into(), Domain::int_range(0, 3).unwrap()),
            ("m".into(), Domain::int_range(0, 3).unwrap()),
        ])
        .unwrap();
        let b = u.obj("beta").unwrap();
        let a = u.obj("alpha").unwrap();
        System::new(u, vec![Op::from_cmd("copy", Cmd::assign(b, Expr::var(a)))])
    }

    #[test]
    fn paper_autonomy_examples_sec_2_6() {
        // φ(σ) ≡ σ.α ≤ 1 ∧ σ.β ≤ 1 is autonomous.
        let sys = sys();
        let u = sys.universe();
        let a = Expr::var(u.obj("alpha").unwrap());
        let b = Expr::var(u.obj("beta").unwrap());
        let phi1 = Phi::expr(a.clone().le(Expr::int(1)).and(b.clone().le(Expr::int(1))));
        assert!(is_autonomous(&sys, &phi1).unwrap());

        // φ(σ) ≡ σ.β = σ.α is non-autonomous.
        let phi2 = Phi::expr(b.clone().eq(a.clone()));
        assert!(!is_autonomous(&sys, &phi2).unwrap());

        // φ(σ) ≡ σ.α ≤ 1 ⊃ σ.β = 2 is non-autonomous.
        let phi3 = Phi::expr(
            a.clone()
                .le(Expr::int(1))
                .implies(b.clone().eq(Expr::int(2))),
        );
        assert!(!is_autonomous(&sys, &phi3).unwrap());

        // tt and ff are autonomous.
        assert!(is_autonomous(&sys, &Phi::True).unwrap());
        assert!(is_autonomous(&sys, &Phi::False).unwrap());
    }

    #[test]
    fn relative_autonomy_sec_5_3() {
        // φ(σ) ≡ σ.α = σ.β is {α,β}-autonomous but not {α}-autonomous.
        let sys = sys();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let phi = Phi::expr(Expr::var(a).eq(Expr::var(b)));
        let ab = ObjSet::from_iter([a, b]);
        assert!(is_autonomous_relative(&sys, &phi, &ab).unwrap());
        assert!(!is_autonomous_relative(&sys, &phi, &ObjSet::singleton(a)).unwrap());
        // …and m-autonomous for the unrelated object m (§5.4).
        let m = u.obj("m").unwrap();
        assert!(is_autonomous_relative(&sys, &phi, &ObjSet::singleton(m)).unwrap());
    }

    #[test]
    fn independence_def_3_1() {
        // φ(σ) ≡ σ.m = 0 is {α}-independent but not {m}-independent.
        let sys = sys();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let m = u.obj("m").unwrap();
        let phi = Phi::expr(Expr::var(m).eq(Expr::int(0)));
        assert!(is_independent(&sys, &phi, &ObjSet::singleton(a)).unwrap());
        assert!(!is_independent(&sys, &phi, &ObjSet::singleton(m)).unwrap());
        let w = independence_witness(&sys, &phi, &ObjSet::singleton(m))
            .unwrap()
            .unwrap();
        // The witness differs only at m and disagrees on φ.
        assert!(w.0.eq_except(&w.1, &ObjSet::singleton(m)));
    }

    #[test]
    fn strictness_def_5_1() {
        let sys = sys();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let phi = Phi::expr(Expr::var(a).eq(Expr::var(b)));
        let ab = ObjSet::from_iter([a, b]);
        assert!(is_strict(&sys, &phi, &ab).unwrap());
        assert!(!is_strict(&sys, &phi, &ObjSet::singleton(a)).unwrap());
        // tt is A-strict for every A (it constrains nothing).
        assert!(is_strict(&sys, &Phi::True, &ObjSet::empty()).unwrap());
    }

    #[test]
    fn a_autonomous_decomposition_matches_def_5_2() {
        // φ ≡ (α = β) ∧ (m ≤ 1): {α,β}-strict part ∧ {α,β}-independent part.
        let sys = sys();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let m = u.obj("m").unwrap();
        let phi = Phi::expr(
            Expr::var(a)
                .eq(Expr::var(b))
                .and(Expr::var(m).le(Expr::int(1))),
        );
        let ab = ObjSet::from_iter([a, b]);
        assert!(is_autonomous_relative(&sys, &phi, &ab).unwrap());
        assert!(is_autonomous_relative(&sys, &phi, &ObjSet::singleton(m)).unwrap());
        assert!(!is_autonomous(&sys, &phi).unwrap());
    }

    #[test]
    fn invariance() {
        // Under δ: β ← α, the constraint α = β is invariant; β = 0 is not.
        let sys = sys();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let eq = Phi::expr(Expr::var(a).eq(Expr::var(b)));
        assert!(is_invariant(&sys, &eq).unwrap());
        let b0 = Phi::expr(Expr::var(b).eq(Expr::int(0)));
        assert!(!is_invariant(&sys, &b0).unwrap());
        let w = invariance_witness(&sys, &b0).unwrap().unwrap();
        assert_eq!(w.1, crate::history::OpId(0));
        // tt is always invariant.
        assert!(is_invariant(&sys, &Phi::True).unwrap());
    }

    #[test]
    fn substitution_characterization_thm_5_1() {
        // Cross-check the product characterization against the literal
        // Thm 5-1 condition on a non-trivial φ.
        let sys = sys();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let phi = Phi::expr(Expr::var(a).eq(Expr::var(b)));
        for set in [
            ObjSet::from_iter([a, b]),
            ObjSet::singleton(a),
            ObjSet::singleton(u.obj("m").unwrap()),
        ] {
            let fast = is_autonomous_relative(&sys, &phi, &set).unwrap();
            // Literal check: ∀σ1,σ2∈Sat: φ(σ2 ←A σ1).
            let sat: Vec<_> = sys
                .states()
                .unwrap()
                .filter(|s| phi.holds(&sys, s).unwrap())
                .collect();
            let literal = sat.iter().all(|s1| {
                sat.iter()
                    .all(|s2| phi.holds(&sys, &s2.substitute(&set, s1)).unwrap())
            });
            assert_eq!(fast, literal, "mismatch for {set:?}");
        }
    }

    /// Satellite check for the fastmap rewrite: every classification and —
    /// crucially — every *witness* matches the straightforward
    /// `HashMap<Vec<u32>, _>` reference implementation the module used
    /// before arithmetic projection keys.
    #[test]
    fn fastmap_kernels_match_reference_witnesses() {
        use std::collections::{HashMap, HashSet};

        fn reference_independence_witness(
            sys: &System,
            phi: &Phi,
            a: &ObjSet,
        ) -> Option<(State, State)> {
            let mut groups: HashMap<Vec<u32>, (Option<State>, Option<State>)> = HashMap::new();
            for sigma in sys.states().unwrap() {
                let key = sigma.project_complement(a);
                let holds = phi.holds(sys, &sigma).unwrap();
                let entry = groups.entry(key).or_default();
                let slot = if holds { &mut entry.0 } else { &mut entry.1 };
                if slot.is_none() {
                    *slot = Some(sigma);
                }
                if let (Some(t), Some(f)) = (&entry.0, &entry.1) {
                    return Some((t.clone(), f.clone()));
                }
            }
            None
        }

        fn reference_is_strict(sys: &System, phi: &Phi, a: &ObjSet) -> bool {
            let mut groups: HashMap<Vec<u32>, (bool, bool)> = HashMap::new();
            for sigma in sys.states().unwrap() {
                let key = sigma.project(a);
                let entry = groups.entry(key).or_default();
                if phi.holds(sys, &sigma).unwrap() {
                    entry.0 = true;
                } else {
                    entry.1 = true;
                }
                if entry.0 && entry.1 {
                    return false;
                }
            }
            true
        }

        fn reference_autonomous_relative(sys: &System, phi: &Phi, a: &ObjSet) -> bool {
            let mut pa: HashSet<Vec<u32>> = HashSet::new();
            let mut pc: HashSet<Vec<u32>> = HashSet::new();
            let mut count: u128 = 0;
            for sigma in sys.states().unwrap() {
                if phi.holds(sys, &sigma).unwrap() {
                    count += 1;
                    pa.insert(sigma.project(a));
                    pc.insert(sigma.project_complement(a));
                }
            }
            count == (pa.len() as u128) * (pc.len() as u128)
        }

        fn reference_invariance_witness(sys: &System, phi: &Phi) -> Option<(State, OpId)> {
            for sigma in sys.states().unwrap() {
                if !phi.holds(sys, &sigma).unwrap() {
                    continue;
                }
                for op in sys.op_ids() {
                    let next = sys.apply(op, &sigma).unwrap();
                    if !phi.holds(sys, &next).unwrap() {
                        return Some((sigma, op));
                    }
                }
            }
            None
        }

        let sys = sys();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let m = u.obj("m").unwrap();
        let phis = [
            Phi::True,
            Phi::False,
            Phi::expr(Expr::var(a).eq(Expr::var(b))),
            Phi::expr(Expr::var(m).eq(Expr::int(0))),
            Phi::expr(
                Expr::var(b)
                    .eq(Expr::int(0))
                    .or(Expr::var(m).lt(Expr::var(a))),
            ),
            Phi::expr(
                Expr::var(a)
                    .le(Expr::int(1))
                    .implies(Expr::var(b).eq(Expr::int(2))),
            ),
        ];
        let sets = [
            ObjSet::empty(),
            ObjSet::singleton(a),
            ObjSet::singleton(m),
            ObjSet::from_iter([a, b]),
            ObjSet::from_iter([a, b, m]),
        ];
        for phi in &phis {
            for set in &sets {
                assert_eq!(
                    independence_witness(&sys, phi, set).unwrap(),
                    reference_independence_witness(&sys, phi, set),
                    "independence witness diverged for {phi:?} / {set:?}"
                );
                assert_eq!(
                    is_strict(&sys, phi, set).unwrap(),
                    reference_is_strict(&sys, phi, set),
                    "strictness diverged for {phi:?} / {set:?}"
                );
                assert_eq!(
                    is_autonomous_relative(&sys, phi, set).unwrap(),
                    reference_autonomous_relative(&sys, phi, set),
                    "relative autonomy diverged for {phi:?} / {set:?}"
                );
            }
            assert_eq!(
                invariance_witness(&sys, phi).unwrap(),
                reference_invariance_witness(&sys, phi),
                "invariance witness diverged for {phi:?}"
            );
        }
    }
}
