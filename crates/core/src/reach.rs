//! Strong dependency over *all* histories: `A ▷φ β` (Defs 2-7, 2-11, 5-7).
//!
//! Deciding `∃H. A ▷φH β` looks like an unbounded search, but for finite
//! systems it is exactly a reachability question on the *self-composition*
//! of the system: run two copies in lockstep from a pair of φ-states that
//! differ only at A, and ask whether a pair differing at β is reachable.
//! This module implements that product-automaton BFS, with witness
//! reconstruction (the actual history H and state pair).
//!
//! The same search underlies [`sinks`] (all β reachable from a source set,
//! i.e. one row of the §3.6 worth measure) and the set-target variant of
//! Def 5-7.

use std::collections::{HashMap, VecDeque};

use crate::constraint::Phi;
use crate::error::Result;
use crate::history::{History, OpId};
use crate::state::State;
use crate::system::System;
use crate::universe::{ObjId, ObjSet, Universe};

/// A witness that `A ▷φ β`: the history and initial state pair.
#[derive(Debug, Clone)]
pub struct DependsWitness {
    /// The history transmitting the variety.
    pub history: History,
    /// First initial state (satisfies φ).
    pub sigma1: State,
    /// Second initial state (satisfies φ, differs from `sigma1` only at A).
    pub sigma2: State,
}

/// Extracts the domain index of `obj` from an encoded state, without
/// materializing the full state.
fn obj_index_of_code(u: &Universe, code: u64, obj: ObjId) -> u32 {
    let stride = u.stride(obj) as u64;
    let dom = u.domain(obj).size() as u64;
    ((code / stride) % dom) as u32
}

/// Canonically ordered pair of encoded states.
type Pair = (u64, u64);

fn canon(a: u64, b: u64) -> Pair {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// The initial pair frontier: all unordered pairs of distinct φ-states that
/// differ only at A.
fn initial_pairs(sys: &System, phi: &Phi, a: &ObjSet) -> Result<Vec<Pair>> {
    let u = sys.universe();
    let mut out = Vec::new();
    for class in crate::depend::classes(sys, phi, a)? {
        let codes: Vec<u64> = class.iter().map(|s| s.encode(u)).collect();
        for i in 0..codes.len() {
            for j in (i + 1)..codes.len() {
                out.push(canon(codes[i], codes[j]));
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

/// Internal BFS over the pair graph. Calls `found` on every visited pair;
/// when `found` returns `true` the search stops and the witness (history and
/// initial pair) is reconstructed.
fn pair_bfs(
    sys: &System,
    phi: &Phi,
    a: &ObjSet,
    mut found: impl FnMut(&Universe, Pair) -> bool,
) -> Result<Option<DependsWitness>> {
    let u = sys.universe();
    let start = initial_pairs(sys, phi, a)?;
    // parent: pair -> (predecessor pair, op applied). Roots map to None.
    let mut parent: HashMap<Pair, Option<(Pair, OpId)>> = HashMap::new();
    let mut queue: VecDeque<Pair> = VecDeque::new();
    for p in start {
        if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(p) {
            e.insert(None);
            queue.push_back(p);
        }
    }
    let reconstruct = |parent: &HashMap<Pair, Option<(Pair, OpId)>>, mut cur: Pair| {
        let mut ops = Vec::new();
        loop {
            match parent[&cur] {
                None => break,
                Some((prev, op)) => {
                    ops.push(op);
                    cur = prev;
                }
            }
        }
        ops.reverse();
        (cur, History::from_ops(ops))
    };
    while let Some(pair) = queue.pop_front() {
        if found(u, pair) {
            let (root, history) = reconstruct(&parent, pair);
            return Ok(Some(DependsWitness {
                history,
                sigma1: State::decode(u, root.0),
                sigma2: State::decode(u, root.1),
            }));
        }
        let s1 = State::decode(u, pair.0);
        let s2 = State::decode(u, pair.1);
        for op in sys.op_ids() {
            let n1 = sys.apply(op, &s1)?.encode(u);
            let n2 = sys.apply(op, &s2)?.encode(u);
            if n1 == n2 {
                // Once the two runs coincide they stay equal forever
                // (operations are deterministic): no future difference at β
                // can arise from this branch.
                continue;
            }
            let next = canon(n1, n2);
            if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(next) {
                e.insert(Some((pair, op)));
                queue.push_back(next);
            }
        }
    }
    Ok(None)
}

/// Decides `A ▷φ β` (Def 2-11): is there *any* history over which β
/// strongly depends on A given φ? Exact; returns a witness if so.
///
/// # Examples
///
/// ```
/// use sd_core::{examples, reach, ObjSet, Phi, Expr};
///
/// // δ: if m then β ← α — a flow exists, until φ pins m to false.
/// let sys = examples::guarded_copy_system(2)?;
/// let u = sys.universe();
/// let (alpha, beta, m) = (u.obj("alpha")?, u.obj("beta")?, u.obj("m")?);
/// let src = ObjSet::singleton(alpha);
/// assert!(reach::depends(&sys, &Phi::True, &src, beta)?.is_some());
/// let phi = Phi::expr(Expr::var(m).not());
/// assert!(reach::depends(&sys, &phi, &src, beta)?.is_none());
/// # Ok::<(), sd_core::Error>(())
/// ```
pub fn depends(sys: &System, phi: &Phi, a: &ObjSet, beta: ObjId) -> Result<Option<DependsWitness>> {
    pair_bfs(sys, phi, a, |u, (c1, c2)| {
        obj_index_of_code(u, c1, beta) != obj_index_of_code(u, c2, beta)
    })
}

/// Decides the set-target relation `A ▷φ B` (Def 5-7): some history leads
/// the pair to values differing at *every* object of B.
pub fn depends_set(
    sys: &System,
    phi: &Phi,
    a: &ObjSet,
    b: &ObjSet,
) -> Result<Option<DependsWitness>> {
    if b.is_empty() {
        return Ok(None);
    }
    pair_bfs(sys, phi, a, |u, (c1, c2)| {
        b.iter()
            .all(|obj| obj_index_of_code(u, c1, obj) != obj_index_of_code(u, c2, obj))
    })
}

/// All sinks of a source set: `{ β | A ▷φ β }` — one row of the §3.6 worth
/// measure, computed with a single exhaustive pair-BFS.
pub fn sinks(sys: &System, phi: &Phi, a: &ObjSet) -> Result<ObjSet> {
    let u = sys.universe();
    let all: Vec<ObjId> = u.objects().collect();
    let mut out = ObjSet::empty();
    // Visit every reachable pair; collect every object at which some pair
    // differs. `found` never returns true, so the BFS is exhaustive.
    pair_bfs(sys, phi, a, |u, (c1, c2)| {
        for &obj in &all {
            if !out.contains(obj) && obj_index_of_code(u, c1, obj) != obj_index_of_code(u, c2, obj)
            {
                out.insert(obj);
            }
        }
        false
    })?;
    Ok(out)
}

/// Bounded variant of [`depends`]: only histories of length ≤ `max_len`.
///
/// Used by tests to cross-check the BFS against brute-force enumeration.
pub fn depends_bounded(
    sys: &System,
    phi: &Phi,
    a: &ObjSet,
    beta: ObjId,
    max_len: usize,
) -> Result<Option<DependsWitness>> {
    for h in crate::history::histories_up_to(sys.num_ops(), max_len) {
        if let Some(w) = crate::depend::strongly_depends_after(sys, phi, a, beta, &h)? {
            return Ok(Some(DependsWitness {
                history: h,
                sigma1: w.sigma1,
                sigma2: w.sigma2,
            }));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::op::{Cmd, Op};
    use crate::universe::{Domain, Universe};

    /// §3.3 system: δ1: if flag then β ← α else β ← 0;
    /// δ2: (flag ← tt; α ← x).
    fn flag_sys() -> System {
        let u = Universe::new(vec![
            ("alpha".into(), Domain::int_range(0, 2).unwrap()),
            ("beta".into(), Domain::int_range(0, 2).unwrap()),
            ("flag".into(), Domain::boolean()),
            ("x".into(), Domain::int_range(0, 2).unwrap()),
        ])
        .unwrap();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let flag = u.obj("flag").unwrap();
        let x = u.obj("x").unwrap();
        System::new(
            u,
            vec![
                Op::from_cmd(
                    "d1",
                    Cmd::If(
                        Expr::var(flag),
                        Box::new(Cmd::assign(b, Expr::var(a))),
                        Box::new(Cmd::assign(b, Expr::int(0))),
                    ),
                ),
                Op::from_cmd(
                    "d2",
                    Cmd::Seq(vec![
                        Cmd::assign(flag, Expr::bool(true)),
                        Cmd::assign(a, Expr::var(x)),
                    ]),
                ),
            ],
        )
    }

    #[test]
    fn initial_constraint_not_invariant_sec_3_3() {
        // φ(σ) ≡ ¬σ.flag solves ¬α ▷φ β even though δ2 later sets the
        // flag — by then δ2 has overwritten α's initial variety.
        let sys = flag_sys();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let flag = u.obj("flag").unwrap();
        let phi = Phi::expr(Expr::var(flag).not());
        assert!(depends(&sys, &phi, &ObjSet::singleton(a), b)
            .unwrap()
            .is_none());
        // Without the constraint there is a flow.
        let w = depends(&sys, &Phi::True, &ObjSet::singleton(a), b)
            .unwrap()
            .unwrap();
        // Replay the witness to double-check it.
        let o1 = sys.run(&w.sigma1, &w.history).unwrap();
        let o2 = sys.run(&w.sigma2, &w.history).unwrap();
        assert_ne!(o1.index(b), o2.index(b));
        assert!(w.sigma1.eq_except(&w.sigma2, &ObjSet::singleton(a)));
    }

    #[test]
    fn bfs_agrees_with_bounded_enumeration() {
        let sys = flag_sys();
        let u = sys.universe();
        let b = u.obj("beta").unwrap();
        for src in ["alpha", "flag", "x"] {
            let a = ObjSet::singleton(u.obj(src).unwrap());
            for phi in [
                Phi::True,
                Phi::expr(Expr::var(u.obj("flag").unwrap()).not()),
            ] {
                let exact = depends(&sys, &phi, &a, b).unwrap().is_some();
                let brute = depends_bounded(&sys, &phi, &a, b, 4).unwrap().is_some();
                // Histories of length ≤ 4 are enough in this tiny system.
                assert_eq!(exact, brute, "mismatch for source {src}");
            }
        }
    }

    #[test]
    fn sinks_row() {
        let sys = flag_sys();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let x = u.obj("x").unwrap();
        let from_x = sinks(&sys, &Phi::True, &ObjSet::singleton(x)).unwrap();
        // x flows to α (δ2), then to β (δ1), and stays in x.
        assert!(from_x.contains(x) && from_x.contains(a) && from_x.contains(b));
        // β never flows anywhere else.
        let from_b = sinks(&sys, &Phi::True, &ObjSet::singleton(b)).unwrap();
        assert_eq!(from_b, ObjSet::singleton(b));
    }

    #[test]
    fn depends_set_needs_simultaneous_difference() {
        let sys = flag_sys();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        // α reaches {α, β} simultaneously (before δ2 destroys α).
        let ab = ObjSet::from_iter([a, b]);
        assert!(depends_set(&sys, &Phi::True, &ObjSet::singleton(a), &ab)
            .unwrap()
            .is_some());
        assert!(
            depends_set(&sys, &Phi::True, &ObjSet::singleton(a), &ObjSet::empty())
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn witness_history_is_minimal_length() {
        // BFS explores by increasing depth, so the witness history is as
        // short as possible.
        let sys = flag_sys();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let w = depends(&sys, &Phi::True, &ObjSet::singleton(a), b)
            .unwrap()
            .unwrap();
        assert_eq!(w.history.len(), 1, "flag=true states allow a 1-step flow");
    }
}
