//! Strong dependency over *all* histories: `A ▷φ β` (Defs 2-7, 2-11, 5-7).
//!
//! Deciding `∃H. A ▷φH β` looks like an unbounded search, but for finite
//! systems it is exactly a reachability question on the *self-composition*
//! of the system: run two copies in lockstep from a pair of φ-states that
//! differ only at A, and ask whether a pair differing at β is reachable.
//! This module implements that product-automaton BFS, with witness
//! reconstruction (the actual history H and state pair).
//!
//! Two engines run the same search (selected by [`Engine`]):
//!
//! - **Interpreted** — the reference implementation: every pair expansion
//!   decodes both states, walks the operation ASTs, and re-encodes.
//! - **Compiled** — the [`crate::compiled`] tables: the BFS runs over
//!   packed `u64` pair codes only, the visited structure is a flat
//!   [`BitSet`] (falling back to a hash set above
//!   [`CompileBudget::max_dense_pair_bits`]), and each frontier level is
//!   expanded in parallel on scoped threads. Candidate levels are merged
//!   sequentially in frontier order, so discovery order — and therefore
//!   the reconstructed witness and its minimal length — is identical to
//!   the interpreted engine's.
//!
//! Both engines check the goal when a pair is *discovered* (inserted into
//! the visited structure), not when it is dequeued, and both expand pairs
//! in the same frontier × operation order. They are therefore
//! observationally identical — same verdicts, same minimal witnesses, the
//! same [`SearchStats`] counts, and the same first error on invalid
//! systems.
//!
//! The same search underlies sink queries (all β reachable from a source
//! set, i.e. one row of the §3.6 worth measure) and batched matrix sweeps
//! over a single compiled system. The public entry point is the
//! [`crate::query::Query`] builder — one-shot runs
//! ([`crate::query::Query::run_on`]) construct a short-lived
//! [`crate::oracle::Oracle`] per call; hold an `Oracle` yourself and use
//! [`crate::query::Query::run`] to amortise the compile and Sat(φ)
//! enumeration across many queries. The free functions in this module
//! ([`depends`], [`sinks`], …) are deprecated thin wrappers over the
//! builder. Both engines report [`QueryEvent`]s (BFS levels, memo-row
//! reuse, witnesses) to an attached [`crate::telemetry::Sink`].

use std::collections::{HashMap, VecDeque};

use crate::bitset::BitSet;
use crate::compiled::{
    par_map_chunks, CompileBudget, CompiledSystem, Engine, SparseMemo, TableKind, POISON,
};
use crate::constraint::Phi;
use crate::depend::SatPartition;
use crate::error::{Error, Result};
use crate::fastmap::U64Set;
use crate::history::{History, OpId};
use crate::query::Query;
use crate::state::State;
use crate::system::System;
use crate::telemetry::{QueryEvent, Trace};
use crate::universe::{ObjId, ObjSet, Universe};

/// A witness that `A ▷φ β`: the history and initial state pair.
#[derive(Debug, Clone)]
pub struct DependsWitness {
    /// The history transmitting the variety.
    pub history: History,
    /// First initial state (satisfies φ).
    pub sigma1: State,
    /// Second initial state (satisfies φ, differs from `sigma1` only at A).
    pub sigma2: State,
}

/// Diagnostics from one pair search.
///
/// `visited_pairs` counts the distinct canonical pairs *discovered*.
/// Every engine checks the goal at discovery time and stops immediately,
/// so the count is engine-independent on early-exit searches just as on
/// exhaustive ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchStats {
    /// Which engine ran: `"interpreted"`, `"compiled-dense"` or
    /// `"compiled-sparse"`.
    pub engine: &'static str,
    /// Distinct canonical state pairs discovered.
    pub visited_pairs: u64,
    /// Deepest BFS level reached (= witness history length when the
    /// search stopped at a goal pair).
    pub levels: u32,
}

/// Caller-imposed cut-offs on one pair search: a visited-pair budget
/// and/or a wall-clock deadline. The default imposes neither.
///
/// Both cut-offs yield *structured* errors ([`Error::BudgetExhausted`],
/// [`Error::DeadlineExceeded`]) rather than partial answers, so a
/// serving layer can refuse work deterministically. The budget is
/// engine-independent: both engines discover pairs in the same order,
/// so they exhaust at the same pair. The deadline is checked once per
/// BFS level (or per enumerated history for bounded queries), bounding
/// overshoot by a single level's expansion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchLimits {
    /// Maximum distinct pairs the search may discover. A pair that
    /// satisfies the goal is always reported, even as the last one in
    /// budget.
    pub max_pairs: Option<u64>,
    /// Wall-clock deadline for the search.
    pub deadline: Option<std::time::Instant>,
}

impl SearchLimits {
    /// No limits: run to completion.
    pub const NONE: SearchLimits = SearchLimits {
        max_pairs: None,
        deadline: None,
    };

    /// Whether any cut-off is configured.
    pub fn is_none(&self) -> bool {
        self.max_pairs.is_none() && self.deadline.is_none()
    }

    #[inline]
    fn check_deadline(&self) -> Result<()> {
        match self.deadline {
            Some(d) if std::time::Instant::now() >= d => Err(Error::DeadlineExceeded),
            _ => Ok(()),
        }
    }

    #[inline]
    fn check_pairs(&self, visited: u64) -> Result<()> {
        match self.max_pairs {
            Some(limit) if visited > limit => Err(Error::BudgetExhausted {
                visited_pairs: visited,
                limit,
            }),
            _ => Ok(()),
        }
    }
}

/// Canonically ordered pair of encoded states.
type Pair = (u64, u64);

fn canon(a: u64, b: u64) -> Pair {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// The initial pair frontier: all unordered pairs of distinct φ-states
/// that differ only at A, in ascending order. Classes are disjoint and
/// internally ascending, so the pairs are already canonical and
/// duplicate-free.
fn initial_pairs(part: &SatPartition) -> Vec<Pair> {
    let mut out = Vec::new();
    for class in part.classes() {
        for (i, &c1) in class.iter().enumerate() {
            for &c2 in &class[i + 1..] {
                out.push((c1, c2));
            }
        }
    }
    out.sort_unstable();
    out
}

/// Bumps the pair count for one BFS depth (instrumented searches only).
fn bump_depth(counts: &mut Vec<u64>, depth: usize) {
    if counts.len() <= depth {
        counts.resize(depth + 1, 0);
    }
    counts[depth] += 1;
}

/// Interpreted reference BFS over the pair graph. Calls `found` on every
/// pair as it is *discovered* (roots in ascending order, then candidates
/// in frontier × operation order — the same order the compiled merge
/// uses); when `found` returns `true` the search stops and the witness is
/// reconstructed.
pub(crate) fn interpreted_search(
    sys: &System,
    part: &SatPartition,
    limits: &SearchLimits,
    trace: &mut Trace<'_>,
    mut found: impl FnMut(u64, u64) -> bool,
) -> Result<(Option<DependsWitness>, SearchStats)> {
    let u = sys.universe();
    let num_ops = sys.num_ops() as u64;
    let tracing = trace.sink.is_some();
    // Pairs discovered per depth, maintained only when a sink is
    // attached: all of depth d is discovered before the first depth-d
    // pair is dequeued, so the count is the level's frontier size.
    let mut depth_counts: Vec<u64> = Vec::new();
    let mut last_level: i64 = -1;
    // parent: pair -> (predecessor pair, op applied). Roots map to None.
    let mut parent: HashMap<Pair, Option<(Pair, OpId)>> = HashMap::new();
    let mut queue: VecDeque<(Pair, u32)> = VecDeque::new();
    let reconstruct = |parent: &HashMap<Pair, Option<(Pair, OpId)>>, mut cur: Pair| {
        let mut ops = Vec::new();
        loop {
            match parent[&cur] {
                None => break,
                Some((prev, op)) => {
                    ops.push(op);
                    cur = prev;
                }
            }
        }
        ops.reverse();
        (cur, History::from_ops(ops))
    };
    let witness = |parent: &HashMap<Pair, Option<(Pair, OpId)>>, pair: Pair| {
        let (root, history) = reconstruct(parent, pair);
        DependsWitness {
            history,
            sigma1: State::decode(u, root.0),
            sigma2: State::decode(u, root.1),
        }
    };
    let mut levels = 0u32;
    limits.check_deadline()?;
    for p in initial_pairs(part) {
        if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(p) {
            e.insert(None);
            if tracing {
                bump_depth(&mut depth_counts, 0);
            }
            if found(p.0, p.1) {
                let w = witness(&parent, p);
                let stats = SearchStats {
                    engine: "interpreted",
                    visited_pairs: parent.len() as u64,
                    levels,
                };
                trace.emit(|| QueryEvent::Witness { length: levels });
                return Ok((Some(w), stats));
            }
            limits.check_pairs(parent.len() as u64)?;
            queue.push_back((p, 0));
        }
    }
    // Deadline granularity: once per BFS depth, matching the compiled
    // engine's per-level check.
    let mut deadline_depth: i64 = -1;
    while let Some((pair, depth)) = queue.pop_front() {
        if i64::from(depth) > deadline_depth {
            deadline_depth = i64::from(depth);
            limits.check_deadline()?;
        }
        if tracing && i64::from(depth) > last_level {
            last_level = i64::from(depth);
            trace.emit(|| QueryEvent::BfsLevel {
                level: depth,
                frontier: depth_counts[depth as usize],
                visited: parent.len() as u64,
            });
        }
        trace.counters.expansions += num_ops;
        let s1 = State::decode(u, pair.0);
        let s2 = State::decode(u, pair.1);
        for op in sys.op_ids() {
            let n1 = sys.apply(op, &s1)?.encode(u);
            let n2 = sys.apply(op, &s2)?.encode(u);
            if n1 == n2 {
                // Once the two runs coincide they stay equal forever
                // (operations are deterministic): no future difference at β
                // can arise from this branch.
                continue;
            }
            let next = canon(n1, n2);
            if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(next) {
                e.insert(Some((pair, op)));
                levels = levels.max(depth + 1);
                if tracing {
                    bump_depth(&mut depth_counts, depth as usize + 1);
                }
                if found(next.0, next.1) {
                    let w = witness(&parent, next);
                    let stats = SearchStats {
                        engine: "interpreted",
                        visited_pairs: parent.len() as u64,
                        levels,
                    };
                    trace.emit(|| QueryEvent::Witness { length: levels });
                    return Ok((Some(w), stats));
                }
                limits.check_pairs(parent.len() as u64)?;
                queue.push_back((next, depth + 1));
            }
        }
    }
    let stats = SearchStats {
        engine: "interpreted",
        visited_pairs: parent.len() as u64,
        levels,
    };
    Ok((None, stats))
}

/// A discovered pair in the compiled search: packed canonical pair key
/// plus the BFS-tree edge that reached it.
#[derive(Clone, Copy)]
struct Node {
    /// Packed canonical pair `a · |Σ| + b` (`a ≤ b`), or [`POISON`] for a
    /// pending expansion error.
    key: u64,
    /// Index of the predecessor node, or [`NO_PARENT`] for roots.
    parent: u32,
    /// Operation index applied at the predecessor.
    op: u32,
}

const NO_PARENT: u32 = u32::MAX;

/// Visited-pair structure for the compiled search: flat bitmap over
/// `|Σ|²` pair keys when that fits the budget, open-addressed
/// [`U64Set`] otherwise.
enum Visited {
    Dense(BitSet),
    Sparse(U64Set),
}

impl Visited {
    fn with_capacity(ns: u64, budget: &CompileBudget) -> Visited {
        match ns.checked_mul(ns) {
            Some(bits) if bits <= budget.max_dense_pair_bits => Visited::Dense(BitSet::new(bits)),
            _ => Visited::Sparse(U64Set::new()),
        }
    }

    fn contains(&self, key: u64) -> bool {
        match self {
            Visited::Dense(b) => b.contains(key),
            Visited::Sparse(s) => s.contains(key),
        }
    }

    fn insert(&mut self, key: u64) -> bool {
        match self {
            Visited::Dense(b) => b.insert(key),
            Visited::Sparse(s) => s.insert(key),
        }
    }
}

/// Reusable scratch for repeated compiled searches over one system: the
/// visited structure, the BFS node arena, and the sparse row memo.
///
/// [`crate::oracle::Oracle`] keeps a pool of these so a sweep of many
/// searches allocates only on growth. Buffers must be created with the
/// same `ns`/budget as the [`CompiledSystem`] they are used with.
pub(crate) struct SearchBuffers {
    visited: Visited,
    nodes: Vec<Node>,
    memo: SparseMemo,
}

impl SearchBuffers {
    pub(crate) fn new(ns: u64, budget: &CompileBudget) -> SearchBuffers {
        SearchBuffers {
            visited: Visited::with_capacity(ns, budget),
            nodes: Vec::new(),
            memo: SparseMemo::default(),
        }
    }

    /// Clears the previous search's visited marks and node arena. The
    /// sparse row memo is retained: successor rows depend only on the
    /// system, so they stay valid across searches.
    fn reset(&mut self) {
        match &mut self.visited {
            // Every visited key has exactly one node (insert and push are
            // 1:1 in `compiled_search`), so erasing only the node keys
            // clears the bitmap in O(visited) instead of O(|Σ|²).
            Visited::Dense(b) => {
                for n in &self.nodes {
                    b.remove(n.key);
                }
            }
            Visited::Sparse(s) => s.clear(),
        }
        self.nodes.clear();
    }
}

fn push_node(nodes: &mut Vec<Node>, key: u64, parent: u32, op: u32) -> Result<usize> {
    let idx = nodes.len();
    if idx >= NO_PARENT as usize {
        return Err(Error::Invalid(
            "pair search exceeded 2^32 - 1 visited pairs".into(),
        ));
    }
    nodes.push(Node { key, parent, op });
    Ok(idx)
}

fn reconstruct_compiled(u: &Universe, nodes: &[Node], mut idx: usize, ns: u64) -> DependsWitness {
    let mut ops = Vec::new();
    loop {
        let n = nodes[idx];
        if n.parent == NO_PARENT {
            ops.reverse();
            return DependsWitness {
                history: History::from_ops(ops),
                sigma1: State::decode(u, n.key / ns),
                sigma2: State::decode(u, n.key % ns),
            };
        }
        ops.push(OpId(n.op));
        idx = n.parent as usize;
    }
}

/// Compiled BFS over packed pair codes: level-parallel expansion with a
/// sequential in-order merge (see module docs for why the merge order
/// matters).
pub(crate) fn compiled_search(
    cs: &CompiledSystem<'_>,
    part: &SatPartition,
    bufs: &mut SearchBuffers,
    limits: &SearchLimits,
    trace: &mut Trace<'_>,
    mut found: impl FnMut(u64, u64) -> bool,
) -> Result<(Option<DependsWitness>, SearchStats)> {
    let u = cs.system().universe();
    let ns = cs.state_count();
    let num_ops = cs.num_ops();
    let engine = match cs.kind() {
        TableKind::Dense => "compiled-dense",
        TableKind::Sparse => "compiled-sparse",
    };
    bufs.reset();
    let SearchBuffers {
        visited,
        nodes,
        memo,
    } = bufs;

    // Roots, goal-checked in the same ascending order the interpreted
    // engine discovers them. Key order equals pair order because the
    // packing is lexicographic.
    let mut roots: Vec<u64> = Vec::new();
    for class in part.classes() {
        for (i, &c1) in class.iter().enumerate() {
            for &c2 in &class[i + 1..] {
                roots.push(c1 * ns + c2);
            }
        }
    }
    roots.sort_unstable();
    limits.check_deadline()?;
    for key in roots {
        if !visited.insert(key) {
            continue;
        }
        let idx = push_node(nodes, key, NO_PARENT, 0)?;
        if found(key / ns, key % ns) {
            let stats = SearchStats {
                engine,
                visited_pairs: nodes.len() as u64,
                levels: 0,
            };
            trace.emit(|| QueryEvent::Witness { length: 0 });
            return Ok((Some(reconstruct_compiled(u, nodes, idx, ns)), stats));
        }
        limits.check_pairs(nodes.len() as u64)?;
    }

    let mut lo = 0usize;
    let mut depth = 0u32;
    let mut levels = 0u32;
    while lo < nodes.len() {
        let hi = nodes.len();
        limits.check_deadline()?;
        trace.emit(|| QueryEvent::BfsLevel {
            level: depth,
            frontier: (hi - lo) as u64,
            visited: hi as u64,
        });
        trace.counters.expansions += (hi - lo) as u64 * num_ops as u64;
        depth += 1;
        // Materialise sparse successor rows for every state in the
        // frontier (parallel, no-op for dense tables).
        if cs.kind() == TableKind::Sparse {
            let mut codes: Vec<u64> = Vec::with_capacity((hi - lo) * 2);
            for n in &nodes[lo..hi] {
                codes.push(n.key / ns);
                codes.push(n.key % ns);
            }
            codes.sort_unstable();
            codes.dedup();
            cs.ensure_rows(memo, &codes, trace);
        }
        // Expand the frontier in parallel; each chunk emits candidates in
        // frontier × op order.
        let frontier: Vec<(u64, u32)> = nodes[lo..hi]
            .iter()
            .enumerate()
            .map(|(i, n)| (n.key, (lo + i) as u32))
            .collect();
        let memo_ref = &*memo;
        let visited_ref = &*visited;
        let candidates: Vec<Vec<Node>> = par_map_chunks(&frontier, 64, |chunk| {
            let mut out = Vec::new();
            for &(key, idx) in chunk {
                let (c1, c2) = (key / ns, key % ns);
                // One row borrow per side instead of a table lookup per
                // operation.
                let r1 = cs.row(memo_ref, c1);
                let r2 = cs.row(memo_ref, c2);
                for op in 0..num_ops {
                    let n1 = r1.succ(op);
                    let n2 = r2.succ(op);
                    if n1 == POISON || n2 == POISON {
                        // Defer the error so it surfaces in deterministic
                        // merge order.
                        out.push(Node {
                            key: POISON,
                            parent: idx,
                            op: op as u32,
                        });
                        continue;
                    }
                    if n1 == c1 && n2 == c2 {
                        // The op moved neither side, so the candidate is
                        // this very pair — already visited. Skipping here
                        // saves the hash probe; guard-heavy systems disable
                        // most operations in most states.
                        continue;
                    }
                    if n1 == n2 {
                        // Coinciding runs stay equal forever.
                        continue;
                    }
                    let key = if n1 <= n2 { n1 * ns + n2 } else { n2 * ns + n1 };
                    // Pairs already visited at level start would be dropped
                    // by the merge anyway; filtering here (a read-only
                    // probe, safe in parallel) keeps the sequential merge
                    // proportional to *novel* pairs, not to all candidates.
                    if visited_ref.contains(key) {
                        continue;
                    }
                    out.push(Node {
                        key,
                        parent: idx,
                        op: op as u32,
                    });
                }
            }
            out
        });
        lo = hi;
        // Sequential merge in frontier order: discovery order — and hence
        // witnesses — match the interpreted FIFO exactly.
        for cand in candidates.into_iter().flatten() {
            if cand.key == POISON {
                let pkey = nodes[cand.parent as usize].key;
                let op = cand.op as usize;
                let side = if cs.succ(memo, pkey / ns, op) == POISON {
                    pkey / ns
                } else {
                    pkey % ns
                };
                return Err(cs.poison_error(side, op));
            }
            if visited.insert(cand.key) {
                levels = depth;
                let idx = push_node(nodes, cand.key, cand.parent, cand.op)?;
                if found(cand.key / ns, cand.key % ns) {
                    let stats = SearchStats {
                        engine,
                        visited_pairs: nodes.len() as u64,
                        levels,
                    };
                    trace.emit(|| QueryEvent::Witness { length: levels });
                    return Ok((Some(reconstruct_compiled(u, nodes, idx, ns)), stats));
                }
                limits.check_pairs(nodes.len() as u64)?;
            }
        }
    }
    let stats = SearchStats {
        engine,
        visited_pairs: nodes.len() as u64,
        levels,
    };
    Ok((None, stats))
}

/// State spaces at or above this size cannot use packed `u64` pair keys;
/// [`Engine::Auto`] falls back to the interpreted engine there.
pub(crate) const MAX_COMPILED_STATES: u64 = u32::MAX as u64;

pub(crate) fn wants_interpreter(engine: Engine, ns: u64) -> bool {
    match engine {
        Engine::Interpreted => true,
        Engine::Auto => ns >= MAX_COMPILED_STATES,
        Engine::CompiledDense | Engine::CompiledSparse => false,
    }
}

/// When Sat(φ) is at most `1/AUTO_SPARSE_SAT_RATIO` of the state space,
/// [`Engine::Auto`] prefers lazy sparse tables even if dense tables fit
/// the budget: a thin satisfying slice usually means the pair search
/// touches a correspondingly thin reachable region, and materialising
/// dense successor rows for *every* state would cost more than the search
/// itself.
const AUTO_SPARSE_SAT_RATIO: u64 = 16;

/// Refines [`Engine::Auto`] with the size of Sat(φ) (see
/// [`AUTO_SPARSE_SAT_RATIO`]); other engines pass through unchanged.
pub(crate) fn refine_auto(engine: Engine, sat_states: u64, ns: u64) -> Engine {
    match engine {
        Engine::Auto if sat_states.saturating_mul(AUTO_SPARSE_SAT_RATIO) < ns => {
            Engine::CompiledSparse
        }
        e => e,
    }
}

/// Precomputed `(stride, domain size)` for extracting one object's index
/// from an encoded state without decoding.
pub(crate) fn extractor(u: &Universe, obj: ObjId) -> (u64, u64) {
    (u.stride(obj) as u64, u.domain(obj).size() as u64)
}

/// Decides `A ▷φ β` (Def 2-11): is there *any* history over which β
/// strongly depends on A given φ? Exact; returns a witness if so.
#[deprecated(
    since = "0.2.0",
    note = "use `Query::new(phi, a).beta(beta).run_on(sys)` instead"
)]
pub fn depends(sys: &System, phi: &Phi, a: &ObjSet, beta: ObjId) -> Result<Option<DependsWitness>> {
    Ok(Query::new(phi.clone(), a.clone())
        .beta(beta)
        .run_on(sys)?
        .into_witness())
}

/// [`depends`] under an explicit engine and budget.
#[deprecated(
    since = "0.2.0",
    note = "use `Query::new(phi, a).beta(beta).engine(e).budget(b).run_on(sys)` instead"
)]
pub fn depends_with(
    sys: &System,
    phi: &Phi,
    a: &ObjSet,
    beta: ObjId,
    engine: Engine,
    budget: &CompileBudget,
) -> Result<Option<DependsWitness>> {
    Ok(Query::new(phi.clone(), a.clone())
        .beta(beta)
        .engine(engine)
        .budget(*budget)
        .run_on(sys)?
        .into_witness())
}

/// [`depends_with`], also returning search diagnostics.
#[deprecated(
    since = "0.2.0",
    note = "use `Query::new(phi, a).beta(beta).run_on(sys)`; the outcome carries stats and a report"
)]
pub fn depends_with_stats(
    sys: &System,
    phi: &Phi,
    a: &ObjSet,
    beta: ObjId,
    engine: Engine,
    budget: &CompileBudget,
) -> Result<(Option<DependsWitness>, SearchStats)> {
    let out = Query::new(phi.clone(), a.clone())
        .beta(beta)
        .engine(engine)
        .budget(*budget)
        .run_on(sys)?;
    let stats = out.stats.expect("a β-target query always runs a search");
    Ok((out.into_witness(), stats))
}

/// Decides the set-target relation `A ▷φ B` (Def 5-7): some history leads
/// the pair to values differing at *every* object of B.
#[deprecated(
    since = "0.2.0",
    note = "use `Query::new(phi, a).set(b).run_on(sys)` instead"
)]
pub fn depends_set(
    sys: &System,
    phi: &Phi,
    a: &ObjSet,
    b: &ObjSet,
) -> Result<Option<DependsWitness>> {
    Ok(Query::new(phi.clone(), a.clone())
        .set(b.clone())
        .run_on(sys)?
        .into_witness())
}

/// [`depends_set`] under an explicit engine and budget.
#[deprecated(
    since = "0.2.0",
    note = "use `Query::new(phi, a).set(b).engine(e).budget(b).run_on(sys)` instead"
)]
pub fn depends_set_with(
    sys: &System,
    phi: &Phi,
    a: &ObjSet,
    b: &ObjSet,
    engine: Engine,
    budget: &CompileBudget,
) -> Result<Option<DependsWitness>> {
    Ok(Query::new(phi.clone(), a.clone())
        .set(b.clone())
        .engine(engine)
        .budget(*budget)
        .run_on(sys)?
        .into_witness())
}

/// All sinks of a source set: `{ β | A ▷φ β }` — one row of the §3.6 worth
/// measure, computed with a single pair-BFS (exhaustive, except that the
/// sweep stops early once every object is known to be a sink).
#[deprecated(since = "0.2.0", note = "use `Query::new(phi, a).run_on(sys)` instead")]
pub fn sinks(sys: &System, phi: &Phi, a: &ObjSet) -> Result<ObjSet> {
    Ok(Query::new(phi.clone(), a.clone())
        .run_on(sys)?
        .into_sinks()
        .expect("a sinks query returns a sink set"))
}

/// [`sinks`] under an explicit engine and budget.
#[deprecated(
    since = "0.2.0",
    note = "use `Query::new(phi, a).engine(e).budget(b).run_on(sys)` instead"
)]
pub fn sinks_with(
    sys: &System,
    phi: &Phi,
    a: &ObjSet,
    engine: Engine,
    budget: &CompileBudget,
) -> Result<ObjSet> {
    Ok(Query::new(phi.clone(), a.clone())
        .engine(engine)
        .budget(*budget)
        .run_on(sys)?
        .into_sinks()
        .expect("a sinks query returns a sink set"))
}

/// One [`sinks`] row per source set, sharing a single Sat(φ) enumeration
/// and a single compiled system across all rows; rows run in parallel on
/// scoped threads. This is what the §3.6 worth matrix calls.
#[deprecated(
    since = "0.2.0",
    note = "use `Query::matrix(phi, sources).run_on(sys)` instead"
)]
pub fn sinks_matrix(sys: &System, phi: &Phi, sources: &[ObjSet]) -> Result<Vec<ObjSet>> {
    Ok(Query::matrix(phi.clone(), sources.to_vec())
        .run_on(sys)?
        .into_rows()
        .expect("a matrix query returns rows"))
}

/// [`sinks_matrix`] under an explicit engine and budget.
#[deprecated(
    since = "0.2.0",
    note = "use `Query::matrix(phi, sources).engine(e).budget(b).run_on(sys)` instead"
)]
pub fn sinks_matrix_with(
    sys: &System,
    phi: &Phi,
    sources: &[ObjSet],
    engine: Engine,
    budget: &CompileBudget,
) -> Result<Vec<ObjSet>> {
    Ok(Query::matrix(phi.clone(), sources.to_vec())
        .engine(engine)
        .budget(*budget)
        .run_on(sys)?
        .into_rows()
        .expect("a matrix query returns rows"))
}

/// Bounded variant of [`depends`]: only histories of length ≤ `max_len`.
///
/// Used by tests to cross-check the BFS against brute-force enumeration.
/// One Sat(φ) partition is shared across all enumerated histories (the
/// Oracle's interned enumeration). The bound is the trailing `usize`,
/// matching [`crate::oracle::Oracle::depends_bounded`].
#[deprecated(
    since = "0.2.0",
    note = "use `Query::new(phi, a).beta(beta).bounded(max_len).run_on(sys)` instead"
)]
pub fn depends_bounded(
    sys: &System,
    phi: &Phi,
    a: &ObjSet,
    beta: ObjId,
    max_len: usize,
) -> Result<Option<DependsWitness>> {
    Ok(Query::new(phi.clone(), a.clone())
        .beta(beta)
        .bounded(max_len)
        .engine(Engine::Interpreted)
        .run_on(sys)?
        .into_witness())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::op::{Cmd, Op};
    use crate::universe::{Domain, Universe};

    const ENGINES: [Engine; 4] = [
        Engine::Auto,
        Engine::Interpreted,
        Engine::CompiledDense,
        Engine::CompiledSparse,
    ];

    /// Shorthand: a β-target query on cloned inputs.
    fn q(phi: &Phi, a: &ObjSet, beta: ObjId) -> Query {
        Query::new(phi.clone(), a.clone()).beta(beta)
    }

    /// §3.3 system: δ1: if flag then β ← α else β ← 0;
    /// δ2: (flag ← tt; α ← x).
    fn flag_sys() -> System {
        let u = Universe::new(vec![
            ("alpha".into(), Domain::int_range(0, 2).unwrap()),
            ("beta".into(), Domain::int_range(0, 2).unwrap()),
            ("flag".into(), Domain::boolean()),
            ("x".into(), Domain::int_range(0, 2).unwrap()),
        ])
        .unwrap();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let flag = u.obj("flag").unwrap();
        let x = u.obj("x").unwrap();
        System::new(
            u,
            vec![
                Op::from_cmd(
                    "d1",
                    Cmd::If(
                        Expr::var(flag),
                        Box::new(Cmd::assign(b, Expr::var(a))),
                        Box::new(Cmd::assign(b, Expr::int(0))),
                    ),
                ),
                Op::from_cmd(
                    "d2",
                    Cmd::Seq(vec![
                        Cmd::assign(flag, Expr::bool(true)),
                        Cmd::assign(a, Expr::var(x)),
                    ]),
                ),
            ],
        )
    }

    #[test]
    fn initial_constraint_not_invariant_sec_3_3() {
        // φ(σ) ≡ ¬σ.flag solves ¬α ▷φ β even though δ2 later sets the
        // flag — by then δ2 has overwritten α's initial variety.
        let sys = flag_sys();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let flag = u.obj("flag").unwrap();
        let phi = Phi::expr(Expr::var(flag).not());
        assert!(!q(&phi, &ObjSet::singleton(a), b)
            .run_on(&sys)
            .unwrap()
            .holds());
        // Without the constraint there is a flow.
        let w = q(&Phi::True, &ObjSet::singleton(a), b)
            .run_on(&sys)
            .unwrap()
            .into_witness()
            .unwrap();
        // Replay the witness to double-check it.
        let o1 = sys.run(&w.sigma1, &w.history).unwrap();
        let o2 = sys.run(&w.sigma2, &w.history).unwrap();
        assert_ne!(o1.index(b), o2.index(b));
        assert!(w.sigma1.eq_except(&w.sigma2, &ObjSet::singleton(a)));
    }

    #[test]
    fn bfs_agrees_with_bounded_enumeration() {
        let sys = flag_sys();
        let u = sys.universe();
        let b = u.obj("beta").unwrap();
        for src in ["alpha", "flag", "x"] {
            let a = ObjSet::singleton(u.obj(src).unwrap());
            for phi in [
                Phi::True,
                Phi::expr(Expr::var(u.obj("flag").unwrap()).not()),
            ] {
                let exact = q(&phi, &a, b).run_on(&sys).unwrap().holds();
                let brute = q(&phi, &a, b).bounded(4).run_on(&sys).unwrap().holds();
                // Histories of length ≤ 4 are enough in this tiny system.
                assert_eq!(exact, brute, "mismatch for source {src}");
            }
        }
    }

    #[test]
    fn sinks_row() {
        let sys = flag_sys();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let x = u.obj("x").unwrap();
        let from_x = Query::new(Phi::True, ObjSet::singleton(x))
            .run_on(&sys)
            .unwrap()
            .into_sinks()
            .unwrap();
        // x flows to α (δ2), then to β (δ1), and stays in x.
        assert!(from_x.contains(x) && from_x.contains(a) && from_x.contains(b));
        // β never flows anywhere else.
        let from_b = Query::new(Phi::True, ObjSet::singleton(b))
            .run_on(&sys)
            .unwrap()
            .into_sinks()
            .unwrap();
        assert_eq!(from_b, ObjSet::singleton(b));
    }

    #[test]
    fn depends_set_needs_simultaneous_difference() {
        let sys = flag_sys();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        // α reaches {α, β} simultaneously (before δ2 destroys α).
        let ab = ObjSet::from_iter([a, b]);
        assert!(Query::new(Phi::True, ObjSet::singleton(a))
            .set(ab)
            .run_on(&sys)
            .unwrap()
            .holds());
        assert!(!Query::new(Phi::True, ObjSet::singleton(a))
            .set(ObjSet::empty())
            .run_on(&sys)
            .unwrap()
            .holds());
    }

    #[test]
    fn witness_history_is_minimal_length() {
        // BFS explores by increasing depth, so the witness history is as
        // short as possible — under every engine.
        let sys = flag_sys();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        for engine in ENGINES {
            let w = q(&Phi::True, &ObjSet::singleton(a), b)
                .engine(engine)
                .run_on(&sys)
                .unwrap()
                .into_witness()
                .unwrap();
            assert_eq!(w.history.len(), 1, "flag=true states allow a 1-step flow");
        }
    }

    #[test]
    fn engines_agree_on_flag_sys() {
        let sys = flag_sys();
        let u = sys.universe();
        let b = u.obj("beta").unwrap();
        for src in ["alpha", "beta", "flag", "x"] {
            let a = ObjSet::singleton(u.obj(src).unwrap());
            for phi in [
                Phi::True,
                Phi::expr(Expr::var(u.obj("flag").unwrap()).not()),
            ] {
                let reference = q(&phi, &a, b)
                    .engine(Engine::Interpreted)
                    .run_on(&sys)
                    .unwrap()
                    .into_witness()
                    .map(|w| (w.history, w.sigma1, w.sigma2));
                let ref_sinks = Query::new(phi.clone(), a.clone())
                    .engine(Engine::Interpreted)
                    .run_on(&sys)
                    .unwrap()
                    .into_sinks()
                    .unwrap();
                for engine in [Engine::Auto, Engine::CompiledDense, Engine::CompiledSparse] {
                    let got = q(&phi, &a, b)
                        .engine(engine)
                        .run_on(&sys)
                        .unwrap()
                        .into_witness()
                        .map(|w| (w.history, w.sigma1, w.sigma2));
                    assert_eq!(got, reference, "depends mismatch for {src} / {engine:?}");
                    let got_sinks = Query::new(phi.clone(), a.clone())
                        .engine(engine)
                        .run_on(&sys)
                        .unwrap()
                        .into_sinks()
                        .unwrap();
                    assert_eq!(
                        got_sinks, ref_sinks,
                        "sinks mismatch for {src} / {engine:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn sinks_matrix_matches_rowwise_sinks() {
        let sys = flag_sys();
        let u = sys.universe();
        let sources: Vec<ObjSet> = u.objects().map(ObjSet::singleton).collect();
        let budget = CompileBudget::default();
        for engine in ENGINES {
            let rows = Query::matrix(Phi::True, sources.clone())
                .engine(engine)
                .budget(budget)
                .run_on(&sys)
                .unwrap()
                .into_rows()
                .unwrap();
            for (src, row) in sources.iter().zip(&rows) {
                let single = Query::new(Phi::True, src.clone())
                    .run_on(&sys)
                    .unwrap()
                    .into_sinks()
                    .unwrap();
                assert_eq!(*row, single, "matrix row mismatch for {src:?}");
            }
        }
        assert!(Query::matrix(Phi::True, Vec::new())
            .run_on(&sys)
            .unwrap()
            .into_rows()
            .unwrap()
            .is_empty());
    }

    #[test]
    fn stats_report_engine_and_depth() {
        let sys = flag_sys();
        let u = sys.universe();
        let a = ObjSet::singleton(u.obj("alpha").unwrap());
        let b = u.obj("beta").unwrap();
        let budget = CompileBudget::default();
        let mut early: Vec<SearchStats> = Vec::new();
        for (engine, name) in [
            (Engine::Interpreted, "interpreted"),
            (Engine::CompiledDense, "compiled-dense"),
            (Engine::CompiledSparse, "compiled-sparse"),
        ] {
            let out = q(&Phi::True, &a, b).engine(engine).run_on(&sys).unwrap();
            let stats = out.stats.unwrap();
            assert_eq!(stats.engine, name);
            assert_eq!(stats.engine, out.report.engine);
            assert!(stats.visited_pairs > 0);
            assert!(out.report.pair_expansions > 0);
            assert_eq!(
                stats.levels as usize,
                out.into_witness().unwrap().history.len()
            );
            early.push(stats);
        }
        // Every engine goal-checks at discovery, so early-exit searches
        // count the same pairs and depth.
        for stats in &early[1..] {
            assert_eq!(stats.visited_pairs, early[0].visited_pairs);
            assert_eq!(stats.levels, early[0].levels);
        }
        // Exhaustive searches count exactly the same reachable pairs.
        let ns = sys.state_count().unwrap();
        let exhausted: Vec<SearchStats> = [Engine::Interpreted, Engine::CompiledDense]
            .into_iter()
            .map(|engine| {
                // A goal that never triggers: β differing at an impossible
                // index keeps the sweep exhaustive.
                let part = SatPartition::new(&sys, &Phi::True, &a).unwrap();
                if engine == Engine::Interpreted {
                    interpreted_search(
                        &sys,
                        &part,
                        &SearchLimits::NONE,
                        &mut Trace::disabled(),
                        |_, _| false,
                    )
                    .unwrap()
                    .1
                } else {
                    let cs = CompiledSystem::compile(&sys, engine, &budget).unwrap();
                    let mut bufs = SearchBuffers::new(ns, &budget);
                    compiled_search(
                        &cs,
                        &part,
                        &mut bufs,
                        &SearchLimits::NONE,
                        &mut Trace::disabled(),
                        |_, _| false,
                    )
                    .unwrap()
                    .1
                }
            })
            .collect();
        assert_eq!(exhausted[0].visited_pairs, exhausted[1].visited_pairs);
        assert_eq!(exhausted[0].levels, exhausted[1].levels);
    }

    #[test]
    fn buffers_reused_across_searches_do_not_leak() {
        // One SearchBuffers driven through early-exit and exhaustive
        // searches over different sources must match fresh buffers
        // every time.
        let sys = flag_sys();
        let u = sys.universe();
        let b = u.obj("beta").unwrap();
        let budget = CompileBudget::default();
        let ns = sys.state_count().unwrap();
        let (b_stride, b_dom) = extractor(u, b);
        for engine in [Engine::CompiledDense, Engine::CompiledSparse] {
            let cs = CompiledSystem::compile(&sys, engine, &budget).unwrap();
            let mut reused = SearchBuffers::new(ns, &budget);
            for _round in 0..3 {
                for src in ["alpha", "beta", "flag", "x"] {
                    let a = ObjSet::singleton(u.obj(src).unwrap());
                    let part = SatPartition::new(&sys, &Phi::True, &a).unwrap();
                    // Early-exit search (leaves the buffers mid-sweep).
                    let goal =
                        |c1: u64, c2: u64| (c1 / b_stride) % b_dom != (c2 / b_stride) % b_dom;
                    let mut fresh = SearchBuffers::new(ns, &budget);
                    let want = compiled_search(
                        &cs,
                        &part,
                        &mut fresh,
                        &SearchLimits::NONE,
                        &mut Trace::disabled(),
                        goal,
                    )
                    .unwrap();
                    let got = compiled_search(
                        &cs,
                        &part,
                        &mut reused,
                        &SearchLimits::NONE,
                        &mut Trace::disabled(),
                        goal,
                    )
                    .unwrap();
                    assert_eq!(got.1, want.1, "stats diverge for {src} / {engine:?}");
                    assert_eq!(
                        got.0.map(|w| (w.history, w.sigma1, w.sigma2)),
                        want.0.map(|w| (w.history, w.sigma1, w.sigma2)),
                        "witness diverges for {src} / {engine:?}"
                    );
                    // Exhaustive search.
                    let mut fresh = SearchBuffers::new(ns, &budget);
                    let want = compiled_search(
                        &cs,
                        &part,
                        &mut fresh,
                        &SearchLimits::NONE,
                        &mut Trace::disabled(),
                        |_, _| false,
                    )
                    .unwrap();
                    let got = compiled_search(
                        &cs,
                        &part,
                        &mut reused,
                        &SearchLimits::NONE,
                        &mut Trace::disabled(),
                        |_, _| false,
                    )
                    .unwrap();
                    assert_eq!(got.1, want.1, "exhaustive stats diverge for {src}");
                }
            }
        }
    }

    #[test]
    fn auto_falls_back_below_budget() {
        // A budget of zero dense entries forces sparse tables; the result
        // is unchanged.
        let sys = flag_sys();
        let u = sys.universe();
        let a = ObjSet::singleton(u.obj("alpha").unwrap());
        let b = u.obj("beta").unwrap();
        let tiny = CompileBudget {
            max_dense_entries: 0,
            max_dense_pair_bits: 0,
        };
        let out = q(&Phi::True, &a, b).budget(tiny).run_on(&sys).unwrap();
        assert_eq!(out.stats.unwrap().engine, "compiled-sparse");
        assert!(out.holds());
    }
}
