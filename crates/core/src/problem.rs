//! Information problems (§3.2, §3.4).
//!
//! An information problem is a predicate X over constraints: `X(φ)` holds
//! when φ, imposed as an *initial* constraint, eliminates the unwanted
//! information transmission. Two classic instances from §3.4 are built in:
//! the Confinement Problem and the Security Problem, both expressed through
//! the general "allowed paths" form
//! `X(φ) ≡ ∀α, β: α ▷φ β ⊃ q(α, β)`.

use std::fmt;
use std::sync::Arc;

use crate::constraint::Phi;
use crate::error::Result;
use crate::system::System;
use crate::universe::{ObjId, ObjSet};

/// The shape of an information problem.
#[derive(Clone)]
pub enum ProblemKind {
    /// `X(φ) ≡ ¬A ▷φ β` — optionally also requiring φ A-independent
    /// (Def 3-1) so the solution may not cheat by squeezing the source's
    /// own variety (§3.2).
    NoFlow {
        /// The source set A.
        sources: ObjSet,
        /// The sink β.
        sink: ObjId,
        /// Whether solutions must be A-independent.
        require_independent: bool,
    },
    /// `X(φ) ≡ ∀α, β: α ▷φ β ⊃ q(α, β)` — every permitted information
    /// path must satisfy the policy relation q.
    AllowedPaths {
        /// The policy relation.
        q: Arc<dyn Fn(ObjId, ObjId) -> bool + Send + Sync>,
    },
}

/// A named information problem.
#[derive(Clone)]
pub struct Problem {
    name: String,
    kind: ProblemKind,
}

impl fmt::Debug for Problem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Problem({})", self.name)
    }
}

impl Problem {
    /// The `¬A ▷φ β` problem, with or without the independence side
    /// condition.
    pub fn no_flow(sources: ObjSet, sink: ObjId, require_independent: bool) -> Problem {
        Problem {
            name: format!(
                "no-flow(|A| = {}, independent = {require_independent})",
                sources.len()
            ),
            kind: ProblemKind::NoFlow {
                sources,
                sink,
                require_independent,
            },
        }
    }

    /// The Confinement Problem (§3.4): if information is transmitted from a
    /// confined object, the receiver must not be a spy.
    pub fn confinement(confined: ObjSet, spies: ObjSet) -> Problem {
        Problem {
            name: "confinement".into(),
            kind: ProblemKind::AllowedPaths {
                q: Arc::new(move |a, b| !(confined.contains(a) && spies.contains(b))),
            },
        }
    }

    /// The Security Problem (§3.4): information may only move to an equal
    /// or higher classification. `cls` is indexed by object id.
    pub fn security(cls: Vec<u32>) -> Problem {
        Problem {
            name: "security".into(),
            kind: ProblemKind::AllowedPaths {
                q: Arc::new(move |a, b| cls[a.index()] <= cls[b.index()]),
            },
        }
    }

    /// A custom allowed-paths problem.
    pub fn allowed_paths(
        name: impl Into<String>,
        q: impl Fn(ObjId, ObjId) -> bool + Send + Sync + 'static,
    ) -> Problem {
        Problem {
            name: name.into(),
            kind: ProblemKind::AllowedPaths { q: Arc::new(q) },
        }
    }

    /// The problem's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The problem's kind.
    pub fn kind(&self) -> &ProblemKind {
        &self.kind
    }

    /// Decides `X(φ)`: is φ a solution to this problem in `sys`?
    ///
    /// Exact — uses the pair-reachability oracle for every source.
    pub fn is_solution(&self, sys: &System, phi: &Phi) -> Result<bool> {
        match &self.kind {
            ProblemKind::NoFlow {
                sources,
                sink,
                require_independent,
            } => {
                if *require_independent && !crate::classify::is_independent(sys, phi, sources)? {
                    return Ok(false);
                }
                Ok(!crate::query::Query::new(phi.clone(), sources.clone())
                    .beta(*sink)
                    .run_on(sys)?
                    .holds())
            }
            ProblemKind::AllowedPaths { q } => {
                let objects: Vec<ObjId> = sys.universe().objects().collect();
                let rows = crate::worth::parallel_rows(sys, phi, &objects)?;
                for (alpha, sinks) in objects.into_iter().zip(rows) {
                    for beta in sinks.iter() {
                        if !q(alpha, beta) {
                            return Ok(false);
                        }
                    }
                }
                Ok(true)
            }
        }
    }

    /// The paths that violate the problem under φ (empty iff φ solves it).
    pub fn violations(&self, sys: &System, phi: &Phi) -> Result<Vec<(ObjId, ObjId)>> {
        let mut out = Vec::new();
        match &self.kind {
            ProblemKind::NoFlow { sources, sink, .. } => {
                if crate::query::Query::new(phi.clone(), sources.clone())
                    .beta(*sink)
                    .run_on(sys)?
                    .holds()
                {
                    for alpha in sources.iter() {
                        out.push((alpha, *sink));
                    }
                }
            }
            ProblemKind::AllowedPaths { q } => {
                // One compile + a parallel row sweep instead of a fresh
                // per-source search state for every α.
                let objects: Vec<ObjId> = sys.universe().objects().collect();
                let rows = crate::worth::parallel_rows(sys, phi, &objects)?;
                for (alpha, sinks) in objects.into_iter().zip(rows) {
                    for beta in sinks.iter() {
                        if !q(alpha, beta) {
                            out.push((alpha, beta));
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::op::{Cmd, Op};
    use crate::universe::{Domain, Universe};

    /// δ: if m then β ← α (§3.2).
    fn guarded_copy() -> System {
        let u = Universe::new(vec![
            ("alpha".into(), Domain::int_range(0, 3).unwrap()),
            ("beta".into(), Domain::int_range(0, 3).unwrap()),
            ("m".into(), Domain::boolean()),
        ])
        .unwrap();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let m = u.obj("m").unwrap();
        System::new(
            u,
            vec![Op::from_cmd(
                "copy",
                Cmd::when(Expr::var(m), Cmd::assign(b, Expr::var(a))),
            )],
        )
    }

    #[test]
    fn no_flow_solutions_sec_3_2() {
        let sys = guarded_copy();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let m = u.obj("m").unwrap();
        let problem = Problem::no_flow(ObjSet::singleton(a), b, false);

        // The "obvious" solution: ¬m.
        let phi_m = Phi::expr(Expr::var(m).not());
        assert!(problem.is_solution(&sys, &phi_m).unwrap());

        // The "cheating" solution: α = const also solves the raw problem…
        let phi_c = Phi::expr(Expr::var(a).eq(Expr::int(2)));
        assert!(problem.is_solution(&sys, &phi_c).unwrap());

        // …but not the independence-requiring version (§3.2's X with
        // Def 3-1).
        let strict = Problem::no_flow(ObjSet::singleton(a), b, true);
        assert!(strict.is_solution(&sys, &phi_m).unwrap());
        assert!(!strict.is_solution(&sys, &phi_c).unwrap());

        // tt is not a solution at all.
        assert!(!problem.is_solution(&sys, &Phi::True).unwrap());
        let viols = problem.violations(&sys, &Phi::True).unwrap();
        assert_eq!(viols, vec![(a, b)]);
    }

    #[test]
    fn confinement_statement() {
        let sys = guarded_copy();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let m = u.obj("m").unwrap();
        // α is confined, β is a spy.
        let problem = Problem::confinement(ObjSet::singleton(a), ObjSet::singleton(b));
        assert!(!problem.is_solution(&sys, &Phi::True).unwrap());
        let phi = Phi::expr(Expr::var(m).not());
        assert!(problem.is_solution(&sys, &phi).unwrap());
        assert!(problem.violations(&sys, &phi).unwrap().is_empty());
    }

    #[test]
    fn security_statement() {
        let sys = guarded_copy();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        // Cls(α) = 1 > Cls(β) = 0: the copy is a down-flow.
        let mut cls = vec![0u32; u.num_objects()];
        cls[a.index()] = 1;
        let problem = Problem::security(cls);
        assert!(!problem.is_solution(&sys, &Phi::True).unwrap());
        let viols = problem.violations(&sys, &Phi::True).unwrap();
        assert!(viols.contains(&(a, b)));
        // Blocking the guard secures the system.
        let m = u.obj("m").unwrap();
        let phi = Phi::expr(Expr::var(m).not());
        assert!(problem.is_solution(&sys, &phi).unwrap());
    }

    #[test]
    fn security_up_flows_are_fine() {
        let sys = guarded_copy();
        let u = sys.universe();
        let b = u.obj("beta").unwrap();
        // Cls(β) = 1 ≥ everything: copying up is allowed, tt solves it.
        let mut cls = vec![0u32; u.num_objects()];
        cls[b.index()] = 1;
        let problem = Problem::security(cls);
        assert!(problem.is_solution(&sys, &Phi::True).unwrap());
    }
}
