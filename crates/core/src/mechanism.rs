//! Mechanisms (§7.3).
//!
//! A *mechanism* presents users with an **augmented** system implemented
//! on top of a **base** system: augmented states project onto base states
//! and each augmented operation is realized as a history of base
//! operations. [Rotenberg 73] and [Denning 75] warn that "even as the
//! mechanisms may eliminate certain information paths, they may covertly
//! add others"; the paper proposes using the strong-dependency formalism
//! to characterize mechanisms that do not. This module implements exactly
//! that check for finite systems:
//!
//! - [`Mechanism::check_simulation`] verifies the implementation is
//!   faithful: projecting then running the realization history equals
//!   running the augmented operation then projecting;
//! - [`added_paths`] compares the information paths among base-visible
//!   objects in the augmented system against those of the base system —
//!   non-empty output means the mechanism introduced covert paths.

use std::sync::Arc;

use crate::constraint::Phi;
use crate::error::{Error, Result};
use crate::history::History;
use crate::state::State;
use crate::system::System;
use crate::universe::{ObjId, ObjSet};

/// A projection from augmented states onto base states, shared and
/// thread-safe: `fn(augmented_sys, base_sys, augmented_state) -> base_state`.
pub type Projection = Arc<dyn Fn(&System, &System, &State) -> Result<State> + Send + Sync>;

/// A mechanism: an augmented system, its base, and the implementation
/// mapping between them.
#[derive(Clone)]
pub struct Mechanism {
    /// The system as presented to users.
    pub augmented: System,
    /// The underlying base system.
    pub base: System,
    /// Projects an augmented state onto a base state (forgetting
    /// mechanism-internal objects, renaming, …).
    pub project: Projection,
    /// For each augmented operation, the base history realizing it.
    pub realize: Vec<History>,
    /// Base-visible objects paired with their augmented counterparts:
    /// `(augmented object, base object)`.
    pub visible: Vec<(ObjId, ObjId)>,
}

impl Mechanism {
    /// Verifies the simulation property on every state and operation:
    /// `project(δa(σ)) = realize(δa)(project(σ))`.
    ///
    /// Returns the number of checks performed, or the first mismatch as an
    /// error.
    pub fn check_simulation(&self) -> Result<u64> {
        let mut checked = 0;
        for sigma in self.augmented.states()? {
            let base_sigma = (self.project)(&self.augmented, &self.base, &sigma)?;
            for op in self.augmented.op_ids() {
                let realized = self
                    .realize
                    .get(op.index())
                    .ok_or_else(|| Error::Invalid(format!("no realization for δ{}", op.0)))?;
                let via_aug = {
                    let next = self.augmented.apply(op, &sigma)?;
                    (self.project)(&self.augmented, &self.base, &next)?
                };
                let via_base = self.base.run(&base_sigma, realized)?;
                if via_aug != via_base {
                    return Err(Error::Invalid(format!(
                        "simulation fails at {} under δ{}",
                        sigma.display(self.augmented.universe()),
                        op.0
                    )));
                }
                checked += 1;
            }
        }
        Ok(checked)
    }
}

/// The visible information paths of a system: `{(α, β) ∈ visible²,
/// α ≠ β | α ▷φ β}` with source/sink drawn from the given objects.
fn visible_paths(sys: &System, phi: &Phi, objs: &[ObjId]) -> Result<Vec<(usize, usize)>> {
    let mut out = Vec::new();
    for (i, &alpha) in objs.iter().enumerate() {
        let sinks = crate::query::Query::new(phi.clone(), ObjSet::singleton(alpha))
            .run_on(sys)?
            .into_sinks()
            .expect("a sinks query returns a sink set");
        for (j, &beta) in objs.iter().enumerate() {
            if i != j && sinks.contains(beta) {
                out.push((i, j));
            }
        }
    }
    Ok(out)
}

/// The covert paths a mechanism adds: pairs of visible objects connected
/// in the augmented system but not in the base system (indices into
/// `mechanism.visible`).
pub fn added_paths(m: &Mechanism, phi_aug: &Phi, phi_base: &Phi) -> Result<Vec<(usize, usize)>> {
    let aug_objs: Vec<ObjId> = m.visible.iter().map(|&(a, _)| a).collect();
    let base_objs: Vec<ObjId> = m.visible.iter().map(|&(_, b)| b).collect();
    let aug_paths = visible_paths(&m.augmented, phi_aug, &aug_objs)?;
    let base_paths = visible_paths(&m.base, phi_base, &base_objs)?;
    Ok(aug_paths
        .into_iter()
        .filter(|p| !base_paths.contains(p))
        .collect())
}

/// The paths a mechanism *eliminates* (present in the base, absent in the
/// augmented view) — the usual reason for adding one.
pub fn removed_paths(m: &Mechanism, phi_aug: &Phi, phi_base: &Phi) -> Result<Vec<(usize, usize)>> {
    let aug_objs: Vec<ObjId> = m.visible.iter().map(|&(a, _)| a).collect();
    let base_objs: Vec<ObjId> = m.visible.iter().map(|&(_, b)| b).collect();
    let aug_paths = visible_paths(&m.augmented, phi_aug, &aug_objs)?;
    let base_paths = visible_paths(&m.base, phi_base, &base_objs)?;
    Ok(base_paths
        .into_iter()
        .filter(|p| !aug_paths.contains(p))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::history::OpId;
    use crate::op::{Cmd, Op};
    use crate::universe::{Domain, Universe};

    /// Base: δ1: tmp ← α; δ2: β ← tmp. Augmented (a "scrubbing" virtual
    /// machine): a single operation that copies α to β *through* tmp and
    /// then scrubs tmp — eliminating the lingering α → tmp path.
    fn scrubber() -> Mechanism {
        let mk_universe = || {
            Universe::new(vec![
                ("alpha".into(), Domain::int_range(0, 1).unwrap()),
                ("beta".into(), Domain::int_range(0, 1).unwrap()),
                ("tmp".into(), Domain::int_range(0, 1).unwrap()),
            ])
            .unwrap()
        };
        let ub = mk_universe();
        let a = ub.obj("alpha").unwrap();
        let b = ub.obj("beta").unwrap();
        let tmp = ub.obj("tmp").unwrap();
        let base = System::new(
            ub,
            vec![
                Op::from_cmd("stash", Cmd::assign(tmp, Expr::var(a))),
                Op::from_cmd("emit", Cmd::assign(b, Expr::var(tmp))),
                Op::from_cmd("scrub", Cmd::assign(tmp, Expr::int(0))),
            ],
        );
        let ua = mk_universe();
        let aa = ua.obj("alpha").unwrap();
        let ab = ua.obj("beta").unwrap();
        let atmp = ua.obj("tmp").unwrap();
        let augmented = System::new(
            ua,
            vec![Op::from_cmd(
                "copy_scrubbed",
                Cmd::Seq(vec![
                    Cmd::assign(atmp, Expr::var(aa)),
                    Cmd::assign(ab, Expr::var(atmp)),
                    Cmd::assign(atmp, Expr::int(0)),
                ]),
            )],
        );
        Mechanism {
            augmented,
            base,
            project: Arc::new(|_aug, _base, sigma| Ok(sigma.clone())),
            realize: vec![History::from_ops(vec![OpId(0), OpId(1), OpId(2)])],
            visible: vec![(aa, a), (ab, b), (atmp, tmp)],
        }
    }

    #[test]
    fn scrubber_simulates_correctly() {
        let m = scrubber();
        let checks = m.check_simulation().unwrap();
        assert_eq!(checks, 8); // 8 states × 1 op.
    }

    #[test]
    fn scrubber_adds_nothing_and_removes_the_tmp_path() {
        let m = scrubber();
        let added = added_paths(&m, &Phi::True, &Phi::True).unwrap();
        assert!(added.is_empty(), "scrubbing must not add paths: {added:?}");
        let removed = removed_paths(&m, &Phi::True, &Phi::True).unwrap();
        // In the base, α ▷ tmp persists (δ1 without δ3); the mechanism
        // always scrubs, so α → tmp disappears (indices: 0 = α, 2 = tmp).
        assert!(removed.contains(&(0, 2)), "removed: {removed:?}");
    }

    /// A *leaky* mechanism: a "cache flag" recording whether the copied
    /// value was non-zero — the Rotenberg-style covert path.
    #[test]
    fn leaky_cache_mechanism_detected() {
        let base_u = Universe::new(vec![
            ("alpha".into(), Domain::int_range(0, 1).unwrap()),
            ("beta".into(), Domain::int_range(0, 1).unwrap()),
            ("probe".into(), Domain::boolean()),
        ])
        .unwrap();
        let a = base_u.obj("alpha").unwrap();
        let b = base_u.obj("beta").unwrap();
        let probe = base_u.obj("probe").unwrap();
        let base = System::new(
            base_u,
            vec![
                Op::from_cmd("copy", Cmd::assign(b, Expr::var(a))),
                Op::from_cmd("probe_off", Cmd::assign(probe, Expr::bool(false))),
            ],
        );
        // Augmented: the copy also records whether α was 1 in `probe`
        // (think: a cache-hit flag observable by anyone).
        let aug_u = Universe::new(vec![
            ("alpha".into(), Domain::int_range(0, 1).unwrap()),
            ("beta".into(), Domain::int_range(0, 1).unwrap()),
            ("probe".into(), Domain::boolean()),
        ])
        .unwrap();
        let aa = aug_u.obj("alpha").unwrap();
        let ab = aug_u.obj("beta").unwrap();
        let aprobe = aug_u.obj("probe").unwrap();
        let augmented = System::new(
            aug_u,
            vec![
                Op::from_cmd(
                    "copy_cached",
                    Cmd::Seq(vec![
                        Cmd::assign(ab, Expr::var(aa)),
                        Cmd::If(
                            Expr::var(aa).eq(Expr::int(1)),
                            Box::new(Cmd::assign(aprobe, Expr::bool(true))),
                            Box::new(Cmd::assign(aprobe, Expr::bool(false))),
                        ),
                    ]),
                ),
                Op::from_cmd("probe_off", Cmd::assign(aprobe, Expr::bool(false))),
            ],
        );
        let m = Mechanism {
            augmented,
            base,
            // Project by forgetting nothing (names align), but the
            // realization of copy_cached in the base cannot reproduce the
            // probe write — the simulation check must fail…
            project: Arc::new(|_aug, _base, sigma| Ok(sigma.clone())),
            realize: vec![History::single(OpId(0)), History::single(OpId(1))],
            visible: vec![(aa, a), (ab, b), (aprobe, probe)],
        };
        assert!(m.check_simulation().is_err(), "the probe write is covert");
        // …and the path analysis pinpoints the covert channel: in the
        // augmented system α flows into the probe (indices 0 → 2).
        let added = added_paths(&m, &Phi::True, &Phi::True).unwrap();
        assert!(added.contains(&(0, 2)), "added: {added:?}");
    }
}
