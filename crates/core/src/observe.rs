//! Observation models (§6.5 end, §7.3).
//!
//! Strong dependency implicitly assumes β's observer knows *which history*
//! was executed. §6.5 exhibits a program where that assumption matters:
//! both branches write `β ← 0`, yet `α ▷ β` holds because an observer who
//! knows `δ1·δ2` ran can tell whether `δ2` had an effect. If the observer
//! can detect only the passage of time (the number of operations) plus β's
//! value, that inference disappears.
//!
//! [`depends_time_only`] decides the weaker, time-only notion exactly: for
//! each pair of φ-states differing only at A, compare the *sets* of β
//! values possible after exactly `t` operations, for every `t`. The sets
//! evolve deterministically (`S_{t+1} = ∪δ δ(S_t)`), so the pair sequence
//! is eventually periodic and cycle detection makes the check complete.

use std::collections::BTreeSet;
use std::collections::HashSet;

use crate::constraint::Phi;
use crate::error::Result;
use crate::state::State;
use crate::system::System;
use crate::universe::{ObjId, ObjSet};

/// What β's observer is able to see.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Observer {
    /// The observer knows the executed history (the paper's implicit
    /// assumption): this is exactly strong dependency.
    KnownHistory,
    /// The observer knows the history *and* watches β after every step.
    /// For existence-of-transmission queries this coincides with
    /// [`Observer::KnownHistory`]: a trace differs iff the final value
    /// differs after some prefix.
    Trace,
    /// The observer sees only the number of operations executed and β's
    /// value — the §6.5 "passage of time" model.
    TimeOnly,
}

/// A witness that information is transmitted under the time-only observer:
/// at time `t`, the sets of possible β values differ for the two initial
/// states.
#[derive(Debug, Clone)]
pub struct TimeOnlyWitness {
    /// First initial state.
    pub sigma1: State,
    /// Second initial state.
    pub sigma2: State,
    /// The step count at which the observation sets differ.
    pub time: usize,
}

fn beta_values(sys: &System, states: &BTreeSet<State>, beta: ObjId) -> BTreeSet<u32> {
    let _ = sys;
    states.iter().map(|s| s.index(beta)).collect()
}

fn step_all(sys: &System, states: &BTreeSet<State>) -> Result<BTreeSet<State>> {
    let mut out = BTreeSet::new();
    for s in states {
        for op in sys.op_ids() {
            out.insert(sys.apply(op, s)?);
        }
    }
    Ok(out)
}

/// Decides whether information can be transmitted from A to β under the
/// time-only observer (exact, via cycle detection on reachable-set pairs).
pub fn depends_time_only(
    sys: &System,
    phi: &Phi,
    a: &ObjSet,
    beta: ObjId,
) -> Result<Option<TimeOnlyWitness>> {
    for class in crate::depend::classes(sys, phi, a)? {
        for i in 0..class.len() {
            for j in (i + 1)..class.len() {
                if let Some(t) = pair_time_only(sys, &class[i], &class[j], beta)? {
                    return Ok(Some(TimeOnlyWitness {
                        sigma1: class[i].clone(),
                        sigma2: class[j].clone(),
                        time: t,
                    }));
                }
            }
        }
    }
    Ok(None)
}

/// For one pair of initial states: is there a time `t` at which the sets of
/// possible β values differ?
fn pair_time_only(
    sys: &System,
    sigma1: &State,
    sigma2: &State,
    beta: ObjId,
) -> Result<Option<usize>> {
    let mut s1: BTreeSet<State> = [sigma1.clone()].into();
    let mut s2: BTreeSet<State> = [sigma2.clone()].into();
    let mut seen: HashSet<(Vec<State>, Vec<State>)> = HashSet::new();
    let mut t = 0usize;
    loop {
        if beta_values(sys, &s1, beta) != beta_values(sys, &s2, beta) {
            return Ok(Some(t));
        }
        let key = (
            s1.iter().cloned().collect::<Vec<_>>(),
            s2.iter().cloned().collect::<Vec<_>>(),
        );
        if !seen.insert(key) {
            // The (S1, S2) pair repeated: the sequence is periodic and no
            // differing time exists.
            return Ok(None);
        }
        s1 = step_all(sys, &s1)?;
        s2 = step_all(sys, &s2)?;
        t += 1;
    }
}

/// Unified entry point: dependency relative to an observer.
pub fn depends_observed(
    sys: &System,
    phi: &Phi,
    a: &ObjSet,
    beta: ObjId,
    observer: Observer,
) -> Result<bool> {
    match observer {
        // A trace over H differs iff the final value differs after some
        // prefix of H, and prefixes are themselves histories — so the two
        // observers induce the same dependency relation.
        Observer::KnownHistory | Observer::Trace => {
            Ok(crate::query::Query::new(phi.clone(), a.clone())
                .beta(beta)
                .run_on(sys)?
                .holds())
        }
        Observer::TimeOnly => Ok(depends_time_only(sys, phi, a, beta)?.is_some()),
    }
}

/// Whether two initial states are distinguishable through a full β-trace
/// over the specific history `h` (the [`Observer::Trace`] view of one
/// behaviour pair).
pub fn traces_differ(
    sys: &System,
    sigma1: &State,
    sigma2: &State,
    beta: ObjId,
    h: &crate::history::History,
) -> Result<bool> {
    let mut s1 = sigma1.clone();
    let mut s2 = sigma2.clone();
    if s1.index(beta) != s2.index(beta) {
        return Ok(true);
    }
    for &op in h.ops() {
        s1 = sys.apply(op, &s1)?;
        s2 = sys.apply(op, &s2)?;
        if s1.index(beta) != s2.index(beta) {
            return Ok(true);
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::op::{Cmd, Op};
    use crate::universe::{Domain, Universe};

    /// The §6.5 pc-program: δ1 branches on α; δ2 and δ3 both set β ← 0.
    fn pc_branch() -> System {
        let u = Universe::new(vec![
            ("alpha".into(), Domain::boolean()),
            ("beta".into(), Domain::ints([0, 37]).unwrap()),
            ("pc".into(), Domain::int_range(1, 4).unwrap()),
        ])
        .unwrap();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let pc = u.obj("pc").unwrap();
        let at = |i: i64| Expr::var(pc).eq(Expr::int(i));
        System::new(
            u,
            vec![
                Op::from_cmd(
                    "d1",
                    Cmd::when(
                        at(1),
                        Cmd::If(
                            Expr::var(a),
                            Box::new(Cmd::assign(pc, Expr::int(2))),
                            Box::new(Cmd::assign(pc, Expr::int(3))),
                        ),
                    ),
                ),
                Op::from_cmd(
                    "d2",
                    Cmd::when(
                        at(2),
                        Cmd::Seq(vec![
                            Cmd::assign(b, Expr::int(0)),
                            Cmd::assign(pc, Expr::int(4)),
                        ]),
                    ),
                ),
                Op::from_cmd(
                    "d3",
                    Cmd::when(
                        at(3),
                        Cmd::Seq(vec![
                            Cmd::assign(b, Expr::int(0)),
                            Cmd::assign(pc, Expr::int(4)),
                        ]),
                    ),
                ),
            ],
        )
    }

    #[test]
    fn sec_6_5_paradox_resolved() {
        let sys = pc_branch();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let pc = u.obj("pc").unwrap();
        let phi = Phi::expr(Expr::var(pc).eq(Expr::int(1)));
        let src = ObjSet::singleton(a);
        // Under the known-history observer, α ▷φ β (the paper's δ1·δ2
        // witness: β stays 37 in one run, becomes 0 in the other).
        assert!(depends_observed(&sys, &phi, &src, b, Observer::KnownHistory).unwrap());
        // Under the time-only observer, no information is transmitted:
        // after any number of steps the possible β values coincide.
        assert!(!depends_observed(&sys, &phi, &src, b, Observer::TimeOnly).unwrap());
    }

    #[test]
    fn time_only_still_sees_real_flows() {
        // A direct copy is visible to any observer.
        let u = Universe::new(vec![
            ("alpha".into(), Domain::int_range(0, 1).unwrap()),
            ("beta".into(), Domain::int_range(0, 1).unwrap()),
        ])
        .unwrap();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let sys = System::new(u, vec![Op::from_cmd("copy", Cmd::assign(b, Expr::var(a)))]);
        let w = depends_time_only(&sys, &Phi::True, &ObjSet::singleton(a), b)
            .unwrap()
            .unwrap();
        assert_eq!(w.time, 1);
        assert!(w.sigma1.eq_except(&w.sigma2, &ObjSet::singleton(a)));
    }

    #[test]
    fn time_only_is_weaker_than_known_history() {
        // Whenever the time-only observer sees a flow, the known-history
        // observer does too (it is strictly more powerful).
        let sys = pc_branch();
        let u = sys.universe();
        let b = u.obj("beta").unwrap();
        for name in ["alpha", "beta", "pc"] {
            let src = ObjSet::singleton(u.obj(name).unwrap());
            let weak = depends_observed(&sys, &Phi::True, &src, b, Observer::TimeOnly).unwrap();
            let strong =
                depends_observed(&sys, &Phi::True, &src, b, Observer::KnownHistory).unwrap();
            assert!(!weak || strong, "time-only flow without known-history flow");
        }
    }

    #[test]
    fn trace_observer_equals_known_history() {
        let sys = pc_branch();
        let u = sys.universe();
        let b = u.obj("beta").unwrap();
        for name in ["alpha", "beta", "pc"] {
            let src = ObjSet::singleton(u.obj(name).unwrap());
            for phi in [
                Phi::True,
                Phi::expr(Expr::var(u.obj("pc").unwrap()).eq(Expr::int(1))),
            ] {
                let kh = depends_observed(&sys, &phi, &src, b, Observer::KnownHistory).unwrap();
                let tr = depends_observed(&sys, &phi, &src, b, Observer::Trace).unwrap();
                assert_eq!(kh, tr, "source {name}");
            }
        }
    }

    #[test]
    fn traces_differ_detects_intermediate_difference() {
        // δ: (β ← α; β ← 0): the final β is always 0 — the final-value
        // check over this single op misses the flow, the trace sees…
        // nothing either (updates inside one operation are atomic). But a
        // two-op split exposes it.
        let u = Universe::new(vec![
            ("alpha".into(), Domain::int_range(0, 1).unwrap()),
            ("beta".into(), Domain::int_range(0, 1).unwrap()),
        ])
        .unwrap();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let sys = System::new(
            u,
            vec![
                Op::from_cmd("copy", Cmd::assign(b, Expr::var(a))),
                Op::from_cmd("zero", Cmd::assign(b, Expr::int(0))),
            ],
        );
        let s1 = crate::state::State::from_indices(vec![0, 0]);
        let s2 = crate::state::State::from_indices(vec![1, 0]);
        let h = crate::history::History::from_ops(vec![
            crate::history::OpId(0),
            crate::history::OpId(1),
        ]);
        // Final values agree (both 0)…
        assert_eq!(
            sys.run(&s1, &h).unwrap().index(b),
            sys.run(&s2, &h).unwrap().index(b)
        );
        // …but the trace differs after the first step.
        assert!(traces_differ(&sys, &s1, &s2, b, &h).unwrap());
    }

    #[test]
    fn cycle_detection_terminates_on_oscillator() {
        // δ: (β ← α; α ← -α) with φ pinning α: the reachable-set pair
        // cycles; the checker must terminate and report no flow.
        let u = Universe::new(vec![
            ("alpha".into(), Domain::ints([-1, 1]).unwrap()),
            ("beta".into(), Domain::ints([-1, 0, 1]).unwrap()),
        ])
        .unwrap();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let sys = System::new(
            u,
            vec![Op::from_cmd(
                "osc",
                Cmd::Seq(vec![
                    Cmd::assign(b, Expr::var(a)),
                    Cmd::assign(a, Expr::var(a).neg()),
                ]),
            )],
        );
        let phi = Phi::expr(Expr::var(a).eq(Expr::int(1)));
        assert!(depends_time_only(&sys, &phi, &ObjSet::singleton(a), b)
            .unwrap()
            .is_none());
    }
}
