//! Operations: total functions from states to states (§1.2).
//!
//! Most operations are written in a small command language ([`Cmd`]) that
//! mirrors the paper's informal notation — guarded assignments, sequencing
//! (`(β ← α; α ← -α)`), and conditionals. Arbitrary Rust functions can be
//! wrapped as [`OpBody::Native`] for substrates with behaviour that is
//! awkward to express as commands.

use std::fmt;
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::expr::Expr;
use crate::state::State;
use crate::universe::{ObjId, Universe};
use crate::value::Value;

/// An assignment target.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A whole object: `β ← …`.
    Obj(ObjId),
    /// One field of a record-valued object: `y.data ← …`.
    Field(ObjId, usize),
}

impl LValue {
    /// The object this lvalue writes.
    pub fn object(&self) -> ObjId {
        match self {
            LValue::Obj(a) | LValue::Field(a, _) => *a,
        }
    }
}

/// A command in the paper's informal operation language.
#[derive(Debug, Clone, PartialEq)]
pub enum Cmd {
    /// Does nothing.
    Skip,
    /// An assignment; the produced value must lie in the target's domain.
    Assign(LValue, Expr),
    /// Sequential composition `(c1; c2; …)` evaluated left to right, with
    /// later commands seeing earlier updates.
    Seq(Vec<Cmd>),
    /// `if e then c1 else c2`.
    If(Expr, Box<Cmd>, Box<Cmd>),
}

impl Cmd {
    /// `if e then c` with an implicit `else skip`.
    pub fn when(guard: Expr, then: Cmd) -> Cmd {
        Cmd::If(guard, Box::new(then), Box::new(Cmd::Skip))
    }

    /// An assignment to a whole object.
    pub fn assign(target: ObjId, e: Expr) -> Cmd {
        Cmd::Assign(LValue::Obj(target), e)
    }

    /// An assignment to a record field.
    pub fn assign_field(target: ObjId, field: usize, e: Expr) -> Cmd {
        Cmd::Assign(LValue::Field(target, field), e)
    }

    /// Executes the command, mutating `sigma` in place.
    pub fn exec(&self, u: &Universe, sigma: &mut State) -> Result<()> {
        match self {
            Cmd::Skip => Ok(()),
            Cmd::Assign(lv, e) => {
                let v = e.eval(u, sigma)?;
                let target = lv.object();
                let dom = u.domain(target);
                let new_value = match lv {
                    LValue::Obj(_) => v,
                    LValue::Field(_, idx) => {
                        let cur = sigma.value(u, target).clone();
                        match cur {
                            Value::Record(mut fields) => {
                                if *idx >= fields.len() {
                                    return Err(Error::UnknownField {
                                        field: format!("#{idx}"),
                                        context: format!(
                                            "assignment to field of `{}`",
                                            u.name(target)
                                        ),
                                    });
                                }
                                fields[*idx] = v;
                                Value::Record(fields)
                            }
                            other => {
                                return Err(Error::TypeMismatch {
                                    expected: "record",
                                    found: other.kind(),
                                    context: format!("assignment to field of `{}`", u.name(target)),
                                })
                            }
                        }
                    }
                };
                let idx = dom.index_of(&new_value).ok_or(Error::OutOfDomain {
                    object: u.name(target).to_string(),
                    value: new_value,
                })?;
                sigma.set_index(target, idx);
                Ok(())
            }
            Cmd::Seq(cmds) => {
                for c in cmds {
                    c.exec(u, sigma)?;
                }
                Ok(())
            }
            Cmd::If(guard, then, els) => {
                if guard.eval_bool(u, sigma)? {
                    then.exec(u, sigma)
                } else {
                    els.exec(u, sigma)
                }
            }
        }
    }

    /// The objects this command can syntactically write.
    pub fn writes(&self, out: &mut Vec<ObjId>) {
        match self {
            Cmd::Skip => {}
            Cmd::Assign(lv, _) => out.push(lv.object()),
            Cmd::Seq(cmds) => {
                for c in cmds {
                    c.writes(out);
                }
            }
            Cmd::If(_, t, e) => {
                t.writes(out);
                e.writes(out);
            }
        }
    }

    /// The objects this command can syntactically read (guards included).
    pub fn reads(&self, out: &mut Vec<ObjId>) {
        match self {
            Cmd::Skip => {}
            Cmd::Assign(lv, e) => {
                e.reads(out);
                if let LValue::Field(a, _) = lv {
                    // A field update reads the record's other fields.
                    out.push(*a);
                }
            }
            Cmd::Seq(cmds) => {
                for c in cmds {
                    c.reads(out);
                }
            }
            Cmd::If(g, t, e) => {
                g.reads(out);
                t.reads(out);
                e.reads(out);
            }
        }
    }

    /// Renders the command in the paper's informal notation, with object
    /// names resolved through a universe.
    pub fn display<'a>(&'a self, u: &'a Universe) -> CmdDisplay<'a> {
        CmdDisplay { cmd: self, u }
    }
}

/// Helper produced by [`Cmd::display`].
pub struct CmdDisplay<'a> {
    cmd: &'a Cmd,
    u: &'a Universe,
}

impl fmt::Display for CmdDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(c: &Cmd, u: &Universe, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match c {
                Cmd::Skip => write!(f, "skip"),
                Cmd::Assign(lv, e) => {
                    match lv {
                        LValue::Obj(a) => write!(f, "{}", u.name(*a))?,
                        LValue::Field(a, idx) => {
                            let field = u
                                .domain(*a)
                                .fields()
                                .get(*idx)
                                .cloned()
                                .unwrap_or_else(|| format!("#{idx}"));
                            write!(f, "{}.{}", u.name(*a), field)?;
                        }
                    }
                    write!(f, " ← {}", e.display(u))
                }
                Cmd::Seq(cmds) => {
                    write!(f, "(")?;
                    let mut first = true;
                    for c in cmds {
                        if !first {
                            write!(f, "; ")?;
                        }
                        first = false;
                        go(c, u, f)?;
                    }
                    write!(f, ")")
                }
                Cmd::If(g, t, e) => {
                    write!(f, "if {} then ", g.display(u))?;
                    go(t, u, f)?;
                    if !matches!(e.as_ref(), Cmd::Skip) {
                        write!(f, " else ")?;
                        go(e, u, f)?;
                    }
                    Ok(())
                }
            }
        }
        go(self.cmd, self.u, f)
    }
}

/// A native operation body: shared, thread-safe state transformer.
pub type NativeOp = Arc<dyn Fn(&Universe, &State) -> Result<State> + Send + Sync>;

/// The implementation of an operation.
#[derive(Clone)]
pub enum OpBody {
    /// A command in the operation language.
    Cmd(Cmd),
    /// A native Rust state transformer.
    Native(NativeOp),
}

impl fmt::Debug for OpBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpBody::Cmd(c) => f.debug_tuple("Cmd").field(c).finish(),
            OpBody::Native(_) => f.write_str("Native(..)"),
        }
    }
}

/// A named operation δ ∈ Δ.
#[derive(Debug, Clone)]
pub struct Op {
    name: String,
    body: OpBody,
}

impl Op {
    /// Creates an operation from a command.
    pub fn from_cmd(name: impl Into<String>, cmd: Cmd) -> Op {
        Op {
            name: name.into(),
            body: OpBody::Cmd(cmd),
        }
    }

    /// Creates an operation from a native function.
    pub fn native(
        name: impl Into<String>,
        f: impl Fn(&Universe, &State) -> Result<State> + Send + Sync + 'static,
    ) -> Op {
        Op {
            name: name.into(),
            body: OpBody::Native(Arc::new(f)),
        }
    }

    /// The operation's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operation body.
    pub fn body(&self) -> &OpBody {
        &self.body
    }

    /// Applies the operation: `δ(σ)`.
    pub fn apply(&self, u: &Universe, sigma: &State) -> Result<State> {
        match &self.body {
            OpBody::Cmd(c) => {
                let mut out = sigma.clone();
                c.exec(u, &mut out)?;
                Ok(out)
            }
            OpBody::Native(f) => f(u, sigma),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Domain;

    fn uni() -> Universe {
        Universe::new(vec![
            ("a".into(), Domain::int_range(0, 3).unwrap()),
            ("b".into(), Domain::int_range(0, 3).unwrap()),
            ("m".into(), Domain::boolean()),
            (
                "rec".into(),
                Domain::with_fields(
                    vec![
                        Value::Record(vec![Value::Int(0), Value::Int(0)]),
                        Value::Record(vec![Value::Int(0), Value::Int(1)]),
                        Value::Record(vec![Value::Int(1), Value::Int(0)]),
                        Value::Record(vec![Value::Int(1), Value::Int(1)]),
                    ],
                    vec!["left".into(), "right".into()],
                )
                .unwrap(),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn guarded_copy() {
        // δ: if m then β ← α (§3.2).
        let u = uni();
        let a = u.obj("a").unwrap();
        let b = u.obj("b").unwrap();
        let m = u.obj("m").unwrap();
        let op = Op::from_cmd(
            "copy",
            Cmd::when(Expr::var(m), Cmd::assign(b, Expr::var(a))),
        );

        let s_on = State::from_indices(vec![2, 0, 1, 0]);
        let s_off = State::from_indices(vec![2, 0, 0, 0]);
        assert_eq!(op.apply(&u, &s_on).unwrap().index(b), 2);
        assert_eq!(op.apply(&u, &s_off).unwrap().index(b), 0);
    }

    #[test]
    fn sequencing_is_progressive() {
        // δ: (β ← α; α ← 0) — β receives α's old value.
        let u = uni();
        let a = u.obj("a").unwrap();
        let b = u.obj("b").unwrap();
        let op = Op::from_cmd(
            "seq",
            Cmd::Seq(vec![
                Cmd::assign(b, Expr::var(a)),
                Cmd::assign(a, Expr::int(0)),
            ]),
        );
        let s = State::from_indices(vec![3, 1, 0, 0]);
        let out = op.apply(&u, &s).unwrap();
        assert_eq!(out.index(b), 3);
        assert_eq!(out.index(a), 0);
    }

    #[test]
    fn field_assignment_preserves_other_fields() {
        let u = uni();
        let rec = u.obj("rec").unwrap();
        let dom = u.domain(rec);
        let left = dom.field_index("left").unwrap();
        let op = Op::from_cmd("setl", Cmd::assign_field(rec, left, Expr::int(1)));
        // Start with (left=0, right=1) which is domain index 1.
        let s = State::from_indices(vec![0, 0, 0, 1]);
        let out = op.apply(&u, &s).unwrap();
        assert_eq!(
            out.value(&u, rec),
            &Value::Record(vec![Value::Int(1), Value::Int(1)])
        );
    }

    #[test]
    fn out_of_domain_is_an_error() {
        let u = uni();
        let a = u.obj("a").unwrap();
        let op = Op::from_cmd("bump", Cmd::assign(a, Expr::var(a).add(Expr::int(1))));
        let top = State::from_indices(vec![3, 0, 0, 0]);
        assert!(matches!(op.apply(&u, &top), Err(Error::OutOfDomain { .. })));
    }

    #[test]
    fn native_ops_work() {
        let u = uni();
        let a = u.obj("a").unwrap();
        let op = Op::native("swapish", move |_u, s| {
            let mut out = s.clone();
            out.set_index(a, 3 - s.index(a));
            Ok(out)
        });
        let s = State::from_indices(vec![1, 0, 0, 0]);
        assert_eq!(op.apply(&u, &s).unwrap().index(a), 2);
    }

    #[test]
    fn reads_and_writes_footprints() {
        let u = uni();
        let a = u.obj("a").unwrap();
        let b = u.obj("b").unwrap();
        let m = u.obj("m").unwrap();
        let cmd = Cmd::when(Expr::var(m), Cmd::assign(b, Expr::var(a)));
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        cmd.reads(&mut reads);
        cmd.writes(&mut writes);
        assert!(reads.contains(&m) && reads.contains(&a));
        assert_eq!(writes, vec![b]);
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;
    use crate::universe::Domain;

    #[test]
    fn cmd_display_matches_paper_notation() {
        let u = Universe::new(vec![
            ("alpha".into(), Domain::int_range(0, 3).unwrap()),
            ("beta".into(), Domain::int_range(0, 3).unwrap()),
            ("m".into(), Domain::boolean()),
        ])
        .unwrap();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let m = u.obj("m").unwrap();
        let cmd = Cmd::when(Expr::var(m), Cmd::assign(b, Expr::var(a)));
        assert_eq!(cmd.display(&u).to_string(), "if m then beta ← alpha");
        let seq = Cmd::Seq(vec![
            Cmd::assign(b, Expr::var(a)),
            Cmd::assign(a, Expr::var(a).neg()),
        ]);
        assert_eq!(
            seq.display(&u).to_string(),
            "(beta ← alpha; alpha ← -(alpha))"
        );
        let ite = Cmd::If(
            Expr::var(a).lt(Expr::int(2)),
            Box::new(Cmd::assign(b, Expr::int(0))),
            Box::new(Cmd::assign(b, Expr::int(1))),
        );
        assert_eq!(
            ite.display(&u).to_string(),
            "if (alpha < 2) then beta ← 0 else beta ← 1"
        );
        assert_eq!(Cmd::Skip.display(&u).to_string(), "skip");
    }

    #[test]
    fn field_display_resolves_names() {
        let u = Universe::new(vec![(
            "rec".into(),
            Domain::with_fields(
                vec![Value::Record(vec![Value::Int(0), Value::Int(1)])],
                vec!["data".into(), "ptr".into()],
            )
            .unwrap(),
        )])
        .unwrap();
        let rec = u.obj("rec").unwrap();
        let cmd = Cmd::assign_field(rec, 0, Expr::var(rec).field(1));
        assert_eq!(cmd.display(&u).to_string(), "rec.data ← rec.ptr");
    }
}
