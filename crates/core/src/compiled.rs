//! Compiled execution engine: integer successor tables over encoded
//! state codes.
//!
//! The interpreted oracle in [`crate::reach`] pays for every pair
//! expansion with two `State::decode`s, two AST walks and two
//! `State::encode`s. For finite systems the whole transition function
//! can instead be *compiled once*: each operation becomes a dense
//! successor table `next[code · |Δ| + op] → code'` of `u32` codes, and
//! per-object index extraction becomes two integer divisions against
//! precomputed 64-bit strides ([`CompiledSystem::obj_index`]) instead of
//! the `u128` arithmetic in `Universe::stride`.
//!
//! Two table layouts are provided, chosen by [`CompileBudget`]:
//!
//! - **Dense** (`|Σ| · |Δ|` within budget): every successor is
//!   precomputed up front, in parallel over state-code ranges.
//! - **Sparse**: successor rows are interpreted on first touch and
//!   memoised in a [`SparseMemo`], so each *reached* state is
//!   interpreted exactly once for all operations — the BFS in
//!   `reach` typically touches a tiny fraction of `Σ²` pairs but a
//!   larger fraction of `Σ`, and this caps interpretation cost at
//!   `O(|reached states| · |Δ|)` instead of `O(|visited pairs| · |Δ|)`.
//!
//! Operations that *error* on a state (possible when
//! `System::validate` would fail) are stored as a poison sentinel; the
//! search re-interprets on access to surface the precise [`Error`].

use crate::error::{Error, Result};
use crate::fastmap::U64Map;
use crate::history::OpId;
use crate::state::State;
use crate::system::System;
use crate::telemetry::{QueryEvent, Trace};
use crate::universe::ObjId;

/// Dense-table sentinel: "this operation errors on this state".
const POISON32: u32 = u32::MAX;
/// 64-bit poison sentinel used by sparse rows and [`CompiledSystem::succ`].
pub(crate) const POISON: u64 = u64::MAX;

/// Resource budget steering the automatic engine choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileBudget {
    /// Maximum `|Σ| · |Δ|` entries for an upfront dense successor table
    /// (4 bytes per entry).
    pub max_dense_entries: u64,
    /// Maximum `|Σ|²` bits for the flat bitset visited-pair structure in
    /// the pair search; above it a hash set is used instead.
    pub max_dense_pair_bits: u64,
}

impl Default for CompileBudget {
    fn default() -> CompileBudget {
        CompileBudget {
            // ≤ 64 MiB of u32 successors.
            max_dense_entries: 1 << 24,
            // ≤ 32 MiB of visited bitmap (|Σ| ≤ 16384 gets the bitset).
            max_dense_pair_bits: 1 << 28,
        }
    }
}

/// Which pair-search engine [`crate::reach`] should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Compile, picking dense or sparse tables from the budget.
    #[default]
    Auto,
    /// The original AST-interpreting BFS (reference implementation).
    Interpreted,
    /// Force a dense upfront table.
    CompiledDense,
    /// Force sparse memoised rows.
    CompiledSparse,
}

/// Table layout chosen for a [`CompiledSystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableKind {
    /// Upfront `|Σ| · |Δ|` table.
    Dense,
    /// Rows interpreted on first touch and memoised.
    Sparse,
}

/// A system compiled to integer successor tables (see module docs).
///
/// Immutable after construction, so one compiled system can be shared
/// by reference across scoped worker threads — this is what lets
/// [`crate::reach::sinks_matrix`] compile once for all worth-matrix
/// rows.
pub struct CompiledSystem<'s> {
    sys: &'s System,
    ns: u64,
    num_ops: usize,
    /// Per-object stride, narrowed to u64 (valid because `|Σ|` fits u64).
    strides: Vec<u64>,
    /// Per-object domain size, narrowed likewise.
    dom_sizes: Vec<u64>,
    kind: TableKind,
    budget: CompileBudget,
    /// State-major dense table: `dense[code · num_ops + op]`. Empty when
    /// `kind` is [`TableKind::Sparse`].
    dense: Vec<u32>,
}

/// Memoised successor rows for a sparse compiled search. Owned by one
/// search (it is the only mutable part of the machinery), while the
/// [`CompiledSystem`] itself stays shared.
#[derive(Default)]
pub struct SparseMemo {
    /// State code → offset of its row in `rows` (row length = `num_ops`).
    index: U64Map,
    rows: Vec<u64>,
}

impl SparseMemo {
    /// Number of states whose successor rows have been computed.
    pub fn states_expanded(&self) -> usize {
        self.index.len()
    }
}

/// One state's successor row, borrowed from whichever table layout the
/// system compiled to. Produced by [`CompiledSystem::row`].
#[derive(Clone, Copy)]
pub(crate) enum Row<'a> {
    /// A dense-table row; [`POISON32`] marks erroring operations.
    Dense(&'a [u32]),
    /// A sparse memoised row; [`POISON`] marks erroring operations.
    Sparse(&'a [u64]),
}

impl Row<'_> {
    /// Successor under operation `op`, or [`POISON`].
    #[inline]
    pub(crate) fn succ(&self, op: usize) -> u64 {
        match *self {
            Row::Dense(r) => {
                let v = r[op];
                if v == POISON32 {
                    POISON
                } else {
                    u64::from(v)
                }
            }
            Row::Sparse(r) => r[op],
        }
    }
}

impl<'s> CompiledSystem<'s> {
    /// Compiles `sys` under `engine` and `budget`.
    ///
    /// [`Engine::Auto`] (and, for convenience, [`Engine::Interpreted`])
    /// selects dense tables when `|Σ| · |Δ|` fits the budget and codes
    /// fit `u32`, sparse otherwise. Forcing [`Engine::CompiledDense`]
    /// beyond the `u32` code range is an error.
    pub fn compile(
        sys: &'s System,
        engine: Engine,
        budget: &CompileBudget,
    ) -> Result<CompiledSystem<'s>> {
        let ns = sys.state_count()?;
        let num_ops = sys.num_ops();
        let entries = ns.saturating_mul(num_ops.max(1) as u64);
        let dense_feasible = ns < u64::from(u32::MAX);
        let kind = match engine {
            Engine::CompiledDense => {
                if !dense_feasible {
                    return Err(Error::Invalid(format!(
                        "state space of {ns} states does not fit dense u32 codes"
                    )));
                }
                TableKind::Dense
            }
            Engine::CompiledSparse => TableKind::Sparse,
            Engine::Auto | Engine::Interpreted => {
                if dense_feasible && entries <= budget.max_dense_entries {
                    TableKind::Dense
                } else {
                    TableKind::Sparse
                }
            }
        };
        let u = sys.universe();
        let mut strides = Vec::with_capacity(u.num_objects());
        let mut dom_sizes = Vec::with_capacity(u.num_objects());
        for obj in u.objects() {
            strides.push(u.stride(obj) as u64);
            dom_sizes.push(u.domain(obj).size() as u64);
        }
        let dense = if kind == TableKind::Dense {
            build_dense(sys, ns, num_ops)
        } else {
            Vec::new()
        };
        Ok(CompiledSystem {
            sys,
            ns,
            num_ops,
            strides,
            dom_sizes,
            kind,
            budget: *budget,
            dense,
        })
    }

    /// Compiles with [`Engine::Auto`] and the default budget.
    pub fn auto(sys: &'s System) -> Result<CompiledSystem<'s>> {
        CompiledSystem::compile(sys, Engine::Auto, &CompileBudget::default())
    }

    /// The underlying system.
    pub fn system(&self) -> &'s System {
        self.sys
    }

    /// `|Σ|`.
    pub fn state_count(&self) -> u64 {
        self.ns
    }

    /// `|Δ|`.
    pub fn num_ops(&self) -> usize {
        self.num_ops
    }

    /// Which table layout was chosen.
    pub fn kind(&self) -> TableKind {
        self.kind
    }

    /// The budget the system was compiled under.
    pub fn budget(&self) -> &CompileBudget {
        &self.budget
    }

    /// Extracts the domain index of `obj` from an encoded state without
    /// decoding — the compiled counterpart of `State::index`.
    #[inline]
    pub fn obj_index(&self, code: u64, obj: ObjId) -> u32 {
        let i = obj.index();
        ((code / self.strides[i]) % self.dom_sizes[i]) as u32
    }

    /// Successor of `code` under operation `op`, or [`POISON`] when the
    /// operation errors on that state. Sparse lookups require the row to
    /// have been materialised via [`CompiledSystem::ensure_rows`].
    #[inline]
    pub(crate) fn succ(&self, memo: &SparseMemo, code: u64, op: usize) -> u64 {
        match self.kind {
            TableKind::Dense => {
                let v = self.dense[code as usize * self.num_ops + op];
                if v == POISON32 {
                    POISON
                } else {
                    u64::from(v)
                }
            }
            TableKind::Sparse => {
                let row = memo
                    .index
                    .get(code)
                    .expect("sparse row materialised before use");
                memo.rows[row + op]
            }
        }
    }

    /// The full successor row of `code` — one borrow instead of a table
    /// lookup per operation, for the search's hot loop. Sparse rows must
    /// have been materialised via [`CompiledSystem::ensure_rows`].
    #[inline]
    pub(crate) fn row<'m>(&'m self, memo: &'m SparseMemo, code: u64) -> Row<'m> {
        match self.kind {
            TableKind::Dense => {
                Row::Dense(&self.dense[code as usize * self.num_ops..][..self.num_ops])
            }
            TableKind::Sparse => {
                let off = memo
                    .index
                    .get(code)
                    .expect("sparse row materialised before use");
                Row::Sparse(&memo.rows[off..off + self.num_ops])
            }
        }
    }

    /// Materialises sparse successor rows for every code in `codes` that
    /// is not yet memoised, interpreting rows in parallel when there are
    /// enough of them. A no-op for dense tables. Row reuse/materialise
    /// counts are accumulated on `trace` (and emitted as a
    /// [`QueryEvent::MemoRows`] event when a sink is attached).
    pub(crate) fn ensure_rows(&self, memo: &mut SparseMemo, codes: &[u64], trace: &mut Trace<'_>) {
        if self.kind == TableKind::Dense || self.num_ops == 0 {
            return;
        }
        let missing: Vec<u64> = codes
            .iter()
            .copied()
            .filter(|&c| memo.index.get(c).is_none())
            .collect();
        let reused = (codes.len() - missing.len()) as u64;
        let materialized = missing.len() as u64;
        trace.counters.rows_reused += reused;
        trace.counters.rows_materialized += materialized;
        if !codes.is_empty() {
            trace.emit(|| QueryEvent::MemoRows {
                reused,
                materialized,
            });
        }
        if missing.is_empty() {
            return;
        }
        // Row interpretation is ~two orders of magnitude more expensive
        // than a table probe, so parallelise even smallish batches.
        let computed: Vec<Vec<u64>> = par_map_chunks(&missing, 32, |chunk| {
            let mut rows = Vec::with_capacity(chunk.len() * self.num_ops);
            for &code in chunk {
                self.interpret_row(code, &mut rows);
            }
            rows
        });
        for (chunk, rows) in missing
            .chunks(par_chunk_len(missing.len(), 32))
            .zip(computed)
        {
            for (i, &code) in chunk.iter().enumerate() {
                let offset = memo.rows.len() + i * self.num_ops;
                memo.index.insert(code, offset);
            }
            memo.rows.extend_from_slice(&rows);
        }
    }

    /// Interprets one state's full successor row into `out`.
    fn interpret_row(&self, code: u64, out: &mut Vec<u64>) {
        let u = self.sys.universe();
        let sigma = State::decode(u, code);
        for op in 0..self.num_ops {
            out.push(match self.sys.apply(OpId(op as u32), &sigma) {
                Ok(next) => next.encode(u),
                Err(_) => POISON,
            });
        }
    }

    /// Re-interprets a poisoned entry to recover the precise error the
    /// interpreter would have produced.
    pub(crate) fn poison_error(&self, code: u64, op: usize) -> Error {
        let sigma = State::decode(self.sys.universe(), code);
        match self.sys.apply(OpId(op as u32), &sigma) {
            Err(e) => e,
            Ok(_) => Error::Invalid("poison entry without interpreter error".into()),
        }
    }
}

/// Builds the dense state-major table, splitting the state-code range
/// across scoped threads.
fn build_dense(sys: &System, ns: u64, num_ops: usize) -> Vec<u32> {
    let total = ns as usize * num_ops;
    if total == 0 {
        return Vec::new();
    }
    let mut table = vec![POISON32; total];
    let threads = worker_count();
    if threads <= 1 || ns < 1024 {
        fill_dense_chunk(sys, &mut table, 0);
        return table;
    }
    let chunk_states = (ns as usize).div_ceil(threads);
    std::thread::scope(|scope| {
        for (i, chunk) in table.chunks_mut(chunk_states * num_ops).enumerate() {
            let start = (i * chunk_states) as u64;
            scope.spawn(move || fill_dense_chunk(sys, chunk, start));
        }
    });
    table
}

/// Fills `chunk` (whole rows) with successors of codes starting at
/// `start_code`.
fn fill_dense_chunk(sys: &System, chunk: &mut [u32], start_code: u64) {
    let u = sys.universe();
    let num_ops = sys.num_ops();
    for (row, cells) in chunk.chunks_mut(num_ops).enumerate() {
        let sigma = State::decode(u, start_code + row as u64);
        for (op, cell) in cells.iter_mut().enumerate() {
            *cell = match sys.apply(OpId(op as u32), &sigma) {
                Ok(next) => next.encode(u) as u32,
                Err(_) => POISON32,
            };
        }
    }
}

/// Number of workers for scoped-thread parallel sections. Cached:
/// `available_parallelism` is a syscall on Linux, and this is consulted
/// once per BFS level on the search hot path.
pub(crate) fn worker_count() -> usize {
    static WORKERS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *WORKERS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Chunk length used by [`par_map_chunks`] for `len` items with the
/// given sequential threshold.
pub(crate) fn par_chunk_len(len: usize, min_seq: usize) -> usize {
    let threads = worker_count();
    if threads <= 1 || len <= min_seq {
        len.max(1)
    } else {
        len.div_ceil(threads)
    }
}

/// Applies `f` to chunks of `items` on scoped threads, returning one
/// result per chunk in order. Falls back to a single sequential call
/// when `items` is small or the machine has one core.
pub(crate) fn par_map_chunks<T, R, F>(items: &[T], min_seq: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let chunk_len = par_chunk_len(items.len(), min_seq);
    if chunk_len >= items.len() {
        return vec![f(items)];
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| scope.spawn(|| f(chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel chunk worker does not panic"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples;
    use crate::system::System;

    fn compile_both(sys: &System) -> (CompiledSystem<'_>, CompiledSystem<'_>) {
        let budget = CompileBudget::default();
        let dense = CompiledSystem::compile(sys, Engine::CompiledDense, &budget).unwrap();
        let sparse = CompiledSystem::compile(sys, Engine::CompiledSparse, &budget).unwrap();
        (dense, sparse)
    }

    #[test]
    fn tables_agree_with_interpreter_everywhere() {
        let sys = examples::pointer_chain_system(3, 2).unwrap();
        let u = sys.universe();
        let ns = sys.state_count().unwrap();
        let (dense, sparse) = compile_both(&sys);
        let mut memo = SparseMemo::default();
        let all: Vec<u64> = (0..ns).collect();
        sparse.ensure_rows(&mut memo, &all, &mut Trace::disabled());
        let empty = SparseMemo::default();
        for code in 0..ns {
            let sigma = State::decode(u, code);
            for op in sys.op_ids() {
                let expect = sys.apply(op, &sigma).unwrap().encode(u);
                assert_eq!(dense.succ(&empty, code, op.index()), expect);
                assert_eq!(sparse.succ(&memo, code, op.index()), expect);
            }
        }
    }

    #[test]
    fn obj_index_matches_decode() {
        let sys = examples::m1m2_system(3).unwrap();
        let u = sys.universe();
        let cs = CompiledSystem::auto(&sys).unwrap();
        for code in 0..sys.state_count().unwrap() {
            let sigma = State::decode(u, code);
            for obj in u.objects() {
                assert_eq!(cs.obj_index(code, obj), sigma.index(obj));
            }
        }
    }

    #[test]
    fn auto_respects_budget() {
        let sys = examples::copy_system(8).unwrap();
        let tiny = CompileBudget {
            max_dense_entries: 4,
            ..CompileBudget::default()
        };
        let cs = CompiledSystem::compile(&sys, Engine::Auto, &tiny).unwrap();
        assert_eq!(cs.kind(), TableKind::Sparse);
        let cs = CompiledSystem::auto(&sys).unwrap();
        assert_eq!(cs.kind(), TableKind::Dense);
    }

    #[test]
    fn poison_surfaces_interpreter_error() {
        // copy_system(3) with enum limit large enough, but an op writing
        // out of domain: build via with_enum_limit on an invalid system.
        use crate::expr::Expr;
        use crate::op::{Cmd, Op};
        use crate::universe::{Domain, Universe};
        let u = Universe::new(vec![("x".into(), Domain::int_range(0, 2).unwrap())]).unwrap();
        let x = u.obj("x").unwrap();
        let sys = System::new(
            u,
            vec![Op::from_cmd(
                "bump",
                Cmd::assign(x, Expr::var(x).add(Expr::int(1))),
            )],
        );
        let cs = CompiledSystem::compile(&sys, Engine::CompiledDense, &CompileBudget::default())
            .unwrap();
        let empty = SparseMemo::default();
        // x = 2 overflows the domain.
        assert_eq!(cs.succ(&empty, 2, 0), POISON);
        assert!(matches!(cs.poison_error(2, 0), Error::OutOfDomain { .. }));
    }
}
