//! Compile-once query sessions: the [`Oracle`].
//!
//! Every decision procedure in this crate reduces to repeated questions
//! about one fixed system — pair reachability for `A ▷φ β`, successor
//! rows for the induction kernels, Sat(φ) enumerations for everything.
//! Before this module existed each public entry point recompiled the
//! system and re-enumerated Sat(φ) per call; an [`Oracle`] pins those
//! system-wide artefacts in one place instead:
//!
//! - the [`CompiledSystem`] successor tables, built **once** at
//!   construction (or not at all when the engine falls back to the
//!   interpreter — see below);
//! - interned `Sat(φ)` enumerations, keyed by structural φ equality
//!   (never re-enumerated for a φ the Oracle has already seen);
//! - a pool of reusable search buffers (visited structure, BFS node
//!   arena, sparse row memo), so a sweep of thousands of pair searches
//!   allocates only on growth;
//! - a shared sparse-row cache for the op-kernel sweeps of
//!   [`crate::induction`] and [`crate::classify`].
//!
//! The one-shot functions in [`crate::reach`] construct a short-lived
//! Oracle per call, so there is exactly one code path; the provers
//! ([`crate::solve`], [`crate::cover`], [`crate::induction`]) hold one
//! Oracle across their whole run, which is where the compile-once payoff
//! lands.
//!
//! # When does an Oracle interpret instead of compiling?
//!
//! [`Engine::Interpreted`] never compiles. [`Engine::Auto`] compiles
//! unless the state space has ≥ 2³² states (packed `u64` pair keys no
//! longer fit); in that case every search runs on the interpreted
//! reference engine and [`OracleStats::compiles`] stays 0. Within the
//! compiled regime, `Auto` picks dense tables when they fit the
//! [`CompileBudget`] and lazy sparse rows otherwise — or when the φ the
//! Oracle was built for ([`Oracle::for_phi`]) has a thin satisfying set.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::compiled::{
    par_map_chunks, CompileBudget, CompiledSystem, Engine, SparseMemo, TableKind,
};
use crate::constraint::Phi;
use crate::depend::{self, SatPartition};
use crate::error::{Error, Result};
use crate::reach::{
    self, compiled_search, interpreted_search, DependsWitness, SearchBuffers, SearchLimits,
    SearchStats,
};
use crate::system::System;
use crate::telemetry::{QueryEvent, Sink, Trace, TraceCounters};
use crate::universe::{ObjId, ObjSet};

/// Counters describing the work an [`Oracle`] has performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleStats {
    /// Number of times the system was compiled (0 when the Oracle runs
    /// interpreted, 1 otherwise — construction is the only compile).
    pub compiles: u64,
    /// Number of pair searches run through the Oracle.
    pub searches: u64,
    /// Number of distinct φ whose Sat(φ) enumeration is interned.
    pub interned_phis: u64,
}

/// A compile-once query session over one [`System`]. See the module docs
/// for what is shared; see [`crate::reach`] for the search semantics.
///
/// An `Oracle` is `Sync`: the provers share one by reference across
/// scoped worker threads (pieces, cylinder classes, worth-matrix rows).
///
/// # Examples
///
/// ```
/// use sd_core::{examples, ObjSet, Oracle, Phi};
///
/// let sys = examples::flag_copy_system(3)?;
/// let u = sys.universe();
/// let oracle = Oracle::new(&sys)?;
/// // Many queries, one compile.
/// for obj in u.objects() {
///     let _ = oracle.sinks(&Phi::True, &ObjSet::singleton(obj))?;
/// }
/// assert_eq!(oracle.stats().compiles, 1);
/// # Ok::<(), sd_core::Error>(())
/// ```
pub struct Oracle<'s> {
    sys: &'s System,
    ns: u64,
    budget: CompileBudget,
    /// `None` ⇒ every search runs interpreted.
    compiled: Option<CompiledSystem<'s>>,
    /// Interned Sat(φ) enumerations, keyed by [`Phi::cache_eq`]. A
    /// linear scan: provers use a handful of distinct φ.
    sat_cache: Mutex<Vec<(Phi, Arc<Vec<u64>>)>>,
    /// Reusable search buffers (one per concurrently running search).
    pool: Mutex<Vec<SearchBuffers>>,
    /// Shared sparse-row cache for op-kernel sweeps.
    rows: Mutex<SparseMemo>,
    /// Telemetry sink, attached at construction so compile events are
    /// observable. `None` ⇒ uninstrumented (one branch per emission
    /// site, no event construction).
    sink: Option<Arc<dyn Sink>>,
    compiles: u64,
    searches: AtomicU64,
}

impl<'s> Oracle<'s> {
    /// An Oracle with [`Engine::Auto`] and the default budget.
    pub fn new(sys: &'s System) -> Result<Oracle<'s>> {
        Oracle::with_engine(sys, Engine::Auto, &CompileBudget::default())
    }

    /// An Oracle with an explicit engine and budget.
    pub fn with_engine(
        sys: &'s System,
        engine: Engine,
        budget: &CompileBudget,
    ) -> Result<Oracle<'s>> {
        Oracle::build(sys, engine, budget, None, None)
    }

    /// An instrumented Oracle: every compile, partition lookup and
    /// search reports [`QueryEvent`]s to `sink`. The sink must be
    /// attached at construction because compilation happens here.
    pub fn with_sink(
        sys: &'s System,
        engine: Engine,
        budget: &CompileBudget,
        sink: Arc<dyn Sink>,
    ) -> Result<Oracle<'s>> {
        Oracle::build(sys, engine, budget, None, Some(sink))
    }

    /// An Oracle tuned for queries under one constraint: Sat(φ) is
    /// enumerated up front (and interned), and [`Engine::Auto`] refines
    /// on its thinness exactly like the one-shot search paths. This is
    /// what one-shot [`crate::query::Query::run_on`] runs construct per
    /// call.
    pub fn for_phi(
        sys: &'s System,
        phi: &Phi,
        engine: Engine,
        budget: &CompileBudget,
    ) -> Result<Oracle<'s>> {
        Oracle::for_phi_sink(sys, phi, engine, budget, None)
    }

    /// [`Oracle::for_phi`] with a telemetry sink attached.
    pub(crate) fn for_phi_sink(
        sys: &'s System,
        phi: &Phi,
        engine: Engine,
        budget: &CompileBudget,
        sink: Option<Arc<dyn Sink>>,
    ) -> Result<Oracle<'s>> {
        let codes = Arc::new(depend::sat_codes(sys, phi)?);
        if let Some(s) = &sink {
            s.record(&QueryEvent::PartitionMiss {
                states: codes.len() as u64,
            });
        }
        let oracle = Oracle::build(sys, engine, budget, Some(codes.len() as u64), sink)?;
        oracle
            .sat_cache
            .lock()
            .expect("sat cache lock")
            .push((phi.clone(), codes));
        Ok(oracle)
    }

    fn build(
        sys: &'s System,
        engine: Engine,
        budget: &CompileBudget,
        sat_hint: Option<u64>,
        sink: Option<Arc<dyn Sink>>,
    ) -> Result<Oracle<'s>> {
        let ns = sys.state_count()?;
        let compiled = if reach::wants_interpreter(engine, ns) {
            None
        } else if ns >= reach::MAX_COMPILED_STATES {
            return Err(Error::Invalid(format!(
                "state space of {ns} states exceeds the compiled pair-key range"
            )));
        } else {
            let engine = reach::refine_auto(engine, sat_hint.unwrap_or(ns), ns);
            if let Some(s) = &sink {
                s.record(&QueryEvent::CompileStart {
                    states: ns,
                    ops: sys.num_ops() as u64,
                });
            }
            let start = std::time::Instant::now();
            let cs = CompiledSystem::compile(sys, engine, budget)?;
            if let Some(s) = &sink {
                s.record(&QueryEvent::CompileFinish {
                    kind: match cs.kind() {
                        TableKind::Dense => "compiled-dense",
                        TableKind::Sparse => "compiled-sparse",
                    },
                    wall_ns: start.elapsed().as_nanos() as u64,
                });
            }
            Some(cs)
        };
        let compiles = u64::from(compiled.is_some());
        Ok(Oracle {
            sys,
            ns,
            budget: *budget,
            compiled,
            sat_cache: Mutex::new(Vec::new()),
            pool: Mutex::new(Vec::new()),
            rows: Mutex::new(SparseMemo::default()),
            sink,
            compiles,
            searches: AtomicU64::new(0),
        })
    }

    /// The underlying system.
    pub fn system(&self) -> &'s System {
        self.sys
    }

    /// Work counters so far.
    pub fn stats(&self) -> OracleStats {
        OracleStats {
            compiles: self.compiles,
            searches: self.searches.load(Ordering::Relaxed),
            interned_phis: self.sat_cache.lock().expect("sat cache lock").len() as u64,
        }
    }

    /// The telemetry sink attached at construction, if any.
    pub(crate) fn sink_ref(&self) -> Option<&dyn Sink> {
        self.sink.as_deref()
    }

    /// Whether `Sat(φ)` for this φ is already interned (i.e. a query on
    /// it would hit the partition cache).
    pub fn phi_interned(&self, phi: &Phi) -> bool {
        self.sat_cache
            .lock()
            .expect("sat cache lock")
            .iter()
            .any(|(p, _)| p.cache_eq(phi))
    }

    /// The engine label searches through this Oracle report.
    pub(crate) fn engine_name(&self) -> &'static str {
        match &self.compiled {
            None => "interpreted",
            Some(cs) => match cs.kind() {
                TableKind::Dense => "compiled-dense",
                TableKind::Sparse => "compiled-sparse",
            },
        }
    }

    /// Table layout of the compiled system, `None` when interpreted.
    pub(crate) fn table_kind(&self) -> Option<TableKind> {
        self.compiled.as_ref().map(|cs| cs.kind())
    }

    /// The interned `Sat(φ)` enumeration (ascending state codes),
    /// computing and caching it on first use.
    pub fn sat_codes(&self, phi: &Phi) -> Result<Arc<Vec<u64>>> {
        self.sat_codes_at(phi, self.sink_ref())
    }

    /// [`Oracle::sat_codes`] reporting hit/miss events to an explicit
    /// sink (a per-query sink overriding the Oracle's own).
    pub(crate) fn sat_codes_at(&self, phi: &Phi, sink: Option<&dyn Sink>) -> Result<Arc<Vec<u64>>> {
        {
            let cache = self.sat_cache.lock().expect("sat cache lock");
            if let Some((_, codes)) = cache.iter().find(|(p, _)| p.cache_eq(phi)) {
                if let Some(s) = sink {
                    s.record(&QueryEvent::PartitionHit {
                        states: codes.len() as u64,
                    });
                }
                return Ok(Arc::clone(codes));
            }
        }
        // Enumerate outside the lock; on a race the first entry wins so
        // every caller shares one allocation.
        let codes = Arc::new(depend::sat_codes(self.sys, phi)?);
        if let Some(s) = sink {
            s.record(&QueryEvent::PartitionMiss {
                states: codes.len() as u64,
            });
        }
        let mut cache = self.sat_cache.lock().expect("sat cache lock");
        if let Some((_, existing)) = cache.iter().find(|(p, _)| p.cache_eq(phi)) {
            return Ok(Arc::clone(existing));
        }
        cache.push((phi.clone(), Arc::clone(&codes)));
        Ok(codes)
    }

    /// `Sat(φ)` partitioned into `=A=` classes, from the interned
    /// enumeration.
    pub fn partition(&self, phi: &Phi, a: &ObjSet) -> Result<SatPartition> {
        self.partition_at(phi, a, self.sink_ref())
    }

    /// [`Oracle::partition`] reporting cache events to an explicit sink.
    pub(crate) fn partition_at(
        &self,
        phi: &Phi,
        a: &ObjSet,
        sink: Option<&dyn Sink>,
    ) -> Result<SatPartition> {
        let codes = self.sat_codes_at(phi, sink)?;
        Ok(SatPartition::from_codes(self.sys.universe(), &codes, a))
    }

    /// Runs one pair search over an explicit partition, borrowing a
    /// buffer set from the pool.
    pub(crate) fn search_partition(
        &self,
        part: &SatPartition,
        found: impl FnMut(u64, u64) -> bool,
    ) -> Result<(Option<DependsWitness>, SearchStats)> {
        let (witness, stats, _) =
            self.search_partition_at(part, &SearchLimits::NONE, self.sink_ref(), found)?;
        Ok((witness, stats))
    }

    /// [`Oracle::search_partition`] with explicit limits and sink, and the
    /// search's hot-path counters returned for query reports.
    pub(crate) fn search_partition_at(
        &self,
        part: &SatPartition,
        limits: &SearchLimits,
        sink: Option<&dyn Sink>,
        found: impl FnMut(u64, u64) -> bool,
    ) -> Result<(Option<DependsWitness>, SearchStats, TraceCounters)> {
        self.searches.fetch_add(1, Ordering::Relaxed);
        let mut trace = Trace::new(sink);
        let (witness, stats) = match &self.compiled {
            None => interpreted_search(self.sys, part, limits, &mut trace, found)?,
            Some(cs) => {
                let mut bufs = self
                    .pool
                    .lock()
                    .expect("buffer pool lock")
                    .pop()
                    .unwrap_or_else(|| SearchBuffers::new(self.ns, &self.budget));
                let out = compiled_search(cs, part, &mut bufs, limits, &mut trace, found);
                self.pool.lock().expect("buffer pool lock").push(bufs);
                out?
            }
        };
        Ok((witness, stats, trace.counters))
    }

    /// Decides `A ▷φ β` through this Oracle (see [`crate::reach::depends`]).
    pub fn depends(&self, phi: &Phi, a: &ObjSet, beta: ObjId) -> Result<Option<DependsWitness>> {
        Ok(self.depends_with_stats(phi, a, beta)?.0)
    }

    /// [`Oracle::depends`], also returning search diagnostics.
    pub fn depends_with_stats(
        &self,
        phi: &Phi,
        a: &ObjSet,
        beta: ObjId,
    ) -> Result<(Option<DependsWitness>, SearchStats)> {
        let part = self.partition(phi, a)?;
        self.depends_partition(&part, beta)
    }

    /// `A ▷ β` over an explicit partition (the per-cylinder searches of
    /// the maximal-solution sweep use this).
    pub(crate) fn depends_partition(
        &self,
        part: &SatPartition,
        beta: ObjId,
    ) -> Result<(Option<DependsWitness>, SearchStats)> {
        let (witness, stats, _) =
            self.depends_partition_at(part, beta, &SearchLimits::NONE, self.sink_ref())?;
        Ok((witness, stats))
    }

    /// [`Oracle::depends_partition`] with explicit limits, sink and counters.
    pub(crate) fn depends_partition_at(
        &self,
        part: &SatPartition,
        beta: ObjId,
        limits: &SearchLimits,
        sink: Option<&dyn Sink>,
    ) -> Result<(Option<DependsWitness>, SearchStats, TraceCounters)> {
        let (stride, dom) = reach::extractor(self.sys.universe(), beta);
        self.search_partition_at(part, limits, sink, move |c1, c2| {
            (c1 / stride) % dom != (c2 / stride) % dom
        })
    }

    /// Decides the set-target relation `A ▷φ B` (see
    /// [`crate::reach::depends_set`]).
    pub fn depends_set(&self, phi: &Phi, a: &ObjSet, b: &ObjSet) -> Result<Option<DependsWitness>> {
        if b.is_empty() {
            return Ok(None);
        }
        let u = self.sys.universe();
        let targets: Vec<(u64, u64)> = b.iter().map(|obj| reach::extractor(u, obj)).collect();
        let part = self.partition(phi, a)?;
        let (witness, _) = self.search_partition(&part, move |c1, c2| {
            targets
                .iter()
                .all(|&(stride, dom)| (c1 / stride) % dom != (c2 / stride) % dom)
        })?;
        Ok(witness)
    }

    /// All sinks of one source set: `{ β | A ▷φ β }`.
    pub fn sinks(&self, phi: &Phi, a: &ObjSet) -> Result<ObjSet> {
        let part = self.partition(phi, a)?;
        self.sinks_partition(&part)
    }

    /// [`Oracle::sinks`] over an explicit partition.
    pub(crate) fn sinks_partition(&self, part: &SatPartition) -> Result<ObjSet> {
        let (out, _, _) = self.sinks_partition_at(part, &SearchLimits::NONE, self.sink_ref())?;
        Ok(out)
    }

    /// [`Oracle::sinks_partition`] with explicit limits and sink, also
    /// returning the search diagnostics and counters.
    pub(crate) fn sinks_partition_at(
        &self,
        part: &SatPartition,
        limits: &SearchLimits,
        sink: Option<&dyn Sink>,
    ) -> Result<(ObjSet, SearchStats, TraceCounters)> {
        let u = self.sys.universe();
        let extractors: Vec<(ObjId, u64, u64)> = u
            .objects()
            .map(|obj| {
                let (stride, dom) = reach::extractor(u, obj);
                (obj, stride, dom)
            })
            .collect();
        let total = extractors.len();
        let mut out = ObjSet::empty();
        let mut count = 0usize;
        let (_, stats, counters) = self.search_partition_at(part, limits, sink, |c1, c2| {
            for &(obj, stride, dom) in &extractors {
                if !out.contains(obj) && (c1 / stride) % dom != (c2 / stride) % dom {
                    out.insert(obj);
                    count += 1;
                }
            }
            count == total
        })?;
        Ok((out, stats, counters))
    }

    /// One [`Oracle::sinks`] row per source set, sharing the interned
    /// Sat(φ) enumeration; rows run in parallel on scoped threads, each
    /// borrowing buffers from the pool.
    pub fn sinks_matrix(&self, phi: &Phi, sources: &[ObjSet]) -> Result<Vec<ObjSet>> {
        let (rows, _, _) =
            self.sinks_matrix_at(phi, sources, &SearchLimits::NONE, self.sink_ref())?;
        Ok(rows)
    }

    /// [`Oracle::sinks_matrix`] with explicit limits and sink, aggregating
    /// the per-row diagnostics (summed pairs/counters, max depth) for the
    /// query report. The limits apply to each row's search independently;
    /// the deadline is shared, so the whole matrix respects it.
    pub(crate) fn sinks_matrix_at(
        &self,
        phi: &Phi,
        sources: &[ObjSet],
        limits: &SearchLimits,
        sink: Option<&dyn Sink>,
    ) -> Result<(Vec<ObjSet>, SearchStats, TraceCounters)> {
        let mut agg = SearchStats {
            engine: self.engine_name(),
            visited_pairs: 0,
            levels: 0,
        };
        let mut totals = TraceCounters::default();
        if sources.is_empty() {
            return Ok((Vec::new(), agg, totals));
        }
        let codes = self.sat_codes_at(phi, sink)?;
        let u = self.sys.universe();
        let row = |src: &ObjSet| -> Result<(ObjSet, SearchStats, TraceCounters)> {
            let part = SatPartition::from_codes(u, &codes, src);
            self.sinks_partition_at(&part, limits, sink)
        };
        let chunked: Vec<Vec<Result<(ObjSet, SearchStats, TraceCounters)>>> =
            par_map_chunks(sources, 1, |chunk| chunk.iter().map(&row).collect());
        let mut rows = Vec::with_capacity(sources.len());
        for res in chunked.into_iter().flatten() {
            let (set, stats, counters) = res?;
            agg.visited_pairs += stats.visited_pairs;
            agg.levels = agg.levels.max(stats.levels);
            totals.absorb(counters);
            rows.push(set);
        }
        Ok((rows, agg, totals))
    }

    /// Bounded-history variant of [`Oracle::depends`] (see
    /// [`crate::reach::depends_bounded`]): one interned partition is
    /// shared across every enumerated history.
    pub fn depends_bounded(
        &self,
        phi: &Phi,
        a: &ObjSet,
        beta: ObjId,
        max_len: usize,
    ) -> Result<Option<DependsWitness>> {
        self.depends_bounded_at(phi, a, beta, max_len, &SearchLimits::NONE)
    }

    /// [`Oracle::depends_bounded`] under [`SearchLimits`]: the deadline is
    /// checked between enumerated histories (the pair budget does not
    /// apply to bounded enumeration, which visits no pairs).
    pub(crate) fn depends_bounded_at(
        &self,
        phi: &Phi,
        a: &ObjSet,
        beta: ObjId,
        max_len: usize,
        limits: &SearchLimits,
    ) -> Result<Option<DependsWitness>> {
        let part = self.partition(phi, a)?;
        for h in crate::history::histories_up_to(self.sys.num_ops(), max_len) {
            if let Some(d) = limits.deadline {
                if std::time::Instant::now() >= d {
                    return Err(Error::DeadlineExceeded);
                }
            }
            if let Some(w) = depend::strongly_depends_after_with(self.sys, &part, beta, &h)? {
                return Ok(Some(DependsWitness {
                    history: h,
                    sigma1: w.sigma1,
                    sigma2: w.sigma2,
                }));
            }
        }
        Ok(None)
    }

    /// Runs `f` against the compiled tables with sparse successor rows
    /// for `codes` guaranteed materialised, reusing (and extending) the
    /// Oracle's shared row cache. Returns `None` when this Oracle runs
    /// interpreted — callers fall back to the AST-walking kernel.
    pub(crate) fn with_rows<R>(
        &self,
        codes: &[u64],
        f: impl FnOnce(&CompiledSystem<'s>, &SparseMemo) -> R,
    ) -> Option<R> {
        let cs = self.compiled.as_ref()?;
        let mut memo = std::mem::take(&mut *self.rows.lock().expect("row cache lock"));
        if cs.kind() == TableKind::Sparse {
            let mut trace = Trace::new(self.sink_ref());
            cs.ensure_rows(&mut memo, codes, &mut trace);
        }
        let out = f(cs, &memo);
        // Concurrent callers may have raced the take; keeping the most
        // recent memo is fine — it is only a cache.
        *self.rows.lock().expect("row cache lock") = memo;
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples;

    #[test]
    fn one_compile_many_queries() {
        let sys = examples::flag_copy_system(3).unwrap();
        let u = sys.universe();
        let oracle = Oracle::new(&sys).unwrap();
        let sources: Vec<ObjSet> = u.objects().map(ObjSet::singleton).collect();
        for a in &sources {
            for beta in u.objects() {
                let via_oracle = oracle.depends(&Phi::True, a, beta).unwrap();
                let direct = crate::query::Query::new(Phi::True, a.clone())
                    .beta(beta)
                    .run_on(&sys)
                    .unwrap()
                    .into_witness();
                assert_eq!(
                    via_oracle
                        .as_ref()
                        .map(|w| (&w.history, &w.sigma1, &w.sigma2)),
                    direct.as_ref().map(|w| (&w.history, &w.sigma1, &w.sigma2)),
                );
            }
        }
        let stats = oracle.stats();
        assert_eq!(stats.compiles, 1);
        assert_eq!(stats.searches, (sources.len() * sources.len()) as u64);
        assert_eq!(stats.interned_phis, 1);
    }

    #[test]
    fn sat_enumerations_are_interned() {
        let sys = examples::flag_copy_system(3).unwrap();
        let oracle = Oracle::new(&sys).unwrap();
        let a = oracle.sat_codes(&Phi::True).unwrap();
        let b = oracle.sat_codes(&Phi::True).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same φ must share one enumeration");
        let _ = oracle.sat_codes(&Phi::False).unwrap();
        assert_eq!(oracle.stats().interned_phis, 2);
    }

    #[test]
    fn interpreted_oracle_never_compiles() {
        let sys = examples::flag_copy_system(3).unwrap();
        let u = sys.universe();
        let oracle =
            Oracle::with_engine(&sys, Engine::Interpreted, &CompileBudget::default()).unwrap();
        let a = ObjSet::singleton(u.objects().next().unwrap());
        let (_, stats) = oracle
            .depends_with_stats(&Phi::True, &a, u.objects().last().unwrap())
            .unwrap();
        assert_eq!(stats.engine, "interpreted");
        assert_eq!(oracle.stats().compiles, 0);
    }

    #[test]
    fn matrix_agrees_with_rows() {
        let sys = examples::nontransitive_system(2).unwrap();
        let u = sys.universe();
        let oracle = Oracle::new(&sys).unwrap();
        let sources: Vec<ObjSet> = u.objects().map(ObjSet::singleton).collect();
        let rows = oracle.sinks_matrix(&Phi::True, &sources).unwrap();
        for (a, row) in sources.iter().zip(&rows) {
            assert_eq!(*row, oracle.sinks(&Phi::True, a).unwrap());
        }
    }
}
