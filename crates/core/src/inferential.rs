//! Inferential and Direct Dependency (§7.2, "work in progress").
//!
//! Strong dependency corresponds to information transmission only for
//! (relatively) autonomous constraints; §7.2 sketches two alternative
//! models for the general case. This module implements concrete
//! formalizations of both and validates the paper's claims about them.
//!
//! **Inferential Dependency** — β inferentially depends on A after H
//! given φ "if an observer of the system, able to view only β, can make
//! some inference about A that says more about A than can be determined
//! from φ alone". We read "says more" as *posterior refinement*: some
//! observable final β-value shrinks the set of possible initial A-values
//! strictly below what φ alone allows. This notion deliberately ignores
//! "contingent" transmission (the mod-adder: no observation of β says
//! anything about α1 alone), and — unlike strong dependency — it *does*
//! fire on §5.2's non-autonomous `α1 = α2` example.
//!
//! **Direct Dependency** — like inferential dependency but ignoring what
//! can be inferred purely *through the constraint's correlations*. We
//! formalize it as strong dependency evaluated under the *autonomous
//! hull* of φ: the smallest autonomous constraint containing φ (the
//! product of φ's per-object projections). Severing the correlations
//! leaves exactly the transmission carried by the operations themselves,
//! matching §7.2's tag example: `β ← α1` under `φ: α1.tag = α2.tag`
//! transmits *directly* from α1 only, even though inference also reveals
//! part of α2.

use std::collections::{HashMap, HashSet};

use crate::constraint::{Phi, StateSet};
use crate::error::Result;
use crate::history::History;
use crate::system::System;
use crate::universe::{ObjId, ObjSet};

/// A witness of inferential dependency: observing `beta_value` (a domain
/// index of β) after H leaves strictly fewer possible initial A-values
/// than φ alone allows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InferentialWitness {
    /// The observed final β-value (domain index).
    pub beta_value: u32,
    /// Number of A-projections possible a priori (under φ alone).
    pub prior: usize,
    /// Number of A-projections still possible after the observation.
    pub posterior: usize,
}

/// Decides inferential dependency: does some observable final β-value
/// strictly refine the set of possible initial values of A?
pub fn inferentially_depends(
    sys: &System,
    phi: &Phi,
    a: &ObjSet,
    beta: ObjId,
    h: &History,
) -> Result<Option<InferentialWitness>> {
    let mut prior: HashSet<Vec<u32>> = HashSet::new();
    let mut by_obs: HashMap<u32, HashSet<Vec<u32>>> = HashMap::new();
    for sigma in sys.states()? {
        if !phi.holds(sys, &sigma)? {
            continue;
        }
        let initial_a = sigma.project(a);
        let end = sys.run(&sigma, h)?;
        prior.insert(initial_a.clone());
        by_obs.entry(end.index(beta)).or_default().insert(initial_a);
    }
    for (obs, posterior) in by_obs {
        if posterior.len() < prior.len() {
            return Ok(Some(InferentialWitness {
                beta_value: obs,
                prior: prior.len(),
                posterior: posterior.len(),
            }));
        }
    }
    Ok(None)
}

/// The autonomous hull of φ: the smallest autonomous constraint
/// containing φ — extensionally, the full product of φ's per-object
/// projections.
pub fn autonomous_hull(sys: &System, phi: &Phi) -> Result<Phi> {
    let u = sys.universe();
    let n = sys.state_count()?;
    let mut per_obj: Vec<HashSet<u32>> = vec![HashSet::new(); u.num_objects()];
    for sigma in sys.states()? {
        if phi.holds(sys, &sigma)? {
            for (i, set) in per_obj.iter_mut().enumerate() {
                set.insert(sigma.index(ObjId::from_index(i)));
            }
        }
    }
    let mut out = StateSet::new(n);
    'outer: for sigma in sys.states()? {
        for (i, set) in per_obj.iter().enumerate() {
            if !set.contains(&sigma.index(ObjId::from_index(i))) {
                continue 'outer;
            }
        }
        out.insert(sigma.encode(u));
    }
    Ok(Phi::from_set(out))
}

/// Decides direct dependency after a history: strong dependency under the
/// autonomous hull of φ.
pub fn directly_depends_after(
    sys: &System,
    phi: &Phi,
    a: &ObjSet,
    beta: ObjId,
    h: &History,
) -> Result<Option<crate::depend::Witness>> {
    let hull = autonomous_hull(sys, phi)?;
    crate::depend::strongly_depends_after(sys, &hull, a, beta, h)
}

/// Decides direct dependency over all histories.
pub fn directly_depends(
    sys: &System,
    phi: &Phi,
    a: &ObjSet,
    beta: ObjId,
) -> Result<Option<crate::reach::DependsWitness>> {
    let hull = autonomous_hull(sys, phi)?;
    Ok(crate::query::Query::new(hull, a.clone())
        .beta(beta)
        .run_on(sys)?
        .into_witness())
}

/// The per-observation posterior sets themselves, for analysis tooling:
/// maps each achievable final β-value to the set of initial A-projections
/// compatible with it.
pub fn posteriors(
    sys: &System,
    phi: &Phi,
    a: &ObjSet,
    beta: ObjId,
    h: &History,
) -> Result<HashMap<u32, Vec<Vec<u32>>>> {
    let mut by_obs: HashMap<u32, HashSet<Vec<u32>>> = HashMap::new();
    for sigma in sys.states()? {
        if !phi.holds(sys, &sigma)? {
            continue;
        }
        let initial_a = sigma.project(a);
        let end = sys.run(&sigma, h)?;
        by_obs.entry(end.index(beta)).or_default().insert(initial_a);
    }
    Ok(by_obs
        .into_iter()
        .map(|(k, v)| {
            let mut v: Vec<Vec<u32>> = v.into_iter().collect();
            v.sort();
            (k, v)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples;
    use crate::expr::Expr;
    use crate::history::OpId;

    fn h0() -> History {
        History::single(OpId(0))
    }

    #[test]
    fn fires_on_the_sec_5_2_example() {
        // β ← α1 under φ: α1 = α2. Strong dependency is silent from α1;
        // inferential dependency fires (the observer learns α1 exactly).
        let sys = examples::alpha12_copy_system(3).unwrap();
        let u = sys.universe();
        let a1 = u.obj("a1").unwrap();
        let b = u.obj("beta").unwrap();
        let phi = Phi::expr(Expr::var(a1).eq(Expr::var(u.obj("a2").unwrap())));
        let src = ObjSet::singleton(a1);
        assert!(
            crate::depend::strongly_depends_after(&sys, &phi, &src, b, &h0())
                .unwrap()
                .is_none(),
            "strong dependency misses the spread variety"
        );
        let w = inferentially_depends(&sys, &phi, &src, b, &h0())
            .unwrap()
            .expect("inferential dependency fires");
        assert_eq!(w.prior, 3);
        assert_eq!(w.posterior, 1);
        // …and α2 is inferentially revealed too (through the constraint).
        let a2 = u.obj("a2").unwrap();
        assert!(
            inferentially_depends(&sys, &phi, &ObjSet::singleton(a2), b, &h0())
                .unwrap()
                .is_some()
        );
    }

    #[test]
    fn ignores_contingent_transmission() {
        // The mod adder: strong dependency says α1 ▷ β, but no observation
        // of β refines α1 — inferential dependency is silent (§7.2).
        let sys = examples::mod_adder_system(2).unwrap();
        let u = sys.universe();
        let a1 = u.obj("a1").unwrap();
        let b = u.obj("beta").unwrap();
        let src = ObjSet::singleton(a1);
        assert!(
            crate::depend::strongly_depends_after(&sys, &Phi::True, &src, b, &h0())
                .unwrap()
                .is_some()
        );
        assert!(inferentially_depends(&sys, &Phi::True, &src, b, &h0())
            .unwrap()
            .is_none());
        // The pair source is inferentially visible (β reveals the sum).
        let pair = ObjSet::from_iter([a1, u.obj("a2").unwrap()]);
        assert!(inferentially_depends(&sys, &Phi::True, &pair, b, &h0())
            .unwrap()
            .is_some());
    }

    #[test]
    fn implies_strong_dependency_under_relative_autonomy() {
        // §7.2's consistency claim, in the provable direction: for
        // A-autonomous φ, inferential dependency implies strong
        // dependency.
        for seed_k in [2i64, 3] {
            let sys = examples::guarded_copy_system(seed_k).unwrap();
            let u = sys.universe();
            let a = u.obj("alpha").unwrap();
            let b = u.obj("beta").unwrap();
            let src = ObjSet::singleton(a);
            for phi in [
                Phi::True,
                Phi::expr(Expr::var(u.obj("m").unwrap()).not()),
                Phi::expr(Expr::var(a).lt(Expr::int(seed_k - 1))),
            ] {
                assert!(crate::classify::is_autonomous_relative(&sys, &phi, &src).unwrap());
                for h in crate::history::histories_up_to(sys.num_ops(), 2) {
                    let inf = inferentially_depends(&sys, &phi, &src, b, &h)
                        .unwrap()
                        .is_some();
                    let sd = crate::depend::strongly_depends_after(&sys, &phi, &src, b, &h)
                        .unwrap()
                        .is_some();
                    assert!(!inf || sd, "inferential without strong (k={seed_k}, H={h})");
                }
            }
        }
    }

    #[test]
    fn autonomous_hull_is_autonomous_and_contains_phi() {
        let sys = examples::alpha12_copy_system(3).unwrap();
        let u = sys.universe();
        let a1 = u.obj("a1").unwrap();
        let a2 = u.obj("a2").unwrap();
        let phi = Phi::expr(Expr::var(a1).eq(Expr::var(a2)));
        let hull = autonomous_hull(&sys, &phi).unwrap();
        assert!(crate::classify::is_autonomous(&sys, &hull).unwrap());
        assert!(phi.entails(&sys, &hull).unwrap());
        // For an already autonomous φ the hull is φ itself.
        let auto = Phi::expr(Expr::var(a1).lt(Expr::int(2)));
        let hull2 = autonomous_hull(&sys, &auto).unwrap();
        assert_eq!(hull2.sat(&sys).unwrap(), auto.sat(&sys).unwrap());
    }

    #[test]
    fn direct_dependency_on_the_tag_example() {
        // §7.2: β ← α1 with φ: α1.tag = α2.tag. Direct dependency reports
        // α1 → β but not α2 → β.
        use crate::op::{Cmd, Op};
        use crate::universe::{Domain, Universe};
        use crate::value::Value;
        let tagged = |t: i64, v: i64| Value::Record(vec![Value::Int(t), Value::Int(v)]);
        let dom = || {
            Domain::with_fields(
                vec![tagged(0, 0), tagged(0, 1), tagged(1, 0), tagged(1, 1)],
                vec!["tag".into(), "val".into()],
            )
            .unwrap()
        };
        let u = Universe::new(vec![
            ("a1".into(), dom()),
            ("a2".into(), dom()),
            ("beta".into(), dom()),
        ])
        .unwrap();
        let a1 = u.obj("a1").unwrap();
        let a2 = u.obj("a2").unwrap();
        let b = u.obj("beta").unwrap();
        let sys = System::new(u, vec![Op::from_cmd("copy", Cmd::assign(b, Expr::var(a1)))]);
        let phi = Phi::expr(Expr::var(a1).field(0).eq(Expr::var(a2).field(0)));

        // Directly: α1 → β, not α2 → β.
        assert!(directly_depends(&sys, &phi, &ObjSet::singleton(a1), b)
            .unwrap()
            .is_some());
        assert!(directly_depends(&sys, &phi, &ObjSet::singleton(a2), b)
            .unwrap()
            .is_none());
        // Inferentially: both (β's tag says something about α2's tag).
        let h = h0();
        assert!(
            inferentially_depends(&sys, &phi, &ObjSet::singleton(a1), b, &h)
                .unwrap()
                .is_some()
        );
        assert!(
            inferentially_depends(&sys, &phi, &ObjSet::singleton(a2), b, &h)
                .unwrap()
                .is_some()
        );
    }

    #[test]
    fn non_monotone_in_the_constraint() {
        // §7.2: inferential transmission breaks Thm 2-3 monotonicity —
        // imposing φ *adds* the α2 → β path relative to tt.
        let sys = examples::alpha12_copy_system(3).unwrap();
        let u = sys.universe();
        let a1 = u.obj("a1").unwrap();
        let a2 = u.obj("a2").unwrap();
        let b = u.obj("beta").unwrap();
        let phi = Phi::expr(Expr::var(a1).eq(Expr::var(a2)));
        let h = h0();
        // Under tt: no inference about α2.
        assert!(
            inferentially_depends(&sys, &Phi::True, &ObjSet::singleton(a2), b, &h)
                .unwrap()
                .is_none()
        );
        // Under the more restrictive φ: inference about α2 appears.
        assert!(
            inferentially_depends(&sys, &phi, &ObjSet::singleton(a2), b, &h)
                .unwrap()
                .is_some()
        );
    }

    #[test]
    fn posteriors_expose_the_inference() {
        let sys = examples::alpha12_copy_system(3).unwrap();
        let u = sys.universe();
        let a1 = u.obj("a1").unwrap();
        let b = u.obj("beta").unwrap();
        let phi = Phi::expr(Expr::var(a1).eq(Expr::var(u.obj("a2").unwrap())));
        let post = posteriors(&sys, &phi, &ObjSet::singleton(a1), b, &h0()).unwrap();
        // Each of the 3 observable β values pins α1 to exactly one value.
        assert_eq!(post.len(), 3);
        for sets in post.values() {
            assert_eq!(sets.len(), 1);
        }
    }
}
