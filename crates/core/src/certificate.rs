//! Proof certificates.
//!
//! Every prover in [`crate::induction`] and [`crate::cover`] returns a
//! [`Certificate`] recording the technique applied, the premises it
//! discharged and the conclusion — a machine-readable proof outline in the
//! style of the paper's appendix-A derivations. Tests cross-check
//! certificates against the exact decision procedures in [`crate::reach`].

use std::fmt;

/// One discharged premise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fact {
    /// φ was checked autonomous (Def 5-4).
    Autonomous,
    /// φ was checked A-autonomous (Def 5-2) for the named set.
    RelativelyAutonomous(String),
    /// φ was checked invariant under every operation.
    Invariant,
    /// A constraint was checked A-independent (Def 3-1).
    Independent(String),
    /// A family of constraints was checked to cover the state space.
    CoversStateSpace(usize),
    /// A family was checked to be an inductive cover (Def 6-2).
    InductiveCover(usize),
    /// Per-operation check: differences confined to A stay confined to A
    /// (`∀δ, m: A ▷δφ m ⊃ m ∈ A`).
    NoSpreadFrom {
        /// Rendered source set.
        sources: String,
        /// Number of `(constraint, op)` checks discharged.
        checks: usize,
    },
    /// Per-operation check: no operation creates a new difference at β
    /// (`∀δ, M: M ▷δφ β ⊃ β ∈ M`).
    NoNewDifferenceAt {
        /// Sink object name.
        sink: String,
        /// Number of `(constraint, op)` checks discharged.
        checks: usize,
    },
    /// The relation q was checked reflexive and transitive over objects.
    ReflexiveTransitive(String),
    /// Per-operation check: every single-op dependency respects q
    /// (`∀δ, x, y: x ▷δφ y ⊃ q(x, y)`).
    RelationRespected {
        /// Name of the relation.
        relation: String,
        /// Number of `(op, source)` checks discharged.
        checks: usize,
    },
    /// A sub-proof (e.g. one branch of Separation of Variety).
    SubProof(Box<Certificate>),
    /// A free-form recorded fact.
    Note(String),
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fact::Autonomous => write!(f, "φ is autonomous (Def 5-4)"),
            Fact::RelativelyAutonomous(a) => write!(f, "φ is {a}-autonomous (Def 5-2)"),
            Fact::Invariant => write!(f, "φ is invariant"),
            Fact::Independent(a) => write!(f, "constraint is {a}-independent (Def 3-1)"),
            Fact::CoversStateSpace(n) => write!(f, "{n} constraints cover Σ"),
            Fact::InductiveCover(n) => {
                write!(f, "{n} constraints form an inductive cover (Def 6-2)")
            }
            Fact::NoSpreadFrom { sources, checks } => write!(
                f,
                "no operation spreads differences out of {sources} ({checks} checks)"
            ),
            Fact::NoNewDifferenceAt { sink, checks } => write!(
                f,
                "no operation creates a new difference at {sink} ({checks} checks)"
            ),
            Fact::ReflexiveTransitive(q) => {
                write!(f, "relation {q} is reflexive and transitive")
            }
            Fact::RelationRespected { relation, checks } => write!(
                f,
                "every one-operation dependency respects {relation} ({checks} checks)"
            ),
            Fact::SubProof(c) => write!(f, "sub-proof: {}", c.conclusion),
            Fact::Note(s) => write!(f, "{s}"),
        }
    }
}

/// A structured proof produced by one of the induction engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// The proof technique, named after the paper's theorem or corollary
    /// (e.g. "Corollary 4-3").
    pub technique: String,
    /// The proved statement, rendered.
    pub conclusion: String,
    /// The discharged premises, in order.
    pub facts: Vec<Fact>,
}

impl Certificate {
    /// Creates a certificate.
    pub fn new(technique: impl Into<String>, conclusion: impl Into<String>) -> Certificate {
        Certificate {
            technique: technique.into(),
            conclusion: conclusion.into(),
            facts: Vec::new(),
        }
    }

    /// Records a discharged premise.
    pub fn record(&mut self, fact: Fact) -> &mut Self {
        self.facts.push(fact);
        self
    }

    /// Total number of facts, including those inside sub-proofs.
    pub fn total_facts(&self) -> usize {
        self.facts
            .iter()
            .map(|f| match f {
                Fact::SubProof(c) => 1 + c.total_facts(),
                _ => 1,
            })
            .sum()
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "proved: {}", self.conclusion)?;
        writeln!(f, "  by {}", self.technique)?;
        for fact in &self.facts {
            match fact {
                Fact::SubProof(c) => {
                    for (i, line) in c.to_string().lines().enumerate() {
                        if i == 0 {
                            writeln!(f, "  - sub-proof: {line}")?;
                        } else {
                            writeln!(f, "    {line}")?;
                        }
                    }
                }
                other => writeln!(f, "  - {other}")?,
            }
        }
        Ok(())
    }
}

/// The result of attempting a proof technique.
///
/// `Inapplicable` means the technique's premises failed — it says nothing
/// about whether the dependency actually holds (the techniques are sound
/// but incomplete; use [`crate::reach::depends`] for the exact answer).
#[derive(Debug, Clone)]
pub enum ProofOutcome {
    /// The technique applied and the statement is proved.
    Proved(Certificate),
    /// A premise failed; the reason is recorded.
    Inapplicable(String),
}

impl ProofOutcome {
    /// Whether the proof succeeded.
    pub fn is_proved(&self) -> bool {
        matches!(self, ProofOutcome::Proved(_))
    }

    /// The certificate, if proved.
    pub fn certificate(&self) -> Option<&Certificate> {
        match self {
            ProofOutcome::Proved(c) => Some(c),
            ProofOutcome::Inapplicable(_) => None,
        }
    }

    /// The failure reason, if inapplicable.
    pub fn reason(&self) -> Option<&str> {
        match self {
            ProofOutcome::Proved(_) => None,
            ProofOutcome::Inapplicable(r) => Some(r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_render() {
        let mut c = Certificate::new("Corollary 4-3", "¬ alpha ▷φ beta");
        c.record(Fact::Autonomous);
        c.record(Fact::Invariant);
        c.record(Fact::RelationRespected {
            relation: "Cls ≤".into(),
            checks: 12,
        });
        let s = c.to_string();
        assert!(s.contains("Corollary 4-3"));
        assert!(s.contains("autonomous"));
        assert!(s.contains("12 checks"));
        assert_eq!(c.total_facts(), 3);
    }

    #[test]
    fn nested_subproofs_render_and_count() {
        let mut inner = Certificate::new("exact BFS", "¬ a ▷φ∧φ1 b");
        inner.record(Fact::Note("pair reachability exhausted".into()));
        let mut outer = Certificate::new("Theorem 4-5", "¬ a ▷φ b");
        outer.record(Fact::CoversStateSpace(2));
        outer.record(Fact::SubProof(Box::new(inner)));
        assert_eq!(outer.total_facts(), 3);
        let s = outer.to_string();
        assert!(s.contains("sub-proof"));
        assert!(s.contains("pair reachability"));
    }

    #[test]
    fn outcome_accessors() {
        let proved = ProofOutcome::Proved(Certificate::new("t", "c"));
        assert!(proved.is_proved());
        assert!(proved.certificate().is_some());
        assert!(proved.reason().is_none());
        let failed = ProofOutcome::Inapplicable("φ not autonomous".into());
        assert!(!failed.is_proved());
        assert_eq!(failed.reason(), Some("φ not autonomous"));
    }
}
