//! The unified query builder: one entry point for every strong-dependency
//! question.
//!
//! A [`Query`] names a constraint φ and a source set A, a target (a
//! single object β, a set B, or "all sinks"), and optional tuning
//! (engine, compile budget, history-length bound, telemetry sink). It
//! runs either one-shot ([`Query::run_on`] — builds a short-lived
//! [`Oracle`] per call, exactly what the deprecated free functions in
//! [`crate::reach`] used to do) or against a shared [`Oracle`]
//! ([`Query::run`] — compile once, query many times). Both return a
//! [`QueryOutcome`]: the answer, the search diagnostics, and a
//! per-query [`QueryReport`] cost accounting.
//!
//! # Examples
//!
//! ```
//! use sd_core::{examples, ObjSet, Phi, Query, Expr};
//!
//! // δ: if m then β ← α — a flow exists, until φ pins m to false.
//! let sys = examples::guarded_copy_system(2)?;
//! let u = sys.universe();
//! let (alpha, beta, m) = (u.obj("alpha")?, u.obj("beta")?, u.obj("m")?);
//! let src = ObjSet::singleton(alpha);
//! assert!(Query::new(Phi::True, src.clone()).beta(beta).run_on(&sys)?.holds());
//! let phi = Phi::expr(Expr::var(m).not());
//! assert!(!Query::new(phi, src).beta(beta).run_on(&sys)?.holds());
//! # Ok::<(), sd_core::Error>(())
//! ```
//!
//! Against a shared Oracle:
//!
//! ```
//! use sd_core::{examples, ObjSet, Oracle, Phi, Query};
//!
//! let sys = examples::flag_copy_system(3)?;
//! let u = sys.universe();
//! let oracle = Oracle::new(&sys)?;
//! for obj in u.objects() {
//!     let out = Query::new(Phi::True, ObjSet::singleton(obj)).run(&oracle)?;
//!     let _sinks = out.into_sinks().unwrap();
//! }
//! assert_eq!(oracle.stats().compiles, 1);
//! # Ok::<(), sd_core::Error>(())
//! ```

use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::compiled::{CompileBudget, Engine, TableKind};
use crate::constraint::Phi;
use crate::error::{Error, Result};
use crate::fastmap::Fnv64;
use crate::oracle::Oracle;
use crate::reach::{DependsWitness, SearchLimits, SearchStats};
use crate::system::System;
use crate::telemetry::{QueryEvent, QueryReport, Sink};
use crate::universe::{ObjId, ObjSet, Universe};

/// What a [`Query`] asks about its source set.
#[derive(Debug, Clone)]
enum Target {
    /// All sinks of A: `{ β | A ▷φ β }` (the default).
    Sinks,
    /// `A ▷φ β` for one object.
    Beta(ObjId),
    /// The set-target relation `A ▷φ B` (Def 5-7).
    Set(ObjSet),
    /// One sinks row per source set (the §3.6 worth matrix).
    Matrix(Vec<ObjSet>),
}

/// A strong-dependency query, built with method chaining and executed
/// with [`Query::run`] (shared [`Oracle`]) or [`Query::run_on`]
/// (one-shot). See the module docs for examples.
#[derive(Clone)]
pub struct Query {
    phi: Phi,
    a: ObjSet,
    target: Target,
    bound: Option<usize>,
    engine: Engine,
    budget: CompileBudget,
    limits: SearchLimits,
    sink: Option<Arc<dyn Sink>>,
}

/// The answer payload of a [`QueryOutcome`], by target shape.
#[derive(Debug, Clone)]
pub enum QueryAnswer {
    /// Verdict (and witness, when the relation holds) for a β- or
    /// set-target query.
    Depends(Option<DependsWitness>),
    /// The sink set of a sinks query.
    Sinks(ObjSet),
    /// One sink row per source set of a matrix query.
    Matrix(Vec<ObjSet>),
}

/// Everything one query run produced: the answer, the engine's search
/// diagnostics, and the cost report.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The answer, shaped by the query's target.
    pub answer: QueryAnswer,
    /// Search diagnostics — `None` when no pair search ran (bounded
    /// enumeration, empty-target shortcuts).
    pub stats: Option<SearchStats>,
    /// Per-query cost accounting.
    pub report: QueryReport,
}

impl QueryOutcome {
    /// Whether the queried relation holds: a witness was found, or at
    /// least one sink exists (in any row, for matrix queries).
    pub fn holds(&self) -> bool {
        match &self.answer {
            QueryAnswer::Depends(w) => w.is_some(),
            QueryAnswer::Sinks(set) => !set.is_empty(),
            QueryAnswer::Matrix(rows) => rows.iter().any(|r| !r.is_empty()),
        }
    }

    /// The transmission witness, if this was a β/set query that holds.
    pub fn witness(&self) -> Option<&DependsWitness> {
        match &self.answer {
            QueryAnswer::Depends(w) => w.as_ref(),
            _ => None,
        }
    }

    /// Consumes the outcome into its witness (β/set queries).
    pub fn into_witness(self) -> Option<DependsWitness> {
        match self.answer {
            QueryAnswer::Depends(w) => w,
            _ => None,
        }
    }

    /// Consumes the outcome into its sink set (sinks queries).
    pub fn into_sinks(self) -> Option<ObjSet> {
        match self.answer {
            QueryAnswer::Sinks(set) => Some(set),
            _ => None,
        }
    }

    /// Consumes the outcome into its rows (matrix queries).
    pub fn into_rows(self) -> Option<Vec<ObjSet>> {
        match self.answer {
            QueryAnswer::Matrix(rows) => Some(rows),
            _ => None,
        }
    }
}

impl Query {
    /// A query about source set `a` under constraint `phi`. The default
    /// target is all sinks of `a`; narrow it with [`Query::beta`] or
    /// [`Query::set`].
    pub fn new(phi: Phi, a: ObjSet) -> Query {
        Query {
            phi,
            a,
            target: Target::Sinks,
            bound: None,
            engine: Engine::Auto,
            budget: CompileBudget::default(),
            limits: SearchLimits::NONE,
            sink: None,
        }
    }

    /// A matrix query: one sinks row per source set, sharing one
    /// compile and one Sat(φ) enumeration across all rows.
    pub fn matrix(phi: Phi, sources: Vec<ObjSet>) -> Query {
        let mut q = Query::new(phi, ObjSet::empty());
        q.target = Target::Matrix(sources);
        q
    }

    /// Asks `A ▷φ β` for a single target object.
    pub fn beta(mut self, beta: ObjId) -> Query {
        self.target = Target::Beta(beta);
        self
    }

    /// Asks the set-target relation `A ▷φ B` (simultaneous difference at
    /// every object of `b`).
    pub fn set(mut self, b: ObjSet) -> Query {
        self.target = Target::Set(b);
        self
    }

    /// Asks for all sinks of A (the default target).
    pub fn sinks(mut self) -> Query {
        self.target = Target::Sinks;
        self
    }

    /// Restricts the search to histories of length ≤ `max_len`
    /// (brute-force enumeration; only valid for β targets). This is the
    /// single bounded entry point — both the deprecated
    /// `reach::depends_bounded` and [`Oracle::depends_bounded`] now
    /// agree on it, with the bound as the trailing parameter.
    pub fn bounded(mut self, max_len: usize) -> Query {
        self.bound = Some(max_len);
        self
    }

    /// Pins the search engine (default [`Engine::Auto`]). When running
    /// against a shared [`Oracle`], the pinned engine must match the
    /// Oracle's configuration.
    pub fn engine(mut self, engine: Engine) -> Query {
        self.engine = engine;
        self
    }

    /// Sets the compile budget for one-shot runs (ignored by
    /// [`Query::run`], which uses the Oracle's budget).
    pub fn budget(mut self, budget: CompileBudget) -> Query {
        self.budget = budget;
        self
    }

    /// Caps the pair search at `max_pairs` discovered pairs; exceeding
    /// it returns [`Error::BudgetExhausted`]. Both engines discover
    /// pairs in the same order, so the budget trips identically on
    /// either. Goal pairs found at the budget boundary are still
    /// reported.
    pub fn max_pairs(mut self, max_pairs: u64) -> Query {
        self.limits.max_pairs = Some(max_pairs);
        self
    }

    /// Sets a wall-clock deadline `timeout` from now; a search running
    /// past it returns [`Error::DeadlineExceeded`]. Checked once per
    /// BFS level (or per enumerated history for bounded queries), so
    /// overshoot is bounded by one level's expansion.
    pub fn timeout(mut self, timeout: Duration) -> Query {
        self.limits.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Sets an absolute wall-clock deadline (see [`Query::timeout`]).
    pub fn deadline(mut self, deadline: Instant) -> Query {
        self.limits.deadline = Some(deadline);
        self
    }

    /// Attaches a telemetry sink to this query. For one-shot runs the
    /// sink also observes the compile; for [`Query::run`] it overrides
    /// the Oracle's own sink on this query's events.
    pub fn sink(mut self, sink: Arc<dyn Sink>) -> Query {
        self.sink = Some(sink);
        self
    }

    /// A canonical 64-bit fingerprint of the query's *semantic* content:
    /// φ, A, the target shape, the history bound, and the pinned engine.
    /// Tuning that cannot change a successful answer (compile budget,
    /// search limits, telemetry sink) is excluded, which is what makes
    /// the fingerprint usable as a result-cache key: a query that
    /// *completes* returns the same answer under any limits.
    ///
    /// Returns `None` when φ contains a native [`Phi::Pred`] — closure
    /// identity is not canonically hashable, so such queries are not
    /// fingerprintable (and not cacheable).
    ///
    /// The hash is FNV-1a over a tagged little-endian encoding: stable
    /// across processes, runs, and architectures.
    pub fn fingerprint(&self) -> Option<u64> {
        let mut h = Fnv64::new();
        if !self.phi.fingerprint_into(&mut h) {
            return None;
        }
        self.a.hash(&mut h);
        match &self.target {
            Target::Sinks => h.write_u8(1),
            Target::Beta(beta) => {
                h.write_u8(2);
                beta.hash(&mut h);
            }
            Target::Set(b) => {
                h.write_u8(3);
                b.hash(&mut h);
            }
            Target::Matrix(sources) => {
                h.write_u8(4);
                h.write_u64(sources.len() as u64);
                for s in sources {
                    s.hash(&mut h);
                }
            }
        }
        match self.bound {
            None => h.write_u8(0),
            Some(n) => {
                h.write_u8(1);
                h.write_u64(n as u64);
            }
        }
        h.write_u8(match self.engine {
            Engine::Auto => 0,
            Engine::Interpreted => 1,
            Engine::CompiledDense => 2,
            Engine::CompiledSparse => 3,
        });
        Some(h.digest())
    }

    /// Checks every object id the query mentions against the universe,
    /// so untrusted input yields [`Error::UnknownObject`] instead of an
    /// out-of-bounds panic deep in the pair search.
    fn validate(&self, u: &Universe) -> Result<()> {
        let n = u.num_objects();
        let check_set = |set: &ObjSet| -> Result<()> {
            for obj in set.iter() {
                if obj.index() >= n {
                    return Err(Error::UnknownObject(format!("#{}", obj.index())));
                }
            }
            Ok(())
        };
        check_set(&self.a)?;
        match &self.target {
            Target::Sinks => Ok(()),
            Target::Beta(beta) => {
                if beta.index() >= n {
                    return Err(Error::UnknownObject(format!("#{}", beta.index())));
                }
                Ok(())
            }
            Target::Set(b) => check_set(b),
            Target::Matrix(sources) => sources.iter().try_for_each(check_set),
        }
    }

    /// Runs one-shot: builds a short-lived [`Oracle`] for this query
    /// (one compile, one Sat(φ) enumeration) and executes against it.
    pub fn run_on(&self, sys: &System) -> Result<QueryOutcome> {
        // Shortcuts that never need an oracle — identical to the
        // historical free-function behaviour of returning before any
        // compile happens.
        self.validate(sys.universe())?;
        if let Some(out) = self.trivial_outcome() {
            return Ok(out);
        }
        let oracle =
            Oracle::for_phi_sink(sys, &self.phi, self.engine, &self.budget, self.sink.clone())?;
        self.run_with(&oracle, true)
    }

    /// Runs against a shared [`Oracle`], reusing its compiled tables,
    /// interned Sat(φ) enumerations and buffer pool.
    ///
    /// The query's engine must be compatible with the Oracle:
    /// [`Engine::Auto`] (the default) always is; a pinned engine must
    /// match what the Oracle was built with.
    pub fn run(&self, oracle: &Oracle<'_>) -> Result<QueryOutcome> {
        let compatible = match self.engine {
            Engine::Auto => true,
            Engine::Interpreted => oracle.table_kind().is_none(),
            Engine::CompiledDense => oracle.table_kind() == Some(TableKind::Dense),
            Engine::CompiledSparse => oracle.table_kind() == Some(TableKind::Sparse),
        };
        if !compatible {
            return Err(Error::Invalid(format!(
                "query pins engine {:?} but the shared Oracle runs {}; \
                 build the Oracle with that engine or use Query::run_on",
                self.engine,
                oracle.engine_name(),
            )));
        }
        self.validate(oracle.system().universe())?;
        if let Some(out) = self.trivial_outcome() {
            return Ok(out);
        }
        self.run_with(oracle, false)
    }

    /// Answers that need no search at all (empty target set, empty
    /// matrix), reported with a zeroed `"none"` engine report.
    fn trivial_outcome(&self) -> Option<QueryOutcome> {
        let answer = match &self.target {
            Target::Set(b) if b.is_empty() => QueryAnswer::Depends(None),
            Target::Matrix(sources) if sources.is_empty() => QueryAnswer::Matrix(Vec::new()),
            _ => return None,
        };
        Some(QueryOutcome {
            answer,
            stats: None,
            report: QueryReport::empty("none"),
        })
    }

    /// The shared execution core. `fresh` is true when `oracle` was
    /// built by this very run (one-shot), which determines the report's
    /// cache attribution.
    fn run_with(&self, oracle: &Oracle<'_>, fresh: bool) -> Result<QueryOutcome> {
        let sink = self.sink.as_deref().or_else(|| oracle.sink_ref());
        let partition_cached = !fresh && oracle.phi_interned(&self.phi);
        let fresh_compile = fresh && oracle.stats().compiles > 0;
        let start = Instant::now();
        let (answer, stats, counters) = match (&self.target, self.bound) {
            (Target::Beta(beta), Some(max_len)) => {
                let witness =
                    oracle.depends_bounded_at(&self.phi, &self.a, *beta, max_len, &self.limits)?;
                (QueryAnswer::Depends(witness), None, Default::default())
            }
            (_, Some(_)) => {
                return Err(Error::Invalid(
                    "bounded queries require a single-object β target".into(),
                ))
            }
            (Target::Beta(beta), None) => {
                let part = oracle.partition_at(&self.phi, &self.a, sink)?;
                let (witness, stats, counters) =
                    oracle.depends_partition_at(&part, *beta, &self.limits, sink)?;
                (QueryAnswer::Depends(witness), Some(stats), counters)
            }
            (Target::Set(b), None) => {
                let u = oracle.system().universe();
                let targets: Vec<(u64, u64)> = b
                    .iter()
                    .map(|obj| crate::reach::extractor(u, obj))
                    .collect();
                let part = oracle.partition_at(&self.phi, &self.a, sink)?;
                let (witness, stats, counters) =
                    oracle.search_partition_at(&part, &self.limits, sink, move |c1, c2| {
                        targets
                            .iter()
                            .all(|&(stride, dom)| (c1 / stride) % dom != (c2 / stride) % dom)
                    })?;
                (QueryAnswer::Depends(witness), Some(stats), counters)
            }
            (Target::Sinks, None) => {
                let part = oracle.partition_at(&self.phi, &self.a, sink)?;
                let (set, stats, counters) =
                    oracle.sinks_partition_at(&part, &self.limits, sink)?;
                (QueryAnswer::Sinks(set), Some(stats), counters)
            }
            (Target::Matrix(sources), None) => {
                let (rows, stats, counters) =
                    oracle.sinks_matrix_at(&self.phi, sources, &self.limits, sink)?;
                (QueryAnswer::Matrix(rows), Some(stats), counters)
            }
        };
        let report = QueryReport {
            engine: match &stats {
                Some(s) => s.engine,
                // Bounded enumeration replays histories on the AST
                // interpreter regardless of the oracle's tables.
                None => "interpreted",
            },
            wall_ns: start.elapsed().as_nanos() as u64,
            visited_pairs: stats.as_ref().map_or(0, |s| s.visited_pairs),
            pair_expansions: counters.expansions,
            levels: stats.as_ref().map_or(0, |s| s.levels),
            partition_cached,
            fresh_compile,
            rows_reused: counters.rows_reused,
            rows_materialized: counters.rows_materialized,
        };
        if let Some(s) = sink {
            s.record(&QueryEvent::QueryDone { report });
        }
        Ok(QueryOutcome {
            answer,
            stats,
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples;
    use crate::telemetry::RecordingSink;

    fn sys3() -> System {
        examples::flag_copy_system(3).unwrap()
    }

    #[test]
    fn builder_answers_match_oracle_paths() {
        let sys = sys3();
        let u = sys.universe();
        let oracle = Oracle::new(&sys).unwrap();
        for a in u.objects() {
            let src = ObjSet::singleton(a);
            let shared = Query::new(Phi::True, src.clone()).run(&oracle).unwrap();
            let oneshot = Query::new(Phi::True, src.clone()).run_on(&sys).unwrap();
            assert_eq!(
                shared.clone().into_sinks().unwrap(),
                oneshot.into_sinks().unwrap()
            );
            assert_eq!(
                shared.into_sinks().unwrap(),
                oracle.sinks(&Phi::True, &src).unwrap()
            );
        }
        assert_eq!(oracle.stats().compiles, 1);
    }

    #[test]
    fn report_attributes_cache_hits_on_shared_oracle() {
        let sys = sys3();
        let u = sys.universe();
        let a = ObjSet::singleton(u.objects().next().unwrap());
        let beta = u.objects().last().unwrap();
        let oracle = Oracle::new(&sys).unwrap();
        let cold = Query::new(Phi::True, a.clone())
            .beta(beta)
            .run(&oracle)
            .unwrap();
        assert!(!cold.report.partition_cached);
        assert!(!cold.report.fresh_compile);
        let warm = Query::new(Phi::True, a).beta(beta).run(&oracle).unwrap();
        assert!(warm.report.partition_cached);
        assert!(warm.report.pair_expansions > 0);
    }

    #[test]
    fn one_shot_reports_fresh_compile_not_cache() {
        let sys = sys3();
        let u = sys.universe();
        let a = ObjSet::singleton(u.obj("alpha").unwrap());
        let out = Query::new(Phi::True, a).run_on(&sys).unwrap();
        assert!(out.report.fresh_compile);
        assert!(!out.report.partition_cached);
        assert!(out.stats.is_some());
    }

    #[test]
    fn pinned_engine_must_match_shared_oracle() {
        let sys = sys3();
        let u = sys.universe();
        let a = ObjSet::singleton(u.obj("alpha").unwrap());
        let oracle =
            Oracle::with_engine(&sys, Engine::Interpreted, &CompileBudget::default()).unwrap();
        let err = Query::new(Phi::True, a.clone())
            .engine(Engine::CompiledDense)
            .run(&oracle)
            .unwrap_err();
        assert!(matches!(err, Error::Invalid(_)));
        let ok = Query::new(Phi::True, a)
            .engine(Engine::Interpreted)
            .run(&oracle);
        assert!(ok.is_ok());
    }

    #[test]
    fn bounded_requires_beta_target() {
        let sys = sys3();
        let u = sys.universe();
        let a = ObjSet::singleton(u.obj("alpha").unwrap());
        let err = Query::new(Phi::True, a)
            .bounded(2)
            .run_on(&sys)
            .unwrap_err();
        assert!(matches!(err, Error::Invalid(_)));
    }

    #[test]
    fn empty_targets_short_circuit_without_searching() {
        let sys = sys3();
        let u = sys.universe();
        let a = ObjSet::singleton(u.obj("alpha").unwrap());
        let out = Query::new(Phi::True, a)
            .set(ObjSet::empty())
            .run_on(&sys)
            .unwrap();
        assert!(!out.holds());
        assert_eq!(out.report.engine, "none");
        let out = Query::matrix(Phi::True, Vec::new()).run_on(&sys).unwrap();
        assert_eq!(out.into_rows().unwrap().len(), 0);
    }

    #[test]
    fn per_query_sink_observes_run_on_shared_oracle() {
        let sys = sys3();
        let u = sys.universe();
        let a = ObjSet::singleton(u.obj("alpha").unwrap());
        let beta = u.obj("beta").unwrap();
        let oracle = Oracle::new(&sys).unwrap();
        let sink = Arc::new(RecordingSink::new());
        let out = Query::new(Phi::True, a)
            .beta(beta)
            .sink(sink.clone())
            .run(&oracle)
            .unwrap();
        assert!(out.holds());
        assert_eq!(sink.count(|e| matches!(e, QueryEvent::QueryDone { .. })), 1);
        assert!(sink.count(|e| matches!(e, QueryEvent::BfsLevel { .. })) > 0);
        assert_eq!(sink.count(|e| matches!(e, QueryEvent::Witness { .. })), 1);
    }
}
