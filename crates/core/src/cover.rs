//! Separation of Variety (§4.5, Thm 4-5) and inductive covers (§6.4,
//! Def 6-2, Thm 6-7).
//!
//! Strong dependency is not transitive (§4.4), so plain induction can get
//! stuck. Separation of Variety splits the state space along an
//! A-*independent* cover `{φi}`: if `¬A ▷(φ∧φi) β` for every piece, then
//! `¬A ▷φ β`. Inductive covers generalize invariance: a family `{φi}` such
//! that every `[H]φ` is contained in some `φi` lets the per-operation
//! induction checks be discharged piecewise — this is exactly how Floyd
//! assertions enter in §6.5.

use crate::certificate::{Certificate, Fact, ProofOutcome};
use crate::classify;
use crate::compiled::par_map_chunks;
use crate::constraint::{Phi, StateSet};
use crate::error::Result;
use crate::oracle::Oracle;
use crate::system::System;
use crate::universe::{ObjId, ObjSet};

/// Whether `{φi}` is an A-independent cover (Def 4-1): each φi is
/// A-independent, and together they cover Σ.
pub fn is_independent_cover(sys: &System, phis: &[Phi], a: &ObjSet) -> Result<bool> {
    for phi in phis {
        if !classify::is_independent(sys, phi, a)? {
            return Ok(false);
        }
    }
    let n = sys.state_count()?;
    let mut union = StateSet::new(n);
    for phi in phis {
        union.union_with(&phi.sat(sys)?);
    }
    Ok(union.count() == n)
}

/// The strategy used to discharge each piece of a Separation-of-Variety
/// proof.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PieceStrategy {
    /// Decide `¬A ▷(φ∧φi) β` exactly with the pair-reachability BFS.
    ExactBfs,
    /// Prove each piece with Corollary 5-6 (requires each φ∧φi invariant).
    Cor56,
    /// Prove each piece with Corollary 6-5 (handles non-invariant pieces).
    Cor65,
}

/// Theorem 4-5 as a proof technique: given an A-independent cover `{φi}`,
/// if `¬A ▷(φ∧φi) β` for every i, then `¬A ▷φ β`.
///
/// Compiles the system once and discharges every piece against the shared
/// [`Oracle`]; see [`prove_separation_of_variety_with`].
pub fn prove_separation_of_variety(
    sys: &System,
    phi: &Phi,
    cover: &[Phi],
    a: &ObjSet,
    beta: ObjId,
    strategy: PieceStrategy,
) -> Result<ProofOutcome> {
    let oracle = Oracle::new(sys)?;
    prove_separation_of_variety_with(&oracle, phi, cover, a, beta, strategy)
}

/// [`prove_separation_of_variety`] against a prepared [`Oracle`]: the
/// pieces are discharged in parallel over the shared compiled system, then
/// merged in piece order so the reported first failure (and the recorded
/// sub-certificates) are identical to a sequential sweep.
pub fn prove_separation_of_variety_with(
    oracle: &Oracle,
    phi: &Phi,
    cover: &[Phi],
    a: &ObjSet,
    beta: ObjId,
    strategy: PieceStrategy,
) -> Result<ProofOutcome> {
    let sys = oracle.system();
    if cover.is_empty() {
        return Ok(ProofOutcome::Inapplicable("empty cover".into()));
    }
    for (i, piece) in cover.iter().enumerate() {
        if !classify::is_independent(sys, piece, a)? {
            return Ok(ProofOutcome::Inapplicable(format!(
                "cover element {i} is not A-independent"
            )));
        }
    }
    let n = sys.state_count()?;
    let mut union = StateSet::new(n);
    for piece in cover {
        union.union_with(&piece.sat(sys)?);
    }
    if union.count() != n {
        return Ok(ProofOutcome::Inapplicable(
            "cover does not cover the state space".into(),
        ));
    }
    let a_names: Vec<&str> = a.iter().map(|o| sys.universe().name(o)).collect();
    let mut cert = Certificate::new(
        "Theorem 4-5 (Separation of Variety)",
        format!(
            "¬ {{{}}} ▷φ {}",
            a_names.join(", "),
            sys.universe().name(beta)
        ),
    );
    cert.record(Fact::Independent(format!("{{{}}}", a_names.join(", "))));
    cert.record(Fact::CoversStateSpace(cover.len()));
    // Each piece proof is independent of the others, so run them in
    // parallel against the shared Oracle and replay the outcomes in piece
    // order (first failure wins, exactly as the sequential loop reported).
    let indices: Vec<usize> = (0..cover.len()).collect();
    let outcomes: Vec<Result<std::result::Result<Certificate, String>>> =
        par_map_chunks(&indices, 1, |chunk| {
            chunk
                .iter()
                .map(|&i| -> Result<std::result::Result<Certificate, String>> {
                    let conj = phi.clone().and(cover[i].clone());
                    match strategy {
                        PieceStrategy::ExactBfs => {
                            if oracle.depends(&conj, a, beta)?.is_some() {
                                return Ok(Err(format!(
                                    "piece {i}: A ▷(φ∧φ{i}) β holds — no proof possible"
                                )));
                            }
                            let mut c = Certificate::new(
                                "exact pair reachability",
                                format!("¬ A ▷(φ∧φ{i}) β"),
                            );
                            c.record(Fact::Note("pair-BFS exhausted with no β-difference".into()));
                            Ok(Ok(c))
                        }
                        PieceStrategy::Cor56 => {
                            match crate::induction::prove_cor_5_6_with(oracle, &conj, a, beta)? {
                                ProofOutcome::Proved(c) => Ok(Ok(c)),
                                ProofOutcome::Inapplicable(r) => {
                                    Ok(Err(format!("piece {i}: Corollary 5-6 failed: {r}")))
                                }
                            }
                        }
                        PieceStrategy::Cor65 => {
                            match crate::induction::prove_cor_6_5_with(oracle, &conj, a, beta)? {
                                ProofOutcome::Proved(c) => Ok(Ok(c)),
                                ProofOutcome::Inapplicable(r) => {
                                    Ok(Err(format!("piece {i}: Corollary 6-5 failed: {r}")))
                                }
                            }
                        }
                    }
                })
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
    for outcome in outcomes {
        match outcome? {
            Ok(sub) => {
                cert.record(Fact::SubProof(Box::new(sub)));
            }
            Err(reason) => return Ok(ProofOutcome::Inapplicable(reason)),
        }
    }
    Ok(ProofOutcome::Proved(cert))
}

/// Whether `{φi}` is an inductive cover for φ (Def 6-2): every reachable
/// `[H]φ` is contained in some φi. Exact, via image-set enumeration.
pub fn is_inductive_cover(sys: &System, phi: &Phi, cover: &[Phi]) -> Result<bool> {
    let oracle = Oracle::new(sys)?;
    is_inductive_cover_with(&oracle, phi, cover)
}

/// [`is_inductive_cover`] against a prepared [`Oracle`].
pub fn is_inductive_cover_with(oracle: &Oracle, phi: &Phi, cover: &[Phi]) -> Result<bool> {
    let sys = oracle.system();
    let sats: Vec<StateSet> = cover.iter().map(|p| p.sat(sys)).collect::<Result<_>>()?;
    for image in crate::after::reachable_images_with(oracle, phi)? {
        if !sats.iter().any(|s| image.is_subset(s)) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// A sufficient one-step condition for Def 6-2: Sat(φ) ⊆ some φi, and for
/// every i and δ, δ(Sat(φi)) ⊆ some φj. Cheaper than the exact check and
/// matches how Floyd-style covers are justified in §6.5.
pub fn is_inductive_cover_one_step(sys: &System, phi: &Phi, cover: &[Phi]) -> Result<bool> {
    let sats: Vec<StateSet> = cover.iter().map(|p| p.sat(sys)).collect::<Result<_>>()?;
    let start = phi.sat(sys)?;
    if !sats.iter().any(|s| start.is_subset(s)) {
        return Ok(false);
    }
    for sat in &sats {
        for op in sys.op_ids() {
            let img = crate::after::image_op(sys, sat, op)?;
            if !sats.iter().any(|s| img.is_subset(s)) {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

/// Theorem 6-7 as a proof technique: if `{φi}` is an inductive cover for φ
/// and, globally, either no operation spreads differences out of A under
/// any φi, or no operation creates a new difference at β under any φi,
/// then `¬A ▷φ β`.
pub fn prove_inductive_cover(
    sys: &System,
    phi: &Phi,
    cover: &[Phi],
    a: &ObjSet,
    beta: ObjId,
) -> Result<ProofOutcome> {
    let oracle = Oracle::new(sys)?;
    prove_inductive_cover_with(&oracle, phi, cover, a, beta)
}

/// [`prove_inductive_cover`] against a prepared [`Oracle`]: the Def 6-2
/// image enumeration and every per-operation disjunct check run over
/// compiled successor rows.
pub fn prove_inductive_cover_with(
    oracle: &Oracle,
    phi: &Phi,
    cover: &[Phi],
    a: &ObjSet,
    beta: ObjId,
) -> Result<ProofOutcome> {
    let sys = oracle.system();
    if a.contains(beta) {
        return Ok(ProofOutcome::Inapplicable("β ∈ A".into()));
    }
    if !is_inductive_cover_with(oracle, phi, cover)? {
        return Ok(ProofOutcome::Inapplicable(
            "{φi} is not an inductive cover for φ (Def 6-2)".into(),
        ));
    }
    let sats: Vec<StateSet> = cover.iter().map(|p| p.sat(sys)).collect::<Result<_>>()?;
    let a_names: Vec<&str> = a.iter().map(|o| sys.universe().name(o)).collect();
    let mut cert = Certificate::new(
        "Theorem 6-7 (inductive cover)",
        format!(
            "¬ {{{}}} ▷φ {}",
            a_names.join(", "),
            sys.universe().name(beta)
        ),
    );
    cert.record(Fact::InductiveCover(cover.len()));
    // Branch 1: ∀(i, δ): differences confined to A stay confined.
    let mut checks = 0;
    let mut branch1 = true;
    'b1: for sat in &sats {
        for op in sys.op_ids() {
            checks += 1;
            if !crate::induction::op_confines_diffs_with(oracle, sat, a, op)? {
                branch1 = false;
                break 'b1;
            }
        }
    }
    if branch1 {
        cert.record(Fact::NoSpreadFrom {
            sources: format!("{{{}}}", a_names.join(", ")),
            checks,
        });
        return Ok(ProofOutcome::Proved(cert));
    }
    // Branch 2: ∀(i, δ): no new difference at β.
    let mut checks = 0;
    for sat in &sats {
        for op in sys.op_ids() {
            checks += 1;
            if !crate::induction::op_no_new_diff_at_with(oracle, sat, beta, op)? {
                return Ok(ProofOutcome::Inapplicable(
                    "both Theorem 6-7 disjuncts fail over the cover".into(),
                ));
            }
        }
    }
    cert.record(Fact::NoNewDifferenceAt {
        sink: sys.universe().name(beta).to_string(),
        checks,
    });
    Ok(ProofOutcome::Proved(cert))
}

/// Theorem 4-5 as a runtime check (for tests): if `{φi}` is an
/// A-independent cover and `A ▷φ β`, then `A ▷(φ∧φi) β` for some i.
pub fn check_theorem_4_5(
    sys: &System,
    phi: &Phi,
    cover: &[Phi],
    a: &ObjSet,
    beta: ObjId,
) -> Result<bool> {
    if !is_independent_cover(sys, cover, a)? {
        // Vacuously true: the theorem's premise fails.
        return Ok(true);
    }
    if !crate::query::Query::new(phi.clone(), a.clone())
        .beta(beta)
        .run_on(sys)?
        .holds()
    {
        return Ok(true);
    }
    for piece in cover {
        let conj = phi.clone().and(piece.clone());
        if crate::query::Query::new(conj, a.clone())
            .beta(beta)
            .run_on(sys)?
            .holds()
        {
            return Ok(true);
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::op::{Cmd, Op};
    use crate::universe::{Domain, Universe};

    /// Exact `A ▷φ β` verdict through the Query builder.
    fn exact_depends(
        sys: &System,
        phi: &Phi,
        a: &ObjSet,
        beta: crate::universe::ObjId,
    ) -> Option<crate::reach::DependsWitness> {
        crate::query::Query::new(phi.clone(), a.clone())
            .beta(beta)
            .run_on(sys)
            .unwrap()
            .into_witness()
    }

    /// The §4.4/§4.6 non-transitive system:
    /// δ1: if q then m ← α; δ2: if ¬q then β ← m.
    fn nontransitive() -> System {
        let u = Universe::new(vec![
            ("alpha".into(), Domain::int_range(0, 1).unwrap()),
            ("beta".into(), Domain::int_range(0, 1).unwrap()),
            ("m".into(), Domain::int_range(0, 1).unwrap()),
            ("q".into(), Domain::boolean()),
        ])
        .unwrap();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let m = u.obj("m").unwrap();
        let q = u.obj("q").unwrap();
        System::new(
            u,
            vec![
                Op::from_cmd("d1", Cmd::when(Expr::var(q), Cmd::assign(m, Expr::var(a)))),
                Op::from_cmd(
                    "d2",
                    Cmd::when(Expr::var(q).not(), Cmd::assign(b, Expr::var(m))),
                ),
            ],
        )
    }

    #[test]
    fn separation_of_variety_sec_4_6() {
        // With the α-independent cover {q, ¬q}, Separation of Variety
        // proves ¬α ▷ β even though ▷ is non-transitive here.
        let sys = nontransitive();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let q = u.obj("q").unwrap();
        let cover = vec![Phi::expr(Expr::var(q)), Phi::expr(Expr::var(q).not())];
        let src = ObjSet::singleton(a);
        assert!(is_independent_cover(&sys, &cover, &src).unwrap());
        let out =
            prove_separation_of_variety(&sys, &Phi::True, &cover, &src, b, PieceStrategy::ExactBfs)
                .unwrap();
        assert!(out.is_proved(), "{:?}", out.reason());
        // Exact oracle agrees.
        assert!(exact_depends(&sys, &Phi::True, &src, b).is_none());
    }

    #[test]
    fn cover_on_wrong_object_fails_sec_4_5() {
        // Splitting on m instead of q leaves the flow alive in the system
        // δ: if m then β ← α. Under φ1 (m = tt) the flow persists.
        let u = Universe::new(vec![
            ("alpha".into(), Domain::int_range(0, 1).unwrap()),
            ("beta".into(), Domain::int_range(0, 1).unwrap()),
            ("m".into(), Domain::boolean()),
        ])
        .unwrap();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let m = u.obj("m").unwrap();
        let sys = System::new(
            u,
            vec![Op::from_cmd(
                "copy",
                Cmd::when(Expr::var(m), Cmd::assign(b, Expr::var(a))),
            )],
        );
        let cover = vec![Phi::expr(Expr::var(m)), Phi::expr(Expr::var(m).not())];
        let src = ObjSet::singleton(a);
        let out =
            prove_separation_of_variety(&sys, &Phi::True, &cover, &src, b, PieceStrategy::ExactBfs)
                .unwrap();
        assert!(!out.is_proved());
        assert!(out.reason().unwrap().contains("piece 0"));
        // The m = ff piece on its own does block the flow (paper's point:
        // one piece blocks, the other does not).
        let phi2 = Phi::expr(Expr::var(m).not());
        assert!(exact_depends(&sys, &phi2, &src, b).is_none());
    }

    #[test]
    fn non_independent_cover_rejected() {
        let sys = nontransitive();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        // Splitting on α itself is not α-independent.
        let cover = vec![
            Phi::expr(Expr::var(a).eq(Expr::int(0))),
            Phi::expr(Expr::var(a).eq(Expr::int(1))),
        ];
        let src = ObjSet::singleton(a);
        assert!(!is_independent_cover(&sys, &cover, &src).unwrap());
        let out =
            prove_separation_of_variety(&sys, &Phi::True, &cover, &src, b, PieceStrategy::ExactBfs)
                .unwrap();
        assert!(out.reason().unwrap().contains("not A-independent"));
    }

    #[test]
    fn incomplete_cover_rejected() {
        let sys = nontransitive();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let q = u.obj("q").unwrap();
        let cover = vec![Phi::expr(Expr::var(q))];
        let out = prove_separation_of_variety(
            &sys,
            &Phi::True,
            &cover,
            &ObjSet::singleton(a),
            b,
            PieceStrategy::ExactBfs,
        )
        .unwrap();
        assert!(out.reason().unwrap().contains("does not cover"));
    }

    #[test]
    fn oscillator_inductive_cover_sec_6_4() {
        // δ: (β ← α; α ← -α), φ(σ) ≡ σ.α = 37. The cover
        // {α = 37, α = -37} is inductive, and Theorem 6-7 proves ¬α ▷φ β.
        let u = Universe::new(vec![
            ("alpha".into(), Domain::ints([-37, 37]).unwrap()),
            ("beta".into(), Domain::ints([-37, 0, 37]).unwrap()),
        ])
        .unwrap();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let sys = System::new(
            u,
            vec![Op::from_cmd(
                "osc",
                Cmd::Seq(vec![
                    Cmd::assign(b, Expr::var(a)),
                    Cmd::assign(a, Expr::var(a).neg()),
                ]),
            )],
        );
        let phi = Phi::expr(Expr::var(a).eq(Expr::int(37)));
        let cover = vec![
            Phi::expr(Expr::var(a).eq(Expr::int(37))),
            Phi::expr(Expr::var(a).eq(Expr::int(-37))),
        ];
        assert!(is_inductive_cover(&sys, &phi, &cover).unwrap());
        assert!(is_inductive_cover_one_step(&sys, &phi, &cover).unwrap());
        let out = prove_inductive_cover(&sys, &phi, &cover, &ObjSet::singleton(a), b).unwrap();
        assert!(out.is_proved(), "{:?}", out.reason());
        assert!(exact_depends(&sys, &phi, &ObjSet::singleton(a), b).is_none());

        // The paper's "retreat to invariance" fails: the most restrictive
        // invariant φ* ⊇ φ is α = ±37, and under it the flow exists.
        let phi_star = Phi::expr(
            Expr::var(a)
                .eq(Expr::int(37))
                .or(Expr::var(a).eq(Expr::int(-37))),
        );
        assert!(crate::classify::is_invariant(&sys, &phi_star).unwrap());
        assert!(exact_depends(&sys, &phi_star, &ObjSet::singleton(a), b).is_some());
    }

    #[test]
    fn non_cover_detected() {
        let sys = nontransitive();
        let u = sys.universe();
        let q = u.obj("q").unwrap();
        // {q} alone is not an inductive cover for tt (misses ¬q states).
        let cover = vec![Phi::expr(Expr::var(q))];
        assert!(!is_inductive_cover(&sys, &Phi::True, &cover).unwrap());
        assert!(!is_inductive_cover_one_step(&sys, &Phi::True, &cover).unwrap());
    }

    #[test]
    fn theorem_4_5_property() {
        let sys = nontransitive();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let m = u.obj("m").unwrap();
        let q = u.obj("q").unwrap();
        let cover = vec![Phi::expr(Expr::var(q)), Phi::expr(Expr::var(q).not())];
        // Check the theorem for several source/sink combinations.
        for (src, sink) in [(a, b), (a, m), (m, b), (q, b)] {
            assert!(
                check_theorem_4_5(&sys, &Phi::True, &cover, &ObjSet::singleton(src), sink).unwrap()
            );
        }
    }
}
