//! Computational systems <Σ, Δ> (§1.2).

use std::fmt;

use crate::error::{Error, Result};
use crate::history::{History, OpId};
use crate::op::Op;
use crate::state::{State, StateIter};
use crate::universe::{Universe, DEFAULT_ENUM_LIMIT};

/// A computational system: a universe of objects together with a finite set
/// of operations.
///
/// A behaviour (computation) is a pair `<σ, H>`; [`System::run`] executes
/// one. All the decision procedures in this crate take a `&System`.
#[derive(Debug, Clone)]
pub struct System {
    universe: Universe,
    ops: Vec<Op>,
    enum_limit: u128,
}

impl System {
    /// Creates a system from a universe and operations.
    pub fn new(universe: Universe, ops: Vec<Op>) -> System {
        System {
            universe,
            ops,
            enum_limit: DEFAULT_ENUM_LIMIT,
        }
    }

    /// Overrides the enumeration limit used by exhaustive procedures.
    #[must_use]
    pub fn with_enum_limit(mut self, limit: u128) -> System {
        self.enum_limit = limit;
        self
    }

    /// The object universe.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// The configured enumeration limit.
    pub fn enum_limit(&self) -> u128 {
        self.enum_limit
    }

    /// Number of operations.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// All operation ids.
    pub fn op_ids(&self) -> impl Iterator<Item = OpId> {
        (0..self.ops.len() as u32).map(OpId)
    }

    /// Looks up an operation by id.
    pub fn op(&self, id: OpId) -> Result<&Op> {
        self.ops
            .get(id.index())
            .ok_or_else(|| Error::UnknownOp(format!("δ{}", id.0)))
    }

    /// Looks up an operation id by name.
    pub fn op_by_name(&self, name: &str) -> Result<OpId> {
        self.ops
            .iter()
            .position(|o| o.name() == name)
            .map(|i| OpId(i as u32))
            .ok_or_else(|| Error::UnknownOp(name.to_string()))
    }

    /// Applies a single operation: `δ(σ)`.
    pub fn apply(&self, op: OpId, sigma: &State) -> Result<State> {
        self.op(op)?.apply(&self.universe, sigma)
    }

    /// Runs a behaviour `<σ, H>`: `H(σ)` per Def 1-3.
    pub fn run(&self, sigma: &State, h: &History) -> Result<State> {
        let mut cur = sigma.clone();
        for &op in h.ops() {
            cur = self.apply(op, &cur)?;
        }
        Ok(cur)
    }

    /// Iterates every state, after checking the enumeration limit.
    pub fn states(&self) -> Result<StateIter<'_>> {
        self.universe.checked_state_count(self.enum_limit)?;
        Ok(StateIter::new(&self.universe))
    }

    /// Number of states, checked against the enumeration limit.
    pub fn state_count(&self) -> Result<u64> {
        self.universe.checked_state_count(self.enum_limit)
    }

    /// Checks that every operation is total on the state space: applying any
    /// operation to any state stays within the declared domains.
    ///
    /// Returns the number of `(state, op)` pairs checked. A system that
    /// fails validation has a bug in its description (an operation escapes a
    /// domain), and the decision procedures may report errors on it.
    pub fn validate(&self) -> Result<u64> {
        let mut checked = 0;
        for sigma in self.states()? {
            for op in self.op_ids() {
                self.apply(op, &sigma)?;
                checked += 1;
            }
        }
        Ok(checked)
    }
}

impl fmt::Display for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.universe)?;
        writeln!(f, "operations:")?;
        for (i, op) in self.ops.iter().enumerate() {
            writeln!(f, "  δ{}: {}", i, op.name())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::op::Cmd;
    use crate::universe::Domain;

    fn copy_system() -> System {
        let u = Universe::new(vec![
            ("alpha".into(), Domain::int_range(0, 3).unwrap()),
            ("beta".into(), Domain::int_range(0, 3).unwrap()),
        ])
        .unwrap();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        System::new(u, vec![Op::from_cmd("copy", Cmd::assign(b, Expr::var(a)))])
    }

    #[test]
    fn run_executes_histories() {
        let sys = copy_system();
        let u = sys.universe();
        let b = u.obj("beta").unwrap();
        let s = State::from_indices(vec![2, 0]);
        let h = History::from_ops(vec![OpId(0), OpId(0)]);
        let out = sys.run(&s, &h).unwrap();
        assert_eq!(out.index(b), 2);
        // λ leaves the state unchanged.
        assert_eq!(sys.run(&s, &History::empty()).unwrap(), s);
    }

    #[test]
    fn op_lookup() {
        let sys = copy_system();
        assert_eq!(sys.op_by_name("copy").unwrap(), OpId(0));
        assert!(sys.op_by_name("zap").is_err());
        assert!(sys.op(OpId(5)).is_err());
        assert_eq!(sys.op(OpId(0)).unwrap().name(), "copy");
    }

    #[test]
    fn validate_accepts_closed_system() {
        let sys = copy_system();
        assert_eq!(sys.validate().unwrap(), 16);
    }

    #[test]
    fn validate_rejects_escaping_op() {
        let u = Universe::new(vec![("x".into(), Domain::int_range(0, 1).unwrap())]).unwrap();
        let x = u.obj("x").unwrap();
        let sys = System::new(
            u,
            vec![Op::from_cmd(
                "inc",
                Cmd::assign(x, Expr::var(x).add(Expr::int(1))),
            )],
        );
        assert!(sys.validate().is_err());
    }

    #[test]
    fn enum_limit_is_enforced() {
        let sys = copy_system().with_enum_limit(3);
        assert!(sys.states().is_err());
        assert!(sys.state_count().is_err());
    }
}
