//! Core formal model and decision procedures for **Strong Dependency**
//! (Ellis Cohen, "Information Transmission in Computational Systems",
//! SOSP 1977).
//!
//! The crate provides:
//!
//! - the paper's model of computational systems `<Σ, Δ>` over finite
//!   domains ([`universe`], [`state`], [`op`], [`system`], [`history`]);
//! - constraints φ and their semantic classification — A-independence,
//!   A-strictness, (relative) autonomy, invariance ([`constraint`],
//!   [`classify`], [`after`]);
//! - exact decision procedures for strong dependency `A ▷φ β`, both per
//!   history (Defs 2-3…2-11, 5-5…5-7) and over *all* histories via pair
//!   reachability ([`depend`], [`reach`]), with a compiled transition-table
//!   engine for the pair search ([`compiled`]), a unified [`query`]
//!   builder over compile-once [`oracle`] sessions, and pluggable query
//!   observability ([`telemetry`]);
//! - the paper's proof techniques as certificate-producing provers:
//!   Strong Dependency Induction, Separation of Variety and inductive
//!   covers ([`induction`], [`cover`], [`certificate`]);
//! - information problems, the worth measure, and maximal solutions
//!   ([`problem`], [`worth`], [`solve`]);
//! - observation models resolving the §6.5 program-counter paradox
//!   ([`observe`]), and the §7.2 Inferential/Direct Dependency extensions
//!   ([`inferential`]);
//! - builders for every example system in the paper ([`examples`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod after;
pub mod bitset;
pub mod certificate;
pub mod classify;
pub mod compiled;
pub mod constraint;
pub mod cover;
pub mod depend;
pub mod error;
pub mod examples;
pub mod expr;
pub mod fastmap;
pub mod history;
pub mod induction;
pub mod inferential;
pub mod json;
pub mod mechanism;
pub mod metrics;
pub mod observe;
pub mod op;
pub mod oracle;
pub mod problem;
pub mod query;
pub mod reach;
pub mod solve;
pub mod state;
pub mod system;
pub mod telemetry;
pub mod universe;
pub mod value;
pub mod worth;

pub use crate::compiled::{CompileBudget, CompiledSystem, Engine, TableKind};
pub use crate::constraint::{Phi, StateSet};
pub use crate::error::{Error, Result};
pub use crate::expr::{BinOp, Expr};
pub use crate::fastmap::Fnv64;
pub use crate::history::{History, OpId};
pub use crate::json::JsonBuf;
pub use crate::metrics::{Counter, Histogram, HistogramSnapshot};
pub use crate::op::{Cmd, LValue, Op};
pub use crate::oracle::{Oracle, OracleStats};
pub use crate::query::{Query, QueryAnswer, QueryOutcome};
pub use crate::reach::{DependsWitness, SearchLimits, SearchStats};
pub use crate::state::State;
pub use crate::system::System;
pub use crate::telemetry::{JsonLinesSink, NullSink, QueryEvent, QueryReport, RecordingSink, Sink};
pub use crate::universe::{Domain, ObjId, ObjSet, Universe};
pub use crate::value::{Rights, Value};
