//! The worth of a solution (§3.6).
//!
//! `Worth(φ) = { (α, β) | α ▷φ β }` — the set of information paths a
//! constraint still permits. Worths are ordered by inclusion; the measure
//! is qualitative and, per Thm 2-3, monotonic (Def 3-2): a less restrictive
//! solution permits at least the paths of a more restrictive one.
//!
//! The paper computes worths over set-valued sources; for comparison
//! purposes singleton sources suffice (Thm 2-2 makes set sources monotone
//! in the singleton rows), and that is what [`worth`] computes.

use std::collections::BTreeSet;
use std::fmt;

use crate::constraint::Phi;
use crate::error::Result;
use crate::system::System;
use crate::universe::{ObjId, ObjSet};

/// The set of permitted information paths under some constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Worth {
    paths: BTreeSet<(ObjId, ObjId)>,
}

impl Worth {
    /// The permitted paths, sorted.
    pub fn paths(&self) -> impl Iterator<Item = (ObjId, ObjId)> + '_ {
        self.paths.iter().copied()
    }

    /// Number of permitted paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether no paths are permitted at all.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Whether a specific path is permitted.
    pub fn permits(&self, alpha: ObjId, beta: ObjId) -> bool {
        self.paths.contains(&(alpha, beta))
    }

    /// `Worth(self) ≤ Worth(other)`: every path permitted here is
    /// permitted there.
    pub fn le(&self, other: &Worth) -> bool {
        self.paths.is_subset(&other.paths)
    }

    /// The partial order on worths: `Some(Less)` when strictly fewer paths
    /// are permitted, `None` when incomparable.
    pub fn partial_cmp(&self, other: &Worth) -> Option<core::cmp::Ordering> {
        match (self.le(other), other.le(self)) {
            (true, true) => Some(core::cmp::Ordering::Equal),
            (true, false) => Some(core::cmp::Ordering::Less),
            (false, true) => Some(core::cmp::Ordering::Greater),
            (false, false) => None,
        }
    }

    /// Renders the worth with object names.
    pub fn display<'a>(&'a self, sys: &'a System) -> WorthDisplay<'a> {
        WorthDisplay { worth: self, sys }
    }
}

/// Helper produced by [`Worth::display`].
pub struct WorthDisplay<'a> {
    worth: &'a Worth,
    sys: &'a System,
}

impl fmt::Display for WorthDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (a, b)) in self.worth.paths().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(
                f,
                "{} ▷ {}",
                self.sys.universe().name(a),
                self.sys.universe().name(b)
            )?;
        }
        write!(f, "}}")
    }
}

/// Computes `Worth(φ)` over singleton sources: one pair-reachability sweep
/// per object, batched through [`crate::reach::sinks_matrix`] so a single
/// Sat(φ) enumeration and one compiled system serve every row.
pub fn worth(sys: &System, phi: &Phi) -> Result<Worth> {
    let objects: Vec<ObjId> = sys.universe().objects().collect();
    let rows = parallel_rows(sys, phi, &objects)?;
    let mut paths = BTreeSet::new();
    for (alpha, sinks) in objects.into_iter().zip(rows) {
        for beta in sinks.iter() {
            paths.insert((alpha, beta));
        }
    }
    Ok(Worth { paths })
}

/// One sinks row per source object, delegated to the batched matrix
/// query (shared compilation, parallel rows).
pub(crate) fn parallel_rows(sys: &System, phi: &Phi, sources: &[ObjId]) -> Result<Vec<ObjSet>> {
    let sets: Vec<ObjSet> = sources.iter().map(|&a| ObjSet::singleton(a)).collect();
    Ok(crate::query::Query::matrix(phi.clone(), sets)
        .run_on(sys)?
        .into_rows()
        .expect("a matrix query returns rows"))
}

/// Checks monotonicity (Def 3-2) for one instance: if `φ1 ⊆ φ2` then
/// `Worth(φ1) ≤ Worth(φ2)` must hold. Returns `true` when the instance is
/// consistent with monotonicity.
pub fn check_monotonic(sys: &System, phi1: &Phi, phi2: &Phi) -> Result<bool> {
    if !phi1.entails(sys, phi2)? {
        return Ok(true);
    }
    Ok(worth(sys, phi1)?.le(&worth(sys, phi2)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::op::{Cmd, Op};
    use crate::universe::{Domain, Universe};
    use crate::value::Rights;
    use crate::value::Value;

    /// The §3.6 two-operation rights system:
    /// δ1: if s∈<x,x> ∧ r∈<x,α> ∧ w∈<x,β> then β ← α
    /// δ2: if s∈<x,x> ∧ r∈<x,m> ∧ w∈<x,β> then β ← m
    fn two_op_rights() -> System {
        let cell = || {
            Domain::new(vec![
                Value::Rights(Rights::NONE),
                Value::Rights(Rights::S),
                Value::Rights(Rights::R),
                Value::Rights(Rights::W),
            ])
            .unwrap()
        };
        let u = Universe::new(vec![
            ("alpha".into(), Domain::int_range(0, 1).unwrap()),
            ("beta".into(), Domain::int_range(0, 1).unwrap()),
            ("m".into(), Domain::int_range(0, 1).unwrap()),
            ("xx".into(), cell()),
            ("xa".into(), cell()),
            ("xb".into(), cell()),
            ("xm".into(), cell()),
        ])
        .unwrap();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let m = u.obj("m").unwrap();
        let xx = u.obj("xx").unwrap();
        let xa = u.obj("xa").unwrap();
        let xb = u.obj("xb").unwrap();
        let xm = u.obj("xm").unwrap();
        let guard = |src_cell| {
            Expr::var(xx)
                .has_rights(Rights::S)
                .and(Expr::var(src_cell).has_rights(Rights::R))
                .and(Expr::var(xb).has_rights(Rights::W))
        };
        System::new(
            u,
            vec![
                Op::from_cmd("d1", Cmd::when(guard(xa), Cmd::assign(b, Expr::var(a)))),
                Op::from_cmd("d2", Cmd::when(guard(xm), Cmd::assign(b, Expr::var(m)))),
            ],
        )
    }

    #[test]
    fn sec_3_6_worth_comparison() {
        let sys = two_op_rights();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let m = u.obj("m").unwrap();
        let xx = u.obj("xx").unwrap();
        let xa = u.obj("xa").unwrap();
        let xb = u.obj("xb").unwrap();

        // φmax: s∉<x,x> ∨ r∉<x,α> ∨ w∉<x,β>.
        let phi_max = Phi::expr(
            Expr::var(xx)
                .has_rights(Rights::S)
                .not()
                .or(Expr::var(xa).has_rights(Rights::R).not())
                .or(Expr::var(xb).has_rights(Rights::W).not()),
        );
        // φ1: r∉<x,α> — stricter, but same worth.
        let phi_1 = Phi::expr(Expr::var(xa).has_rights(Rights::R).not());
        // φ2: s∉<x,x> ∨ w∉<x,β> — kills the m → β path too.
        let phi_2 = Phi::expr(
            Expr::var(xx)
                .has_rights(Rights::S)
                .not()
                .or(Expr::var(xb).has_rights(Rights::W).not()),
        );

        let w_max = worth(&sys, &phi_max).unwrap();
        let w_1 = worth(&sys, &phi_1).unwrap();
        let w_2 = worth(&sys, &phi_2).unwrap();

        // All three block α → β.
        assert!(!w_max.permits(a, b));
        assert!(!w_1.permits(a, b));
        assert!(!w_2.permits(a, b));

        // φmax and φ1 keep m → β; φ2 kills it.
        assert!(w_max.permits(m, b));
        assert!(w_1.permits(m, b));
        assert!(!w_2.permits(m, b));

        // φ1 is as worthy as φmax; φ2 is strictly less worthy.
        assert_eq!(w_1.partial_cmp(&w_max), Some(core::cmp::Ordering::Equal));
        assert_eq!(w_2.partial_cmp(&w_max), Some(core::cmp::Ordering::Less));
    }

    #[test]
    fn monotonicity_def_3_2() {
        let sys = two_op_rights();
        let u = sys.universe();
        let xa = u.obj("xa").unwrap();
        let xx = u.obj("xx").unwrap();
        let phi_small = Phi::expr(
            Expr::var(xa)
                .has_rights(Rights::R)
                .not()
                .and(Expr::var(xx).has_rights(Rights::S).not()),
        );
        let phi_big = Phi::expr(Expr::var(xa).has_rights(Rights::R).not());
        assert!(phi_small.entails(&sys, &phi_big).unwrap());
        assert!(check_monotonic(&sys, &phi_small, &phi_big).unwrap());
        // Also trivially consistent when not comparable.
        assert!(check_monotonic(&sys, &phi_big, &phi_small).unwrap());
    }

    #[test]
    fn worth_display_uses_names() {
        let sys = two_op_rights();
        let u = sys.universe();
        let m = u.obj("m").unwrap();
        let b = u.obj("beta").unwrap();
        let phi_1 = Phi::expr(Expr::var(u.obj("xa").unwrap()).has_rights(Rights::R).not());
        let w = worth(&sys, &phi_1).unwrap();
        let s = w.display(&sys).to_string();
        assert!(w.permits(m, b));
        assert!(s.contains("m ▷ beta"));
    }
}
