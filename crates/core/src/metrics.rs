//! Lock-free metrics primitives: sharded counters and fixed-bucket
//! log-scale latency histograms.
//!
//! The serving layer (`sd-server`) needs per-request accounting that is
//! safe to touch from every connection and worker thread without a lock
//! and without floating point on the hot path. Two primitives cover all
//! of it:
//!
//! - [`Counter`] — a monotone counter sharded across cache lines.
//!   Increments pick a shard by a per-thread index (assigned once, on a
//!   thread's first increment anywhere), so concurrent writers from
//!   different threads do not bounce one cache line; reads sum the
//!   shards. All operations are `Relaxed`: the counters carry no
//!   ordering obligations, only totals.
//! - [`Histogram`] — exact bucket counts over a fixed log-scale layout:
//!   values 0..8 get exact buckets, every power-of-two octave above
//!   that is split into 8 linear sub-buckets (≤ 12.5 % relative error).
//!   Recording is three relaxed `fetch_add`s (bucket, count, sum); no
//!   floats, no allocation, no locks. Quantiles (p50/p90/p99…) are
//!   derived at *scrape* time from a [`HistogramSnapshot`] with integer
//!   rank arithmetic, reporting the matching bucket's upper bound.
//!
//! The bucket layout covers the full `u64` range (496 buckets), so a
//! nanosecond-scale latency histogram never saturates or clips.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of shards per [`Counter`]. Power of two; eight covers the
/// worker-pool sizes the server runs with.
const SHARDS: usize = 8;

/// One cache-line-padded shard.
#[derive(Default)]
#[repr(align(64))]
struct Shard(AtomicU64);

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's shard index, assigned round-robin on first use and
    /// shared by every counter (same thread → same shard everywhere).
    static SHARD_IX: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) & (SHARDS - 1);
}

/// A sharded, lock-free, monotonically increasing counter.
#[derive(Default)]
pub struct Counter {
    shards: [Shard; SHARDS],
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds `n` (relaxed; never blocks).
    #[inline]
    pub fn add(&self, n: u64) {
        let ix = SHARD_IX.with(|i| *i);
        self.shards[ix].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total (sum over shards).
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// Sub-bucket resolution: each power-of-two octave splits into
/// `2^SUB_BITS` linear sub-buckets.
const SUB_BITS: u32 = 3;
const SUB: usize = 1 << SUB_BITS;

/// Total bucket count for the full `u64` range: 8 exact small-value
/// buckets plus 8 sub-buckets for each octave with leading bit 3..=63.
pub const HIST_BUCKETS: usize = SUB + (61 * SUB);

/// The bucket index recording `v`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let sub = ((v >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        SUB + ((msb - SUB_BITS) as usize) * SUB + sub
    }
}

/// The largest value falling into bucket `i` (inclusive).
pub fn bucket_upper(i: usize) -> u64 {
    if i < SUB {
        i as u64
    } else {
        let octave = (i - SUB) / SUB;
        let sub = ((i - SUB) % SUB) as u64;
        let msb = octave as u32 + SUB_BITS;
        let lower = (1u64 << msb) + (sub << (msb - SUB_BITS));
        lower + ((1u64 << (msb - SUB_BITS)) - 1)
    }
}

/// A fixed-bucket log-scale histogram of `u64` samples. Recording is
/// lock-free and float-free; quantiles come from [`Histogram::snapshot`].
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// An empty histogram (allocates its bucket array once).
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the non-empty buckets, for quantile
    /// derivation and exposition.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n != 0 {
                buckets.push((bucket_upper(i), n));
            }
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Histogram(count={})", self.count())
    }
}

/// A consistent-enough copy of a [`Histogram`]: non-empty `(upper
/// bound, count)` pairs in ascending bucket order plus totals.
/// (Concurrent recording during the snapshot can skew `count` by the
/// in-flight samples; the server tolerates that — scrapes are advisory.)
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (wrapping).
    pub sum: u64,
    /// `(inclusive upper bound, count)` for each non-empty bucket.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// The `num/den` quantile (e.g. `quantile(50, 100)` = p50): the
    /// upper bound of the bucket containing the sample of that rank.
    /// Integer arithmetic throughout; returns 0 for an empty histogram.
    pub fn quantile(&self, num: u64, den: u64) -> u64 {
        let total: u64 = self.buckets.iter().map(|(_, n)| n).sum();
        if total == 0 || den == 0 {
            return 0;
        }
        let rank = total.saturating_mul(num).div_ceil(den);
        let rank = rank.clamp(1, total);
        let mut cum = 0u64;
        for (upper, n) in &self.buckets {
            cum += n;
            if cum >= rank {
                return *upper;
            }
        }
        self.buckets.last().map_or(0, |(upper, _)| *upper)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_monotone_and_total() {
        // Every value maps into a bucket whose bounds contain it, and
        // bucket upper bounds strictly increase.
        let probes = [
            0u64,
            1,
            7,
            8,
            9,
            15,
            16,
            17,
            100,
            1_000,
            123_456,
            u32::MAX as u64,
            1 << 40,
            (1 << 63) + 12345,
            u64::MAX,
        ];
        for &v in &probes {
            let i = bucket_index(v);
            assert!(v <= bucket_upper(i), "v={v} i={i}");
            if i > 0 {
                assert!(v > bucket_upper(i - 1), "v={v} i={i}");
            }
        }
        for i in 1..HIST_BUCKETS {
            assert!(bucket_upper(i) > bucket_upper(i - 1), "i={i}");
        }
        assert_eq!(bucket_upper(HIST_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn relative_error_is_bounded() {
        // Sub-bucketing keeps the reported upper bound within 12.5 % of
        // the recorded value for values ≥ 8.
        for &v in &[8u64, 100, 999, 10_000, 1_000_000, 123_456_789] {
            let upper = bucket_upper(bucket_index(v));
            assert!(upper >= v);
            assert!((upper - v) * 8 <= v, "v={v} upper={upper}");
        }
    }

    #[test]
    fn quantiles_from_known_samples() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v * 1000); // 1k..100k ns
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        let p50 = snap.quantile(50, 100);
        let p99 = snap.quantile(99, 100);
        // Bucketed answers: within one sub-bucket (12.5 %) of the exact
        // rank values 50_000 and 99_000.
        assert!((50_000..=57_000).contains(&p50), "p50={p50}");
        assert!((99_000..=112_000).contains(&p99), "p99={p99}");
        assert!(p50 <= snap.quantile(90, 100));
        assert!(snap.quantile(90, 100) <= p99);
        // Bucket counts are exact and complete.
        let total: u64 = snap.buckets.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        assert_eq!(Histogram::new().snapshot().quantile(99, 100), 0);
    }

    #[test]
    fn counter_sums_across_threads() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        c.add(42);
        assert_eq!(c.get(), 8042);
    }
}
