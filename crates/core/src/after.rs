//! Constraint after a history: `[H]φ` (Def 6-1, §6.2).
//!
//! `[H]φ` characterizes the states reachable by executing `H` from a state
//! initially satisfying φ. Because states are finite, `[H]φ` is computed
//! extensionally as the image of Sat(φ) under `H`. The module also
//! enumerates *all* image sets reachable over any history — the basis for
//! the exact inductive-cover check (Def 6-2).

use std::collections::{HashSet, VecDeque};

use crate::constraint::{Phi, StateSet};
use crate::error::{Error, Result};
use crate::history::{History, OpId};
use crate::oracle::Oracle;
use crate::state::State;
use crate::system::System;

/// Applies one operation to every state in a set: `δ(S)`.
pub fn image_op(sys: &System, set: &StateSet, op: OpId) -> Result<StateSet> {
    let u = sys.universe();
    let mut out = StateSet::new(set.capacity());
    for code in set.iter() {
        let sigma = State::decode(u, code);
        let next = sys.apply(op, &sigma)?;
        out.insert(next.encode(u));
    }
    Ok(out)
}

/// Computes `[H]φ` (Def 6-1) as an extensional state set.
pub fn after_history(sys: &System, phi: &Phi, h: &History) -> Result<StateSet> {
    let mut cur = phi.sat(sys)?;
    for &op in h.ops() {
        cur = image_op(sys, &cur, op)?;
    }
    Ok(cur)
}

/// Computes `[H]φ` wrapped back as a [`Phi`], for use as a constraint.
pub fn after_history_phi(sys: &System, phi: &Phi, h: &History) -> Result<Phi> {
    Ok(Phi::from_set(after_history(sys, phi, h)?))
}

/// Enumerates every distinct image set `[H]φ` over all histories H.
///
/// The sets form a transition system (`[Hδ]φ = δ([H]φ)`), so a BFS with
/// memoization suffices. `max_sets` bounds the exploration; the default used
/// by [`reachable_images`] is generous for the systems in this crate.
pub fn reachable_images_bounded(sys: &System, phi: &Phi, max_sets: usize) -> Result<Vec<StateSet>> {
    let oracle = Oracle::new(sys)?;
    reachable_images_bounded_with(&oracle, phi, max_sets)
}

/// [`reachable_images_bounded`] against a prepared [`Oracle`]: each BFS
/// step maps the current image through compiled successor rows instead of
/// interpreting every operation per state (AST fallback when the Oracle
/// runs interpreted).
pub fn reachable_images_bounded_with(
    oracle: &Oracle,
    phi: &Phi,
    max_sets: usize,
) -> Result<Vec<StateSet>> {
    let sys = oracle.system();
    let start = phi.sat(sys)?;
    let mut seen: HashSet<StateSet> = HashSet::new();
    let mut queue: VecDeque<StateSet> = VecDeque::new();
    let mut out = Vec::new();
    seen.insert(start.clone());
    queue.push_back(start);
    while let Some(cur) = queue.pop_front() {
        out.push(cur.clone());
        if out.len() > max_sets {
            return Err(Error::Invalid(format!(
                "more than {max_sets} distinct [H]φ image sets; raise the bound"
            )));
        }
        let codes: Vec<u64> = cur.iter().collect();
        let images: Vec<StateSet> = match oracle.with_rows(&codes, |cs, memo| {
            (0..cs.num_ops())
                .map(|op| {
                    let mut img = StateSet::new(cur.capacity());
                    for &code in &codes {
                        let next = cs.succ(memo, code, op);
                        if next == crate::compiled::POISON {
                            return Err(cs.poison_error(code, op));
                        }
                        img.insert(next);
                    }
                    Ok(img)
                })
                .collect::<Result<Vec<_>>>()
        }) {
            Some(computed) => computed?,
            None => sys
                .op_ids()
                .map(|op| image_op(sys, &cur, op))
                .collect::<Result<_>>()?,
        };
        for next in images {
            if seen.insert(next.clone()) {
                queue.push_back(next);
            }
        }
    }
    Ok(out)
}

/// [`reachable_images_bounded`] with a default bound of 65 536 sets.
pub fn reachable_images(sys: &System, phi: &Phi) -> Result<Vec<StateSet>> {
    let oracle = Oracle::new(sys)?;
    reachable_images_with(&oracle, phi)
}

/// [`reachable_images`] against a prepared [`Oracle`].
pub fn reachable_images_with(oracle: &Oracle, phi: &Phi) -> Result<Vec<StateSet>> {
    reachable_images_bounded_with(oracle, phi, 1 << 16)
}

/// Theorem 6-1 as a runtime check: `φ(σ) ⊃ [H]φ(H(σ))` for all σ, H of
/// length ≤ `max_len`. Returns `true` when the theorem holds (it always
/// should; this exists for the test suite).
pub fn check_theorem_6_1(sys: &System, phi: &Phi, max_len: usize) -> Result<bool> {
    let u = sys.universe();
    for h in crate::history::histories_up_to(sys.num_ops(), max_len) {
        let img = after_history(sys, phi, &h)?;
        for sigma in sys.states()? {
            if phi.holds(sys, &sigma)? {
                let end = sys.run(&sigma, &h)?;
                if !img.contains(end.encode(u)) {
                    return Ok(false);
                }
            }
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify;
    use crate::expr::Expr;
    use crate::op::{Cmd, Op};
    use crate::universe::{Domain, Universe};

    /// The §6.2 example: δ: β ← α - 4, φ(σ) ≡ σ.α < 10.
    fn sec_6_2_system() -> System {
        let u = Universe::new(vec![
            ("alpha".into(), Domain::int_range(0, 12).unwrap()),
            ("beta".into(), Domain::int_range(-4, 8).unwrap()),
        ])
        .unwrap();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        System::new(
            u,
            vec![Op::from_cmd(
                "sub4",
                Cmd::assign(b, Expr::var(a).sub(Expr::int(4))),
            )],
        )
    }

    #[test]
    fn after_matches_paper_example() {
        let sys = sec_6_2_system();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let phi = Phi::expr(Expr::var(a).lt(Expr::int(10)));
        let h = History::single(OpId(0));
        let img = after_history(&sys, &phi, &h).unwrap();
        // [δ]φ(σ) ≡ σ.α < 10 ∧ σ.β = σ.α - 4.
        let expected = Phi::expr(
            Expr::var(a)
                .lt(Expr::int(10))
                .and(Expr::var(b).eq(Expr::var(a).sub(Expr::int(4)))),
        );
        assert_eq!(img, expected.sat(&sys).unwrap());
        // …and, as the paper notes, [δ]φ need not be autonomous even
        // though φ is.
        assert!(classify::is_autonomous(&sys, &phi).unwrap());
        assert!(!classify::is_autonomous(&sys, &Phi::from_set(img)).unwrap());
    }

    #[test]
    fn theorem_6_1_holds() {
        let sys = sec_6_2_system();
        let a = sys.universe().obj("alpha").unwrap();
        let phi = Phi::expr(Expr::var(a).lt(Expr::int(10)));
        assert!(check_theorem_6_1(&sys, &phi, 3).unwrap());
    }

    #[test]
    fn theorem_6_2_invariant_phi_shrinks() {
        // If φ is invariant then [H]φ ⊆ φ.
        let sys = sec_6_2_system();
        let a = sys.universe().obj("alpha").unwrap();
        let phi = Phi::expr(Expr::var(a).lt(Expr::int(10)));
        assert!(classify::is_invariant(&sys, &phi).unwrap());
        let sat = phi.sat(&sys).unwrap();
        for img in reachable_images(&sys, &phi).unwrap() {
            assert!(img.is_subset(&sat));
        }
    }

    #[test]
    fn reachable_images_saturate() {
        // The §6.2 system stabilizes after one application of δ: the image
        // of the image is itself.
        let sys = sec_6_2_system();
        let a = sys.universe().obj("alpha").unwrap();
        let phi = Phi::expr(Expr::var(a).lt(Expr::int(10)));
        let images = reachable_images(&sys, &phi).unwrap();
        assert_eq!(images.len(), 2);
    }

    #[test]
    fn bounded_enumeration_errors_when_exceeded() {
        let sys = sec_6_2_system();
        let a = sys.universe().obj("alpha").unwrap();
        let phi = Phi::expr(Expr::var(a).lt(Expr::int(10)));
        assert!(reachable_images_bounded(&sys, &phi, 1).is_err());
    }

    #[test]
    fn image_op_is_pointwise() {
        let sys = sec_6_2_system();
        let u = sys.universe();
        let full = Phi::True.sat(&sys).unwrap();
        let img = image_op(&sys, &full, OpId(0)).unwrap();
        for code in img.iter() {
            let s = State::decode(u, code);
            let a = u.obj("alpha").unwrap();
            let b = u.obj("beta").unwrap();
            let av = s.value(u, a).as_int().unwrap();
            let bv = s.value(u, b).as_int().unwrap();
            assert_eq!(bv, av - 4);
        }
    }
}
