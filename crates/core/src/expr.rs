//! Expressions over states.
//!
//! Operations (§1.2) and constraints φ (§2.4) are both described in the
//! paper with an "informal programming-like language"; [`Expr`] is that
//! language's expression fragment, evaluated dynamically against a state.

use core::fmt;

use crate::error::{Error, Result};
use crate::state::State;
use crate::universe::{ObjId, Universe};
use crate::value::{Rights, Value};

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Euclidean integer division.
    Div,
    /// Euclidean remainder (always non-negative), as in `(α1+α2) mod 128`.
    Mod,
    /// Equality on any value kind.
    Eq,
    /// Inequality on any value kind.
    Ne,
    /// Integer `<`.
    Lt,
    /// Integer `≤`.
    Le,
    /// Integer `>`.
    Gt,
    /// Integer `≥`.
    Ge,
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
    /// Boolean implication `⊃`.
    Imp,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "mod",
            BinOp::Eq => "=",
            BinOp::Ne => "≠",
            BinOp::Lt => "<",
            BinOp::Le => "≤",
            BinOp::Gt => ">",
            BinOp::Ge => "≥",
            BinOp::And => "∧",
            BinOp::Or => "∨",
            BinOp::Imp => "⊃",
        };
        write!(f, "{s}")
    }
}

/// An expression evaluated against a state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A literal value.
    Const(Value),
    /// The current value of an object (`σ.α`).
    Var(ObjId),
    /// A record field projection (`σ.x.k`), by positional field index.
    Field(Box<Expr>, usize),
    /// Boolean negation.
    Not(Box<Expr>),
    /// Integer negation (used by the §6.4 oscillator `α ← -α`).
    Neg(Box<Expr>),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Rights test: does the (rights-valued) operand contain all of the
    /// given rights? Models `w ∈ <Cohen, Salary>(σ)` from §1.3.
    HasRights(Rights, Box<Expr>),
}

impl Expr {
    /// Literal integer.
    pub fn int(i: i64) -> Expr {
        Expr::Const(Value::Int(i))
    }

    /// Literal boolean.
    pub fn bool(b: bool) -> Expr {
        Expr::Const(Value::Bool(b))
    }

    /// Object reference.
    pub fn var(a: ObjId) -> Expr {
        Expr::Var(a)
    }

    /// Field projection by index.
    pub fn field(self, idx: usize) -> Expr {
        Expr::Field(Box::new(self), idx)
    }

    /// Boolean negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// Integer negation.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Expr {
        Expr::Neg(Box::new(self))
    }

    /// Binary operation helper.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(op, Box::new(lhs), Box::new(rhs))
    }

    /// `self = rhs`.
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Eq, self, rhs)
    }

    /// `self ≠ rhs`.
    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Ne, self, rhs)
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Lt, self, rhs)
    }

    /// `self ≤ rhs`.
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Le, self, rhs)
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Gt, self, rhs)
    }

    /// `self ≥ rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Ge, self, rhs)
    }

    /// `self ∧ rhs`.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::And, self, rhs)
    }

    /// `self ∨ rhs`.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Or, self, rhs)
    }

    /// `self ⊃ rhs`.
    pub fn implies(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Imp, self, rhs)
    }

    /// `self + rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Add, self, rhs)
    }

    /// `self - rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Sub, self, rhs)
    }

    /// `self mod rhs`.
    pub fn modulo(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Mod, self, rhs)
    }

    /// Rights membership test on this (rights-valued) expression.
    pub fn has_rights(self, r: Rights) -> Expr {
        Expr::HasRights(r, Box::new(self))
    }

    /// Evaluates the expression in state `σ`.
    pub fn eval(&self, u: &Universe, sigma: &State) -> Result<Value> {
        match self {
            Expr::Const(v) => Ok(v.clone()),
            Expr::Var(a) => Ok(sigma.value(u, *a).clone()),
            Expr::Field(e, idx) => match e.eval(u, sigma)? {
                Value::Record(fields) => {
                    fields
                        .get(*idx)
                        .cloned()
                        .ok_or_else(|| Error::UnknownField {
                            field: format!("#{idx}"),
                            context: "field projection".into(),
                        })
                }
                other => Err(Error::TypeMismatch {
                    expected: "record",
                    found: other.kind(),
                    context: "field projection".into(),
                }),
            },
            Expr::Not(e) => Ok(Value::Bool(!e.eval_bool(u, sigma)?)),
            Expr::Neg(e) => Ok(Value::Int(-e.eval_int(u, sigma)?)),
            Expr::Bin(op, lhs, rhs) => eval_bin(*op, lhs, rhs, u, sigma),
            Expr::HasRights(r, e) => match e.eval(u, sigma)? {
                Value::Rights(have) => Ok(Value::Bool(have.has(*r))),
                other => Err(Error::TypeMismatch {
                    expected: "rights",
                    found: other.kind(),
                    context: "rights test".into(),
                }),
            },
        }
    }

    /// Evaluates to a boolean or reports a type mismatch.
    pub fn eval_bool(&self, u: &Universe, sigma: &State) -> Result<bool> {
        match self.eval(u, sigma)? {
            Value::Bool(b) => Ok(b),
            other => Err(Error::TypeMismatch {
                expected: "bool",
                found: other.kind(),
                context: "boolean position".into(),
            }),
        }
    }

    /// Evaluates to an integer or reports a type mismatch.
    pub fn eval_int(&self, u: &Universe, sigma: &State) -> Result<i64> {
        match self.eval(u, sigma)? {
            Value::Int(i) => Ok(i),
            other => Err(Error::TypeMismatch {
                expected: "int",
                found: other.kind(),
                context: "integer position".into(),
            }),
        }
    }

    /// The objects this expression syntactically reads.
    pub fn reads(&self, out: &mut Vec<ObjId>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(a) => out.push(*a),
            Expr::Field(e, _) | Expr::Not(e) | Expr::Neg(e) | Expr::HasRights(_, e) => e.reads(out),
            Expr::Bin(_, l, r) => {
                l.reads(out);
                r.reads(out);
            }
        }
    }

    /// Renders the expression with object names resolved through a
    /// universe.
    pub fn display<'a>(&'a self, u: &'a Universe) -> ExprDisplay<'a> {
        ExprDisplay { expr: self, u }
    }
}

/// Helper produced by [`Expr::display`].
pub struct ExprDisplay<'a> {
    expr: &'a Expr,
    u: &'a Universe,
}

impl fmt::Display for ExprDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(e: &Expr, u: &Universe, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match e {
                Expr::Const(v) => write!(f, "{v}"),
                Expr::Var(a) => write!(f, "{}", u.name(*a)),
                Expr::Field(inner, idx) => {
                    go(inner, u, f)?;
                    // Resolve the field name when the base is a direct
                    // object reference with a record domain.
                    if let Expr::Var(a) = inner.as_ref() {
                        if let Some(name) = u.domain(*a).fields().get(*idx) {
                            return write!(f, ".{name}");
                        }
                    }
                    write!(f, ".#{idx}")
                }
                Expr::Not(inner) => {
                    write!(f, "¬(")?;
                    go(inner, u, f)?;
                    write!(f, ")")
                }
                Expr::Neg(inner) => {
                    write!(f, "-(")?;
                    go(inner, u, f)?;
                    write!(f, ")")
                }
                Expr::Bin(op, l, r) => {
                    write!(f, "(")?;
                    go(l, u, f)?;
                    write!(f, " {op} ")?;
                    go(r, u, f)?;
                    write!(f, ")")
                }
                Expr::HasRights(rights, inner) => {
                    write!(f, "{rights} ∈ ")?;
                    go(inner, u, f)
                }
            }
        }
        go(self.expr, self.u, f)
    }
}

fn eval_bin(op: BinOp, lhs: &Expr, rhs: &Expr, u: &Universe, sigma: &State) -> Result<Value> {
    match op {
        BinOp::And => Ok(Value::Bool(
            lhs.eval_bool(u, sigma)? && rhs.eval_bool(u, sigma)?,
        )),
        BinOp::Or => Ok(Value::Bool(
            lhs.eval_bool(u, sigma)? || rhs.eval_bool(u, sigma)?,
        )),
        BinOp::Imp => Ok(Value::Bool(
            !lhs.eval_bool(u, sigma)? || rhs.eval_bool(u, sigma)?,
        )),
        BinOp::Eq => Ok(Value::Bool(lhs.eval(u, sigma)? == rhs.eval(u, sigma)?)),
        BinOp::Ne => Ok(Value::Bool(lhs.eval(u, sigma)? != rhs.eval(u, sigma)?)),
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let l = lhs.eval_int(u, sigma)?;
            let r = rhs.eval_int(u, sigma)?;
            Ok(Value::Bool(match op {
                BinOp::Lt => l < r,
                BinOp::Le => l <= r,
                BinOp::Gt => l > r,
                _ => l >= r,
            }))
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul => {
            let l = lhs.eval_int(u, sigma)?;
            let r = rhs.eval_int(u, sigma)?;
            Ok(Value::Int(match op {
                BinOp::Add => l.wrapping_add(r),
                BinOp::Sub => l.wrapping_sub(r),
                _ => l.wrapping_mul(r),
            }))
        }
        BinOp::Div | BinOp::Mod => {
            let l = lhs.eval_int(u, sigma)?;
            let r = rhs.eval_int(u, sigma)?;
            if r == 0 {
                return Err(Error::DivisionByZero);
            }
            Ok(Value::Int(if op == BinOp::Div {
                l.div_euclid(r)
            } else {
                l.rem_euclid(r)
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{Domain, Universe};

    fn uni() -> Universe {
        Universe::new(vec![
            ("x".into(), Domain::int_range(0, 9).unwrap()),
            ("f".into(), Domain::boolean()),
            (
                "r".into(),
                Domain::with_fields(
                    vec![
                        Value::Record(vec![Value::Int(0), Value::Bool(false)]),
                        Value::Record(vec![Value::Int(1), Value::Bool(true)]),
                    ],
                    vec!["n".into(), "b".into()],
                )
                .unwrap(),
            ),
            (
                "cell".into(),
                Domain::new(vec![
                    Value::Rights(Rights::NONE),
                    Value::Rights(Rights::R.union(Rights::W)),
                ])
                .unwrap(),
            ),
        ])
        .unwrap()
    }

    fn state(u: &Universe, x: u32, f: u32, r: u32, cell: u32) -> State {
        let _ = u;
        State::from_indices(vec![x, f, r, cell])
    }

    #[test]
    fn arithmetic_and_comparison() {
        let u = uni();
        let x = u.obj("x").unwrap();
        let s = state(&u, 7, 0, 0, 0);
        let e = Expr::var(x).add(Expr::int(5)).modulo(Expr::int(10));
        assert_eq!(e.eval(&u, &s).unwrap(), Value::Int(2));
        assert!(Expr::var(x).lt(Expr::int(8)).eval_bool(&u, &s).unwrap());
        assert!(!Expr::var(x).le(Expr::int(6)).eval_bool(&u, &s).unwrap());
        assert_eq!(Expr::var(x).neg().eval(&u, &s).unwrap(), Value::Int(-7));
    }

    #[test]
    fn mod_is_euclidean() {
        let u = uni();
        let s = state(&u, 0, 0, 0, 0);
        let e = Expr::int(-3).modulo(Expr::int(5));
        assert_eq!(e.eval(&u, &s).unwrap(), Value::Int(2));
        assert!(matches!(
            Expr::int(1).modulo(Expr::int(0)).eval(&u, &s),
            Err(Error::DivisionByZero)
        ));
    }

    #[test]
    fn booleans_and_implication() {
        let u = uni();
        let f = u.obj("f").unwrap();
        let s_true = state(&u, 0, 1, 0, 0);
        let s_false = state(&u, 0, 0, 0, 0);
        let e = Expr::var(f).implies(Expr::bool(false));
        assert!(!e.eval_bool(&u, &s_true).unwrap());
        assert!(e.eval_bool(&u, &s_false).unwrap());
        assert!(Expr::var(f).not().eval_bool(&u, &s_false).unwrap());
    }

    #[test]
    fn field_projection() {
        let u = uni();
        let r = u.obj("r").unwrap();
        let s = state(&u, 0, 0, 1, 0);
        let n = Expr::var(r).field(0);
        let b = Expr::var(r).field(1);
        assert_eq!(n.eval(&u, &s).unwrap(), Value::Int(1));
        assert_eq!(b.eval(&u, &s).unwrap(), Value::Bool(true));
        assert!(Expr::var(r).field(7).eval(&u, &s).is_err());
    }

    #[test]
    fn rights_test() {
        let u = uni();
        let cell = u.obj("cell").unwrap();
        let s0 = state(&u, 0, 0, 0, 0);
        let s1 = state(&u, 0, 0, 0, 1);
        let has_w = Expr::var(cell).has_rights(Rights::W);
        assert!(!has_w.eval_bool(&u, &s0).unwrap());
        assert!(has_w.eval_bool(&u, &s1).unwrap());
    }

    #[test]
    fn type_errors_are_reported() {
        let u = uni();
        let f = u.obj("f").unwrap();
        let s = state(&u, 0, 0, 0, 0);
        assert!(Expr::var(f).add(Expr::int(1)).eval(&u, &s).is_err());
        assert!(Expr::int(1).eval_bool(&u, &s).is_err());
        assert!(Expr::var(f).has_rights(Rights::R).eval(&u, &s).is_err());
    }

    #[test]
    fn reads_collects_variables() {
        let u = uni();
        let x = u.obj("x").unwrap();
        let f = u.obj("f").unwrap();
        let e = Expr::var(f).and(Expr::var(x).lt(Expr::var(x)));
        let mut reads = Vec::new();
        e.reads(&mut reads);
        assert_eq!(reads, vec![f, x, x]);
    }
}
