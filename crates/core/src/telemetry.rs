//! Query observability: pluggable event sinks and per-query cost reports.
//!
//! Every decision procedure in this crate bottoms out in a handful of
//! expensive primitives — compiling successor tables, enumerating
//! `Sat(φ)`, expanding pair-BFS levels, materialising sparse successor
//! rows. Aggregate counters ([`crate::oracle::OracleStats`]) say how
//! *often* those ran, but not where a particular query's time went, so
//! cache wins cannot be attributed and a serving layer cannot be tuned.
//! This module makes the machinery observable:
//!
//! - [`QueryEvent`] — a `Copy` enum of the interesting moments (compile
//!   start/finish, partition-cache hit/miss, one BFS level expanded,
//!   memo rows reused/materialised, witness found, query finished);
//! - [`Sink`] — where events go. Implementations receive events by
//!   reference and must be cheap: they run on the search path.
//! - [`QueryReport`] — per-query cost accounting (wall time, pairs
//!   visited, pair expansions, engine chosen, cache attribution),
//!   returned by [`crate::query::Query`] runs and emitted as the final
//!   [`QueryEvent::QueryDone`] event.
//!
//! # Sink lifecycle and overhead
//!
//! A sink is attached when an [`crate::oracle::Oracle`] is constructed
//! ([`crate::oracle::Oracle::with_sink`]) or per query
//! ([`crate::query::Query::sink`]); construction-time attachment is the
//! only way to observe compile events, which fire before any query
//! runs. Internally the sink is an `Option`: when absent (the default —
//! semantically a [`NullSink`]), the hot path pays one branch per
//! *level*, not per pair, and allocates nothing. Events are built lazily
//! inside that branch, so an uninstrumented search does not even
//! construct them.
//!
//! Three sinks are provided: [`NullSink`] (drop everything),
//! [`RecordingSink`] (buffer events for test assertions), and
//! [`JsonLinesSink`] (serialise each event as one JSON object per line —
//! the `--telemetry` mode of the bench binary writes these).

use std::io::Write;
use std::sync::Mutex;

use crate::json::JsonBuf;

/// One observable moment in the life of a query. All variants are
/// `Copy` and carry only scalars: recording an event never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryEvent {
    /// Successor-table compilation is starting (`|Σ|` states, `|Δ|` ops).
    CompileStart {
        /// Number of states in the system being compiled.
        states: u64,
        /// Number of operations.
        ops: u64,
    },
    /// Compilation finished.
    CompileFinish {
        /// Table layout chosen: `"compiled-dense"` or `"compiled-sparse"`.
        kind: &'static str,
        /// Wall-clock nanoseconds spent compiling.
        wall_ns: u64,
    },
    /// A `Sat(φ)` enumeration was served from the Oracle's intern cache.
    PartitionHit {
        /// Size of the cached enumeration (`|Sat(φ)|`).
        states: u64,
    },
    /// A `Sat(φ)` enumeration had to be computed fresh.
    PartitionMiss {
        /// Size of the fresh enumeration (`|Sat(φ)|`).
        states: u64,
    },
    /// One BFS level is about to be expanded.
    BfsLevel {
        /// Depth of the level (0 = the initial pair frontier).
        level: u32,
        /// Number of pairs in this level's frontier.
        frontier: u64,
        /// Total pairs discovered so far (including this frontier).
        visited: u64,
    },
    /// Sparse successor rows were requested for a batch of states.
    MemoRows {
        /// Rows already memoised (served from cache).
        reused: u64,
        /// Rows interpreted and memoised by this request.
        materialized: u64,
    },
    /// A dependency witness (transmission certificate) was found.
    Witness {
        /// Length of the witness history.
        length: u32,
    },
    /// A serving-layer result cache answered a query without searching.
    /// Emitted by caches built *on top of* the query machinery (e.g.
    /// `sd-server`), never by the Oracle itself.
    ResultCacheHit {
        /// Canonical query fingerprint ([`crate::query::Query::fingerprint`]).
        key: u64,
    },
    /// A serving-layer result cache missed and the query ran for real.
    ResultCacheMiss {
        /// Canonical query fingerprint ([`crate::query::Query::fingerprint`]).
        key: u64,
    },
    /// A [`crate::query::Query`] run finished; the final accounting.
    QueryDone {
        /// The per-query cost report.
        report: QueryReport,
    },
}

/// Per-query cost accounting, attached to every
/// [`crate::query::QueryOutcome`] and emitted as
/// [`QueryEvent::QueryDone`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryReport {
    /// Engine that ran the search: `"interpreted"`, `"compiled-dense"`,
    /// `"compiled-sparse"`, or `"none"` when the query short-circuited
    /// without searching (empty target set, empty matrix).
    pub engine: &'static str,
    /// Wall-clock nanoseconds for the whole run (excluding any fresh
    /// compile, which is reported by [`QueryEvent::CompileFinish`]).
    pub wall_ns: u64,
    /// Distinct canonical state pairs discovered (summed over rows for
    /// matrix queries).
    pub visited_pairs: u64,
    /// Pair expansions attempted: frontier pairs × operations, summed
    /// over all levels. Unlike `visited_pairs` this counts work, not
    /// discoveries, so it is the better proxy for search cost.
    pub pair_expansions: u64,
    /// Deepest BFS level reached (max over rows for matrix queries).
    pub levels: u32,
    /// Whether `Sat(φ)` was served from the Oracle's intern cache (always
    /// `false` for one-shot [`crate::query::Query::run_on`] runs, which
    /// enumerate fresh).
    pub partition_cached: bool,
    /// Whether this run compiled the system itself (one-shot runs) as
    /// opposed to reusing a shared Oracle's tables.
    pub fresh_compile: bool,
    /// Sparse successor rows served from the memo.
    pub rows_reused: u64,
    /// Sparse successor rows interpreted by this query.
    pub rows_materialized: u64,
}

impl QueryReport {
    /// Pushes this report's fields (flat, canonical order) onto an open
    /// JSON object. The access log of `sd-server` and
    /// [`QueryEvent::QueryDone`] share this one encoding.
    pub fn json_fields(&self, j: &mut JsonBuf) {
        j.str_field("engine", self.engine)
            .u64_field("wall_ns", self.wall_ns)
            .u64_field("visited_pairs", self.visited_pairs)
            .u64_field("pair_expansions", self.pair_expansions)
            .u64_field("levels", u64::from(self.levels))
            .bool_field("partition_cached", self.partition_cached)
            .bool_field("fresh_compile", self.fresh_compile)
            .u64_field("rows_reused", self.rows_reused)
            .u64_field("rows_materialized", self.rows_materialized);
    }

    pub(crate) fn empty(engine: &'static str) -> QueryReport {
        QueryReport {
            engine,
            wall_ns: 0,
            visited_pairs: 0,
            pair_expansions: 0,
            levels: 0,
            partition_cached: false,
            fresh_compile: false,
            rows_reused: 0,
            rows_materialized: 0,
        }
    }
}

impl QueryEvent {
    /// Serialises the event as one self-contained JSON object (no
    /// trailing newline). The schema is flat: an `"event"` tag plus the
    /// variant's scalar fields. Encoding goes through the workspace's
    /// single JSON writer ([`crate::json`]).
    pub fn to_json(&self) -> String {
        let mut j = JsonBuf::new();
        j.begin_obj();
        match *self {
            QueryEvent::CompileStart { states, ops } => {
                j.str_field("event", "compile_start")
                    .u64_field("states", states)
                    .u64_field("ops", ops);
            }
            QueryEvent::CompileFinish { kind, wall_ns } => {
                j.str_field("event", "compile_finish")
                    .str_field("kind", kind)
                    .u64_field("wall_ns", wall_ns);
            }
            QueryEvent::PartitionHit { states } => {
                j.str_field("event", "partition_hit")
                    .u64_field("states", states);
            }
            QueryEvent::PartitionMiss { states } => {
                j.str_field("event", "partition_miss")
                    .u64_field("states", states);
            }
            QueryEvent::BfsLevel {
                level,
                frontier,
                visited,
            } => {
                j.str_field("event", "bfs_level")
                    .u64_field("level", u64::from(level))
                    .u64_field("frontier", frontier)
                    .u64_field("visited", visited);
            }
            QueryEvent::MemoRows {
                reused,
                materialized,
            } => {
                j.str_field("event", "memo_rows")
                    .u64_field("reused", reused)
                    .u64_field("materialized", materialized);
            }
            QueryEvent::Witness { length } => {
                j.str_field("event", "witness")
                    .u64_field("length", u64::from(length));
            }
            QueryEvent::ResultCacheHit { key } => {
                j.str_field("event", "result_cache_hit")
                    .u64_field("key", key);
            }
            QueryEvent::ResultCacheMiss { key } => {
                j.str_field("event", "result_cache_miss")
                    .u64_field("key", key);
            }
            QueryEvent::QueryDone { report } => {
                j.str_field("event", "query_done");
                report.json_fields(&mut j);
            }
        }
        j.end_obj();
        j.finish()
    }
}

/// Where [`QueryEvent`]s go. Implementations must be `Send + Sync`
/// (searches run on scoped worker threads) and should be cheap — the
/// sink is called on the BFS level loop.
pub trait Sink: Send + Sync {
    /// Records one event. Must not panic; I/O sinks swallow errors.
    fn record(&self, event: &QueryEvent);
}

/// A sink that drops every event. Attaching no sink at all is
/// equivalent and strictly cheaper (the instrumentation branch is never
/// taken); `NullSink` exists for call sites that need *a* sink value.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&self, _event: &QueryEvent) {}
}

/// A sink that buffers every event in memory, for test assertions.
#[derive(Debug, Default)]
pub struct RecordingSink {
    events: Mutex<Vec<QueryEvent>>,
}

impl RecordingSink {
    /// An empty recording sink.
    pub fn new() -> RecordingSink {
        RecordingSink::default()
    }

    /// A snapshot of every event recorded so far, in order.
    pub fn events(&self) -> Vec<QueryEvent> {
        self.events.lock().expect("recording sink lock").clone()
    }

    /// Number of recorded events matching `pred`.
    pub fn count(&self, pred: impl Fn(&QueryEvent) -> bool) -> usize {
        self.events
            .lock()
            .expect("recording sink lock")
            .iter()
            .filter(|e| pred(e))
            .count()
    }

    /// Discards all recorded events.
    pub fn clear(&self) {
        self.events.lock().expect("recording sink lock").clear();
    }
}

impl Sink for RecordingSink {
    fn record(&self, event: &QueryEvent) {
        self.events
            .lock()
            .expect("recording sink lock")
            .push(*event);
    }
}

/// A sink that writes each event as one JSON line (see
/// [`QueryEvent::to_json`]). Write errors are swallowed: telemetry must
/// never fail a query.
pub struct JsonLinesSink<W: Write + Send> {
    out: Mutex<W>,
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> JsonLinesSink<W> {
        JsonLinesSink {
            out: Mutex::new(out),
        }
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(self) -> W {
        let mut w = self.out.into_inner().expect("jsonl sink lock");
        let _ = w.flush();
        w
    }
}

impl<W: Write + Send> Sink for JsonLinesSink<W> {
    fn record(&self, event: &QueryEvent) {
        let mut out = self.out.lock().expect("jsonl sink lock");
        let _ = writeln!(out, "{}", event.to_json());
    }
}

/// Hot-path counters accumulated by one search, independent of whether a
/// sink is attached (plain integer adds).
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct TraceCounters {
    /// Pair expansions attempted (frontier pairs × operations).
    pub expansions: u64,
    /// Sparse successor rows served from the memo.
    pub rows_reused: u64,
    /// Sparse successor rows interpreted and memoised.
    pub rows_materialized: u64,
}

impl TraceCounters {
    pub(crate) fn absorb(&mut self, other: TraceCounters) {
        self.expansions += other.expansions;
        self.rows_reused += other.rows_reused;
        self.rows_materialized += other.rows_materialized;
    }
}

/// Per-search instrumentation context threaded through the engines: an
/// optional sink plus the running counters. [`Trace::disabled`] is the
/// uninstrumented fast path — every emission site is a single
/// `is_some` branch and the event is never constructed.
pub(crate) struct Trace<'a> {
    pub sink: Option<&'a dyn Sink>,
    pub counters: TraceCounters,
}

impl<'a> Trace<'a> {
    pub(crate) fn new(sink: Option<&'a dyn Sink>) -> Trace<'a> {
        Trace {
            sink,
            counters: TraceCounters::default(),
        }
    }

    /// Uninstrumented context for direct engine invocations (tests and
    /// benches drive the search functions without an Oracle).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn disabled() -> Trace<'static> {
        Trace::new(None)
    }

    /// Records the event produced by `make` iff a sink is attached.
    #[inline]
    pub(crate) fn emit(&self, make: impl FnOnce() -> QueryEvent) {
        if let Some(sink) = self.sink {
            sink.record(&make());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_sink_preserves_order() {
        let sink = RecordingSink::new();
        sink.record(&QueryEvent::PartitionMiss { states: 4 });
        sink.record(&QueryEvent::BfsLevel {
            level: 0,
            frontier: 2,
            visited: 2,
        });
        sink.record(&QueryEvent::Witness { length: 1 });
        let events = sink.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0], QueryEvent::PartitionMiss { states: 4 });
        assert_eq!(sink.count(|e| matches!(e, QueryEvent::Witness { .. })), 1);
        sink.clear();
        assert!(sink.events().is_empty());
    }

    #[test]
    fn json_lines_schema_is_one_object_per_line() {
        let sink = JsonLinesSink::new(Vec::new());
        sink.record(&QueryEvent::CompileStart { states: 9, ops: 2 });
        sink.record(&QueryEvent::QueryDone {
            report: QueryReport::empty("none"),
        });
        let buf = sink.into_inner();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains(r#""event":"#), "{line}");
        }
        assert!(lines[0].contains(r#""compile_start""#));
        assert!(lines[1].contains(r#""engine":"none""#));
    }

    #[test]
    fn disabled_trace_emits_nothing_and_counts() {
        let mut t = Trace::disabled();
        t.emit(|| unreachable!("no sink attached"));
        t.counters.expansions += 7;
        assert_eq!(t.counters.expansions, 7);
    }
}
