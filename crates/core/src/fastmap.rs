//! Open-addressed hash containers specialised for `u64` keys.
//!
//! The compiled pair search ([`crate::reach`]) streams millions of packed
//! pair codes through its visited set and sparse row index; the standard
//! library's SipHash plus per-entry layout dominate that hot loop. These
//! tables use splitmix64 mixing, power-of-two capacity with linear
//! probing, and reserve `u64::MAX` as the empty-slot marker — packed pair
//! keys are always `< |Σ|² ≤ (2³² − 1)²`, and sparse row keys are state
//! codes `< |Σ|`, so the marker can never collide with a real key.

const EMPTY: u64 = u64::MAX;
const INITIAL_SLOTS: usize = 16;

/// splitmix64 finalizer: a cheap, well-mixed `u64 → u64` hash.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A set of `u64` keys; every key must be strictly below `u64::MAX`.
#[derive(Debug, Default)]
pub struct U64Set {
    slots: Vec<u64>,
    len: usize,
}

impl U64Set {
    /// An empty set.
    pub fn new() -> U64Set {
        U64Set::default()
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        debug_assert_ne!(key, EMPTY);
        if self.slots.is_empty() {
            return false;
        }
        let mask = self.slots.len() - 1;
        let mut i = mix(key) as usize & mask;
        loop {
            let slot = self.slots[i];
            if slot == key {
                return true;
            }
            if slot == EMPTY {
                return false;
            }
            i = (i + 1) & mask;
        }
    }

    /// Removes every key, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.slots.fill(EMPTY);
        self.len = 0;
    }

    /// Inserts `key`; returns `true` when it was not already present.
    #[inline]
    pub fn insert(&mut self, key: u64) -> bool {
        debug_assert_ne!(key, EMPTY);
        if self.len * 4 >= self.slots.len() * 3 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = mix(key) as usize & mask;
        loop {
            let slot = self.slots[i];
            if slot == key {
                return false;
            }
            if slot == EMPTY {
                self.slots[i] = key;
                self.len += 1;
                return true;
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let new_len = (self.slots.len() * 2).max(INITIAL_SLOTS);
        let old = std::mem::replace(&mut self.slots, vec![EMPTY; new_len]);
        let mask = new_len - 1;
        for key in old {
            if key == EMPTY {
                continue;
            }
            let mut i = mix(key) as usize & mask;
            while self.slots[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.slots[i] = key;
        }
    }
}

/// A map from `u64` keys to `usize` values; every key must be strictly
/// below `u64::MAX`.
#[derive(Debug, Default)]
pub struct U64Map {
    keys: Vec<u64>,
    vals: Vec<usize>,
    len: usize,
}

impl U64Map {
    /// An empty map.
    pub fn new() -> U64Map {
        U64Map::default()
    }

    /// Number of entries stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value stored under `key`, if any.
    #[inline]
    pub fn get(&self, key: u64) -> Option<usize> {
        debug_assert_ne!(key, EMPTY);
        if self.keys.is_empty() {
            return None;
        }
        let mask = self.keys.len() - 1;
        let mut i = mix(key) as usize & mask;
        loop {
            let slot = self.keys[i];
            if slot == key {
                return Some(self.vals[i]);
            }
            if slot == EMPTY {
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts `key → val`, replacing and returning any previous value.
    #[inline]
    pub fn insert(&mut self, key: u64, val: usize) -> Option<usize> {
        debug_assert_ne!(key, EMPTY);
        if self.len * 4 >= self.keys.len() * 3 {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut i = mix(key) as usize & mask;
        loop {
            let slot = self.keys[i];
            if slot == key {
                return Some(std::mem::replace(&mut self.vals[i], val));
            }
            if slot == EMPTY {
                self.keys[i] = key;
                self.vals[i] = val;
                self.len += 1;
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let new_len = (self.keys.len() * 2).max(INITIAL_SLOTS);
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_len]);
        let old_vals = std::mem::replace(&mut self.vals, vec![0; new_len]);
        let mask = new_len - 1;
        for (key, val) in old_keys.into_iter().zip(old_vals) {
            if key == EMPTY {
                continue;
            }
            let mut i = mix(key) as usize & mask;
            while self.keys[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.keys[i] = key;
            self.vals[i] = val;
        }
    }
}

/// A map from `u64` keys to `u64` values; every key must be strictly
/// below `u64::MAX` (values are unrestricted).
///
/// Used by the prover kernels to map packed projection keys (a state
/// code with some coordinates zeroed) to packed outcomes — the
/// open-addressed replacement for `HashMap<Vec<u32>, Vec<u32>>` on the
/// induction/classification hot paths.
#[derive(Debug, Default)]
pub struct U64U64Map {
    keys: Vec<u64>,
    vals: Vec<u64>,
    len: usize,
}

impl U64U64Map {
    /// An empty map.
    pub fn new() -> U64U64Map {
        U64U64Map::default()
    }

    /// Number of entries stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value stored under `key`, if any.
    #[inline]
    pub fn get(&self, key: u64) -> Option<u64> {
        debug_assert_ne!(key, EMPTY);
        if self.keys.is_empty() {
            return None;
        }
        let mask = self.keys.len() - 1;
        let mut i = mix(key) as usize & mask;
        loop {
            let slot = self.keys[i];
            if slot == key {
                return Some(self.vals[i]);
            }
            if slot == EMPTY {
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts `key → val`, replacing and returning any previous value.
    #[inline]
    pub fn insert(&mut self, key: u64, val: u64) -> Option<u64> {
        debug_assert_ne!(key, EMPTY);
        if self.len * 4 >= self.keys.len() * 3 {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut i = mix(key) as usize & mask;
        loop {
            let slot = self.keys[i];
            if slot == key {
                return Some(std::mem::replace(&mut self.vals[i], val));
            }
            if slot == EMPTY {
                self.keys[i] = key;
                self.vals[i] = val;
                self.len += 1;
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    /// The value under `key`, inserting `val` first when absent. Returns
    /// the stored (pre-existing or just-inserted) value.
    #[inline]
    pub fn get_or_insert(&mut self, key: u64, val: u64) -> u64 {
        match self.get(key) {
            Some(v) => v,
            None => {
                self.insert(key, val);
                val
            }
        }
    }

    fn grow(&mut self) {
        let new_len = (self.keys.len() * 2).max(INITIAL_SLOTS);
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_len]);
        let old_vals = std::mem::replace(&mut self.vals, vec![0; new_len]);
        let mask = new_len - 1;
        for (key, val) in old_keys.into_iter().zip(old_vals) {
            if key == EMPTY {
                continue;
            }
            let mut i = mix(key) as usize & mask;
            while self.keys[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.keys[i] = key;
            self.vals[i] = val;
        }
    }
}

/// Streaming 64-bit FNV-1a hasher.
///
/// Used wherever the workspace needs a *stable, canonical* content hash
/// rather than a per-process randomized one: system registry keys in
/// `sd-server` and [`crate::query::Query::fingerprint`] cache keys. It
/// implements [`std::hash::Hasher`], so any `#[derive(Hash)]` type can
/// feed it — but unlike the std `DefaultHasher`, the digest is specified
/// (FNV-1a over the byte stream) and identical across processes and
/// runs.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

impl Fnv64 {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(FNV_OFFSET)
    }

    /// The digest so far.
    pub fn digest(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

impl std::hash::Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    // The std defaults feed native-endian bytes; pin little-endian so
    // digests are identical across architectures, not just runs.
    fn write_u8(&mut self, i: u8) {
        self.write(&[i]);
    }
    fn write_u16(&mut self, i: u16) {
        self.write(&i.to_le_bytes());
    }
    fn write_u32(&mut self, i: u32) {
        self.write(&i.to_le_bytes());
    }
    fn write_u64(&mut self, i: u64) {
        self.write(&i.to_le_bytes());
    }
    fn write_u128(&mut self, i: u128) {
        self.write(&i.to_le_bytes());
    }
    fn write_usize(&mut self, i: usize) {
        self.write(&(i as u64).to_le_bytes());
    }
    fn write_i64(&mut self, i: i64) {
        self.write(&i.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    /// A cheap deterministic pseudo-random stream.
    fn stream(seed: u64, len: usize) -> Vec<u64> {
        (0..len as u64).map(|i| mix(seed ^ i) % 1000).collect()
    }

    #[test]
    fn set_matches_std_hashset() {
        let mut ours = U64Set::new();
        let mut std_set = HashSet::new();
        for key in stream(1, 4000) {
            assert_eq!(ours.insert(key), std_set.insert(key));
        }
        assert_eq!(ours.len(), std_set.len());
        for key in 0..1000 {
            assert_eq!(ours.contains(key), std_set.contains(&key));
        }
        assert!(!ours.is_empty());
        ours.clear();
        assert!(ours.is_empty());
        for key in 0..1000 {
            assert!(!ours.contains(key));
        }
        assert!(ours.insert(7));
    }

    #[test]
    fn map_matches_std_hashmap() {
        let mut ours = U64Map::new();
        let mut std_map = HashMap::new();
        for (i, key) in stream(2, 4000).into_iter().enumerate() {
            assert_eq!(ours.insert(key, i), std_map.insert(key, i));
        }
        assert_eq!(ours.len(), std_map.len());
        for key in 0..1000 {
            assert_eq!(ours.get(key), std_map.get(&key).copied());
        }
    }

    #[test]
    fn u64_map_matches_std_hashmap() {
        let mut ours = U64U64Map::new();
        let mut std_map = HashMap::new();
        for (i, key) in stream(3, 4000).into_iter().enumerate() {
            let val = mix(i as u64);
            assert_eq!(ours.insert(key, val), std_map.insert(key, val));
        }
        assert_eq!(ours.len(), std_map.len());
        for key in 0..1000 {
            assert_eq!(ours.get(key), std_map.get(&key).copied());
        }
    }

    #[test]
    fn u64_map_get_or_insert() {
        let mut m = U64U64Map::new();
        assert_eq!(m.get_or_insert(5, 10), 10);
        assert_eq!(m.get_or_insert(5, 99), 10);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn empty_containers_answer_lookups() {
        assert!(!U64Set::new().contains(7));
        assert!(U64Set::new().is_empty());
        assert_eq!(U64Map::new().get(7), None);
        assert!(U64Map::new().is_empty());
        assert_eq!(U64U64Map::new().get(7), None);
        assert!(U64U64Map::new().is_empty());
    }

    #[test]
    fn large_keys_near_the_marker_work() {
        // Packed pair keys can approach (2³²−1)² − 1; anything below
        // u64::MAX must round-trip.
        let big = u64::MAX - 1;
        let mut s = U64Set::new();
        assert!(s.insert(big));
        assert!(s.contains(big));
        let mut m = U64Map::new();
        assert_eq!(m.insert(big, 9), None);
        assert_eq!(m.get(big), Some(9));
        let mut m2 = U64U64Map::new();
        assert_eq!(m2.insert(big, u64::MAX), None);
        assert_eq!(m2.get(big), Some(u64::MAX));
    }
}
