//! Minimal JSON writing: one escaper for the whole workspace.
//!
//! Three things in the workspace emit JSON — telemetry events
//! ([`crate::telemetry::JsonLinesSink`]), the `sd-server` wire protocol,
//! and its access log. Each is a flat object of scalars, so a full
//! serialisation framework would be overkill; what must *not* be
//! duplicated is the string escaper, because an unescaped quote in an
//! object name is a protocol injection. [`JsonBuf`] is a push-style
//! writer over a plain `String`: callers open objects/arrays, push
//! fields, and take the finished line.
//!
//! The encoder writes exactly the JSON interchange subset: object keys
//! in push order (callers keep a canonical order themselves), no
//! whitespace, `\uXXXX` escapes only where required.

use std::fmt::Write as _;

/// Escapes `s` as JSON string *content* (no surrounding quotes) into
/// `buf`. Control characters use the two-character escapes where JSON
/// defines them and `\u00XX` otherwise.
pub fn escape_into(buf: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            '\u{08}' => buf.push_str("\\b"),
            '\u{0c}' => buf.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
}

/// A quoted, escaped JSON string.
pub fn quote(s: &str) -> String {
    let mut buf = String::with_capacity(s.len() + 2);
    buf.push('"');
    escape_into(&mut buf, s);
    buf.push('"');
    buf
}

/// A push-style JSON writer. Structural correctness (balanced
/// open/close calls) is the caller's responsibility; comma placement is
/// handled here.
#[derive(Debug, Default)]
pub struct JsonBuf {
    buf: String,
    /// Whether the next value at the current nesting level needs a
    /// leading comma.
    need_comma: bool,
}

impl JsonBuf {
    /// An empty writer.
    pub fn new() -> JsonBuf {
        JsonBuf::default()
    }

    /// Current serialised text.
    pub fn as_str(&self) -> &str {
        &self.buf
    }

    /// Consumes the writer, returning the serialised text.
    pub fn finish(self) -> String {
        self.buf
    }

    fn comma(&mut self) {
        if self.need_comma {
            self.buf.push(',');
        }
        self.need_comma = false;
    }

    fn key(&mut self, k: &str) {
        self.comma();
        self.buf.push('"');
        escape_into(&mut self.buf, k);
        self.buf.push_str("\":");
    }

    /// Opens an object as the next value (top level or array element).
    pub fn begin_obj(&mut self) -> &mut Self {
        self.comma();
        self.buf.push('{');
        self
    }

    /// Opens an object-valued field.
    pub fn begin_obj_field(&mut self, k: &str) -> &mut Self {
        self.key(k);
        self.buf.push('{');
        self.need_comma = false;
        self
    }

    /// Closes the innermost object.
    pub fn end_obj(&mut self) -> &mut Self {
        self.buf.push('}');
        self.need_comma = true;
        self
    }

    /// Opens an array-valued field.
    pub fn begin_arr_field(&mut self, k: &str) -> &mut Self {
        self.key(k);
        self.buf.push('[');
        self.need_comma = false;
        self
    }

    /// Closes the innermost array.
    pub fn end_arr(&mut self) -> &mut Self {
        self.buf.push(']');
        self.need_comma = true;
        self
    }

    /// Pushes a string field.
    pub fn str_field(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push('"');
        escape_into(&mut self.buf, v);
        self.buf.push('"');
        self.need_comma = true;
        self
    }

    /// Pushes an unsigned integer field.
    pub fn u64_field(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self.need_comma = true;
        self
    }

    /// Pushes a signed integer field.
    pub fn i64_field(&mut self, k: &str, v: i64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self.need_comma = true;
        self
    }

    /// Pushes a boolean field.
    pub fn bool_field(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self.need_comma = true;
        self
    }

    /// Pushes a field whose value is pre-serialised JSON, verbatim.
    /// Serving layers use this to splice a cached answer into a fresh
    /// response envelope without re-encoding (byte-identical replays).
    pub fn raw_field(&mut self, k: &str, raw_json: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(raw_json);
        self.need_comma = true;
        self
    }

    /// Pushes a `null`-valued field.
    pub fn null_field(&mut self, k: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str("null");
        self.need_comma = true;
        self
    }

    /// Pushes a string as the next array element.
    pub fn str_elem(&mut self, v: &str) -> &mut Self {
        self.comma();
        self.buf.push('"');
        escape_into(&mut self.buf, v);
        self.buf.push('"');
        self.need_comma = true;
        self
    }

    /// Pushes a signed integer as the next array element.
    pub fn i64_elem(&mut self, v: i64) -> &mut Self {
        self.comma();
        let _ = write!(self.buf, "{v}");
        self.need_comma = true;
        self
    }

    /// Pushes an unsigned integer as the next array element.
    pub fn u64_elem(&mut self, v: u64) -> &mut Self {
        self.comma();
        let _ = write!(self.buf, "{v}");
        self.need_comma = true;
        self
    }

    /// Pushes pre-serialised JSON as the next array element, verbatim.
    pub fn raw_elem(&mut self, raw_json: &str) -> &mut Self {
        self.comma();
        self.buf.push_str(raw_json);
        self.need_comma = true;
        self
    }

    /// Opens an array as the next array element (nested arrays).
    pub fn begin_arr_elem(&mut self) -> &mut Self {
        self.comma();
        self.buf.push('[');
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd\te\u{01}");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\te\\u0001");
        assert_eq!(quote("π ▷ β"), "\"π ▷ β\"");
    }

    #[test]
    fn builds_nested_objects_and_arrays() {
        let mut j = JsonBuf::new();
        j.begin_obj()
            .str_field("method", "sinks")
            .u64_field("id", 7)
            .bool_field("ok", true)
            .i64_field("delta", -3);
        j.begin_arr_field("rows");
        j.begin_arr_elem()
            .str_elem("alpha")
            .str_elem("beta")
            .end_arr();
        j.begin_arr_elem().end_arr();
        j.end_arr();
        j.begin_obj_field("meta").u64_field("n", 1).end_obj();
        j.end_obj();
        assert_eq!(
            j.finish(),
            r#"{"method":"sinks","id":7,"ok":true,"delta":-3,"rows":[["alpha","beta"],[]],"meta":{"n":1}}"#
        );
    }

    #[test]
    fn keys_are_escaped_too() {
        let mut j = JsonBuf::new();
        j.begin_obj().str_field("we\"ird", "v").end_obj();
        assert_eq!(j.finish(), r#"{"we\"ird":"v"}"#);
    }
}
