//! States and the equality-except-at relations.
//!
//! A [`State`] stores, per object, an index into that object's domain. This
//! keeps states small, hashable and cheap to compare — the pair-reachability
//! decision procedure visits millions of them. The paper's relations
//! `σ1 =α= σ2` (Def 1-2), `σ1 =A= σ2` (Def 1-1) and the substitution
//! `σ2 ←A σ1` (Def 5-3) are provided as methods.

use core::fmt;

use crate::universe::{ObjId, ObjSet, Universe};
use crate::value::Value;

/// A system state: a vector of domain indices, one per object.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct State {
    idx: Box<[u32]>,
}

impl State {
    /// Builds a state from raw domain indices.
    ///
    /// The indices must be in range for the universe this state will be used
    /// with; [`Universe`]-aware constructors on
    /// [`crate::system::System`] are usually more convenient.
    pub fn from_indices(idx: Vec<u32>) -> State {
        State {
            idx: idx.into_boxed_slice(),
        }
    }

    /// The domain index of object `a`.
    pub fn index(&self, a: ObjId) -> u32 {
        self.idx[a.index()]
    }

    /// Sets the domain index of object `a`.
    pub fn set_index(&mut self, a: ObjId, v: u32) {
        self.idx[a.index()] = v;
    }

    /// The value of object `a` — `σ.α` in the paper's notation.
    pub fn value<'u>(&self, u: &'u Universe, a: ObjId) -> &'u Value {
        u.domain(a).value(self.idx[a.index()])
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.idx.len()
    }

    /// Whether the state has no objects.
    pub fn is_empty(&self) -> bool {
        self.idx.is_empty()
    }

    /// `σ1 =A= σ2` (Def 1-1): the states agree on every object *not* in `A`.
    pub fn eq_except(&self, other: &State, a: &ObjSet) -> bool {
        debug_assert_eq!(self.len(), other.len());
        (0..self.idx.len()).all(|i| {
            let obj = ObjId::from_index(i);
            a.contains(obj) || self.idx[i] == other.idx[i]
        })
    }

    /// `σ1.A = σ2.A`: the states agree on every object *in* `A`.
    pub fn eq_on(&self, other: &State, a: &ObjSet) -> bool {
        a.iter().all(|obj| self.index(obj) == other.index(obj))
    }

    /// `σ2 ←A σ1` (Def 5-3): this state with `from`'s values substituted at
    /// the objects in `a`.
    #[must_use]
    pub fn substitute(&self, a: &ObjSet, from: &State) -> State {
        let mut out = self.clone();
        for obj in a.iter() {
            out.set_index(obj, from.index(obj));
        }
        out
    }

    /// The set of objects at which the two states differ.
    pub fn diff(&self, other: &State) -> ObjSet {
        debug_assert_eq!(self.len(), other.len());
        ObjSet::from_iter(
            (0..self.idx.len())
                .filter(|&i| self.idx[i] != other.idx[i])
                .map(ObjId::from_index),
        )
    }

    /// The projection `σ.A` as a vector of domain indices in `A`'s sorted
    /// object order. Used to group states into `=A=` equivalence classes.
    pub fn project(&self, a: &ObjSet) -> Vec<u32> {
        a.iter().map(|obj| self.index(obj)).collect()
    }

    /// The projection onto the *complement* of `A`.
    pub fn project_complement(&self, a: &ObjSet) -> Vec<u32> {
        (0..self.idx.len())
            .filter(|&i| !a.contains(ObjId::from_index(i)))
            .map(|i| self.idx[i])
            .collect()
    }

    /// The global mixed-radix index of this state within `u`'s state space.
    ///
    /// Only meaningful when the state count fits in `u64` (checked by the
    /// enumeration entry points).
    pub fn encode(&self, u: &Universe) -> u64 {
        let mut acc: u128 = 0;
        for (i, &v) in self.idx.iter().enumerate() {
            acc += u.stride(ObjId::from_index(i)) * v as u128;
        }
        acc as u64
    }

    /// Decodes a global state index back into a state.
    pub fn decode(u: &Universe, mut code: u64) -> State {
        let mut idx = vec![0u32; u.num_objects()];
        for (i, slot) in idx.iter_mut().enumerate() {
            let stride = u.stride(ObjId::from_index(i)) as u64;
            *slot = (code / stride) as u32;
            code %= stride;
        }
        State::from_indices(idx)
    }

    /// Renders the state with object names and values.
    pub fn display<'a>(&'a self, u: &'a Universe) -> StateDisplay<'a> {
        StateDisplay { state: self, u }
    }
}

impl fmt::Debug for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "State{:?}", self.idx)
    }
}

/// Helper produced by [`State::display`].
pub struct StateDisplay<'a> {
    state: &'a State,
    u: &'a Universe,
}

impl fmt::Display for StateDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, a) in self.u.objects().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}={}", self.u.name(a), self.state.value(self.u, a))?;
        }
        write!(f, ">")
    }
}

/// Iterates over every state of a universe in mixed-radix order.
pub struct StateIter<'u> {
    u: &'u Universe,
    next: Option<Vec<u32>>,
}

impl<'u> StateIter<'u> {
    /// Creates an iterator over all states of `u`.
    ///
    /// Callers should bound the state count first via
    /// [`Universe::checked_state_count`].
    pub fn new(u: &'u Universe) -> StateIter<'u> {
        let next = if u.num_objects() == 0 {
            Some(Vec::new())
        } else {
            Some(vec![0u32; u.num_objects()])
        };
        StateIter { u, next }
    }
}

impl Iterator for StateIter<'_> {
    type Item = State;

    fn next(&mut self) -> Option<State> {
        let cur = self.next.take()?;
        let out = State::from_indices(cur.clone());
        // Advance the mixed-radix counter (last object varies fastest).
        let mut cur = cur;
        let mut i = cur.len();
        loop {
            if i == 0 {
                self.next = None;
                break;
            }
            i -= 1;
            let obj = ObjId::from_index(i);
            if (cur[i] + 1) < self.u.domain(obj).size() as u32 {
                cur[i] += 1;
                for slot in cur.iter_mut().skip(i + 1) {
                    *slot = 0;
                }
                self.next = Some(cur);
                break;
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Domain;

    fn uni() -> Universe {
        Universe::new(vec![
            ("a".into(), Domain::boolean()),
            ("b".into(), Domain::int_range(0, 2).unwrap()),
            ("c".into(), Domain::boolean()),
        ])
        .unwrap()
    }

    #[test]
    fn enumerate_all_states() {
        let u = uni();
        let all: Vec<State> = StateIter::new(&u).collect();
        assert_eq!(all.len(), 12);
        // All distinct.
        let set: std::collections::BTreeSet<_> = all.iter().cloned().collect();
        assert_eq!(set.len(), 12);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let u = uni();
        for (i, s) in StateIter::new(&u).enumerate() {
            assert_eq!(s.encode(&u), i as u64);
            assert_eq!(State::decode(&u, i as u64), s);
        }
    }

    #[test]
    fn eq_except_and_on() {
        let u = uni();
        let a = u.obj("a").unwrap();
        let b = u.obj("b").unwrap();
        let s1 = State::from_indices(vec![0, 1, 0]);
        let s2 = State::from_indices(vec![1, 1, 0]);
        let only_a = ObjSet::singleton(a);
        assert!(s1.eq_except(&s2, &only_a));
        assert!(!s2.eq_except(&s1, &ObjSet::singleton(b)));
        assert!(s1.eq_on(&s2, &ObjSet::singleton(b)));
        assert!(!s1.eq_on(&s2, &only_a));
        assert_eq!(s1.diff(&s2), only_a);
    }

    #[test]
    fn substitution_def_5_3() {
        let u = uni();
        let ab = u.obj_set(&["a", "b"]).unwrap();
        let s1 = State::from_indices(vec![1, 2, 1]);
        let s2 = State::from_indices(vec![0, 0, 0]);
        // σ2 ←{a,b} σ1 agrees with σ1 on {a,b} and with σ2 elsewhere.
        let sub = s2.substitute(&ab, &s1);
        assert!(sub.eq_on(&s1, &ab));
        assert!(sub.eq_except(&s2, &ab));
        assert_eq!(sub, State::from_indices(vec![1, 2, 0]));
    }

    #[test]
    fn projections() {
        let u = uni();
        let ac = u.obj_set(&["a", "c"]).unwrap();
        let s = State::from_indices(vec![1, 2, 0]);
        assert_eq!(s.project(&ac), vec![1, 0]);
        assert_eq!(s.project_complement(&ac), vec![2]);
    }

    #[test]
    fn display_shows_names() {
        let u = uni();
        let s = State::from_indices(vec![1, 2, 0]);
        assert_eq!(s.display(&u).to_string(), "<a=true, b=2, c=false>");
    }

    #[test]
    fn values_resolve_through_domain() {
        let u = uni();
        let b = u.obj("b").unwrap();
        let s = State::from_indices(vec![0, 2, 0]);
        assert_eq!(s.value(&u, b), &Value::Int(2));
    }
}
