//! Maximal solutions and the join property (§3.5, Thm 3-1).
//!
//! Information problems do not satisfy the join property in general — the
//! join of two "squeeze the source" solutions can re-admit variety — so
//! maximal solutions need not be unique (§3.5). Requiring A-independence
//! (Def 3-1) restores the join property (Thm 3-1) and with it a unique
//! maximal solution, which this module constructs *directly*: an
//! A-independent constraint is a union of `=A=`-cylinder classes, and a
//! cylinder belongs to the maximal solution iff it alone admits no
//! dependency.

use crate::compiled::par_map_chunks;
use crate::constraint::{Phi, StateSet};
use crate::depend::SatPartition;
use crate::error::{Error, Result};
use crate::oracle::Oracle;
use crate::problem::Problem;
use crate::system::System;
use crate::universe::{ObjId, ObjSet};

/// Diagnostics from one maximal-solution construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveStats {
    /// Cylinder classes of the `=A=` partition examined.
    pub classes: u64,
    /// Times the system was compiled — always ≤ 1, because the whole
    /// sweep shares one [`Oracle`].
    pub compiles: u64,
    /// Pair searches run (one per cylinder class).
    pub searches: u64,
}

/// Constructs the unique maximal A-independent solution to
/// `X(φ) ≡ ¬A ▷φ β ∧ φ A-independent`, as an extensional constraint.
///
/// Every A-independent constraint is a union of cylinder classes of the
/// `=A=` relation (sets of states closed under changing A). Initial pairs
/// of the dependency search never cross cylinders, so a union of cylinders
/// is a solution iff each cylinder is — hence the union of all good
/// cylinders is the unique maximal solution (this is Thm 3-1 made
/// constructive).
///
/// The system is compiled once; the per-cylinder searches run in
/// parallel against the shared [`Oracle`] (see
/// [`unique_maximal_independent_solution_stats`] for the counters).
pub fn unique_maximal_independent_solution(
    sys: &System,
    sources: &ObjSet,
    sink: ObjId,
) -> Result<Phi> {
    Ok(unique_maximal_independent_solution_stats(sys, sources, sink)?.0)
}

/// [`unique_maximal_independent_solution`], also reporting how much work
/// the sweep did — in particular that the system was compiled exactly
/// once for all cylinder classes.
pub fn unique_maximal_independent_solution_stats(
    sys: &System,
    sources: &ObjSet,
    sink: ObjId,
) -> Result<(Phi, SolveStats)> {
    let oracle = Oracle::new(sys)?;
    let phi = unique_maximal_independent_solution_with(&oracle, sources, sink)?;
    let os = oracle.stats();
    let stats = SolveStats {
        classes: os.searches,
        compiles: os.compiles,
        searches: os.searches,
    };
    Ok((phi, stats))
}

/// [`unique_maximal_independent_solution`] against a caller-held
/// [`Oracle`], so several solves (different sources/sinks) share one
/// compile.
pub fn unique_maximal_independent_solution_with(
    oracle: &Oracle<'_>,
    sources: &ObjSet,
    sink: ObjId,
) -> Result<Phi> {
    let sys = oracle.system();
    let n = sys.state_count()?;
    let partition = oracle.partition(&Phi::True, sources)?;
    let classes = partition.classes();
    // Initial pairs never cross cylinders, so each class is decided by
    // its own single-class search; the sweep is embarrassingly parallel.
    let verdicts: Vec<Result<bool>> = par_map_chunks(classes, 1, |chunk| {
        chunk
            .iter()
            .map(|class| -> Result<bool> {
                let part = SatPartition::from_classes(vec![class.clone()]);
                Ok(oracle.depends_partition(&part, sink)?.0.is_none())
            })
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect();
    let mut solution = StateSet::new(n);
    for (class, good) in classes.iter().zip(verdicts) {
        if good? {
            for &code in class {
                solution.insert(code);
            }
        }
    }
    Ok(Phi::from_set(solution))
}

/// Checks one instance of the join property (§3.5):
/// `X(φ1) ∧ X(φ2) ⊃ X(φ1 ∨ φ2)`. Returns `true` when the implication
/// holds for this pair (vacuously if a premise fails).
pub fn join_property_instance(
    sys: &System,
    problem: &Problem,
    phi1: &Phi,
    phi2: &Phi,
) -> Result<bool> {
    if !problem.is_solution(sys, phi1)? || !problem.is_solution(sys, phi2)? {
        return Ok(true);
    }
    problem.is_solution(sys, &phi1.clone().or(phi2.clone()))
}

/// A maximal single-object value constraint: `φ(σ) ≡ σ.α ∈ S` for some set
/// of domain values S.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueConstraint {
    /// The constrained object.
    pub object: ObjId,
    /// Permitted domain indices for the object.
    pub allowed: Vec<u32>,
}

impl ValueConstraint {
    /// Converts to a [`Phi`] over the given system.
    pub fn to_phi(&self, sys: &System) -> Result<Phi> {
        let n = sys.state_count()?;
        let u = sys.universe();
        let mut set = StateSet::new(n);
        for sigma in sys.states()? {
            if self.allowed.contains(&sigma.index(self.object)) {
                set.insert(sigma.encode(u));
            }
        }
        Ok(Phi::from_set(set))
    }
}

/// Enumerates all *maximal* solutions among single-object value constraints
/// `σ.α ∈ S` for the problem `¬α ▷φ β`, demonstrating §3.5's point that
/// maximal solutions need not be unique.
///
/// Exponential in α's domain size; rejected above 16 values.
pub fn maximal_value_constraints(
    sys: &System,
    alpha: ObjId,
    beta: ObjId,
) -> Result<Vec<ValueConstraint>> {
    let dom = sys.universe().domain(alpha).size();
    if dom > 16 {
        return Err(Error::Invalid(format!(
            "domain of size {dom} too large for subset enumeration (max 16)"
        )));
    }
    let a = ObjSet::singleton(alpha);
    let u = sys.universe();
    let n = sys.state_count()?;
    let oracle = Oracle::new(sys)?;
    // Bucket state codes by α's value once; Sat(α ∈ S) is then a merge
    // of buckets instead of a fresh state-space sweep per subset.
    let stride = u.stride(alpha) as u64;
    let dsize = dom as u64;
    let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); dom];
    for code in 0..n {
        buckets[((code / stride) % dsize) as usize].push(code);
    }
    // A subset S is a solution iff ¬α ▷(α∈S) β. Solutions are downward
    // closed (Thm 2-3), so the maximal ones form an antichain of subsets.
    // All subsets are checked in parallel against the one compiled
    // system.
    let masks: Vec<u32> = (1u32..(1u32 << dom)).collect();
    let verdicts: Vec<Result<bool>> = par_map_chunks(&masks, 16, |chunk| {
        chunk
            .iter()
            .map(|&mask| -> Result<bool> {
                let mut codes: Vec<u64> = Vec::new();
                for (i, bucket) in buckets.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        codes.extend_from_slice(bucket);
                    }
                }
                codes.sort_unstable();
                let part = SatPartition::from_codes(u, &codes, &a);
                Ok(oracle.depends_partition(&part, beta)?.0.is_none())
            })
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect();
    let mut solutions: Vec<u32> = Vec::new();
    for (&mask, good) in masks.iter().zip(verdicts) {
        if good? {
            solutions.push(mask);
        }
    }
    // Keep only maximal masks (not strictly contained in another solution).
    let mut maximal = Vec::new();
    'outer: for &m in &solutions {
        for &m2 in &solutions {
            if m != m2 && (m & m2) == m {
                continue 'outer;
            }
        }
        maximal.push(ValueConstraint {
            object: alpha,
            allowed: (0..dom as u32).filter(|i| m & (1 << i) != 0).collect(),
        });
    }
    Ok(maximal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::op::{Cmd, Op};
    use crate::universe::{Domain, Universe};

    /// Exact `A ▷φ β` verdict through the Query builder.
    fn exact_depends(
        sys: &System,
        phi: &Phi,
        a: &ObjSet,
        beta: crate::universe::ObjId,
    ) -> Option<crate::reach::DependsWitness> {
        crate::query::Query::new(phi.clone(), a.clone())
            .beta(beta)
            .run_on(sys)
            .unwrap()
            .into_witness()
    }
    use crate::value::{Rights, Value};

    /// δ: if α ≤ 10 then β ← 0 else β ← 1, α ∈ 0..=12 (§3.5, scaled to a
    /// 13-value domain so subset enumeration stays cheap).
    fn threshold() -> System {
        let u = Universe::new(vec![
            ("alpha".into(), Domain::int_range(0, 12).unwrap()),
            ("beta".into(), Domain::int_range(0, 1).unwrap()),
        ])
        .unwrap();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        System::new(
            u,
            vec![Op::from_cmd(
                "thresh",
                Cmd::If(
                    Expr::var(a).le(Expr::int(10)),
                    Box::new(Cmd::assign(b, Expr::int(0))),
                    Box::new(Cmd::assign(b, Expr::int(1))),
                ),
            )],
        )
    }

    #[test]
    fn two_maximal_solutions_sec_3_5() {
        let sys = threshold();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let maximal = maximal_value_constraints(&sys, a, b).unwrap();
        // Exactly the two maximal solutions of §3.5: α ≤ 10 and α > 10.
        assert_eq!(maximal.len(), 2);
        let mut sizes: Vec<usize> = maximal.iter().map(|m| m.allowed.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 11]); // {11, 12} and {0..=10}.
    }

    #[test]
    fn join_property_fails_without_independence_sec_3_5() {
        // δ: if m then β ← α; φ1: α = 0 and φ2: α = 1 are both solutions,
        // their join is not.
        let u = Universe::new(vec![
            ("alpha".into(), Domain::int_range(0, 1).unwrap()),
            ("beta".into(), Domain::int_range(0, 1).unwrap()),
            ("m".into(), Domain::boolean()),
        ])
        .unwrap();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let m = u.obj("m").unwrap();
        let sys = System::new(
            u,
            vec![Op::from_cmd(
                "copy",
                Cmd::when(Expr::var(m), Cmd::assign(b, Expr::var(a))),
            )],
        );
        let problem = Problem::no_flow(ObjSet::singleton(a), b, false);
        let phi1 = Phi::expr(Expr::var(a).eq(Expr::int(0)));
        let phi2 = Phi::expr(Expr::var(a).eq(Expr::int(1)));
        assert!(problem.is_solution(&sys, &phi1).unwrap());
        assert!(problem.is_solution(&sys, &phi2).unwrap());
        assert!(!join_property_instance(&sys, &problem, &phi1, &phi2).unwrap());

        // With the independence requirement (Thm 3-1), the join property
        // holds: the independent solutions here are unions of m-cylinders.
        let strict = Problem::no_flow(ObjSet::singleton(a), b, true);
        let psi1 = Phi::expr(Expr::var(m).not());
        let psi2 = Phi::expr(Expr::var(m).not().and(Expr::var(b).eq(Expr::int(0))));
        assert!(strict.is_solution(&sys, &psi1).unwrap());
        assert!(strict.is_solution(&sys, &psi2).unwrap());
        assert!(join_property_instance(&sys, &strict, &psi1, &psi2).unwrap());
    }

    #[test]
    fn unique_maximal_solution_guarded_copy() {
        let u = Universe::new(vec![
            ("alpha".into(), Domain::int_range(0, 1).unwrap()),
            ("beta".into(), Domain::int_range(0, 1).unwrap()),
            ("m".into(), Domain::boolean()),
        ])
        .unwrap();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let m = u.obj("m").unwrap();
        let sys = System::new(
            u,
            vec![Op::from_cmd(
                "copy",
                Cmd::when(Expr::var(m), Cmd::assign(b, Expr::var(a))),
            )],
        );
        let phi_max = unique_maximal_independent_solution(&sys, &ObjSet::singleton(a), b).unwrap();
        // It is a solution, it is α-independent, and it equals ¬m
        // extensionally.
        let strict = Problem::no_flow(ObjSet::singleton(a), b, true);
        assert!(strict.is_solution(&sys, &phi_max).unwrap());
        let expected = Phi::expr(Expr::var(m).not()).sat(&sys).unwrap();
        assert_eq!(phi_max.sat(&sys).unwrap(), expected);
    }

    #[test]
    fn unique_maximal_solution_rights_system_sec_3_5() {
        // δ: if s∈<x,x> ∧ r∈<x,α> ∧ w∈<x,β> then β ← α. The single maximal
        // α-independent solution is s∉<x,x> ∨ r∉<x,α> ∨ w∉<x,β>.
        let cell = || {
            Domain::new(vec![
                Value::Rights(Rights::NONE),
                Value::Rights(Rights::S.union(Rights::R).union(Rights::W)),
            ])
            .unwrap()
        };
        let u = Universe::new(vec![
            ("alpha".into(), Domain::int_range(0, 1).unwrap()),
            ("beta".into(), Domain::int_range(0, 1).unwrap()),
            ("xx".into(), cell()),
            ("xa".into(), cell()),
            ("xb".into(), cell()),
        ])
        .unwrap();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let xx = u.obj("xx").unwrap();
        let xa = u.obj("xa").unwrap();
        let xb = u.obj("xb").unwrap();
        let guard = Expr::var(xx)
            .has_rights(Rights::S)
            .and(Expr::var(xa).has_rights(Rights::R))
            .and(Expr::var(xb).has_rights(Rights::W));
        let sys = System::new(
            u,
            vec![Op::from_cmd(
                "d",
                Cmd::when(guard, Cmd::assign(b, Expr::var(a))),
            )],
        );
        let computed = unique_maximal_independent_solution(&sys, &ObjSet::singleton(a), b).unwrap();
        let expected = Phi::expr(
            Expr::var(xx)
                .has_rights(Rights::S)
                .not()
                .or(Expr::var(xa).has_rights(Rights::R).not())
                .or(Expr::var(xb).has_rights(Rights::W).not()),
        );
        assert_eq!(computed.sat(&sys).unwrap(), expected.sat(&sys).unwrap());
    }

    #[test]
    fn maximal_solution_compiles_once_and_matches_sequential_reference() {
        let sys = threshold();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let (phi, stats) =
            unique_maximal_independent_solution_stats(&sys, &ObjSet::singleton(a), b).unwrap();
        assert_eq!(stats.compiles, 1, "one compile for the whole sweep");
        assert!(stats.classes >= 1);
        assert_eq!(stats.searches, stats.classes);
        // Same extensional result as the pre-Oracle sequential path:
        // one per-cylinder `reach::depends` call per class.
        let n = sys.state_count().unwrap();
        let mut expected = StateSet::new(n);
        for class in crate::depend::classes(&sys, &Phi::True, &ObjSet::singleton(a)).unwrap() {
            let mut cyl = StateSet::new(n);
            for s in &class {
                cyl.insert(s.encode(u));
            }
            let solo = exact_depends(&sys, &Phi::from_set(cyl.clone()), &ObjSet::singleton(a), b);
            if solo.is_none() {
                expected.union_with(&cyl);
            }
        }
        assert_eq!(phi.sat(&sys).unwrap(), expected);
    }

    #[test]
    fn subset_enumeration_bounded() {
        let u = Universe::new(vec![("big".into(), Domain::int_range(0, 20).unwrap())]).unwrap();
        let big = u.obj("big").unwrap();
        let sys = System::new(u, vec![]);
        assert!(maximal_value_constraints(&sys, big, big).is_err());
    }
}
