//! Constraints φ on states (§2.4, §3.2).
//!
//! A constraint characterizes a set of *initial* states (§3.3 stresses that
//! φ is an initial, not invariant, constraint). [`Phi`] is a small predicate
//! language with logical combinators, native predicates, and extensional
//! sets; [`Phi::sat`] computes the satisfying set over the (finite) state
//! space, which is the representation every decision procedure works on.

use std::fmt;
use std::sync::Arc;

use crate::bitset::BitSet;
use crate::error::Result;
use crate::expr::Expr;
use crate::state::State;
use crate::system::System;

/// A set of states, represented as a bit set over global state indices.
pub type StateSet = BitSet;

/// A native predicate body: shared, thread-safe `fn(system, state) -> bool`.
pub type NativePred = Arc<dyn Fn(&System, &State) -> Result<bool> + Send + Sync>;

/// A constraint on states: the φ of the paper.
#[derive(Clone)]
pub enum Phi {
    /// The always-true constraint (no constraint at all).
    True,
    /// The unsatisfiable constraint.
    False,
    /// A boolean [`Expr`] over the state.
    Expr(Expr),
    /// A named native predicate.
    Pred {
        /// Display name used in certificates and debugging output.
        name: String,
        /// The predicate body.
        f: NativePred,
    },
    /// An extensional constraint: exactly the states in the set.
    Set(StateSet),
    /// Negation.
    Not(Box<Phi>),
    /// Conjunction.
    And(Box<Phi>, Box<Phi>),
    /// Disjunction (the "join" of §3.5).
    Or(Box<Phi>, Box<Phi>),
}

impl fmt::Debug for Phi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phi::True => f.write_str("tt"),
            Phi::False => f.write_str("ff"),
            Phi::Expr(e) => write!(f, "Expr({e:?})"),
            Phi::Pred { name, .. } => write!(f, "Pred({name})"),
            Phi::Set(s) => write!(f, "Set(|{}|)", s.count()),
            Phi::Not(p) => write!(f, "¬{p:?}"),
            Phi::And(a, b) => write!(f, "({a:?} ∧ {b:?})"),
            Phi::Or(a, b) => write!(f, "({a:?} ∨ {b:?})"),
        }
    }
}

impl Phi {
    /// A boolean-expression constraint.
    pub fn expr(e: Expr) -> Phi {
        Phi::Expr(e)
    }

    /// A named native predicate.
    pub fn pred(
        name: impl Into<String>,
        f: impl Fn(&System, &State) -> Result<bool> + Send + Sync + 'static,
    ) -> Phi {
        Phi::Pred {
            name: name.into(),
            f: Arc::new(f),
        }
    }

    /// An extensional constraint from a state set.
    pub fn from_set(s: StateSet) -> Phi {
        Phi::Set(s)
    }

    /// Conjunction `self ∧ rhs`.
    #[must_use]
    pub fn and(self, rhs: Phi) -> Phi {
        Phi::And(Box::new(self), Box::new(rhs))
    }

    /// Disjunction `self ∨ rhs`.
    #[must_use]
    pub fn or(self, rhs: Phi) -> Phi {
        Phi::Or(Box::new(self), Box::new(rhs))
    }

    /// Negation `¬self`.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Phi {
        Phi::Not(Box::new(self))
    }

    /// Feeds a canonical tagged encoding of the constraint into `h`,
    /// for [`crate::Query::fingerprint`]. Returns `false` if the
    /// constraint contains a native [`Phi::Pred`]: closures have no
    /// canonical identity (and pointer identity is unsound as a cache
    /// key once an `Arc` is dropped and its address reused), so such
    /// constraints are not fingerprintable.
    pub(crate) fn fingerprint_into(&self, h: &mut crate::fastmap::Fnv64) -> bool {
        use std::hash::{Hash, Hasher};
        match self {
            Phi::True => h.write_u8(1),
            Phi::False => h.write_u8(2),
            Phi::Expr(e) => {
                h.write_u8(3);
                e.hash(h);
            }
            Phi::Pred { .. } => return false,
            Phi::Set(s) => {
                h.write_u8(5);
                s.hash(h);
            }
            Phi::Not(p) => {
                h.write_u8(6);
                return p.fingerprint_into(h);
            }
            Phi::And(a, b) => {
                h.write_u8(7);
                return a.fingerprint_into(h) && b.fingerprint_into(h);
            }
            Phi::Or(a, b) => {
                h.write_u8(8);
                return a.fingerprint_into(h) && b.fingerprint_into(h);
            }
        }
        true
    }

    /// Whether `σ` satisfies the constraint.
    pub fn holds(&self, sys: &System, sigma: &State) -> Result<bool> {
        match self {
            Phi::True => Ok(true),
            Phi::False => Ok(false),
            Phi::Expr(e) => e.eval_bool(sys.universe(), sigma),
            Phi::Pred { f, .. } => f(sys, sigma),
            Phi::Set(s) => Ok(s.contains(sigma.encode(sys.universe()))),
            Phi::Not(p) => Ok(!p.holds(sys, sigma)?),
            Phi::And(a, b) => Ok(a.holds(sys, sigma)? && b.holds(sys, sigma)?),
            Phi::Or(a, b) => Ok(a.holds(sys, sigma)? || b.holds(sys, sigma)?),
        }
    }

    /// Computes the satisfying set `Sat(φ) = { σ | φ(σ) }`.
    ///
    /// # Examples
    ///
    /// ```
    /// use sd_core::{examples, Expr, Phi};
    ///
    /// let sys = examples::threshold_system(15)?;
    /// let alpha = sys.universe().obj("alpha")?;
    /// let phi = Phi::expr(Expr::var(alpha).lt(Expr::int(10)));
    /// // 10 α-values × 2 β-values.
    /// assert_eq!(phi.sat(&sys)?.count(), 20);
    /// # Ok::<(), sd_core::Error>(())
    /// ```
    pub fn sat(&self, sys: &System) -> Result<StateSet> {
        let n = sys.state_count()?;
        // Fast paths for extensional and trivial constraints.
        match self {
            Phi::True => return Ok(StateSet::full(n)),
            Phi::False => return Ok(StateSet::new(n)),
            Phi::Set(s) => {
                let mut out = s.clone();
                debug_assert_eq!(out.capacity(), n);
                if out.capacity() != n {
                    // Defensive: re-home a set built against another system.
                    out = StateSet::new(n);
                    for i in s.iter().filter(|&i| i < n) {
                        out.insert(i);
                    }
                }
                return Ok(out);
            }
            _ => {}
        }
        let mut out = StateSet::new(n);
        for sigma in sys.states()? {
            if self.holds(sys, &sigma)? {
                out.insert(sigma.encode(sys.universe()));
            }
        }
        Ok(out)
    }

    /// `φ1 ⊆ φ2` (Thm 2-3's ordering on constraints): every state
    /// satisfying `self` satisfies `other`.
    pub fn entails(&self, sys: &System, other: &Phi) -> Result<bool> {
        Ok(self.sat(sys)?.is_subset(&other.sat(sys)?))
    }

    /// Structural equality, used to intern Sat(φ) enumerations inside an
    /// [`crate::oracle::Oracle`]. Conservative by design: native
    /// predicates compare by name *and* closure identity, so two
    /// separately constructed but extensionally equal constraints merely
    /// miss the cache — a false negative, never a wrong hit.
    pub(crate) fn cache_eq(&self, other: &Phi) -> bool {
        match (self, other) {
            (Phi::True, Phi::True) | (Phi::False, Phi::False) => true,
            (Phi::Expr(a), Phi::Expr(b)) => a == b,
            (Phi::Pred { name: n1, f: f1 }, Phi::Pred { name: n2, f: f2 }) => {
                n1 == n2 && Arc::ptr_eq(f1, f2)
            }
            (Phi::Set(a), Phi::Set(b)) => a == b,
            (Phi::Not(a), Phi::Not(b)) => a.cache_eq(b),
            (Phi::And(a1, a2), Phi::And(b1, b2)) | (Phi::Or(a1, a2), Phi::Or(b1, b2)) => {
                a1.cache_eq(b1) && a2.cache_eq(b2)
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::op::{Cmd, Op};
    use crate::universe::{Domain, Universe};

    fn sys() -> System {
        let u = Universe::new(vec![
            ("alpha".into(), Domain::int_range(0, 15).unwrap()),
            ("m".into(), Domain::boolean()),
        ])
        .unwrap();
        let a = u.obj("alpha").unwrap();
        System::new(
            u,
            vec![Op::from_cmd(
                "noop",
                Cmd::when(Expr::bool(false), Cmd::assign(a, Expr::int(0))),
            )],
        )
    }

    #[test]
    fn trivial_constraints() {
        let sys = sys();
        assert_eq!(Phi::True.sat(&sys).unwrap().count(), 32);
        assert_eq!(Phi::False.sat(&sys).unwrap().count(), 0);
    }

    #[test]
    fn expr_constraint_alpha_lt_10() {
        // The §2.2 constraint φ(σ) ≡ σ.α < 10.
        let sys = sys();
        let a = sys.universe().obj("alpha").unwrap();
        let phi = Phi::expr(Expr::var(a).lt(Expr::int(10)));
        assert_eq!(phi.sat(&sys).unwrap().count(), 10 * 2);
    }

    #[test]
    fn combinators() {
        let sys = sys();
        let a = sys.universe().obj("alpha").unwrap();
        let m = sys.universe().obj("m").unwrap();
        let lt10 = Phi::expr(Expr::var(a).lt(Expr::int(10)));
        let mtrue = Phi::expr(Expr::var(m));
        let both = lt10.clone().and(mtrue.clone());
        assert_eq!(both.sat(&sys).unwrap().count(), 10);
        let either = lt10.clone().or(mtrue.clone());
        assert_eq!(either.sat(&sys).unwrap().count(), 20 + 6);
        let neither = lt10.not().and(mtrue.not());
        assert_eq!(neither.sat(&sys).unwrap().count(), 6);
    }

    #[test]
    fn entailment_ordering() {
        let sys = sys();
        let a = sys.universe().obj("alpha").unwrap();
        let lt5 = Phi::expr(Expr::var(a).lt(Expr::int(5)));
        let lt10 = Phi::expr(Expr::var(a).lt(Expr::int(10)));
        assert!(lt5.entails(&sys, &lt10).unwrap());
        assert!(!lt10.entails(&sys, &lt5).unwrap());
        assert!(Phi::False.entails(&sys, &lt5).unwrap());
        assert!(lt10.entails(&sys, &Phi::True).unwrap());
    }

    #[test]
    fn native_pred_and_set_roundtrip() {
        let sys = sys();
        let a = sys.universe().obj("alpha").unwrap();
        let even = Phi::pred("alpha even", move |sys, s| {
            Ok(s.value(sys.universe(), a).as_int().unwrap_or(1) % 2 == 0)
        });
        let set = even.sat(&sys).unwrap();
        assert_eq!(set.count(), 16);
        let ext = Phi::from_set(set.clone());
        assert_eq!(ext.sat(&sys).unwrap(), set);
        // holds() agrees with sat() membership.
        for sigma in sys.states().unwrap() {
            let code = sigma.encode(sys.universe());
            assert_eq!(ext.holds(&sys, &sigma).unwrap(), set.contains(code));
        }
    }
}
