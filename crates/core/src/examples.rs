//! Builders for every example system in the paper.
//!
//! Each function constructs one of the computational systems the paper uses
//! to motivate or illustrate the theory, parameterized where the paper's
//! choice of domain size is incidental (DESIGN.md, substitution table). The
//! test suites, benchmarks and the experiment harness all build on these.

use crate::error::Result;
use crate::expr::Expr;
use crate::op::{Cmd, Op};
use crate::system::System;
use crate::universe::{Domain, Universe};
use crate::value::{Rights, Value};

/// §2.2: `δ: β ← α` over `k`-valued integers. With `k = 2^16` this is the
/// paper's 16-bit example; tests use small `k`.
pub fn copy_system(k: i64) -> Result<System> {
    let u = Universe::new(vec![
        ("alpha".into(), Domain::int_range(0, k - 1)?),
        ("beta".into(), Domain::int_range(0, k - 1)?),
    ])?;
    let a = u.obj("alpha")?;
    let b = u.obj("beta")?;
    Ok(System::new(
        u,
        vec![Op::from_cmd("copy", Cmd::assign(b, Expr::var(a)))],
    ))
}

/// §2.2: `δ: if α < 10 then β ← 0 else β ← 1` with `α ∈ 0..=hi`.
pub fn threshold_system(hi: i64) -> Result<System> {
    let u = Universe::new(vec![
        ("alpha".into(), Domain::int_range(0, hi)?),
        ("beta".into(), Domain::int_range(0, 1)?),
    ])?;
    let a = u.obj("alpha")?;
    let b = u.obj("beta")?;
    Ok(System::new(
        u,
        vec![Op::from_cmd(
            "thresh",
            Cmd::If(
                Expr::var(a).lt(Expr::int(10)),
                Box::new(Cmd::assign(b, Expr::int(0))),
                Box::new(Cmd::assign(b, Expr::int(1))),
            ),
        )],
    ))
}

/// §3.2/§3.5: `δ: if m then β ← α` with `k`-valued data.
pub fn guarded_copy_system(k: i64) -> Result<System> {
    let u = Universe::new(vec![
        ("alpha".into(), Domain::int_range(0, k - 1)?),
        ("beta".into(), Domain::int_range(0, k - 1)?),
        ("m".into(), Domain::boolean()),
    ])?;
    let a = u.obj("alpha")?;
    let b = u.obj("beta")?;
    let m = u.obj("m")?;
    Ok(System::new(
        u,
        vec![Op::from_cmd(
            "copy",
            Cmd::when(Expr::var(m), Cmd::assign(b, Expr::var(a))),
        )],
    ))
}

/// §3.3: `δ1: if flag then β ← α else β ← 0; δ2: (flag ← tt; α ← x)`.
pub fn flag_copy_system(k: i64) -> Result<System> {
    let u = Universe::new(vec![
        ("alpha".into(), Domain::int_range(0, k - 1)?),
        ("beta".into(), Domain::int_range(0, k - 1)?),
        ("flag".into(), Domain::boolean()),
        ("x".into(), Domain::int_range(0, k - 1)?),
    ])?;
    let a = u.obj("alpha")?;
    let b = u.obj("beta")?;
    let flag = u.obj("flag")?;
    let x = u.obj("x")?;
    Ok(System::new(
        u,
        vec![
            Op::from_cmd(
                "d1",
                Cmd::If(
                    Expr::var(flag),
                    Box::new(Cmd::assign(b, Expr::var(a))),
                    Box::new(Cmd::assign(b, Expr::int(0))),
                ),
            ),
            Op::from_cmd(
                "d2",
                Cmd::Seq(vec![
                    Cmd::assign(flag, Expr::bool(true)),
                    Cmd::assign(a, Expr::var(x)),
                ]),
            ),
        ],
    ))
}

/// §4.4/§4.6: the non-transitive system
/// `δ1: if q then m ← α; δ2: if ¬q then β ← m`.
pub fn nontransitive_system(k: i64) -> Result<System> {
    let u = Universe::new(vec![
        ("alpha".into(), Domain::int_range(0, k - 1)?),
        ("beta".into(), Domain::int_range(0, k - 1)?),
        ("m".into(), Domain::int_range(0, k - 1)?),
        ("q".into(), Domain::boolean()),
    ])?;
    let a = u.obj("alpha")?;
    let b = u.obj("beta")?;
    let m = u.obj("m")?;
    let q = u.obj("q")?;
    Ok(System::new(
        u,
        vec![
            Op::from_cmd("d1", Cmd::when(Expr::var(q), Cmd::assign(m, Expr::var(a)))),
            Op::from_cmd(
                "d2",
                Cmd::when(Expr::var(q).not(), Cmd::assign(b, Expr::var(m))),
            ),
        ],
    ))
}

/// §4.3: the pointer-chain system. `n` objects, each a record
/// `(data, ptr)` with `d` data values; operations `δ1(y, x)` (copy data
/// along a pointer) and `δ2(y, x)` (advance a pointer), instantiated for
/// every ordered pair `(y, x)` with `y ≠ x`.
pub fn pointer_chain_system(n: usize, d: i64) -> Result<System> {
    let names: Vec<String> = (0..n).map(|i| format!("o{i}")).collect();
    let mut objects = Vec::with_capacity(n);
    for name in &names {
        let mut values = Vec::new();
        for data in 0..d {
            for ptr in 0..n {
                values.push(Value::Record(vec![
                    Value::Int(data),
                    Value::Name(crate::universe::ObjId::from_index(ptr)),
                ]));
            }
        }
        objects.push((
            name.clone(),
            Domain::with_fields(values, vec!["data".into(), "ptr".into()])?,
        ));
    }
    let u = Universe::new(objects)?;
    let ids: Vec<_> = u.objects().collect();
    let mut ops = Vec::new();
    for &y in &ids {
        for &x in &ids {
            if y == x {
                continue;
            }
            let y_points_x = Expr::var(y).field(1).eq(Expr::Const(Value::Name(x)));
            // δ1(y, x): if y.ptr = x then y.data ← x.data.
            ops.push(Op::from_cmd(
                format!("d1({},{})", u.name(y), u.name(x)),
                Cmd::when(
                    y_points_x.clone(),
                    Cmd::assign_field(y, 0, Expr::var(x).field(0)),
                ),
            ));
            // δ2(y, x): if y.ptr = x then y.ptr ← x.ptr.
            ops.push(Op::from_cmd(
                format!("d2({},{})", u.name(y), u.name(x)),
                Cmd::when(y_points_x, Cmd::assign_field(y, 1, Expr::var(x).field(1))),
            ));
        }
    }
    Ok(System::new(u, ops))
}

/// §4.6 second example: `m` is a record `(left, right)`;
/// `δ1: m.left ← α; δ2: β ← m.right`, with `k`-valued components.
pub fn left_right_system(k: i64) -> Result<System> {
    let mut m_values = Vec::new();
    for l in 0..k {
        for r in 0..k {
            m_values.push(Value::Record(vec![Value::Int(l), Value::Int(r)]));
        }
    }
    let u = Universe::new(vec![
        ("alpha".into(), Domain::int_range(0, k - 1)?),
        ("beta".into(), Domain::int_range(0, k - 1)?),
        (
            "m".into(),
            Domain::with_fields(m_values, vec!["left".into(), "right".into()])?,
        ),
    ])?;
    let a = u.obj("alpha")?;
    let b = u.obj("beta")?;
    let m = u.obj("m")?;
    Ok(System::new(
        u,
        vec![
            Op::from_cmd("d1", Cmd::assign_field(m, 0, Expr::var(a))),
            Op::from_cmd("d2", Cmd::assign(b, Expr::var(m).field(1))),
        ],
    ))
}

/// §5.2: `δ: β ← α1` with a bystander `α2` (for the non-autonomous
/// constraint `α1 = α2`).
pub fn alpha12_copy_system(k: i64) -> Result<System> {
    let u = Universe::new(vec![
        ("a1".into(), Domain::int_range(0, k - 1)?),
        ("a2".into(), Domain::int_range(0, k - 1)?),
        ("beta".into(), Domain::int_range(0, k - 1)?),
    ])?;
    let a1 = u.obj("a1")?;
    let b = u.obj("beta")?;
    Ok(System::new(
        u,
        vec![Op::from_cmd("copy", Cmd::assign(b, Expr::var(a1)))],
    ))
}

/// §5.3: `δ: β ← α1 - α2` (β's domain covers the differences).
pub fn alpha12_sub_system(k: i64) -> Result<System> {
    let u = Universe::new(vec![
        ("a1".into(), Domain::int_range(0, k - 1)?),
        ("a2".into(), Domain::int_range(0, k - 1)?),
        ("beta".into(), Domain::int_range(-(k - 1), k - 1)?),
    ])?;
    let a1 = u.obj("a1")?;
    let a2 = u.obj("a2")?;
    let b = u.obj("beta")?;
    Ok(System::new(
        u,
        vec![Op::from_cmd(
            "sub",
            Cmd::assign(b, Expr::var(a1).sub(Expr::var(a2))),
        )],
    ))
}

/// §5.5: `δ1: (m1 ← α; m2 ← α); δ2: β ← m1`.
pub fn m1m2_system(k: i64) -> Result<System> {
    let u = Universe::new(vec![
        ("alpha".into(), Domain::int_range(0, k - 1)?),
        ("beta".into(), Domain::int_range(0, k - 1)?),
        ("m1".into(), Domain::int_range(0, k - 1)?),
        ("m2".into(), Domain::int_range(0, k - 1)?),
    ])?;
    let a = u.obj("alpha")?;
    let b = u.obj("beta")?;
    let m1 = u.obj("m1")?;
    let m2 = u.obj("m2")?;
    Ok(System::new(
        u,
        vec![
            Op::from_cmd(
                "d1",
                Cmd::Seq(vec![
                    Cmd::assign(m1, Expr::var(a)),
                    Cmd::assign(m2, Expr::var(a)),
                ]),
            ),
            Op::from_cmd("d2", Cmd::assign(b, Expr::var(m1))),
        ],
    ))
}

/// §6.4: the oscillator `δ: (β ← α; α ← -α)` with `α ∈ {-v, v}`.
pub fn oscillator_system(v: i64) -> Result<System> {
    let u = Universe::new(vec![
        ("alpha".into(), Domain::ints([-v, v])?),
        ("beta".into(), Domain::ints([-v, 0, v])?),
    ])?;
    let a = u.obj("alpha")?;
    let b = u.obj("beta")?;
    Ok(System::new(
        u,
        vec![Op::from_cmd(
            "osc",
            Cmd::Seq(vec![
                Cmd::assign(b, Expr::var(a)),
                Cmd::assign(a, Expr::var(a).neg()),
            ]),
        )],
    ))
}

/// §6.5 (first flowchart), modelled with an explicit program counter:
/// `δ1: if pc = 1 then (if q > 10 then t ← tt else t ← ff; pc ← 2)`
/// `δ2: if pc = 2 then (if t then β ← α; pc ← 3)`.
pub fn floyd_flowchart_system(k: i64) -> Result<System> {
    let u = Universe::new(vec![
        ("alpha".into(), Domain::int_range(0, k - 1)?),
        ("beta".into(), Domain::int_range(0, k - 1)?),
        ("q".into(), Domain::int_range(0, 15)?),
        ("t".into(), Domain::boolean()),
        ("pc".into(), Domain::int_range(1, 3)?),
    ])?;
    let a = u.obj("alpha")?;
    let b = u.obj("beta")?;
    let q = u.obj("q")?;
    let t = u.obj("t")?;
    let pc = u.obj("pc")?;
    Ok(System::new(
        u,
        vec![
            Op::from_cmd(
                "d1",
                Cmd::when(
                    Expr::var(pc).eq(Expr::int(1)),
                    Cmd::Seq(vec![
                        Cmd::If(
                            Expr::var(q).gt(Expr::int(10)),
                            Box::new(Cmd::assign(t, Expr::bool(true))),
                            Box::new(Cmd::assign(t, Expr::bool(false))),
                        ),
                        Cmd::assign(pc, Expr::int(2)),
                    ]),
                ),
            ),
            Op::from_cmd(
                "d2",
                Cmd::when(
                    Expr::var(pc).eq(Expr::int(2)),
                    Cmd::Seq(vec![
                        Cmd::when(Expr::var(t), Cmd::assign(b, Expr::var(a))),
                        Cmd::assign(pc, Expr::int(3)),
                    ]),
                ),
            ),
        ],
    ))
}

/// §6.5 (second flowchart): `δ1` branches on α; `δ2` and `δ3` both write
/// `β ← 0`.
pub fn pc_branch_system() -> Result<System> {
    let u = Universe::new(vec![
        ("alpha".into(), Domain::boolean()),
        ("beta".into(), Domain::ints([0, 37])?),
        ("pc".into(), Domain::int_range(1, 4)?),
    ])?;
    let a = u.obj("alpha")?;
    let b = u.obj("beta")?;
    let pc = u.obj("pc")?;
    let at = |i: i64| Expr::var(pc).eq(Expr::int(i));
    Ok(System::new(
        u,
        vec![
            Op::from_cmd(
                "d1",
                Cmd::when(
                    at(1),
                    Cmd::If(
                        Expr::var(a),
                        Box::new(Cmd::assign(pc, Expr::int(2))),
                        Box::new(Cmd::assign(pc, Expr::int(3))),
                    ),
                ),
            ),
            Op::from_cmd(
                "d2",
                Cmd::when(
                    at(2),
                    Cmd::Seq(vec![
                        Cmd::assign(b, Expr::int(0)),
                        Cmd::assign(pc, Expr::int(4)),
                    ]),
                ),
            ),
            Op::from_cmd(
                "d3",
                Cmd::when(
                    at(3),
                    Cmd::Seq(vec![
                        Cmd::assign(b, Expr::int(0)),
                        Cmd::assign(pc, Expr::int(4)),
                    ]),
                ),
            ),
        ],
    ))
}

/// §7.4: `δ: β ← (α1 + α2) mod 2^bits`.
pub fn mod_adder_system(bits: u32) -> Result<System> {
    let m = 1i64 << bits;
    let u = Universe::new(vec![
        ("a1".into(), Domain::int_range(0, m - 1)?),
        ("a2".into(), Domain::int_range(0, m - 1)?),
        ("beta".into(), Domain::int_range(0, m - 1)?),
    ])?;
    let a1 = u.obj("a1")?;
    let a2 = u.obj("a2")?;
    let b = u.obj("beta")?;
    Ok(System::new(
        u,
        vec![Op::from_cmd(
            "add",
            Cmd::assign(b, Expr::var(a1).add(Expr::var(a2)).modulo(Expr::int(m))),
        )],
    ))
}

/// §3.6: the two-operation rights system. Matrix cells `<x,x>`, `<x,α>`,
/// `<x,β>`, `<x,m>` are rights-valued objects; `δ1` copies α → β and `δ2`
/// copies m → β, each guarded by s/r/w checks (§1.3).
pub fn two_op_rights_system() -> Result<System> {
    let cell = || {
        Domain::new(vec![
            Value::Rights(Rights::NONE),
            Value::Rights(Rights::S),
            Value::Rights(Rights::R),
            Value::Rights(Rights::W),
        ])
    };
    let u = Universe::new(vec![
        ("alpha".into(), Domain::int_range(0, 1)?),
        ("beta".into(), Domain::int_range(0, 1)?),
        ("m".into(), Domain::int_range(0, 1)?),
        ("xx".into(), cell()?),
        ("xa".into(), cell()?),
        ("xb".into(), cell()?),
        ("xm".into(), cell()?),
    ])?;
    let a = u.obj("alpha")?;
    let b = u.obj("beta")?;
    let m = u.obj("m")?;
    let xx = u.obj("xx")?;
    let xa = u.obj("xa")?;
    let xb = u.obj("xb")?;
    let xm = u.obj("xm")?;
    let guard = |src_cell| {
        Expr::var(xx)
            .has_rights(Rights::S)
            .and(Expr::var(src_cell).has_rights(Rights::R))
            .and(Expr::var(xb).has_rights(Rights::W))
    };
    Ok(System::new(
        u,
        vec![
            Op::from_cmd("d1", Cmd::when(guard(xa), Cmd::assign(b, Expr::var(a)))),
            Op::from_cmd("d2", Cmd::when(guard(xm), Cmd::assign(b, Expr::var(m)))),
        ],
    ))
}

/// §4.3 helper: the `Chain` predicate — objects whose pointer chains can
/// reach `alpha_index` are exactly those with index ≤ `alpha_index` in the
/// canonical initial layout used by the tests (o0 ← o1 ← …). For the
/// induction proof the caller provides the `Chain` set explicitly; this
/// helper builds the standard split `{o0..=ok}` vs the rest.
pub fn chain_split(n: usize, alpha_index: usize) -> (Vec<usize>, Vec<usize>) {
    let chain: Vec<usize> = (0..=alpha_index).collect();
    let rest: Vec<usize> = (alpha_index + 1..n).collect();
    (chain, rest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_builders_validate() {
        // Every example system is closed over its domains.
        for sys in [
            copy_system(4).unwrap(),
            threshold_system(15).unwrap(),
            guarded_copy_system(3).unwrap(),
            flag_copy_system(3).unwrap(),
            nontransitive_system(2).unwrap(),
            left_right_system(3).unwrap(),
            alpha12_copy_system(3).unwrap(),
            alpha12_sub_system(3).unwrap(),
            m1m2_system(2).unwrap(),
            oscillator_system(37).unwrap(),
            floyd_flowchart_system(2).unwrap(),
            pc_branch_system().unwrap(),
            mod_adder_system(3).unwrap(),
            two_op_rights_system().unwrap(),
        ] {
            sys.validate().unwrap();
        }
    }

    #[test]
    fn pointer_chain_validates() {
        let sys = pointer_chain_system(3, 2).unwrap();
        sys.validate().unwrap();
        assert_eq!(sys.num_ops(), 3 * 2 * 2);
        // Each object's domain: 2 data × 3 pointers.
        let u = sys.universe();
        assert_eq!(u.domain(u.obj("o0").unwrap()).size(), 6);
    }

    #[test]
    fn chain_split_partitions() {
        let (chain, rest) = chain_split(5, 2);
        assert_eq!(chain, vec![0, 1, 2]);
        assert_eq!(rest, vec![3, 4]);
    }

    #[test]
    fn mod_adder_is_total() {
        let sys = mod_adder_system(2).unwrap();
        assert_eq!(sys.state_count().unwrap(), 4 * 4 * 4);
    }
}
