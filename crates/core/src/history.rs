//! Histories: finite sequences of operations (Def 1-3).

use core::fmt;

/// The index of an operation within a [`crate::system::System`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub u32);

impl OpId {
    /// Dense index of this operation.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A history H: a sequence of operations applied left to right (Def 1-3).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct History {
    ops: Vec<OpId>,
}

impl History {
    /// The null history λ.
    pub fn empty() -> History {
        History::default()
    }

    /// A single-operation history.
    pub fn single(op: OpId) -> History {
        History { ops: vec![op] }
    }

    /// Builds a history from operation ids.
    pub fn from_ops(ops: Vec<OpId>) -> History {
        History { ops }
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether this is λ.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operations, in execution order.
    pub fn ops(&self) -> &[OpId] {
        &self.ops
    }

    /// Appends an operation: `Hδ`.
    pub fn push(&mut self, op: OpId) {
        self.ops.push(op);
    }

    /// Concatenation `H & H'`.
    #[must_use]
    pub fn concat(&self, other: &History) -> History {
        let mut ops = self.ops.clone();
        ops.extend_from_slice(&other.ops);
        History { ops }
    }

    /// Splits into the prefix of length `n` and the remainder.
    pub fn split_at(&self, n: usize) -> (History, History) {
        let (a, b) = self.ops.split_at(n);
        (History { ops: a.to_vec() }, History { ops: b.to_vec() })
    }
}

impl From<Vec<OpId>> for History {
    fn from(ops: Vec<OpId>) -> History {
        History { ops }
    }
}

impl FromIterator<OpId> for History {
    fn from_iter<I: IntoIterator<Item = OpId>>(iter: I) -> History {
        History {
            ops: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ops.is_empty() {
            return write!(f, "λ");
        }
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                write!(f, "·")?;
            }
            write!(f, "δ{}", op.0)?;
        }
        Ok(())
    }
}

/// Iterates over every history of length exactly `len` over `num_ops`
/// operations, in lexicographic order.
pub struct HistoriesOfLen {
    num_ops: u32,
    next: Option<Vec<u32>>,
}

impl HistoriesOfLen {
    /// Creates the iterator. With `num_ops == 0` only `len == 0` yields λ.
    pub fn new(num_ops: usize, len: usize) -> HistoriesOfLen {
        let num_ops = num_ops as u32;
        let next = if len == 0 {
            Some(Vec::new())
        } else if num_ops == 0 {
            None
        } else {
            Some(vec![0u32; len])
        };
        HistoriesOfLen { num_ops, next }
    }
}

impl Iterator for HistoriesOfLen {
    type Item = History;

    fn next(&mut self) -> Option<History> {
        let cur = self.next.take()?;
        let out = History::from_ops(cur.iter().map(|&i| OpId(i)).collect());
        let mut cur = cur;
        let mut i = cur.len();
        loop {
            if i == 0 {
                self.next = None;
                break;
            }
            i -= 1;
            if cur[i] + 1 < self.num_ops {
                cur[i] += 1;
                for slot in cur.iter_mut().skip(i + 1) {
                    *slot = 0;
                }
                self.next = Some(cur);
                break;
            }
        }
        Some(out)
    }
}

/// Iterates over every history of length `0..=max_len`.
pub fn histories_up_to(num_ops: usize, max_len: usize) -> impl Iterator<Item = History> {
    (0..=max_len).flat_map(move |len| HistoriesOfLen::new(num_ops, len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_and_split() {
        let h1 = History::from_ops(vec![OpId(0), OpId(1)]);
        let h2 = History::from_ops(vec![OpId(2)]);
        let h = h1.concat(&h2);
        assert_eq!(h.len(), 3);
        let (a, b) = h.split_at(2);
        assert_eq!(a, h1);
        assert_eq!(b, h2);
    }

    #[test]
    fn display_forms() {
        assert_eq!(History::empty().to_string(), "λ");
        assert_eq!(
            History::from_ops(vec![OpId(0), OpId(2)]).to_string(),
            "δ0·δ2"
        );
    }

    #[test]
    fn histories_of_len_counts() {
        assert_eq!(HistoriesOfLen::new(3, 0).count(), 1);
        assert_eq!(HistoriesOfLen::new(3, 2).count(), 9);
        assert_eq!(HistoriesOfLen::new(0, 2).count(), 0);
        assert_eq!(HistoriesOfLen::new(0, 0).count(), 1);
    }

    #[test]
    fn histories_up_to_counts() {
        // 1 + 2 + 4 + 8 histories over two ops up to length 3.
        assert_eq!(histories_up_to(2, 3).count(), 15);
    }

    #[test]
    fn histories_are_distinct() {
        let all: std::collections::BTreeSet<History> = histories_up_to(2, 3).collect();
        assert_eq!(all.len(), 15);
    }
}
