//! Object universes: names, finite domains, and the state-space geometry.
//!
//! A state in the paper is a vector `<σ.n1, σ.n2, …>` over a fixed set of
//! object names (§1.2). The [`Universe`] fixes that set together with each
//! object's finite *domain* — the explicit set of values the object may take
//! on. Finiteness makes every definition of the paper decidable; see
//! DESIGN.md for the substitution argument.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::{Error, Result};
use crate::value::Value;

/// Default cap on the number of states enumeration-based procedures accept.
pub const DEFAULT_ENUM_LIMIT: u128 = 1 << 26;

/// The identity of an object — an interned object name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjId(u32);

impl ObjId {
    /// The dense index of this object within its universe.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a dense index. Intended for iteration helpers; the
    /// index must have come from the same universe.
    pub fn from_index(i: usize) -> ObjId {
        ObjId(u32::try_from(i).expect("object index fits in u32"))
    }
}

/// The finite domain of an object: the explicit list of values it may hold.
///
/// For record-valued objects, `fields` names the record components
/// positionally (e.g. `["data", "ptr"]` for the §4.3 pointer system).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Domain {
    values: Vec<Value>,
    fields: Vec<String>,
}

impl Domain {
    /// Creates a scalar domain from a list of distinct values.
    ///
    /// Returns an error if the list is empty or contains duplicates.
    pub fn new(values: Vec<Value>) -> Result<Domain> {
        Domain::with_fields(values, Vec::new())
    }

    /// Creates a record domain with named fields.
    ///
    /// Every value must be a [`Value::Record`] with exactly
    /// `fields.len()` components.
    pub fn with_fields(values: Vec<Value>, fields: Vec<String>) -> Result<Domain> {
        if values.is_empty() {
            return Err(Error::Invalid("domain must be non-empty".into()));
        }
        let mut seen = std::collections::BTreeSet::new();
        for v in &values {
            if !seen.insert(v.clone()) {
                return Err(Error::Invalid(format!("duplicate domain value {v}")));
            }
            if !fields.is_empty() {
                match v {
                    Value::Record(comps) if comps.len() == fields.len() => {}
                    _ => {
                        return Err(Error::Invalid(format!(
                            "record domain with {} fields has non-conforming value {v}",
                            fields.len()
                        )))
                    }
                }
            }
        }
        Ok(Domain { values, fields })
    }

    /// The boolean domain `{false, true}`.
    pub fn boolean() -> Domain {
        Domain {
            values: vec![Value::Bool(false), Value::Bool(true)],
            fields: Vec::new(),
        }
    }

    /// An integer range domain `lo..=hi`.
    pub fn int_range(lo: i64, hi: i64) -> Result<Domain> {
        if lo > hi {
            return Err(Error::Invalid(format!("empty int range {lo}..={hi}")));
        }
        Domain::new((lo..=hi).map(Value::Int).collect())
    }

    /// An explicit integer domain.
    pub fn ints(vals: impl IntoIterator<Item = i64>) -> Result<Domain> {
        Domain::new(vals.into_iter().map(Value::Int).collect())
    }

    /// Number of values in the domain.
    pub fn size(&self) -> usize {
        self.values.len()
    }

    /// The values, in index order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The value at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn value(&self, index: u32) -> &Value {
        &self.values[index as usize]
    }

    /// Looks up the index of `v` in this domain.
    pub fn index_of(&self, v: &Value) -> Option<u32> {
        self.values.iter().position(|x| x == v).map(|i| i as u32)
    }

    /// Field names for record domains (empty for scalar domains).
    pub fn fields(&self) -> &[String] {
        &self.fields
    }

    /// Resolves a field name to its positional index.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f == name)
    }
}

/// A set of object names, kept sorted for canonical comparison.
///
/// This is the `A` in `σ1 =A= σ2` and `A ▷ β` (Defs 1-1, 2-6).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ObjSet {
    ids: Vec<ObjId>,
}

impl ObjSet {
    /// The empty set.
    pub fn empty() -> ObjSet {
        ObjSet::default()
    }

    /// A singleton set.
    pub fn singleton(a: ObjId) -> ObjSet {
        ObjSet { ids: vec![a] }
    }

    /// Builds a set from any iterator, deduplicating.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(ids: impl IntoIterator<Item = ObjId>) -> ObjSet {
        let mut ids: Vec<ObjId> = ids.into_iter().collect();
        ids.sort_unstable();
        ids.dedup();
        ObjSet { ids }
    }

    /// Membership test.
    pub fn contains(&self, a: ObjId) -> bool {
        self.ids.binary_search(&a).is_ok()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The members in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = ObjId> + '_ {
        self.ids.iter().copied()
    }

    /// Inserts a member.
    pub fn insert(&mut self, a: ObjId) {
        if let Err(pos) = self.ids.binary_search(&a) {
            self.ids.insert(pos, a);
        }
    }

    /// Set union.
    #[must_use]
    pub fn union(&self, other: &ObjSet) -> ObjSet {
        ObjSet::from_iter(self.iter().chain(other.iter()))
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &ObjSet) -> bool {
        self.iter().all(|a| other.contains(a))
    }
}

impl From<ObjId> for ObjSet {
    fn from(a: ObjId) -> ObjSet {
        ObjSet::singleton(a)
    }
}

impl FromIterator<ObjId> for ObjSet {
    fn from_iter<I: IntoIterator<Item = ObjId>>(iter: I) -> ObjSet {
        ObjSet::from_iter(iter)
    }
}

/// The fixed set of named objects and their domains.
#[derive(Debug, Clone)]
pub struct Universe {
    names: Vec<String>,
    domains: Vec<Domain>,
    by_name: BTreeMap<String, ObjId>,
    /// Mixed-radix strides for the global state index; `strides[i]` is the
    /// product of the domain sizes of objects `i+1..`.
    strides: Vec<u128>,
    state_count: u128,
}

impl Universe {
    /// Creates a universe from `(name, domain)` pairs.
    ///
    /// Object order is the declaration order; the paper's lexicographic
    /// convention is only a presentation device, so any fixed order works.
    pub fn new(objects: Vec<(String, Domain)>) -> Result<Universe> {
        let mut names = Vec::with_capacity(objects.len());
        let mut domains = Vec::with_capacity(objects.len());
        let mut by_name = BTreeMap::new();
        for (i, (name, dom)) in objects.into_iter().enumerate() {
            if by_name.insert(name.clone(), ObjId(i as u32)).is_some() {
                return Err(Error::DuplicateObject(name));
            }
            names.push(name);
            domains.push(dom);
        }
        let mut strides = vec![1u128; names.len()];
        let mut count: u128 = 1;
        for i in (0..names.len()).rev() {
            strides[i] = count;
            count = count.saturating_mul(domains[i].size() as u128);
        }
        Ok(Universe {
            names,
            domains,
            by_name,
            strides,
            state_count: count,
        })
    }

    /// Number of objects.
    pub fn num_objects(&self) -> usize {
        self.names.len()
    }

    /// All object ids, in declaration order.
    pub fn objects(&self) -> impl Iterator<Item = ObjId> + '_ {
        (0..self.names.len()).map(ObjId::from_index)
    }

    /// All objects as an [`ObjSet`].
    pub fn all_objects(&self) -> ObjSet {
        ObjSet::from_iter(self.objects())
    }

    /// Resolves an object name.
    pub fn obj(&self, name: &str) -> Result<ObjId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| Error::UnknownObject(name.to_string()))
    }

    /// Builds an [`ObjSet`] from names.
    pub fn obj_set(&self, names: &[&str]) -> Result<ObjSet> {
        names.iter().map(|n| self.obj(n)).collect()
    }

    /// The name of an object.
    pub fn name(&self, a: ObjId) -> &str {
        &self.names[a.index()]
    }

    /// The domain of an object.
    pub fn domain(&self, a: ObjId) -> &Domain {
        &self.domains[a.index()]
    }

    /// Total number of states (product of domain sizes), saturating.
    pub fn state_count(&self) -> u128 {
        self.state_count
    }

    /// Total number of states as `u64`, checked against `limit`.
    pub fn checked_state_count(&self, limit: u128) -> Result<u64> {
        if self.state_count > limit {
            return Err(Error::StateSpaceTooLarge {
                size: self.state_count,
                limit,
            });
        }
        Ok(self.state_count as u64)
    }

    /// The mixed-radix stride of object `a` within the global state index.
    pub fn stride(&self, a: ObjId) -> u128 {
        self.strides[a.index()]
    }

    /// Per-object `(stride, domain size)` pairs for extracting mixed-radix
    /// digits from packed state codes. Only meaningful when the state count
    /// fits in `u64` (checked by the enumeration entry points).
    pub(crate) fn dims(&self) -> Vec<(u64, u64)> {
        (0..self.num_objects())
            .map(|i| {
                let obj = ObjId::from_index(i);
                (self.stride(obj) as u64, self.domain(obj).size() as u64)
            })
            .collect()
    }
}

/// The arithmetic A-projection key of a packed state code:
/// `Σ_{α∈A} stride_α · digit_α(code)`. Two codes share a key iff their
/// states agree on every object in `A`; `code - proj_key(code)` is the
/// matching complement-projection key. Both keys are injective on their
/// respective projection classes, so they replace `Vec<u32>` projection
/// vectors as grouping keys on prover hot paths.
pub(crate) fn proj_key(dims: &[(u64, u64)], a: &ObjSet, code: u64) -> u64 {
    a.iter()
        .map(|obj| {
            let (stride, dom) = dims[obj.index()];
            stride * ((code / stride) % dom)
        })
        .sum()
}

impl fmt::Display for Universe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "universe ({} objects, {} states):",
            self.num_objects(),
            self.state_count
        )?;
        for a in self.objects() {
            writeln!(
                f,
                "  {}: |domain| = {}",
                self.name(a),
                self.domain(a).size()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Universe {
        Universe::new(vec![
            ("a".into(), Domain::boolean()),
            ("b".into(), Domain::int_range(0, 2).unwrap()),
            ("c".into(), Domain::boolean()),
        ])
        .unwrap()
    }

    #[test]
    fn domain_rejects_dupes_and_empty() {
        assert!(Domain::new(vec![]).is_err());
        assert!(Domain::new(vec![Value::Int(1), Value::Int(1)]).is_err());
    }

    #[test]
    fn record_domain_checks_shape() {
        let d = Domain::with_fields(
            vec![Value::Record(vec![Value::Int(0), Value::Bool(true)])],
            vec!["data".into(), "flag".into()],
        )
        .unwrap();
        assert_eq!(d.field_index("flag"), Some(1));
        assert_eq!(d.field_index("nope"), None);

        let bad = Domain::with_fields(vec![Value::Int(0)], vec!["data".into()]);
        assert!(bad.is_err());
    }

    #[test]
    fn universe_lookup_and_counts() {
        let u = small();
        assert_eq!(u.num_objects(), 3);
        assert_eq!(u.state_count(), 2 * 3 * 2);
        assert_eq!(u.name(u.obj("b").unwrap()), "b");
        assert!(u.obj("zzz").is_err());
        assert_eq!(u.checked_state_count(DEFAULT_ENUM_LIMIT).unwrap(), 12);
        assert!(u.checked_state_count(5).is_err());
    }

    #[test]
    fn duplicate_objects_rejected() {
        let r = Universe::new(vec![
            ("x".into(), Domain::boolean()),
            ("x".into(), Domain::boolean()),
        ]);
        assert!(matches!(r, Err(Error::DuplicateObject(_))));
    }

    #[test]
    fn strides_are_mixed_radix() {
        let u = small();
        let a = u.obj("a").unwrap();
        let b = u.obj("b").unwrap();
        let c = u.obj("c").unwrap();
        assert_eq!(u.stride(a), 6);
        assert_eq!(u.stride(b), 2);
        assert_eq!(u.stride(c), 1);
    }

    #[test]
    fn obj_set_semantics() {
        let u = small();
        let mut s = u.obj_set(&["c", "a"]).unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.contains(u.obj("a").unwrap()));
        assert!(!s.contains(u.obj("b").unwrap()));
        s.insert(u.obj("b").unwrap());
        assert_eq!(s.len(), 3);
        s.insert(u.obj("b").unwrap());
        assert_eq!(s.len(), 3);

        let t = ObjSet::singleton(u.obj("a").unwrap());
        assert!(t.is_subset(&s));
        assert!(!s.is_subset(&t));
        assert_eq!(t.union(&ObjSet::empty()), t);
    }

    #[test]
    fn domain_index_roundtrip() {
        let d = Domain::ints([10, 20, 30]).unwrap();
        assert_eq!(d.index_of(&Value::Int(20)), Some(1));
        assert_eq!(d.value(1), &Value::Int(20));
        assert_eq!(d.index_of(&Value::Int(99)), None);
    }
}
