//! Error types for the core formalism.

use core::fmt;

use crate::value::Value;

/// Errors produced while building or analyzing computational systems.
///
/// Every fallible public operation in this crate returns [`Result`]. The
/// model is deliberately strict: domains are finite and closed, so an
/// operation that produces a value outside its target domain is an error in
/// the system description, not something to paper over silently.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// An object name was not declared in the universe.
    UnknownObject(String),
    /// A field name does not exist on a record-valued object.
    UnknownField {
        /// The offending field name.
        field: String,
        /// Context describing where the lookup happened.
        context: String,
    },
    /// An expression evaluated to a value of the wrong kind.
    TypeMismatch {
        /// What the evaluator required.
        expected: &'static str,
        /// What it actually found.
        found: &'static str,
        /// Context describing the evaluation site.
        context: String,
    },
    /// An operation produced a value outside the target object's domain.
    OutOfDomain {
        /// Name of the object being assigned.
        object: String,
        /// The out-of-domain value.
        value: Value,
    },
    /// Integer division or modulo by zero during expression evaluation.
    DivisionByZero,
    /// An operation id is not defined in the system.
    UnknownOp(String),
    /// The state space is too large to enumerate under the configured limit.
    StateSpaceTooLarge {
        /// The (possibly saturated) number of states.
        size: u128,
        /// The configured enumeration limit.
        limit: u128,
    },
    /// A duplicate object name was declared.
    DuplicateObject(String),
    /// A constraint or proof premise was structurally invalid.
    Invalid(String),
    /// A pair search exceeded its caller-imposed visited-pair budget
    /// (see `Query::max_pairs`). Deterministic: both engines discover
    /// pairs in the same order, so they exhaust at the same pair.
    BudgetExhausted {
        /// Pairs discovered when the budget tripped.
        visited_pairs: u64,
        /// The configured budget.
        limit: u64,
    },
    /// A search ran past its caller-imposed deadline (see
    /// `Query::timeout`). Checked once per BFS level / enumerated
    /// history, so overshoot is bounded by one level's expansion.
    DeadlineExceeded,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownObject(name) => write!(f, "unknown object `{name}`"),
            Error::UnknownField { field, context } => {
                write!(f, "unknown field `{field}` ({context})")
            }
            Error::TypeMismatch {
                expected,
                found,
                context,
            } => write!(
                f,
                "type mismatch: expected {expected}, found {found} ({context})"
            ),
            Error::OutOfDomain { object, value } => write!(
                f,
                "operation produced value {value} outside the domain of `{object}`"
            ),
            Error::DivisionByZero => write!(f, "division by zero"),
            Error::UnknownOp(name) => write!(f, "unknown operation `{name}`"),
            Error::StateSpaceTooLarge { size, limit } => write!(
                f,
                "state space has {size} states, above the enumeration limit {limit}"
            ),
            Error::DuplicateObject(name) => write!(f, "duplicate object `{name}`"),
            Error::Invalid(msg) => write!(f, "invalid input: {msg}"),
            Error::BudgetExhausted {
                visited_pairs,
                limit,
            } => write!(
                f,
                "search budget exhausted: {visited_pairs} pairs visited, limit {limit}"
            ),
            Error::DeadlineExceeded => write!(f, "search deadline exceeded"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the crate.
pub type Result<T> = core::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unknown_object() {
        let e = Error::UnknownObject("alpha".into());
        assert_eq!(e.to_string(), "unknown object `alpha`");
    }

    #[test]
    fn display_state_space() {
        let e = Error::StateSpaceTooLarge {
            size: 1 << 40,
            limit: 1 << 24,
        };
        assert!(e.to_string().contains("enumeration limit"));
    }

    #[test]
    fn display_type_mismatch() {
        let e = Error::TypeMismatch {
            expected: "int",
            found: "bool",
            context: "binary +".into(),
        };
        assert!(e.to_string().contains("expected int"));
        assert!(e.to_string().contains("found bool"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&Error::DivisionByZero);
    }
}
