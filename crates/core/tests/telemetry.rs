//! Event-sequence tests for the telemetry layer: an instrumented Oracle
//! must report compiles exactly once, attribute partition-cache hits on
//! warm sweeps, and per-query sinks must see a coherent event stream
//! whose final `QueryDone` report agrees with the returned outcome.

use std::sync::Arc;

use sd_core::{
    examples, CompileBudget, Engine, ObjSet, Oracle, Phi, Query, QueryEvent, RecordingSink,
};

fn sources_of(sys: &sd_core::System) -> Vec<ObjSet> {
    sys.universe().objects().map(ObjSet::singleton).collect()
}

/// Cold sweep: a fresh instrumented Oracle compiles once, misses the
/// partition cache once, and never reports a hit.
#[test]
fn cold_matrix_sweep_compiles_once_and_misses_once() {
    let sys = examples::flag_copy_system(3).unwrap();
    let sink = Arc::new(RecordingSink::new());
    let oracle = Oracle::with_sink(
        &sys,
        Engine::Auto,
        &CompileBudget::default(),
        sink.clone() as Arc<dyn sd_core::Sink>,
    )
    .unwrap();

    let rows = oracle.sinks_matrix(&Phi::True, &sources_of(&sys)).unwrap();
    assert_eq!(rows.len(), sys.universe().num_objects());

    let compile_starts = sink.count(|e| matches!(e, QueryEvent::CompileStart { .. }));
    let compile_finishes = sink.count(|e| matches!(e, QueryEvent::CompileFinish { .. }));
    assert_eq!(compile_starts, 1, "exactly one compile on a cold oracle");
    assert_eq!(compile_finishes, 1);
    assert_eq!(
        sink.count(|e| matches!(e, QueryEvent::PartitionMiss { .. })),
        1,
        "the first Sat(φ) enumeration is a miss"
    );
    assert_eq!(
        sink.count(|e| matches!(e, QueryEvent::PartitionHit { .. })),
        0,
        "nothing is cached yet"
    );

    // CompileStart precedes CompileFinish precedes every search event.
    let events = sink.events();
    let start = events
        .iter()
        .position(|e| matches!(e, QueryEvent::CompileStart { .. }))
        .unwrap();
    let finish = events
        .iter()
        .position(|e| matches!(e, QueryEvent::CompileFinish { .. }))
        .unwrap();
    let first_level = events
        .iter()
        .position(|e| matches!(e, QueryEvent::BfsLevel { .. }))
        .unwrap();
    assert!(start < finish && finish < first_level);
}

/// Warm sweep: repeating the same matrix query against the same Oracle
/// reports partition-cache hits and no further compiles — the
/// acceptance shape for the PR (hits > 0, compiles == 1).
#[test]
fn warm_matrix_sweep_hits_partition_cache_without_recompiling() {
    let sys = examples::flag_copy_system(3).unwrap();
    let sink = Arc::new(RecordingSink::new());
    let oracle = Oracle::with_sink(
        &sys,
        Engine::Auto,
        &CompileBudget::default(),
        sink.clone() as Arc<dyn sd_core::Sink>,
    )
    .unwrap();
    let sources = sources_of(&sys);

    let cold = oracle.sinks_matrix(&Phi::True, &sources).unwrap();
    let warm = oracle.sinks_matrix(&Phi::True, &sources).unwrap();
    assert_eq!(cold, warm, "warm answers must be identical");

    assert!(
        sink.count(|e| matches!(e, QueryEvent::PartitionHit { .. })) > 0,
        "warm sweep must be served from the partition cache"
    );
    assert_eq!(
        sink.count(|e| matches!(e, QueryEvent::CompileStart { .. })),
        1,
        "the compile is shared across sweeps"
    );
    assert_eq!(oracle.stats().compiles, 1);

    // The warm half of the stream replays the BFS (the memo caches
    // partitions, not search results) but never recompiles: every event
    // after the first sweep's last miss is hit/level/row traffic.
    let events = sink.events();
    let last_miss = events
        .iter()
        .rposition(|e| matches!(e, QueryEvent::PartitionMiss { .. }))
        .unwrap();
    assert!(
        events[last_miss..]
            .iter()
            .all(|e| !matches!(e, QueryEvent::CompileStart { .. })),
        "no compile may follow the warm sweep's cache traffic"
    );
}

/// A per-query sink on a shared (uninstrumented) Oracle sees that
/// query's events only, and the `QueryDone` report matches the outcome.
#[test]
fn per_query_sink_reports_match_outcome() {
    let sys = examples::nontransitive_system(2).unwrap();
    let u = sys.universe();
    let a = u.obj("alpha").unwrap();
    let m = u.obj("m").unwrap();
    let oracle = Oracle::new(&sys).unwrap();

    let sink = Arc::new(RecordingSink::new());
    let out = Query::new(Phi::True, ObjSet::singleton(a))
        .beta(m)
        .sink(sink.clone() as Arc<dyn sd_core::Sink>)
        .run(&oracle)
        .unwrap();
    assert!(out.holds(), "α ▷ m in the nontransitive system");

    let done: Vec<_> = sink
        .events()
        .into_iter()
        .filter_map(|e| match e {
            QueryEvent::QueryDone { report } => Some(report),
            _ => None,
        })
        .collect();
    assert_eq!(done.len(), 1, "exactly one QueryDone per run");
    assert_eq!(done[0], out.report, "emitted report equals returned report");
    assert!(done[0].partition_cached || done[0].levels > 0);
    assert_eq!(
        sink.count(|e| matches!(e, QueryEvent::Witness { .. })),
        1,
        "a positive verdict emits its witness event"
    );
    // The shared Oracle was constructed without a sink, so no compile
    // events can appear in a per-query stream.
    assert_eq!(
        sink.count(|e| matches!(e, QueryEvent::CompileStart { .. })),
        0
    );
}

/// BfsLevel events are monotone in depth and consistent with the
/// report's `levels` field, on both engines.
#[test]
fn bfs_level_stream_is_monotone_and_matches_report() {
    let sys = examples::pointer_chain_system(4, 2).unwrap();
    let u = sys.universe();
    let a = u.obj("o0").unwrap();
    let b = u.obj("o3").unwrap();
    for engine in [Engine::Interpreted, Engine::Auto] {
        let sink = Arc::new(RecordingSink::new());
        let out = Query::new(Phi::True, ObjSet::singleton(a))
            .beta(b)
            .engine(engine)
            .sink(sink.clone() as Arc<dyn sd_core::Sink>)
            .run_on(&sys)
            .unwrap();
        assert!(out.holds());

        let levels: Vec<(u32, u64, u64)> = sink
            .events()
            .into_iter()
            .filter_map(|e| match e {
                QueryEvent::BfsLevel {
                    level,
                    frontier,
                    visited,
                } => Some((level, frontier, visited)),
                _ => None,
            })
            .collect();
        assert!(!levels.is_empty(), "{engine:?}: a real search has levels");
        for w in levels.windows(2) {
            assert_eq!(w[1].0, w[0].0 + 1, "{engine:?}: depths are consecutive");
            assert!(w[1].2 >= w[0].2, "{engine:?}: visited is monotone");
        }
        for &(_, frontier, _) in &levels {
            assert!(frontier > 0, "{engine:?}: frontiers are non-empty");
        }
        let deepest = levels.last().unwrap().0;
        assert!(
            out.report.levels <= deepest + 1,
            "{engine:?}: report levels ({}) within one of deepest expanded level ({deepest})",
            out.report.levels
        );
    }
}
