//! Edge paths a serving layer feeds the [`Query`] builder from
//! untrusted input: empty source sets, object ids outside the universe,
//! zero budgets and bounds, and searches that exhaust their limits.
//! Every case must produce a structured error or a well-defined answer —
//! never a panic.

use std::time::Duration;

use sd_core::{examples, CompileBudget, Error, ObjId, ObjSet, Oracle, Phi, Query};

#[test]
fn empty_source_set_yields_empty_sinks() {
    let sys = examples::flag_copy_system(3).unwrap();
    let out = Query::new(Phi::True, ObjSet::empty()).run_on(&sys).unwrap();
    assert!(!out.holds());
    assert!(out.into_sinks().unwrap().is_empty());
}

#[test]
fn empty_source_set_transmits_to_no_beta() {
    let sys = examples::flag_copy_system(3).unwrap();
    let beta = sys.universe().obj("beta").unwrap();
    let out = Query::new(Phi::True, ObjSet::empty())
        .beta(beta)
        .run_on(&sys)
        .unwrap();
    assert!(out.into_witness().is_none());
}

#[test]
fn out_of_universe_beta_is_unknown_object_not_panic() {
    let sys = examples::flag_copy_system(3).unwrap();
    let a = ObjSet::singleton(sys.universe().obj("alpha").unwrap());
    let err = Query::new(Phi::True, a)
        .beta(ObjId::from_index(999))
        .run_on(&sys)
        .unwrap_err();
    assert!(
        matches!(err, Error::UnknownObject(ref n) if n == "#999"),
        "{err:?}"
    );
}

#[test]
fn out_of_universe_source_is_unknown_object_not_panic() {
    let sys = examples::flag_copy_system(3).unwrap();
    let a = ObjSet::singleton(ObjId::from_index(4096));
    let err = Query::new(Phi::True, a).run_on(&sys).unwrap_err();
    assert!(matches!(err, Error::UnknownObject(_)), "{err:?}");
}

#[test]
fn out_of_universe_set_target_and_matrix_row_are_rejected() {
    let sys = examples::flag_copy_system(3).unwrap();
    let u = sys.universe();
    let a = ObjSet::singleton(u.obj("alpha").unwrap());
    let bad = ObjSet::singleton(ObjId::from_index(77));
    let err = Query::new(Phi::True, a.clone())
        .set(bad.clone())
        .run_on(&sys)
        .unwrap_err();
    assert!(matches!(err, Error::UnknownObject(_)), "{err:?}");
    let err = Query::matrix(Phi::True, vec![a, bad])
        .run_on(&sys)
        .unwrap_err();
    assert!(matches!(err, Error::UnknownObject(_)), "{err:?}");
}

#[test]
fn shared_oracle_validates_before_searching() {
    let sys = examples::flag_copy_system(3).unwrap();
    let oracle = Oracle::new(&sys).unwrap();
    let err = Query::new(Phi::True, ObjSet::singleton(ObjId::from_index(500)))
        .run(&oracle)
        .unwrap_err();
    assert!(matches!(err, Error::UnknownObject(_)), "{err:?}");
}

#[test]
fn zero_compile_budget_still_answers_correctly() {
    // A zero budget cannot afford any compiled table; Engine::Auto must
    // degrade (not fail, not panic) and agree with the default build.
    let sys = examples::flag_copy_system(3).unwrap();
    let u = sys.universe();
    let a = ObjSet::singleton(u.obj("alpha").unwrap());
    let zero = CompileBudget {
        max_dense_entries: 0,
        max_dense_pair_bits: 0,
    };
    let lean = Query::new(Phi::True, a.clone())
        .budget(zero)
        .run_on(&sys)
        .unwrap();
    let full = Query::new(Phi::True, a).run_on(&sys).unwrap();
    assert_eq!(
        lean.into_sinks().unwrap(),
        full.into_sinks().unwrap(),
        "budget changes the engine, never the answer"
    );
}

#[test]
fn bounded_zero_permits_only_the_empty_history() {
    // Length-0 histories transmit nothing: the query completes with a
    // negative verdict rather than erroring or panicking.
    let sys = examples::flag_copy_system(3).unwrap();
    let u = sys.universe();
    let a = ObjSet::singleton(u.obj("alpha").unwrap());
    let beta = u.obj("beta").unwrap();
    let out = Query::new(Phi::True, a.clone())
        .beta(beta)
        .bounded(0)
        .run_on(&sys)
        .unwrap();
    assert!(out.into_witness().is_none());
    // Sanity: an adequate bound finds the flow this system does have.
    let out = Query::new(Phi::True, a)
        .beta(beta)
        .bounded(4)
        .run_on(&sys)
        .unwrap();
    assert!(out.into_witness().is_some());
}

#[test]
fn pair_budget_exhausts_with_counts_in_the_error() {
    let sys = examples::flag_copy_system(3).unwrap();
    let a = ObjSet::singleton(sys.universe().obj("alpha").unwrap());
    let err = Query::new(Phi::True, a)
        .max_pairs(0)
        .run_on(&sys)
        .unwrap_err();
    match err {
        Error::BudgetExhausted {
            visited_pairs,
            limit,
        } => {
            assert_eq!(limit, 0);
            assert!(visited_pairs > limit, "the search made progress first");
        }
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
}

#[test]
fn expired_deadline_is_a_structured_timeout() {
    let sys = examples::flag_copy_system(3).unwrap();
    let a = ObjSet::singleton(sys.universe().obj("alpha").unwrap());
    let err = Query::new(Phi::True, a)
        .timeout(Duration::ZERO)
        .run_on(&sys)
        .unwrap_err();
    assert!(matches!(err, Error::DeadlineExceeded), "{err:?}");
}

#[test]
fn exhausted_searches_leave_the_shared_oracle_usable() {
    // A budget failure mid-search must not poison shared state: the same
    // Oracle answers the same query afterwards.
    let sys = examples::flag_copy_system(3).unwrap();
    let u = sys.universe();
    let a = ObjSet::singleton(u.obj("alpha").unwrap());
    let oracle = Oracle::new(&sys).unwrap();
    let err = Query::new(Phi::True, a.clone())
        .max_pairs(0)
        .run(&oracle)
        .unwrap_err();
    assert!(matches!(err, Error::BudgetExhausted { .. }), "{err:?}");
    let out = Query::new(Phi::True, a).run(&oracle).unwrap();
    assert!(out.holds());
}
