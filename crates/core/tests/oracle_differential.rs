//! Differential tests for the shared-Oracle prover paths: every
//! Oracle-routed entry point (depends, maximal solutions, cover proofs,
//! induction corollaries) must be observationally identical — same
//! verdicts, same witnesses, same certificates down to the recorded
//! facts — to a sequential per-call sweep over the interpreted engine.

use std::collections::{HashMap, HashSet, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sd_core::certificate::{Certificate, Fact, ProofOutcome};
use sd_core::cover::{self, PieceStrategy};
use sd_core::induction;
use sd_core::reach::DependsWitness;
use sd_core::{
    classify, solve, Cmd, CompileBudget, Domain, Engine, Expr, ObjId, ObjSet, Op, Oracle, Phi,
    Query, State, StateSet, System, Universe,
};

const BUDGET: CompileBudget = CompileBudget {
    max_dense_entries: 1 << 24,
    max_dense_pair_bits: 1 << 28,
};

/// Reference verdict: a fresh interpreted-engine search through the
/// `Query` one-shot path, pinned to the shared test budget.
fn interp_depends(sys: &System, phi: &Phi, a: &ObjSet, beta: ObjId) -> Option<DependsWitness> {
    Query::new(phi.clone(), a.clone())
        .beta(beta)
        .engine(Engine::Interpreted)
        .budget(BUDGET)
        .run_on(sys)
        .unwrap()
        .into_witness()
}

/// A random valid system: `n` objects over a common `k`-valued domain,
/// with guarded copy/constant operations (always in-domain and total, so
/// no operation errors).
fn random_system(seed: u64) -> System {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(2usize..=4);
    let k = rng.gen_range(2i64..=3);
    let objects = (0..n)
        .map(|i| (format!("x{i}"), Domain::int_range(0, k - 1).unwrap()))
        .collect();
    let u = Universe::new(objects).unwrap();
    let ids: Vec<_> = u.objects().collect();
    let num_ops = rng.gen_range(2usize..=4);
    let ops = (0..num_ops)
        .map(|i| {
            let guard = Expr::var(ids[rng.gen_range(0..n)]).lt(Expr::int(rng.gen_range(1..=k)));
            let mut body = Vec::new();
            for _ in 0..rng.gen_range(1usize..=2) {
                let dst = ids[rng.gen_range(0..n)];
                let rhs = if rng.gen_bool(0.7) {
                    Expr::var(ids[rng.gen_range(0..n)])
                } else {
                    Expr::int(rng.gen_range(0..k))
                };
                body.push(Cmd::assign(dst, rhs));
            }
            Op::from_cmd(format!("o{i}"), Cmd::when(guard, Cmd::Seq(body)))
        })
        .collect();
    System::new(u, ops)
}

fn random_phi(sys: &System, rng: &mut StdRng) -> Phi {
    let u = sys.universe();
    let ids: Vec<_> = u.objects().collect();
    let obj = ids[rng.gen_range(0..ids.len())];
    let bound = u.domain(obj).size() as i64;
    let expr = Phi::expr(Expr::var(obj).lt(Expr::int(rng.gen_range(1..=bound))));
    match rng.gen_range(0u32..3) {
        0 => Phi::True,
        1 => expr,
        _ => Phi::from_set(expr.sat(sys).unwrap()),
    }
}

fn witness_fields(w: Option<DependsWitness>) -> Option<(usize, State, State)> {
    w.map(|w| (w.history.len(), w.sigma1, w.sigma2))
}

fn render_objset(sys: &System, a: &ObjSet) -> String {
    let names: Vec<&str> = a.iter().map(|o| sys.universe().name(o)).collect();
    format!("{{{}}}", names.join(", "))
}

/// Interpreted invariance reference: ∀σ ∈ Sat(φ), δ: φ(δσ).
fn ref_is_invariant(sys: &System, phi: &Phi) -> bool {
    for sigma in sys.states().unwrap() {
        if phi.holds(sys, &sigma).unwrap() {
            for op in sys.op_ids() {
                let next = sys.apply(op, &sigma).unwrap();
                if !phi.holds(sys, &next).unwrap() {
                    return false;
                }
            }
        }
    }
    true
}

/// Interpreted image-set enumeration (the pre-Oracle `reachable_images`).
fn ref_reachable_images(sys: &System, phi: &Phi) -> Vec<StateSet> {
    let start = phi.sat(sys).unwrap();
    let mut seen: HashSet<StateSet> = HashSet::new();
    let mut queue: VecDeque<StateSet> = VecDeque::new();
    let mut out = Vec::new();
    seen.insert(start.clone());
    queue.push_back(start);
    while let Some(cur) = queue.pop_front() {
        out.push(cur.clone());
        for op in sys.op_ids() {
            let next = sd_core::after::image_op(sys, &cur, op).unwrap();
            if seen.insert(next.clone()) {
                queue.push_back(next);
            }
        }
    }
    out
}

/// The sequential disjunction sweep exactly as the pre-Oracle provers ran
/// it, composed from the public per-call (AST-interpreting) kernels.
fn ref_disjunction(
    sys: &System,
    sats: &[StateSet],
    a: &ObjSet,
    beta: ObjId,
    cert: &mut Certificate,
) -> Result<(), String> {
    let mut checks = 0;
    let mut branch1 = true;
    'b1: for sat in sats {
        for op in sys.op_ids() {
            checks += 1;
            if !induction::op_confines_diffs(sys, sat, a, op).unwrap() {
                branch1 = false;
                break 'b1;
            }
        }
    }
    if branch1 {
        cert.record(Fact::NoSpreadFrom {
            sources: render_objset(sys, a),
            checks,
        });
        return Ok(());
    }
    let mut checks = 0;
    for sat in sats {
        for op in sys.op_ids() {
            checks += 1;
            if !induction::op_no_new_diff_at(sys, sat, beta, op).unwrap() {
                return Err(format!(
                    "both disjuncts fail: some operation spreads differences out of A \
                     and some operation writes β under {} constraint sets",
                    sats.len()
                ));
            }
        }
    }
    cert.record(Fact::NoNewDifferenceAt {
        sink: sys.universe().name(beta).to_string(),
        checks,
    });
    Ok(())
}

/// Sequential interpreted Corollary 5-6 reference.
fn ref_cor_5_6(sys: &System, phi: &Phi, a: &ObjSet, beta: ObjId) -> ProofOutcome {
    if a.contains(beta) {
        return ProofOutcome::Inapplicable("β ∈ A".into());
    }
    if !ref_is_invariant(sys, phi) {
        return ProofOutcome::Inapplicable("φ is not invariant".into());
    }
    let sat = phi.sat(sys).unwrap();
    let mut cert = Certificate::new(
        "Corollary 5-6",
        format!(
            "¬ {} ▷φ {}",
            render_objset(sys, a),
            sys.universe().name(beta)
        ),
    );
    cert.record(Fact::Invariant);
    match ref_disjunction(sys, &[sat], a, beta, &mut cert) {
        Ok(()) => ProofOutcome::Proved(cert),
        Err(reason) => ProofOutcome::Inapplicable(reason),
    }
}

/// Sequential interpreted Corollary 6-5 reference.
fn ref_cor_6_5(sys: &System, phi: &Phi, a: &ObjSet, beta: ObjId) -> ProofOutcome {
    if a.contains(beta) {
        return ProofOutcome::Inapplicable("β ∈ A".into());
    }
    let images = ref_reachable_images(sys, phi);
    let mut cert = Certificate::new(
        "Corollary 6-5",
        format!(
            "¬ {} ▷φ {}",
            render_objset(sys, a),
            sys.universe().name(beta)
        ),
    );
    cert.record(Fact::Note(format!(
        "{} reachable [H]φ constraint sets enumerated",
        images.len()
    )));
    match ref_disjunction(sys, &images, a, beta, &mut cert) {
        Ok(()) => ProofOutcome::Proved(cert),
        Err(reason) => ProofOutcome::Inapplicable(reason),
    }
}

/// Sequential interpreted Corollary 4-2 reference.
fn ref_cor_4_2(sys: &System, phi: &Phi, alpha: ObjId, beta: ObjId) -> ProofOutcome {
    if alpha == beta {
        return ProofOutcome::Inapplicable("α = β".into());
    }
    if !classify::is_autonomous(sys, phi).unwrap() {
        return ProofOutcome::Inapplicable("φ is not autonomous".into());
    }
    if !ref_is_invariant(sys, phi) {
        return ProofOutcome::Inapplicable("φ is not invariant".into());
    }
    let sat = phi.sat(sys).unwrap();
    let mut cert = Certificate::new(
        "Corollary 4-2",
        format!(
            "¬ {} ▷φ {}",
            sys.universe().name(alpha),
            sys.universe().name(beta)
        ),
    );
    cert.record(Fact::Autonomous);
    cert.record(Fact::Invariant);
    match ref_disjunction(sys, &[sat], &ObjSet::singleton(alpha), beta, &mut cert) {
        Ok(()) => ProofOutcome::Proved(cert),
        Err(reason) => ProofOutcome::Inapplicable(reason),
    }
}

/// Sequential interpreted Corollary 4-3 reference, with single-history
/// sink sets computed by the per-call `sinks_after`.
fn ref_cor_4_3(
    sys: &System,
    phi: &Phi,
    q: &dyn Fn(ObjId, ObjId) -> bool,
    q_name: &str,
) -> ProofOutcome {
    if !classify::is_autonomous(sys, phi).unwrap() {
        return ProofOutcome::Inapplicable("φ is not autonomous".into());
    }
    if !ref_is_invariant(sys, phi) {
        return ProofOutcome::Inapplicable("φ is not invariant".into());
    }
    let objs: Vec<ObjId> = sys.universe().objects().collect();
    for &x in &objs {
        if !q(x, x) {
            return ProofOutcome::Inapplicable(format!(
                "{q_name} is not reflexive at {}",
                sys.universe().name(x)
            ));
        }
    }
    for &x in &objs {
        for &y in &objs {
            for &z in &objs {
                if q(x, y) && q(y, z) && !q(x, z) {
                    return ProofOutcome::Inapplicable(format!(
                        "{q_name} is not transitive at ({}, {}, {})",
                        sys.universe().name(x),
                        sys.universe().name(y),
                        sys.universe().name(z)
                    ));
                }
            }
        }
    }
    let mut checks = 0;
    for op in sys.op_ids() {
        let h = sd_core::History::single(op);
        for &x in &objs {
            checks += 1;
            let sinks = sd_core::depend::sinks_after(sys, phi, &ObjSet::singleton(x), &h).unwrap();
            for y in sinks.iter() {
                if !q(x, y) {
                    return ProofOutcome::Inapplicable(format!(
                        "operation δ{} transmits {} ▷ {} violating {q_name}",
                        op.0,
                        sys.universe().name(x),
                        sys.universe().name(y)
                    ));
                }
            }
        }
    }
    let mut cert = Certificate::new("Corollary 4-3", format!("∀x, y: x ▷φ y ⊃ {q_name}(x, y)"));
    cert.record(Fact::Autonomous);
    cert.record(Fact::Invariant);
    cert.record(Fact::ReflexiveTransitive(q_name.to_string()));
    cert.record(Fact::RelationRespected {
        relation: q_name.to_string(),
        checks,
    });
    ProofOutcome::Proved(cert)
}

/// Sequential interpreted Separation-of-Variety reference (Thm 4-5).
fn ref_separation(
    sys: &System,
    phi: &Phi,
    cover: &[Phi],
    a: &ObjSet,
    beta: ObjId,
    strategy: PieceStrategy,
) -> ProofOutcome {
    if cover.is_empty() {
        return ProofOutcome::Inapplicable("empty cover".into());
    }
    for (i, piece) in cover.iter().enumerate() {
        if !classify::is_independent(sys, piece, a).unwrap() {
            return ProofOutcome::Inapplicable(format!("cover element {i} is not A-independent"));
        }
    }
    let n = sys.state_count().unwrap();
    let mut union = StateSet::new(n);
    for piece in cover {
        union.union_with(&piece.sat(sys).unwrap());
    }
    if union.count() != n {
        return ProofOutcome::Inapplicable("cover does not cover the state space".into());
    }
    let a_names: Vec<&str> = a.iter().map(|o| sys.universe().name(o)).collect();
    let mut cert = Certificate::new(
        "Theorem 4-5 (Separation of Variety)",
        format!(
            "¬ {{{}}} ▷φ {}",
            a_names.join(", "),
            sys.universe().name(beta)
        ),
    );
    cert.record(Fact::Independent(format!("{{{}}}", a_names.join(", "))));
    cert.record(Fact::CoversStateSpace(cover.len()));
    for (i, piece) in cover.iter().enumerate() {
        let conj = phi.clone().and(piece.clone());
        let sub = match strategy {
            PieceStrategy::ExactBfs => {
                if interp_depends(sys, &conj, a, beta).is_some() {
                    return ProofOutcome::Inapplicable(format!(
                        "piece {i}: A ▷(φ∧φ{i}) β holds — no proof possible"
                    ));
                }
                let mut c = Certificate::new("exact pair reachability", format!("¬ A ▷(φ∧φ{i}) β"));
                c.record(Fact::Note("pair-BFS exhausted with no β-difference".into()));
                c
            }
            PieceStrategy::Cor56 => match ref_cor_5_6(sys, &conj, a, beta) {
                ProofOutcome::Proved(c) => c,
                ProofOutcome::Inapplicable(r) => {
                    return ProofOutcome::Inapplicable(format!(
                        "piece {i}: Corollary 5-6 failed: {r}"
                    ))
                }
            },
            PieceStrategy::Cor65 => match ref_cor_6_5(sys, &conj, a, beta) {
                ProofOutcome::Proved(c) => c,
                ProofOutcome::Inapplicable(r) => {
                    return ProofOutcome::Inapplicable(format!(
                        "piece {i}: Corollary 6-5 failed: {r}"
                    ))
                }
            },
        };
        cert.record(Fact::SubProof(Box::new(sub)));
    }
    ProofOutcome::Proved(cert)
}

/// Asserts two proof outcomes are identical including certificates.
fn assert_outcomes_equal(got: &ProofOutcome, reference: &ProofOutcome, label: &str) {
    match (got, reference) {
        (ProofOutcome::Proved(c1), ProofOutcome::Proved(c2)) => {
            assert_eq!(c1, c2, "{label}: certificates differ");
        }
        (ProofOutcome::Inapplicable(r1), ProofOutcome::Inapplicable(r2)) => {
            assert_eq!(r1, r2, "{label}: failure reasons differ");
        }
        _ => panic!(
            "{label}: verdicts differ: got proved = {}, reference proved = {}",
            got.is_proved(),
            reference.is_proved()
        ),
    }
}

#[test]
fn oracle_depends_matches_interpreted() {
    for seed in 0..80u64 {
        let sys = random_system(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0DD5_EED5);
        let u = sys.universe();
        let ids: Vec<_> = u.objects().collect();
        let phi = random_phi(&sys, &mut rng);
        let mut a = ObjSet::singleton(ids[rng.gen_range(0..ids.len())]);
        if rng.gen_bool(0.3) {
            a.insert(ids[rng.gen_range(0..ids.len())]);
        }
        let oracle = Oracle::new(&sys).unwrap();
        for &beta in &ids {
            let reference = witness_fields(interp_depends(&sys, &phi, &a, beta));
            let got = witness_fields(oracle.depends(&phi, &a, beta).unwrap());
            assert_eq!(got, reference, "oracle.depends mismatch at seed {seed}");
        }
        let b: ObjSet = ids.iter().take(2).copied().collect();
        let reference = witness_fields(
            Query::new(phi.clone(), a.clone())
                .set(b.clone())
                .engine(Engine::Interpreted)
                .budget(BUDGET)
                .run_on(&sys)
                .unwrap()
                .into_witness(),
        );
        let got = witness_fields(oracle.depends_set(&phi, &a, &b).unwrap());
        assert_eq!(got, reference, "oracle.depends_set mismatch at seed {seed}");
        let reference = Query::new(phi.clone(), a.clone())
            .engine(Engine::Interpreted)
            .budget(BUDGET)
            .run_on(&sys)
            .unwrap()
            .into_sinks()
            .expect("a sinks query returns a sink set");
        let got = oracle.sinks(&phi, &a).unwrap();
        assert_eq!(got, reference, "oracle.sinks mismatch at seed {seed}");
        // One compile serves every query above.
        assert!(oracle.stats().compiles <= 1);
    }
}

#[test]
fn maximal_solution_matches_interpreted_cylinder_sweep() {
    for seed in 0..60u64 {
        let sys = random_system(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x50_1Eu64);
        let u = sys.universe();
        let ids: Vec<_> = u.objects().collect();
        let sources = ObjSet::singleton(ids[rng.gen_range(0..ids.len())]);
        let sink = ids[rng.gen_range(0..ids.len())];

        // Reference: enumerate the `=A=` cylinder classes by complement
        // projection and decide each with a fresh interpreted search.
        let n = sys.state_count().unwrap();
        let mut classes: HashMap<Vec<u32>, Vec<u64>> = HashMap::new();
        for sigma in sys.states().unwrap() {
            classes
                .entry(sigma.project_complement(&sources))
                .or_default()
                .push(sigma.encode(u));
        }
        let mut reference = StateSet::new(n);
        for codes in classes.values() {
            let mut cyl = StateSet::new(n);
            for &code in codes {
                cyl.insert(code);
            }
            let phi_c = Phi::from_set(cyl.clone());
            if interp_depends(&sys, &phi_c, &sources, sink).is_none() {
                reference.union_with(&cyl);
            }
        }

        let (got, stats) =
            solve::unique_maximal_independent_solution_stats(&sys, &sources, sink).unwrap();
        assert_eq!(
            got.sat(&sys).unwrap(),
            reference,
            "maximal solution mismatch at seed {seed}"
        );
        assert_eq!(stats.compiles, 1, "solve must compile exactly once");
    }
}

#[test]
fn induction_provers_match_interpreted_references() {
    for seed in 0..60u64 {
        let sys = random_system(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1D_DCu64);
        let u = sys.universe();
        let ids: Vec<_> = u.objects().collect();
        let phi = random_phi(&sys, &mut rng);
        let a = ObjSet::singleton(ids[rng.gen_range(0..ids.len())]);
        for &beta in &ids {
            let got = induction::prove_cor_5_6(&sys, &phi, &a, beta).unwrap();
            let reference = ref_cor_5_6(&sys, &phi, &a, beta);
            assert_outcomes_equal(&got, &reference, &format!("cor 5-6, seed {seed}"));

            let got = induction::prove_cor_6_5(&sys, &phi, &a, beta).unwrap();
            let reference = ref_cor_6_5(&sys, &phi, &a, beta);
            assert_outcomes_equal(&got, &reference, &format!("cor 6-5, seed {seed}"));

            let alpha = a.iter().next().unwrap();
            let got = induction::prove_cor_4_2(&sys, &phi, alpha, beta).unwrap();
            let reference = ref_cor_4_2(&sys, &phi, alpha, beta);
            assert_outcomes_equal(&got, &reference, &format!("cor 4-2, seed {seed}"));
        }
        // Cor 4-3 under a random preorder: q(x, y) ≡ rank(x) ≤ rank(y).
        let ranks: Vec<u32> = ids.iter().map(|_| rng.gen_range(0..3)).collect();
        let q = |x: ObjId, y: ObjId| ranks[x.index()] <= ranks[y.index()];
        let got = induction::prove_cor_4_3(&sys, &phi, &q, "rank-leq").unwrap();
        let reference = ref_cor_4_3(&sys, &phi, &q, "rank-leq");
        assert_outcomes_equal(&got, &reference, &format!("cor 4-3, seed {seed}"));
    }
}

#[test]
fn separation_of_variety_matches_interpreted_reference() {
    for seed in 0..40u64 {
        let sys = random_system(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x000C_07EE_u64);
        let u = sys.universe();
        let ids: Vec<_> = u.objects().collect();
        let phi = random_phi(&sys, &mut rng);
        let a = ObjSet::singleton(ids[0]);
        // Split on another object's value: each piece {xj = v} is
        // A-independent and together they cover Σ.
        let j = rng.gen_range(1..ids.len());
        let splitter = ids[j];
        let k = u.domain(splitter).size() as i64;
        let cover: Vec<Phi> = (0..k)
            .map(|v| Phi::expr(Expr::var(splitter).eq(Expr::int(v))))
            .collect();
        let beta = ids[rng.gen_range(1..ids.len())];
        for strategy in [
            PieceStrategy::ExactBfs,
            PieceStrategy::Cor56,
            PieceStrategy::Cor65,
        ] {
            let got =
                cover::prove_separation_of_variety(&sys, &phi, &cover, &a, beta, strategy).unwrap();
            let reference = ref_separation(&sys, &phi, &cover, &a, beta, strategy);
            assert_outcomes_equal(&got, &reference, &format!("SoV {strategy:?}, seed {seed}"));
        }
    }
}
