//! Property-based tests for the core data structures and the constraint
//! algebra, checked against reference models.

use proptest::prelude::*;
use sd_core::bitset::BitSet;
use sd_core::{Cmd, Domain, Expr, History, ObjSet, Op, OpId, Phi, State, System, Universe};
use std::collections::BTreeSet;

const CAP: u64 = 200;

fn arb_bits() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0..CAP, 0..40)
}

fn to_bitset(items: &[u64]) -> BitSet {
    let mut s = BitSet::new(CAP);
    for &i in items {
        s.insert(i);
    }
    s
}

fn to_model(items: &[u64]) -> BTreeSet<u64> {
    items.iter().copied().collect()
}

proptest! {
    #[test]
    fn bitset_union_matches_model(a in arb_bits(), b in arb_bits()) {
        let mut s = to_bitset(&a);
        s.union_with(&to_bitset(&b));
        let model: BTreeSet<u64> = to_model(&a).union(&to_model(&b)).copied().collect();
        prop_assert_eq!(s.iter().collect::<BTreeSet<_>>(), model);
    }

    #[test]
    fn bitset_intersection_matches_model(a in arb_bits(), b in arb_bits()) {
        let mut s = to_bitset(&a);
        s.intersect_with(&to_bitset(&b));
        let model: BTreeSet<u64> =
            to_model(&a).intersection(&to_model(&b)).copied().collect();
        prop_assert_eq!(s.iter().collect::<BTreeSet<_>>(), model);
    }

    #[test]
    fn bitset_difference_matches_model(a in arb_bits(), b in arb_bits()) {
        let mut s = to_bitset(&a);
        s.difference_with(&to_bitset(&b));
        let model: BTreeSet<u64> =
            to_model(&a).difference(&to_model(&b)).copied().collect();
        prop_assert_eq!(s.iter().collect::<BTreeSet<_>>(), model);
    }

    #[test]
    fn bitset_complement_involution(a in arb_bits()) {
        let s = to_bitset(&a);
        let mut c = s.clone();
        c.complement();
        prop_assert_eq!(c.count() + s.count(), CAP);
        c.complement();
        prop_assert_eq!(c, s);
    }

    #[test]
    fn bitset_subset_matches_model(a in arb_bits(), b in arb_bits()) {
        let sa = to_bitset(&a);
        let sb = to_bitset(&b);
        prop_assert_eq!(
            sa.is_subset(&sb),
            to_model(&a).is_subset(&to_model(&b))
        );
    }

    #[test]
    fn objset_union_and_membership(
        a in prop::collection::vec(0usize..12, 0..8),
        b in prop::collection::vec(0usize..12, 0..8),
    ) {
        use sd_core::ObjId;
        let sa: ObjSet = a.iter().map(|&i| ObjId::from_index(i)).collect();
        let sb: ObjSet = b.iter().map(|&i| ObjId::from_index(i)).collect();
        let u = sa.union(&sb);
        for i in 0..12 {
            let id = ObjId::from_index(i);
            prop_assert_eq!(u.contains(id), sa.contains(id) || sb.contains(id));
        }
        prop_assert!(sa.is_subset(&u) && sb.is_subset(&u));
        // Sorted and deduplicated.
        let items: Vec<_> = u.iter().collect();
        let mut sorted = items.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(items, sorted);
    }

    #[test]
    fn history_concat_split_roundtrip(
        a in prop::collection::vec(0u32..4, 0..6),
        b in prop::collection::vec(0u32..4, 0..6),
    ) {
        let ha = History::from_ops(a.iter().copied().map(OpId).collect());
        let hb = History::from_ops(b.iter().copied().map(OpId).collect());
        let h = ha.concat(&hb);
        prop_assert_eq!(h.len(), ha.len() + hb.len());
        let (p, q) = h.split_at(ha.len());
        prop_assert_eq!(p, ha);
        prop_assert_eq!(q, hb);
    }
}

/// A fixed little universe for state and constraint properties.
fn uni() -> Universe {
    Universe::new(vec![
        ("a".into(), Domain::int_range(0, 2).unwrap()),
        ("b".into(), Domain::int_range(0, 3).unwrap()),
        ("c".into(), Domain::boolean()),
    ])
    .unwrap()
}

fn sys() -> System {
    let u = uni();
    let a = u.obj("a").unwrap();
    let b = u.obj("b").unwrap();
    System::new(
        u,
        vec![Op::from_cmd(
            "copyish",
            Cmd::when(Expr::var(a).lt(Expr::int(2)), Cmd::assign(b, Expr::var(a))),
        )],
    )
}

fn arb_state() -> impl Strategy<Value = State> {
    (0u32..3, 0u32..4, 0u32..2).prop_map(|(a, b, c)| State::from_indices(vec![a, b, c]))
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(s in arb_state()) {
        let u = uni();
        prop_assert_eq!(State::decode(&u, s.encode(&u)), s);
    }

    #[test]
    fn substitution_laws(s1 in arb_state(), s2 in arb_state()) {
        let u = uni();
        let ab = u.obj_set(&["a", "b"]).unwrap();
        // Def 5-3: σ2 ←A σ1 agrees with σ1 on A and with σ2 elsewhere.
        let sub = s2.substitute(&ab, &s1);
        prop_assert!(sub.eq_on(&s1, &ab));
        prop_assert!(sub.eq_except(&s2, &ab));
        // Idempotence and identity.
        prop_assert_eq!(sub.substitute(&ab, &s1), sub.clone());
        prop_assert_eq!(s2.substitute(&ObjSet::empty(), &s1), s2.clone());
    }

    #[test]
    fn eq_except_is_equivalence_with_diff(s1 in arb_state(), s2 in arb_state()) {
        let set = s1.diff(&s2);
        prop_assert!(s1.eq_except(&s2, &set));
        // Minimality: removing any member breaks it (unless equal there).
        for obj in set.iter() {
            let smaller: ObjSet = set.iter().filter(|&o| o != obj).collect();
            prop_assert!(!s1.eq_except(&s2, &smaller));
        }
    }

    #[test]
    fn phi_algebra_matches_set_algebra(t1 in 0i64..3, t2 in 0i64..4) {
        let sys = sys();
        let u = sys.universe();
        let a = u.obj("a").unwrap();
        let b = u.obj("b").unwrap();
        let p = Phi::expr(Expr::var(a).lt(Expr::int(t1)));
        let q = Phi::expr(Expr::var(b).lt(Expr::int(t2)));

        let sp = p.sat(&sys).unwrap();
        let sq = q.sat(&sys).unwrap();

        let mut expected_and = sp.clone();
        expected_and.intersect_with(&sq);
        prop_assert_eq!(p.clone().and(q.clone()).sat(&sys).unwrap(), expected_and);

        let mut expected_or = sp.clone();
        expected_or.union_with(&sq);
        prop_assert_eq!(p.clone().or(q.clone()).sat(&sys).unwrap(), expected_or);

        let mut expected_not = sp.clone();
        expected_not.complement();
        prop_assert_eq!(p.clone().not().sat(&sys).unwrap(), expected_not);

        // Entailment is subset.
        prop_assert_eq!(
            p.entails(&sys, &q).unwrap(),
            sp.is_subset(&sq)
        );
    }

    #[test]
    fn run_composes(s in arb_state(), n in 0usize..4) {
        let sys = sys();
        let h = History::from_ops(vec![OpId(0); n]);
        let composed = sys.run(&s, &h).unwrap();
        let mut stepped = s;
        for _ in 0..n {
            stepped = sys.apply(OpId(0), &stepped).unwrap();
        }
        prop_assert_eq!(composed, stepped);
    }
}
