//! Differential tests: the compiled pair-search engines must be
//! observationally identical to the interpreted reference on valid
//! systems — same verdicts, same (minimal-length) witnesses — across
//! random systems and every example system from the paper.
//!
//! This suite deliberately drives the deprecated `reach::*` free
//! functions: they are the sanctioned compatibility surface and must
//! keep answering byte-identically until removed.
#![allow(deprecated)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sd_core::reach::{self, DependsWitness};
use sd_core::{
    examples, Cmd, CompileBudget, Domain, Engine, Expr, ObjSet, Op, Phi, State, System, Universe,
};

const BUDGET: CompileBudget = CompileBudget {
    max_dense_entries: 1 << 24,
    max_dense_pair_bits: 1 << 28,
};

const COMPILED: [Engine; 3] = [Engine::Auto, Engine::CompiledDense, Engine::CompiledSparse];

/// A random valid system: `n` objects over a common `k`-valued domain,
/// with guarded copy/constant operations (always in-domain, so
/// `System::validate` holds by construction).
fn random_system(seed: u64) -> System {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(2usize..=4);
    let k = rng.gen_range(2i64..=3);
    let objects = (0..n)
        .map(|i| (format!("x{i}"), Domain::int_range(0, k - 1).unwrap()))
        .collect();
    let u = Universe::new(objects).unwrap();
    let ids: Vec<_> = u.objects().collect();
    let num_ops = rng.gen_range(2usize..=4);
    let ops = (0..num_ops)
        .map(|i| {
            let guard = Expr::var(ids[rng.gen_range(0..n)]).lt(Expr::int(rng.gen_range(1..=k)));
            let mut body = Vec::new();
            for _ in 0..rng.gen_range(1usize..=2) {
                let dst = ids[rng.gen_range(0..n)];
                let rhs = if rng.gen_bool(0.7) {
                    Expr::var(ids[rng.gen_range(0..n)])
                } else {
                    Expr::int(rng.gen_range(0..k))
                };
                body.push(Cmd::assign(dst, rhs));
            }
            Op::from_cmd(format!("o{i}"), Cmd::when(guard, Cmd::Seq(body)))
        })
        .collect();
    System::new(u, ops)
}

/// A φ drawn from a small pool, including a materialised `Phi::Set` so
/// the extensional fast path is exercised too.
fn random_phi(sys: &System, rng: &mut StdRng) -> Phi {
    let u = sys.universe();
    let ids: Vec<_> = u.objects().collect();
    let obj = ids[rng.gen_range(0..ids.len())];
    let bound = u.domain(obj).size() as i64;
    let expr = Phi::expr(Expr::var(obj).lt(Expr::int(rng.gen_range(1..=bound))));
    match rng.gen_range(0u32..3) {
        0 => Phi::True,
        1 => expr,
        _ => Phi::from_set(expr.sat(sys).unwrap()),
    }
}

fn witness_fields(w: Option<DependsWitness>) -> Option<(usize, State, State)> {
    w.map(|w| (w.history.len(), w.sigma1, w.sigma2))
}

/// Replays a witness: both states satisfy φ, differ only at A, and the
/// history drives them to different β values.
fn assert_witness_valid(
    sys: &System,
    phi: &Phi,
    a: &ObjSet,
    beta: sd_core::ObjId,
    w: &DependsWitness,
) {
    assert!(phi.holds(sys, &w.sigma1).unwrap());
    assert!(phi.holds(sys, &w.sigma2).unwrap());
    assert!(w.sigma1.eq_except(&w.sigma2, a));
    assert_ne!(w.sigma1, w.sigma2);
    let o1 = sys.run(&w.sigma1, &w.history).unwrap();
    let o2 = sys.run(&w.sigma2, &w.history).unwrap();
    assert_ne!(o1.index(beta), o2.index(beta), "witness does not reach β");
}

/// Checks all engines against the interpreted reference for one
/// (system, φ, A) configuration, over every β and a set target.
fn check_configuration(sys: &System, phi: &Phi, a: &ObjSet) {
    let u = sys.universe();
    let objects: Vec<_> = u.objects().collect();
    for &beta in &objects {
        let reference =
            reach::depends_with(sys, phi, a, beta, Engine::Interpreted, &BUDGET).unwrap();
        if let Some(w) = &reference {
            assert_witness_valid(sys, phi, a, beta, w);
        }
        let reference = witness_fields(reference);
        for engine in COMPILED {
            let got = reach::depends_with(sys, phi, a, beta, engine, &BUDGET).unwrap();
            if let Some(w) = &got {
                assert_witness_valid(sys, phi, a, beta, w);
            }
            assert_eq!(
                witness_fields(got),
                reference,
                "depends mismatch: {engine:?}, beta {beta:?}"
            );
        }
    }
    // Set target: the first two objects simultaneously.
    let b: ObjSet = objects.iter().take(2).copied().collect();
    let reference = witness_fields(
        reach::depends_set_with(sys, phi, a, &b, Engine::Interpreted, &BUDGET).unwrap(),
    );
    for engine in COMPILED {
        let got =
            witness_fields(reach::depends_set_with(sys, phi, a, &b, engine, &BUDGET).unwrap());
        assert_eq!(got, reference, "depends_set mismatch: {engine:?}");
    }
    // Sinks row.
    let reference = reach::sinks_with(sys, phi, a, Engine::Interpreted, &BUDGET).unwrap();
    for engine in COMPILED {
        let got = reach::sinks_with(sys, phi, a, engine, &BUDGET).unwrap();
        assert_eq!(got, reference, "sinks mismatch: {engine:?}");
    }
}

#[test]
fn engines_agree_on_random_systems() {
    // ≥ 100 random systems, each exercised across every β under a random
    // φ and source set.
    for seed in 0..120u64 {
        let sys = random_system(seed);
        sys.validate().unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_A5A5);
        let u = sys.universe();
        let ids: Vec<_> = u.objects().collect();
        let phi = random_phi(&sys, &mut rng);
        let mut a = ObjSet::singleton(ids[rng.gen_range(0..ids.len())]);
        if rng.gen_bool(0.3) {
            a.insert(ids[rng.gen_range(0..ids.len())]);
        }
        check_configuration(&sys, &phi, &a);
    }
}

#[test]
fn exact_search_agrees_with_bounded_enumeration() {
    // depends_bounded enumerates histories by ascending length, so when
    // the exact witness fits the bound both must find one of the same
    // minimal length; when the exact search finds nothing, neither can
    // the bounded one.
    const BOUND: usize = 3;
    for seed in 0..40u64 {
        let sys = random_system(seed);
        let u = sys.universe();
        let ids: Vec<_> = u.objects().collect();
        let mut rng = StdRng::seed_from_u64(!seed);
        let phi = random_phi(&sys, &mut rng);
        let a = ObjSet::singleton(ids[rng.gen_range(0..ids.len())]);
        for &beta in &ids {
            let exact = reach::depends(&sys, &phi, &a, beta).unwrap();
            let bounded = reach::depends_bounded(&sys, &phi, &a, beta, BOUND).unwrap();
            match (&exact, &bounded) {
                (None, None) => {}
                (None, Some(w)) => panic!(
                    "bounded found a length-{} witness the exact search missed",
                    w.history.len()
                ),
                (Some(e), None) => assert!(
                    e.history.len() > BOUND,
                    "exact witness of length {} not found by bound {BOUND}",
                    e.history.len()
                ),
                (Some(e), Some(b)) => {
                    assert_eq!(
                        e.history.len(),
                        b.history.len(),
                        "witness lengths disagree (both must be minimal)"
                    );
                    assert_witness_valid(&sys, &phi, &a, beta, b);
                }
            }
        }
    }
}

#[test]
fn engines_agree_on_paper_examples() {
    let systems = [
        examples::copy_system(4).unwrap(),
        examples::threshold_system(15).unwrap(),
        examples::guarded_copy_system(3).unwrap(),
        examples::flag_copy_system(3).unwrap(),
        examples::nontransitive_system(2).unwrap(),
        examples::pointer_chain_system(3, 2).unwrap(),
        examples::left_right_system(3).unwrap(),
        examples::alpha12_copy_system(3).unwrap(),
        examples::alpha12_sub_system(3).unwrap(),
        examples::m1m2_system(2).unwrap(),
        examples::oscillator_system(5).unwrap(),
        examples::floyd_flowchart_system(2).unwrap(),
        examples::pc_branch_system().unwrap(),
        examples::mod_adder_system(2).unwrap(),
        examples::two_op_rights_system().unwrap(),
    ];
    for sys in &systems {
        let u = sys.universe();
        // Cap the source sweep on the larger universes; every object is
        // still covered as a β via the sinks-row comparison.
        let sources: Vec<ObjSet> = u.objects().take(4).map(ObjSet::singleton).collect();
        for a in &sources {
            check_configuration(sys, &Phi::True, a);
        }
        // The batched matrix agrees with interpreted row-by-row sinks.
        for engine in COMPILED {
            let rows =
                reach::sinks_matrix_with(sys, &Phi::True, &sources, engine, &BUDGET).unwrap();
            for (a, row) in sources.iter().zip(&rows) {
                let reference =
                    reach::sinks_with(sys, &Phi::True, a, Engine::Interpreted, &BUDGET).unwrap();
                assert_eq!(*row, reference, "sinks_matrix row mismatch for {a:?}");
            }
        }
    }
}
