//! `Query` builder vs. the deprecated `reach::*` free functions: the new
//! API must answer byte-identically (same verdicts, same witnesses, same
//! sink sets, same stats) on every example system from the paper.
#![allow(deprecated)]

use sd_core::reach;
use sd_core::{examples, CompileBudget, Engine, ObjSet, Phi, Query, System};

const ENGINES: [Engine; 4] = [
    Engine::Auto,
    Engine::Interpreted,
    Engine::CompiledDense,
    Engine::CompiledSparse,
];

fn example_systems() -> Vec<System> {
    vec![
        examples::copy_system(3).unwrap(),
        examples::threshold_system(3).unwrap(),
        examples::guarded_copy_system(2).unwrap(),
        examples::flag_copy_system(2).unwrap(),
        examples::nontransitive_system(2).unwrap(),
        examples::left_right_system(2).unwrap(),
        examples::m1m2_system(2).unwrap(),
        examples::oscillator_system(2).unwrap(),
    ]
}

fn phis_of(sys: &System) -> Vec<Phi> {
    let mut phis = vec![Phi::True];
    // A nontrivial constraint: pin the first object to its first value.
    let u = sys.universe();
    if let Some(alpha) = u.objects().next() {
        let dom = u.domain(alpha);
        let v = dom.values().first().unwrap().clone();
        phis.push(Phi::expr(
            sd_core::Expr::var(alpha).eq(sd_core::Expr::Const(v)),
        ));
    }
    phis
}

/// `Query::new(φ, A).beta(β)` answers exactly like `reach::depends_with`
/// for every engine, source, sink and constraint.
#[test]
fn beta_queries_match_free_functions() {
    let budget = CompileBudget::default();
    for sys in example_systems() {
        let u = sys.universe();
        let ids: Vec<_> = u.objects().collect();
        for phi in phis_of(&sys) {
            for &alpha in &ids {
                let a = ObjSet::singleton(alpha);
                for &beta in &ids {
                    for engine in ENGINES {
                        let old =
                            reach::depends_with(&sys, &phi, &a, beta, engine, &budget).unwrap();
                        let new = Query::new(phi.clone(), a.clone())
                            .beta(beta)
                            .engine(engine)
                            .budget(budget)
                            .run_on(&sys)
                            .unwrap()
                            .into_witness();
                        assert_eq!(
                            old.as_ref().map(|w| (&w.history, &w.sigma1, &w.sigma2)),
                            new.as_ref().map(|w| (&w.history, &w.sigma1, &w.sigma2)),
                            "witness mismatch ({engine:?})"
                        );
                    }
                }
            }
        }
    }
}

/// Sinks, set-target and matrix queries agree with their free-function
/// ancestors, including the returned search stats.
#[test]
fn sinks_set_and_matrix_queries_match_free_functions() {
    let budget = CompileBudget::default();
    for sys in example_systems() {
        let u = sys.universe();
        let ids: Vec<_> = u.objects().collect();
        let sets: Vec<ObjSet> = ids.iter().map(|&o| ObjSet::singleton(o)).collect();
        for phi in phis_of(&sys) {
            for a in &sets {
                let old = reach::sinks_with(&sys, &phi, a, Engine::Auto, &budget).unwrap();
                let new = Query::new(phi.clone(), a.clone())
                    .run_on(&sys)
                    .unwrap()
                    .into_sinks()
                    .expect("sinks query");
                assert_eq!(old, new, "sinks mismatch");

                let b: ObjSet = ids.iter().take(2).copied().collect();
                let old = reach::depends_set_with(&sys, &phi, a, &b, Engine::Auto, &budget)
                    .unwrap()
                    .map(|w| (w.history, w.sigma1, w.sigma2));
                let new = Query::new(phi.clone(), a.clone())
                    .set(b)
                    .run_on(&sys)
                    .unwrap()
                    .into_witness()
                    .map(|w| (w.history, w.sigma1, w.sigma2));
                assert_eq!(old, new, "set-target mismatch");
            }
            let old_rows =
                reach::sinks_matrix_with(&sys, &phi, &sets, Engine::Auto, &budget).unwrap();
            let out = Query::matrix(phi.clone(), sets.clone())
                .run_on(&sys)
                .unwrap();
            assert!(out.stats.is_some(), "matrix queries carry stats");
            let new_rows = out.into_rows().expect("matrix rows");
            assert_eq!(old_rows, new_rows, "matrix rows mismatch");
        }
    }
}

/// Bounded queries (`k`-step dependency) agree with
/// `reach::depends_bounded` verdict-for-verdict and witness-for-witness.
#[test]
fn bounded_queries_match_free_function() {
    for sys in example_systems() {
        let u = sys.universe();
        let ids: Vec<_> = u.objects().collect();
        for &alpha in &ids {
            let a = ObjSet::singleton(alpha);
            for &beta in &ids {
                for k in 0..=3usize {
                    let old = reach::depends_bounded(&sys, &Phi::True, &a, beta, k)
                        .unwrap()
                        .map(|w| (w.history, w.sigma1, w.sigma2));
                    let new = Query::new(Phi::True, a.clone())
                        .beta(beta)
                        .bounded(k)
                        .engine(Engine::Interpreted)
                        .run_on(&sys)
                        .unwrap()
                        .into_witness()
                        .map(|w| (w.history, w.sigma1, w.sigma2));
                    assert_eq!(old, new, "bounded(k = {k}) mismatch");
                }
            }
        }
    }
}

/// `depends_with_stats` and the Query report/stats channel agree.
#[test]
fn stats_channel_matches_free_function() {
    let sys = examples::flag_copy_system(2).unwrap();
    let u = sys.universe();
    let a = ObjSet::singleton(u.obj("alpha").unwrap());
    let beta = u.obj("beta").unwrap();
    let budget = CompileBudget::default();
    for engine in ENGINES {
        let (old_w, old_stats) =
            reach::depends_with_stats(&sys, &Phi::True, &a, beta, engine, &budget).unwrap();
        let out = Query::new(Phi::True, a.clone())
            .beta(beta)
            .engine(engine)
            .budget(budget)
            .run_on(&sys)
            .unwrap();
        let new_stats = out.stats.expect("exact queries carry stats");
        let new_w = out.into_witness();
        assert_eq!(
            old_w.map(|w| (w.history, w.sigma1, w.sigma2)),
            new_w.map(|w| (w.history, w.sigma1, w.sigma2)),
            "{engine:?}"
        );
        assert_eq!(old_stats, new_stats, "{engine:?}");
    }
}
