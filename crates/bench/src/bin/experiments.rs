//! Experiment harness: regenerates every table in EXPERIMENTS.md.
//!
//! Each section corresponds to one experiment id from DESIGN.md §4 and
//! reproduces one worked example, theorem or claim from the paper. Run
//! with `cargo run -p sd-bench --bin experiments --release`.
//!
//! `--telemetry OUT.jsonl` instead runs a short instrumented workload
//! (cold + warm `sinks_matrix` sweeps and a witness query against a
//! shared Oracle) and writes every [`sd_core::QueryEvent`] as one JSON
//! object per line — the raw material for cache-attribution analysis.

use std::time::Instant;

use sd_bench::Table;
use sd_core::{examples, Expr, History, ObjSet, OpId, Phi, Rights};
use sd_info::Dist;

fn yes(b: bool) -> String {
    if b {
        "yes".into()
    } else {
        "no".into()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An optional argument re-runs just one performance section (p2, p3
    // or p5) instead of the whole harness; `--telemetry OUT.jsonl` runs
    // the instrumented workload and writes an event log.
    if let Some(section) = std::env::args().nth(1) {
        match section.as_str() {
            "p2" => p2_pair_bfs()?,
            "p3" => p3_static_vs_semantic()?,
            "p5" => p5_provers()?,
            "--telemetry" => {
                let out = std::env::args()
                    .nth(2)
                    .ok_or("--telemetry requires an output path (e.g. out.jsonl)")?;
                telemetry_log(&out)?;
            }
            other => {
                return Err(
                    format!("unknown section {other:?} (try p2, p3, p5, --telemetry)").into(),
                )
            }
        }
        return Ok(());
    }
    let started = Instant::now();
    e1_variety()?;
    e2_reflexivity()?;
    e3_maximal_solutions()?;
    e4_unique_maximal()?;
    e5_worth()?;
    e6_pointer_chains()?;
    e7_nontransitivity()?;
    e8_relative_autonomy()?;
    e9_set_intermediate()?;
    e10_oscillator()?;
    e11_floyd()?;
    e12_observers()?;
    e13_confinement()?;
    e14_security()?;
    e15_bits()?;
    e16_channel()?;
    e17_set_sources()?;
    e18_inferential()?;
    e19_mechanisms()?;
    p2_pair_bfs()?;
    p3_static_vs_semantic()?;
    p5_provers()?;
    println!("\ntotal harness time: {:.2?}", started.elapsed());
    Ok(())
}

/// `--telemetry OUT.jsonl`: run an instrumented workload and dump every
/// query event as JSON Lines. The workload exercises the paths a serving
/// layer cares about: one compile, a cold `sinks_matrix` sweep (partition
/// miss), a warm repeat (partition hit), and a per-query witness search.
fn telemetry_log(path: &str) -> Result<(), Box<dyn std::error::Error>> {
    use std::io::BufWriter;
    use std::sync::Arc;

    use sd_core::{CompileBudget, Engine, JsonLinesSink, Oracle, Query, Sink};

    let sys = examples::flag_copy_system(3)?;
    let file = std::fs::File::create(path)?;
    let sink: Arc<JsonLinesSink<BufWriter<std::fs::File>>> =
        Arc::new(JsonLinesSink::new(BufWriter::new(file)));
    let oracle = Oracle::with_sink(
        &sys,
        Engine::Auto,
        &CompileBudget::default(),
        sink.clone() as Arc<dyn Sink>,
    )?;

    let u = sys.universe();
    let sources: Vec<ObjSet> = u.objects().map(ObjSet::singleton).collect();
    let cold = oracle.sinks_matrix(&Phi::True, &sources)?;
    let warm = oracle.sinks_matrix(&Phi::True, &sources)?;
    assert_eq!(cold, warm, "warm sweep must agree with the cold one");

    let alpha = u.obj("alpha")?;
    let beta = u.obj("beta")?;
    let out = Query::new(Phi::True, ObjSet::singleton(alpha))
        .beta(beta)
        .run(&oracle)?;
    println!(
        "telemetry: α ▷ β = {}; engine = {}, {} pair expansions, partition cached = {}",
        yes(out.holds()),
        out.report.engine,
        out.report.pair_expansions,
        out.report.partition_cached,
    );

    drop(oracle);
    let writer = Arc::into_inner(sink).expect("oracle dropped, sink unshared");
    writer
        .into_inner()
        .into_inner()
        .map_err(|e| std::io::Error::from(e.error().kind()))?;
    println!("telemetry: events written to {path}");
    Ok(())
}

/// E1 (§2.2): copying conveys variety; constraints remove it.
fn e1_variety() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== E1 (§2.2): variety and its elimination ==");
    let mut t = Table::new(&["system", "constraint φ", "α ▷φ β", "paper"]);
    for k in [4i64, 16, 64] {
        let sys = examples::copy_system(k)?;
        let u = sys.universe();
        let a = u.obj("alpha")?;
        let b = u.obj("beta")?;
        let free = sd_core::Query::new(Phi::True, ObjSet::singleton(a).clone())
            .beta(b)
            .run_on(&sys)?
            .into_witness();
        t.row(&[
            format!("β ← α ({k} values)"),
            "tt".into(),
            yes(free.is_some()),
            "yes".into(),
        ]);
        let constant = Phi::expr(Expr::var(a).eq(Expr::int(k / 2)));
        let blocked = sd_core::Query::new(constant.clone(), ObjSet::singleton(a).clone())
            .beta(b)
            .run_on(&sys)?
            .into_witness();
        t.row(&[
            format!("β ← α ({k} values)"),
            format!("α = {}", k / 2),
            yes(blocked.is_some()),
            "no".into(),
        ]);
    }
    let sys = examples::threshold_system(15)?;
    let u = sys.universe();
    let a = u.obj("alpha")?;
    let b = u.obj("beta")?;
    let free = sd_core::Query::new(Phi::True, ObjSet::singleton(a).clone())
        .beta(b)
        .run_on(&sys)?
        .into_witness();
    t.row(&[
        "if α<10 then β←0 else β←1".into(),
        "tt".into(),
        yes(free.is_some()),
        "yes (1 bit)".into(),
    ]);
    let lt10 = Phi::expr(Expr::var(a).lt(Expr::int(10)));
    let blocked = sd_core::Query::new(lt10.clone(), ObjSet::singleton(a).clone())
        .beta(b)
        .run_on(&sys)?
        .into_witness();
    t.row(&[
        "if α<10 then β←0 else β←1".into(),
        "α < 10".into(),
        yes(blocked.is_some()),
        "no".into(),
    ]);
    print!("{}", t.render());
    Ok(())
}

/// E2 (§2.5, Thms 2-4/2-5): reflexivity over λ.
fn e2_reflexivity() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== E2 (§2.5): reflexivity and the empty history ==");
    let sys = examples::copy_system(4)?;
    let u = sys.universe();
    let a = u.obj("alpha")?;
    let b = u.obj("beta")?;
    let lambda = History::empty();
    let mut t = Table::new(&["claim", "checked", "paper"]);
    let refl = sd_core::depend::strongly_depends_after(
        &sys,
        &Phi::True,
        &ObjSet::singleton(a),
        a,
        &lambda,
    )?;
    t.row(&[
        "α ▷λ α (variety present)".into(),
        yes(refl.is_some()),
        "yes".into(),
    ]);
    let constant = Phi::expr(Expr::var(a).eq(Expr::int(1)));
    let none = sd_core::depend::strongly_depends_after(
        &sys,
        &constant,
        &ObjSet::singleton(a),
        a,
        &lambda,
    )?;
    t.row(&[
        "α ▷φλ α with φ: α const (Thm 2-4)".into(),
        yes(none.is_some()),
        "no".into(),
    ]);
    let cross = sd_core::depend::strongly_depends_after(
        &sys,
        &Phi::True,
        &ObjSet::singleton(a),
        b,
        &lambda,
    )?;
    t.row(&[
        "α ▷λ β for β ∉ A (Thm 2-5)".into(),
        yes(cross.is_some()),
        "no".into(),
    ]);
    print!("{}", t.render());
    Ok(())
}

/// E3 (§3.5): maximal solutions are not unique; the join property fails.
fn e3_maximal_solutions() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== E3 (§3.5): non-unique maximal solutions, join failure ==");
    let sys = examples::threshold_system(12)?;
    let u = sys.universe();
    let a = u.obj("alpha")?;
    let b = u.obj("beta")?;
    let maximal = sd_core::solve::maximal_value_constraints(&sys, a, b)?;
    let mut t = Table::new(&["maximal solution (allowed α values)", "size"]);
    for m in &maximal {
        let vals: Vec<String> = m.allowed.iter().map(|v| v.to_string()).collect();
        t.row(&[vals.join(","), m.allowed.len().to_string()]);
    }
    print!("{}", t.render());
    println!(
        "maximal solutions found: {} (paper: 2 — α ≤ 10 and α > 10)",
        maximal.len()
    );

    let sys2 = examples::guarded_copy_system(2)?;
    let u2 = sys2.universe();
    let a2 = u2.obj("alpha")?;
    let b2 = u2.obj("beta")?;
    let problem = sd_core::problem::Problem::no_flow(ObjSet::singleton(a2), b2, false);
    let phi1 = Phi::expr(Expr::var(a2).eq(Expr::int(0)));
    let phi2 = Phi::expr(Expr::var(a2).eq(Expr::int(1)));
    let join_ok = sd_core::solve::join_property_instance(&sys2, &problem, &phi1, &phi2)?;
    println!(
        "join property for α=0 / α=1 in `if m then β←α`: {} (paper: fails)",
        if join_ok { "holds" } else { "fails" }
    );
    Ok(())
}

/// E4 (Thm 3-1): unique maximal independent solution, constructed.
fn e4_unique_maximal() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== E4 (Thm 3-1, §3.5): unique maximal α-independent solution ==");
    let sys = examples::two_op_rights_system()?;
    let u = sys.universe();
    let a = u.obj("alpha")?;
    let b = u.obj("beta")?;
    let computed =
        sd_core::solve::unique_maximal_independent_solution(&sys, &ObjSet::singleton(a), b)?;
    let expected = Phi::expr(
        Expr::var(u.obj("xx")?)
            .has_rights(Rights::S)
            .not()
            .or(Expr::var(u.obj("xa")?).has_rights(Rights::R).not())
            .or(Expr::var(u.obj("xb")?).has_rights(Rights::W).not()),
    );
    let same = computed.sat(&sys)? == expected.sat(&sys)?;
    println!(
        "computed φmax = (s∉<x,x> ∨ r∉<x,α> ∨ w∉<x,β>): {} (paper: the single maximal solution)",
        yes(same)
    );
    println!(
        "|Sat(φmax)| = {} of {} states",
        computed.sat(&sys)?.count(),
        sys.state_count()?
    );
    Ok(())
}

/// E5 (§3.6): worth comparison of φmax, φ1, φ2.
fn e5_worth() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== E5 (§3.6): the worth measure ==");
    let sys = examples::two_op_rights_system()?;
    let u = sys.universe();
    let a = u.obj("alpha")?;
    let b = u.obj("beta")?;
    let m = u.obj("m")?;
    let phi_max = Phi::expr(
        Expr::var(u.obj("xx")?)
            .has_rights(Rights::S)
            .not()
            .or(Expr::var(u.obj("xa")?).has_rights(Rights::R).not())
            .or(Expr::var(u.obj("xb")?).has_rights(Rights::W).not()),
    );
    let phi_1 = Phi::expr(Expr::var(u.obj("xa")?).has_rights(Rights::R).not());
    let phi_2 = Phi::expr(
        Expr::var(u.obj("xx")?)
            .has_rights(Rights::S)
            .not()
            .or(Expr::var(u.obj("xb")?).has_rights(Rights::W).not()),
    );
    let w_max = sd_core::worth::worth(&sys, &phi_max)?;
    let w_1 = sd_core::worth::worth(&sys, &phi_1)?;
    let w_2 = sd_core::worth::worth(&sys, &phi_2)?;
    let mut t = Table::new(&["solution", "α ▷ β", "m ▷ β", "|worth|", "vs φmax"]);
    for (name, w) in [
        ("φmax", &w_max),
        ("φ1: r∉<x,α>", &w_1),
        ("φ2: s∉ ∨ w∉", &w_2),
    ] {
        let cmp = match w.partial_cmp(&w_max) {
            Some(core::cmp::Ordering::Equal) => "equal",
            Some(core::cmp::Ordering::Less) => "strictly less",
            Some(core::cmp::Ordering::Greater) => "greater",
            None => "incomparable",
        };
        t.row(&[
            name.into(),
            yes(w.permits(a, b)),
            yes(w.permits(m, b)),
            w.len().to_string(),
            cmp.into(),
        ]);
    }
    print!("{}", t.render());
    println!("paper: φ1 as worthy as φmax; φ2 strictly less worthy");
    Ok(())
}

/// E6 (§4.3): the pointer-chain induction proof, with scaling.
fn e6_pointer_chains() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== E6 (§4.3): pointer chains — Strong Dependency Induction vs exact ==");
    let mut t = Table::new(&[
        "n objects",
        "states",
        "ops",
        "induction proves ¬α▷φβ",
        "induction ms",
        "exact agrees",
        "exact ms",
    ]);
    for n in [3usize, 4] {
        let sys = examples::pointer_chain_system(n, 2)?;
        let u = sys.universe();
        let alpha = u.obj("o0")?;
        let beta = u.obj(&format!("o{}", n - 1))?;
        // Chain = {o0}: φ says nothing outside the chain points into it.
        let chain = ObjSet::singleton(alpha);
        let chain_phi = chain.clone();
        let phi = Phi::pred("chain-closed", move |sys, sigma| {
            let u = sys.universe();
            for y in u.objects() {
                let target = match sigma.value(u, y) {
                    sd_core::Value::Record(fields) => {
                        fields[1].as_name().expect("ptr field is a name")
                    }
                    _ => unreachable!("pointer objects are records"),
                };
                if chain_phi.contains(target) && !chain_phi.contains(y) {
                    return Ok(false);
                }
            }
            Ok(true)
        });
        let chain_q = chain.clone();
        let q = move |x: sd_core::ObjId, y: sd_core::ObjId| {
            // q(x, y) = Chain(x) ⊃ Chain(y).
            !chain_q.contains(x) || chain_q.contains(y)
        };
        let t0 = Instant::now();
        let proof = sd_core::induction::prove_cor_4_3(&sys, &phi, &q, "Chain(x) ⊃ Chain(y)")?;
        let ind_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let exact = sd_core::Query::new(phi.clone(), ObjSet::singleton(alpha).clone())
            .beta(beta)
            .run_on(&sys)?
            .into_witness();
        let exact_ms = t1.elapsed().as_secs_f64() * 1e3;
        t.row(&[
            n.to_string(),
            sys.state_count()?.to_string(),
            sys.num_ops().to_string(),
            yes(proof.is_proved()),
            format!("{ind_ms:.1}"),
            yes(exact.is_none()),
            format!("{exact_ms:.1}"),
        ]);
    }
    print!("{}", t.render());
    println!("paper: no chain of pointers from β to α ⇒ ¬α ▷φ β (proved by Cor 4-3)");
    Ok(())
}

/// E7 (§4.4–4.6): non-transitivity and Separation of Variety.
fn e7_nontransitivity() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== E7 (§4.4–4.6): non-transitivity and Separation of Variety ==");
    let sys = examples::nontransitive_system(2)?;
    let u = sys.universe();
    let a = u.obj("alpha")?;
    let b = u.obj("beta")?;
    let m = u.obj("m")?;
    let q_obj = u.obj("q")?;
    let h1 = History::single(OpId(0));
    let h2 = History::single(OpId(1));
    let h12 = h1.concat(&h2);
    let mut t = Table::new(&["relation", "holds", "paper"]);
    let am =
        sd_core::depend::strongly_depends_after(&sys, &Phi::True, &ObjSet::singleton(a), m, &h1)?;
    t.row(&["α ▷δ1 m".into(), yes(am.is_some()), "yes".into()]);
    let mb =
        sd_core::depend::strongly_depends_after(&sys, &Phi::True, &ObjSet::singleton(m), b, &h2)?;
    t.row(&["m ▷δ2 β".into(), yes(mb.is_some()), "yes".into()]);
    let ab =
        sd_core::depend::strongly_depends_after(&sys, &Phi::True, &ObjSet::singleton(a), b, &h12)?;
    t.row(&[
        "α ▷δ1δ2 β".into(),
        yes(ab.is_some()),
        "no (non-transitive!)".into(),
    ]);
    let ab_any = sd_core::Query::new(Phi::True, ObjSet::singleton(a).clone())
        .beta(b)
        .run_on(&sys)?
        .into_witness();
    t.row(&[
        "α ▷ β (any history)".into(),
        yes(ab_any.is_some()),
        "no".into(),
    ]);
    print!("{}", t.render());

    let cover = vec![
        Phi::expr(Expr::var(q_obj)),
        Phi::expr(Expr::var(q_obj).not()),
    ];
    let out = sd_core::cover::prove_separation_of_variety(
        &sys,
        &Phi::True,
        &cover,
        &ObjSet::singleton(a),
        b,
        sd_core::cover::PieceStrategy::ExactBfs,
    )?;
    println!(
        "Separation of Variety over {{q, ¬q}} proves ¬α ▷ β: {}",
        yes(out.is_proved())
    );

    let stat = sd_flow::transitive_flows(&sys)?;
    println!(
        "transitive flow baseline reports α → β: {} (false positive, as §4.4 predicts)",
        yes(stat.contains(&(a, b)))
    );
    Ok(())
}

/// E8 (§5.2–5.4): non-autonomous constraints and relative autonomy.
fn e8_relative_autonomy() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== E8 (§5.2–5.4): relative autonomy ==");
    let sys = examples::alpha12_copy_system(4)?;
    let u = sys.universe();
    let a1 = u.obj("a1")?;
    let a2 = u.obj("a2")?;
    let b = u.obj("beta")?;
    let phi = Phi::expr(Expr::var(a1).eq(Expr::var(a2)));
    let mut t = Table::new(&["claim", "checked", "paper"]);
    t.row(&[
        "φ: α1 = α2 autonomous".into(),
        yes(sd_core::classify::is_autonomous(&sys, &phi)?),
        "no".into(),
    ]);
    t.row(&[
        "φ {α1,α2}-autonomous".into(),
        yes(sd_core::classify::is_autonomous_relative(
            &sys,
            &phi,
            &ObjSet::from_iter([a1, a2]),
        )?),
        "yes".into(),
    ]);
    let single = sd_core::Query::new(phi.clone(), ObjSet::singleton(a1).clone())
        .beta(b)
        .run_on(&sys)?
        .into_witness();
    t.row(&[
        "α1 ▷φ β (β ← α1)".into(),
        yes(single.is_some()),
        "no — yet info IS transmitted".into(),
    ]);
    let pair = sd_core::Query::new(phi.clone(), ObjSet::from_iter([a1, a2]).clone())
        .beta(b)
        .run_on(&sys)?
        .into_witness();
    t.row(&[
        "{α1,α2} ▷φ β".into(),
        yes(pair.is_some()),
        "yes (clump as one source)".into(),
    ]);
    print!("{}", t.render());

    let sub = examples::alpha12_sub_system(4)?;
    let su = sub.universe();
    let sa1 = su.obj("a1")?;
    let sa2 = su.obj("a2")?;
    let sb = su.obj("beta")?;
    let sphi = Phi::expr(Expr::var(sa1).eq(Expr::var(sa2)));
    let sub_pair = sd_core::Query::new(sphi.clone(), ObjSet::from_iter([sa1, sa2]).clone())
        .beta(sb)
        .run_on(&sub)?
        .into_witness();
    println!(
        "β ← α1 − α2 with φ: α1 = α2: {{α1,α2}} ▷φ β = {} (paper: no — β always 0)",
        yes(sub_pair.is_some())
    );
    Ok(())
}

/// E9 (§5.5): set-valued intermediate objects.
fn e9_set_intermediate() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== E9 (§5.5): set-valued intermediates under non-autonomous φ ==");
    let sys = examples::m1m2_system(2)?;
    let u = sys.universe();
    let a = u.obj("alpha")?;
    let b = u.obj("beta")?;
    let m1 = u.obj("m1")?;
    let m2 = u.obj("m2")?;
    let phi = Phi::expr(Expr::var(m1).eq(Expr::var(m2)));
    let h1 = History::single(OpId(0));
    let h2 = History::single(OpId(1));
    let mut t = Table::new(&["relation", "holds", "paper"]);
    for (label, m) in [("m1", m1), ("m2", m2)] {
        let r = sd_core::depend::strongly_depends_after(&sys, &phi, &ObjSet::singleton(m), b, &h2)?;
        t.row(&[format!("{label} ▷φδ2 β"), yes(r.is_some()), "no".into()]);
    }
    let set =
        sd_core::depend::strongly_depends_after(&sys, &phi, &ObjSet::from_iter([m1, m2]), b, &h2)?;
    t.row(&["{m1,m2} ▷φδ2 β".into(), yes(set.is_some()), "yes".into()]);
    let fan = sd_core::depend::strongly_depends_set_after(
        &sys,
        &phi,
        &ObjSet::singleton(a),
        &ObjSet::from_iter([m1, m2]),
        &h1,
    )?;
    t.row(&[
        "α ▷φδ1 {m1,m2} (Def 5-6)".into(),
        yes(fan.is_some()),
        "yes".into(),
    ]);
    print!("{}", t.render());
    Ok(())
}

/// E10 (§6.4): the oscillating system and inductive covers.
fn e10_oscillator() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== E10 (§6.4): oscillating system, inductive covers ==");
    let sys = examples::oscillator_system(37)?;
    let u = sys.universe();
    let a = u.obj("alpha")?;
    let b = u.obj("beta")?;
    let phi = Phi::expr(Expr::var(a).eq(Expr::int(37)));
    let phi_star = Phi::expr(
        Expr::var(a)
            .eq(Expr::int(37))
            .or(Expr::var(a).eq(Expr::int(-37))),
    );
    let mut t = Table::new(&["step", "result", "paper"]);
    t.row(&[
        "φ: α = 37 invariant".into(),
        yes(sd_core::classify::is_invariant(&sys, &phi)?),
        "no".into(),
    ]);
    let relax = sd_core::Query::new(phi_star.clone(), ObjSet::singleton(a).clone())
        .beta(b)
        .run_on(&sys)?
        .into_witness();
    t.row(&[
        "relaxation φ*: α = ±37 — α ▷φ* β".into(),
        yes(relax.is_some()),
        "yes (retreat to invariance fails)".into(),
    ]);
    let cover = vec![
        Phi::expr(Expr::var(a).eq(Expr::int(37))),
        Phi::expr(Expr::var(a).eq(Expr::int(-37))),
    ];
    t.row(&[
        "{α = 37, α = -37} inductive cover for φ".into(),
        yes(sd_core::cover::is_inductive_cover(&sys, &phi, &cover)?),
        "yes".into(),
    ]);
    let proof =
        sd_core::cover::prove_inductive_cover(&sys, &phi, &cover, &ObjSet::singleton(a), b)?;
    t.row(&[
        "Thm 6-7 proves ¬α ▷φ β".into(),
        yes(proof.is_proved()),
        "yes".into(),
    ]);
    let exact = sd_core::Query::new(phi.clone(), ObjSet::singleton(a).clone())
        .beta(b)
        .run_on(&sys)?
        .into_witness();
    t.row(&["exact: α ▷φ β".into(), yes(exact.is_some()), "no".into()]);
    print!("{}", t.render());
    Ok(())
}

/// E11 (§6.5): Floyd assertions on the flowchart program.
fn e11_floyd() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== E11 (§6.5): Floyd assertions as inductive covers ==");
    let src = "\
var alpha: int 0..1;
var beta: int 0..1;
var q: int 0..15;
var t: bool;
if q > 10 { t := true; } else { t := false; }
if t { beta := alpha; }
";
    let program = sd_lang::parse(src)?;
    let c = sd_lang::compile(&program)?;
    let ann = sd_lang::Assertions::new()
        .with_entry("q < 10")?
        .with_at(2, "!t")?;
    let mut t = Table::new(&["step", "result", "paper"]);
    t.row(&[
        "assertions form an inductive cover".into(),
        yes(sd_lang::verify_assertions(&c, &ann)?),
        "yes".into(),
    ]);
    let proof = sd_lang::prove_no_flow(&c, &ann, "alpha", "beta")?;
    t.row(&[
        "Thm 6-7 proves ¬α ▷φ β".into(),
        yes(proof.is_proved()),
        "yes".into(),
    ]);
    let exact = sd_lang::floyd::depends_exact(&c, &ann, "alpha", "beta")?;
    t.row(&["exact: α ▷φ β".into(), yes(exact), "no".into()]);
    let unconstrained =
        sd_lang::floyd::depends_exact(&c, &sd_lang::Assertions::new(), "alpha", "beta")?;
    t.row(&[
        "without entry assertion: α ▷ β".into(),
        yes(unconstrained),
        "yes".into(),
    ]);
    print!("{}", t.render());
    Ok(())
}

/// E12 (§6.5 end): the pc paradox under different observers.
fn e12_observers() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== E12 (§6.5 end, §7.3): observation power ==");
    let sys = examples::pc_branch_system()?;
    let u = sys.universe();
    let a = u.obj("alpha")?;
    let b = u.obj("beta")?;
    let pc = u.obj("pc")?;
    let phi = Phi::expr(Expr::var(pc).eq(Expr::int(1)));
    let known = sd_core::observe::depends_observed(
        &sys,
        &phi,
        &ObjSet::singleton(a),
        b,
        sd_core::observe::Observer::KnownHistory,
    )?;
    let timed = sd_core::observe::depends_observed(
        &sys,
        &phi,
        &ObjSet::singleton(a),
        b,
        sd_core::observe::Observer::TimeOnly,
    )?;
    let mut t = Table::new(&["observer", "α ▷φ β", "paper"]);
    t.row(&["knows the history".into(), yes(known), "yes".into()]);
    t.row(&["sees only time + β".into(), yes(timed), "no".into()]);
    print!("{}", t.render());
    Ok(())
}

/// E13 (§3.4, §7.5): confinement and declassification.
fn e13_confinement() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== E13 (§3.4, §7.5): the Confinement Problem ==");
    let m = sd_matrix::MatrixBuilder::new()
        .subject("u")
        .file("secret", 2)
        .file("scratch", 2)
        .file("spy", 2)
        .build()?;
    let c = sd_matrix::Confinement::new(&m, &["secret"], &["spy"])?;
    let mut t = Table::new(&["constraint φ", "solves confinement", "expected"]);
    t.row(&[
        "tt".into(),
        yes(c.is_solution(&m, &Phi::True)?),
        "no".into(),
    ]);
    let phi_r = sd_matrix::no_reads_of_confined(&m, &["secret"])?;
    t.row(&[
        "no reads of secret".into(),
        yes(c.is_solution(&m, &phi_r)?),
        "yes".into(),
    ]);
    let phi_w = sd_matrix::no_writes_to_spies(&m, &["spy"])?;
    t.row(&[
        "no writes to spy".into(),
        yes(c.is_solution(&m, &phi_w)?),
        "yes".into(),
    ]);
    let weak =
        sd_matrix::Confinement::new(&m, &["secret"], &["spy"])?.declassify(&m, &["secret"])?;
    t.row(&[
        "tt, secret declassified (§7.5)".into(),
        yes(weak.is_solution(&m, &Phi::True)?),
        "yes".into(),
    ]);
    print!("{}", t.render());
    Ok(())
}

/// E14 (§3.4, §4.2, §7.3): the Security Problem.
fn e14_security() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== E14 (§3.4, §4.2, §7.3): the Security Problem ==");
    let m = sd_matrix::MatrixBuilder::new()
        .subject("u")
        .file("low", 2)
        .file("high", 2)
        .build()?;
    let p = sd_matrix::SecurityPolicy::new(&m, &[("low", 0), ("high", 1)], 0)?;
    let phi = p.secure_configuration(&m)?;
    let mut t = Table::new(&[
        "configuration",
        "secure (exact)",
        "Cor 4-3 proof",
        "expected",
    ]);
    t.row(&[
        "unconstrained".into(),
        yes(p.holds(&m, &Phi::True)?),
        "-".into(),
        "no".into(),
    ]);
    let proof = p.prove(&m, &phi)?;
    t.row(&[
        "fixed secure rights".into(),
        yes(p.holds(&m, &phi)?),
        yes(proof.is_proved()),
        "yes".into(),
    ]);
    let leaky = sd_matrix::MatrixBuilder::new()
        .subject("u")
        .file("low", 2)
        .file("high", 2)
        .with_dynamic_classification("high", 1)
        .build()?;
    let lp = sd_matrix::SecurityPolicy::new(&leaky, &[("low", 0), ("high", 1)], 0)?;
    let lphi = lp.secure_configuration(&leaky)?;
    let lproof = lp.prove(&leaky, &lphi)?;
    t.row(&[
        "varying classification (§7.3)".into(),
        yes(lp.holds(&leaky, &lphi)?),
        yes(lproof.is_proved()),
        "no (covert path)".into(),
    ]);
    print!("{}", t.render());
    Ok(())
}

/// E15 (§7.4): quantitative measures on the mod adder.
fn e15_bits() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== E15 (§7.4): bits transmitted by β ← (α1 + α2) mod 2^k ==");
    let mut t = Table::new(&[
        "k",
        "b({α1,α2}→β) equivoc.",
        "b(α1→β) equivoc.",
        "b(α1→β) held-const",
        "interference",
    ]);
    for k in [3u32, 5, 7] {
        let sys = examples::mod_adder_system(k)?;
        let u = sys.universe();
        let a1 = u.obj("a1")?;
        let a2 = u.obj("a2")?;
        let b = u.obj("beta")?;
        let d = Dist::uniform(&sys, &Phi::True)?;
        let h = History::single(OpId(0));
        let pair = ObjSet::from_iter([a1, a2]);
        let both = sd_info::bits_equivocation(&sys, &d, &pair, b, &h)?;
        let single = sd_info::bits_equivocation(&sys, &d, &ObjSet::singleton(a1), b, &h)?;
        let held = sd_info::bits_held_constant(&sys, &d, a1, b, &h)?;
        let interf = sd_info::interference(
            &sys,
            &d,
            &ObjSet::singleton(a1),
            &ObjSet::singleton(a2),
            b,
            &h,
        )?;
        t.row(&[
            k.to_string(),
            format!("{both:.3}"),
            format!("{single:.3}"),
            format!("{held:.3}"),
            format!("{interf:.3}"),
        ]);
    }
    print!("{}", t.render());
    println!(
        "paper (k=7): 7 bits from the pair; 0 bits (equivocation) / 7 bits (held-constant) from α1"
    );
    Ok(())
}

/// E16 (§1.8): noise lowers covert-channel bandwidth.
fn e16_channel() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== E16 (§1.8): covert-channel capacity under noise (Blahut–Arimoto) ==");
    let mut t = Table::new(&["crossover ε", "capacity (bits/use)", "closed form 1 − H(ε)"]);
    for eps in [0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5] {
        let ch = sd_info::Channel::bsc(eps)?;
        let (cap, _iters, _) = ch.capacity(1e-9, 10_000)?;
        let closed = 1.0 - sd_info::binary_entropy(eps);
        t.row(&[
            format!("{eps:.2}"),
            format!("{cap:.6}"),
            format!("{closed:.6}"),
        ]);
    }
    print!("{}", t.render());
    println!("paper: enough noise makes the user→disk bandwidth \"sufficiently low\"");
    Ok(())
}

/// E17 (Thms 2-1/2-6): set sources decompose under autonomous φ.
fn e17_set_sources() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== E17 (Thm 2-1/2-6): set sources have individual members ==");
    let sys = examples::mod_adder_system(2)?;
    let u = sys.universe();
    let a1 = u.obj("a1")?;
    let a2 = u.obj("a2")?;
    let b = u.obj("beta")?;
    let pair = ObjSet::from_iter([a1, a2]);
    let set_dep = sd_core::Query::new(Phi::True, pair.clone())
        .beta(b)
        .run_on(&sys)?
        .into_witness();
    let single1 = sd_core::Query::new(Phi::True, ObjSet::singleton(a1).clone())
        .beta(b)
        .run_on(&sys)?
        .into_witness();
    let single2 = sd_core::Query::new(Phi::True, ObjSet::singleton(a2).clone())
        .beta(b)
        .run_on(&sys)?
        .into_witness();
    println!(
        "{{α1,α2}} ▷ β: {}; α1 ▷ β: {}; α2 ▷ β: {} (Thm 2-1: at least one member transmits)",
        yes(set_dep.is_some()),
        yes(single1.is_some()),
        yes(single2.is_some()),
    );
    Ok(())
}

/// E18 (§7.2): Inferential and Direct Dependency.
fn e18_inferential() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== E18 (§7.2): Inferential and Direct Dependency ==");
    use sd_core::inferential;
    let mut t = Table::new(&[
        "system / φ",
        "source",
        "SD",
        "inferential",
        "direct",
        "paper",
    ]);
    // β ← α1 under φ: α1 = α2 — the §5.2 example.
    let sys = examples::alpha12_copy_system(3)?;
    let u = sys.universe();
    let a1 = u.obj("a1")?;
    let a2 = u.obj("a2")?;
    let b = u.obj("beta")?;
    let phi = Phi::expr(Expr::var(a1).eq(Expr::var(a2)));
    let h = History::single(OpId(0));
    for (name, src) in [("α1", a1), ("α2", a2)] {
        let s = ObjSet::singleton(src);
        let sd = sd_core::depend::strongly_depends_after(&sys, &phi, &s, b, &h)?.is_some();
        let inf = inferential::inferentially_depends(&sys, &phi, &s, b, &h)?.is_some();
        let dir = inferential::directly_depends_after(&sys, &phi, &s, b, &h)?.is_some();
        let expect = if src == a1 {
            "SD blind; inf+dir see it"
        } else {
            "only inferential (via φ)"
        };
        t.row(&[
            "β←α1, φ: α1=α2".into(),
            name.into(),
            yes(sd),
            yes(inf),
            yes(dir),
            expect.into(),
        ]);
    }
    // The adder: contingent transmission.
    let adder = examples::mod_adder_system(2)?;
    let au = adder.universe();
    let aa1 = au.obj("a1")?;
    let ab = au.obj("beta")?;
    let s = ObjSet::singleton(aa1);
    let sd = sd_core::depend::strongly_depends_after(&adder, &Phi::True, &s, ab, &h)?.is_some();
    let inf = inferential::inferentially_depends(&adder, &Phi::True, &s, ab, &h)?.is_some();
    let dir = inferential::directly_depends_after(&adder, &Phi::True, &s, ab, &h)?.is_some();
    t.row(&[
        "β←(α1+α2) mod 4, tt".into(),
        "α1".into(),
        yes(sd),
        yes(inf),
        yes(dir),
        "SD sees contingent; inf does not".into(),
    ]);
    print!("{}", t.render());
    Ok(())
}

/// E19 (§7.3): mechanism audit.
fn e19_mechanisms() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== E19 (§7.3): mechanisms and covert paths ==");
    use sd_core::mechanism::{added_paths, Mechanism};
    use std::sync::Arc;
    let mk = || {
        sd_core::Universe::new(vec![
            ("alpha".into(), sd_core::Domain::int_range(0, 1).unwrap()),
            ("beta".into(), sd_core::Domain::int_range(0, 1).unwrap()),
            ("tmp".into(), sd_core::Domain::int_range(0, 1).unwrap()),
        ])
        .unwrap()
    };
    let ub = mk();
    let (a, b, tmp) = (ub.obj("alpha")?, ub.obj("beta")?, ub.obj("tmp")?);
    let base = sd_core::System::new(
        ub,
        vec![
            sd_core::Op::from_cmd("copy", sd_core::Cmd::assign(b, Expr::var(a))),
            sd_core::Op::from_cmd("reset", sd_core::Cmd::assign(tmp, Expr::int(0))),
        ],
    );
    let ua = mk();
    let (aa, ab2, atmp) = (ua.obj("alpha")?, ua.obj("beta")?, ua.obj("tmp")?);
    let augmented = sd_core::System::new(
        ua,
        vec![
            sd_core::Op::from_cmd(
                "copy_cached",
                sd_core::Cmd::Seq(vec![
                    sd_core::Cmd::assign(ab2, Expr::var(aa)),
                    sd_core::Cmd::If(
                        Expr::var(aa).eq(Expr::int(1)),
                        Box::new(sd_core::Cmd::assign(atmp, Expr::int(1))),
                        Box::new(sd_core::Cmd::assign(atmp, Expr::int(0))),
                    ),
                ]),
            ),
            sd_core::Op::from_cmd("reset", sd_core::Cmd::assign(atmp, Expr::int(0))),
        ],
    );
    let m = Mechanism {
        augmented,
        base,
        project: Arc::new(|_a, _b, s| Ok(s.clone())),
        realize: vec![History::single(OpId(0)), History::single(OpId(1))],
        visible: vec![(aa, a), (ab2, b), (atmp, tmp)],
    };
    let sim = m.check_simulation();
    let added = added_paths(&m, &Phi::True, &Phi::True)?;
    println!(
        "caching mechanism: simulation {} (expected: fails); covert paths added: {} (expected: α → tmp)",
        if sim.is_ok() { "passes" } else { "fails" },
        added.len()
    );
    Ok(())
}

/// P3: static Denning baseline vs exact semantics, precision sweep.
/// P2: interpreted vs compiled pair-BFS engines. Prints the comparison
/// table and emits `BENCH_pair_bfs.json` (workload parameters, wall
/// times, visited-pair counts) for the committed record.
fn p2_pair_bfs() -> Result<(), Box<dyn std::error::Error>> {
    use sd_core::{CompileBudget, Engine};

    println!("\n== P2: pair-BFS engines — interpreted vs compiled tables ==");
    let budget = CompileBudget::default();

    // (family, system, φ) — the same workloads as benches/pair_bfs.rs.
    let mut cases: Vec<(String, sd_core::System, Phi, &str, &str)> = Vec::new();
    for (n, k) in [(4usize, 2i64), (5, 3)] {
        cases.push((
            format!("random n={n} k={k}"),
            sd_bench::workloads::random_system(n, k, 4, 7)?,
            Phi::True,
            "x0",
            "last",
        ));
    }
    for (n, d) in [(4usize, 2i64), (5, 2), (6, 2), (6, 3)] {
        let (sys, phi) = sd_bench::workloads::pointer_chain_pinned(n, d)?;
        cases.push((format!("pointer-chain n={n} d={d}"), sys, phi, "o0", "last"));
    }

    // Wall time for one `depends_with_stats` call: median of `reps`
    // runs, where `reps` adapts so fast cases are measured stably and
    // slow ones are not run to death.
    let time_one = |sys: &sd_core::System,
                    phi: &Phi,
                    a: &ObjSet,
                    beta: sd_core::ObjId,
                    engine: Engine,
                    budget: &CompileBudget|
     -> Result<(f64, sd_core::SearchStats, bool), sd_core::Error> {
        let mut samples = Vec::new();
        let (stats, witness) = loop {
            let t = Instant::now();
            let out = sd_core::Query::new(phi.clone(), a.clone())
                .beta(beta)
                .engine(engine)
                .budget(*budget)
                .run_on(sys)?;
            let s = out.stats.expect("exact queries carry stats");
            let w = out.into_witness();
            samples.push(t.elapsed().as_secs_f64() * 1e3);
            let done = samples.len() >= 5 || (samples.len() >= 2 && samples[0] > 200.0);
            if done {
                break (s, w.is_some());
            }
        };
        samples.sort_by(|a, b| a.total_cmp(b));
        Ok((samples[samples.len() / 2], stats, witness))
    };

    let mut t = Table::new(&[
        "workload",
        "states",
        "ops",
        "engine",
        "visited pairs",
        "wall ms",
        "speedup",
    ]);
    let mut json_rows = Vec::new();
    for (name, sys, phi, src, _beta) in &cases {
        let u = sys.universe();
        let a = ObjSet::singleton(u.obj(src)?);
        let beta = u.objects().last().expect("non-empty universe");
        let states = sys.state_count()?;
        let ops = sys.num_ops();
        let mut interp_ms = None;
        for engine in [Engine::Interpreted, Engine::Auto] {
            let (ms, stats, witness) = time_one(sys, phi, &a, beta, engine, &budget)?;
            let speedup = match (engine, interp_ms) {
                (Engine::Interpreted, _) => {
                    interp_ms = Some(ms);
                    "1.00x (ref)".into()
                }
                (_, Some(reference)) => format!("{:.2}x", reference / ms),
                _ => "-".into(),
            };
            t.row(&[
                name.clone(),
                states.to_string(),
                ops.to_string(),
                stats.engine.into(),
                stats.visited_pairs.to_string(),
                format!("{ms:.3}"),
                speedup,
            ]);
            json_rows.push(format!(
                concat!(
                    "    {{\"workload\": {:?}, \"states\": {}, \"ops\": {}, ",
                    "\"engine\": {:?}, \"visited_pairs\": {}, \"levels\": {}, ",
                    "\"wall_ms\": {:.3}, \"witness\": {}}}"
                ),
                name, states, ops, stats.engine, stats.visited_pairs, stats.levels, ms, witness
            ));
        }
    }
    print!("{}", t.render());
    println!("expected: compiled ≥10x faster on the pointer-chain family at n ≥ 6");

    let json = format!(
        "{{\n  \"benchmark\": \"pair_bfs\",\n  \"unit\": \"wall_ms\",\n  \"rows\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    std::fs::write("BENCH_pair_bfs.json", json)?;
    println!("wrote BENCH_pair_bfs.json");
    Ok(())
}

/// P5: prover workloads — the pre-Oracle sequential sweeps (one fresh
/// compile-and-search per cylinder class / cover piece) vs the shared
/// compiled Oracle with parallel kernels. Prints the comparison table and
/// emits `BENCH_provers.json` for the committed record.
fn p5_provers() -> Result<(), Box<dyn std::error::Error>> {
    use sd_core::cover::PieceStrategy;
    use sd_core::{solve, CompileBudget, Engine, StateSet};

    println!("\n== P5: prover engines — sequential per-call vs shared Oracle ==");
    let budget = CompileBudget::default();
    let median = |mut samples: Vec<f64>| -> f64 {
        samples.sort_by(|a, b| a.total_cmp(b));
        samples[samples.len() / 2]
    };
    // Adaptive repetition: fast configurations get 5 samples, slow ones
    // are not run to death.
    let enough = |samples: &[f64]| samples.len() >= 5 || (samples.len() >= 2 && samples[0] > 500.0);

    let mut t = Table::new(&[
        "workload",
        "states",
        "units",
        "sequential ms",
        "oracle ms",
        "speedup",
        "agree",
    ]);
    let mut json_rows = Vec::new();

    // Maximal-solution sweep: every `=A=` cylinder class must be decided.
    // Two-object source sets keep the per-class pair searches non-trivial.
    // Guarded-copy rows show the gain on thin operation bodies; mixing
    // rows (wide modular-sum bodies, isolated sink, exhaustive "no" per
    // class) show the regime the Oracle exists for — per-call row
    // re-interpretation dominates the sequential path there.
    let solve_configs: Vec<(String, sd_core::System)> = vec![
        (
            "maximal solution guarded n=7 k=3".into(),
            sd_bench::workloads::random_system(7, 3, 6, 11)?,
        ),
        (
            "maximal solution mixing n=7 k=3".into(),
            sd_bench::workloads::mixing_system(7, 3, 4)?,
        ),
        (
            "maximal solution mixing n=6 k=4".into(),
            sd_bench::workloads::mixing_system(6, 4, 4)?,
        ),
    ];
    for (name, sys) in solve_configs {
        let u = sys.universe();
        let mut sources = ObjSet::singleton(u.obj("x0")?);
        sources.insert(u.obj("x1")?);
        let sink = u.objects().last().expect("non-empty universe");
        let ns = sys.state_count()?;
        let n_classes = sd_core::depend::classes(&sys, &Phi::True, &sources)?.len();

        // Pre-Oracle sequential path, exactly as the seed implemented it:
        // enumerate the `=A=` classes as decoded states, then one full
        // `depends` call — fresh compile, fresh search state — per class.
        let mut samples = Vec::new();
        let seq_solution = loop {
            let t0 = Instant::now();
            let mut sol = StateSet::new(ns);
            for class in sd_core::depend::classes(&sys, &Phi::True, &sources)? {
                let mut cyl = StateSet::new(ns);
                for s in &class {
                    cyl.insert(s.encode(u));
                }
                let phi_c = Phi::from_set(cyl.clone());
                if sd_core::Query::new(phi_c.clone(), sources.clone())
                    .beta(sink)
                    .engine(Engine::Auto)
                    .budget(budget)
                    .run_on(&sys)?
                    .into_witness()
                    .is_none()
                {
                    sol.union_with(&cyl);
                }
            }
            samples.push(t0.elapsed().as_secs_f64() * 1e3);
            if enough(&samples) {
                break sol;
            }
        };
        let seq_ms = median(samples);

        let mut samples = Vec::new();
        let (oracle_solution, compiles) = loop {
            let t0 = Instant::now();
            let (phi_max, stats) =
                solve::unique_maximal_independent_solution_stats(&sys, &sources, sink)?;
            samples.push(t0.elapsed().as_secs_f64() * 1e3);
            if enough(&samples) {
                break (phi_max, stats.compiles);
            }
        };
        let oracle_ms = median(samples);
        let agree = oracle_solution.sat(&sys)? == seq_solution && compiles == 1;

        t.row(&[
            name.clone(),
            ns.to_string(),
            format!("{n_classes} classes"),
            format!("{seq_ms:.3}"),
            format!("{oracle_ms:.3}"),
            format!("{:.2}x", seq_ms / oracle_ms),
            yes(agree),
        ]);
        json_rows.push(format!(
            concat!(
                "    {{\"workload\": {:?}, \"states\": {}, \"classes\": {}, ",
                "\"sequential_ms\": {:.3}, \"oracle_ms\": {:.3}, ",
                "\"speedup\": {:.2}, \"agree\": {}}}"
            ),
            name,
            ns,
            n_classes,
            seq_ms,
            oracle_ms,
            seq_ms / oracle_ms,
            agree
        ));
    }

    // Separation-of-Variety sweep: one piece proof per cover element.
    let sov_configs: Vec<(String, i64, sd_core::System)> = vec![
        (
            "separation of variety guarded n=6 k=3".into(),
            3,
            sd_bench::workloads::random_system(6, 3, 5, 11)?,
        ),
        (
            "separation of variety mixing n=7 k=3".into(),
            3,
            sd_bench::workloads::mixing_system(7, 3, 4)?,
        ),
    ];
    for (name, k, sys) in sov_configs {
        let u = sys.universe();
        let ids: Vec<_> = u.objects().collect();
        let a = ObjSet::singleton(ids[0]);
        let beta = *ids.last().expect("non-empty universe");
        let ns = sys.state_count()?;
        // Split on x1 ∧ x2 jointly so the cover has k² pieces, each
        // A-independent, together covering Σ.
        let (x1, x2) = (ids[1], ids[2]);
        let cover: Vec<Phi> = (0..k)
            .flat_map(|v1| {
                (0..k).map(move |v2| {
                    Phi::expr(
                        Expr::var(x1)
                            .eq(Expr::int(v1))
                            .and(Expr::var(x2).eq(Expr::int(v2))),
                    )
                })
            })
            .collect();

        // Pre-Oracle sequential path, as the seed implemented Thm 4-5:
        // per-piece independence checks, the coverage check, then one
        // fresh exact search per piece.
        let mut samples = Vec::new();
        let seq_proved = loop {
            let t0 = Instant::now();
            let mut proved = true;
            'seq: {
                for piece in &cover {
                    if !sd_core::classify::is_independent(&sys, piece, &a)? {
                        proved = false;
                        break 'seq;
                    }
                }
                let mut union = StateSet::new(ns);
                for piece in &cover {
                    union.union_with(&piece.sat(&sys)?);
                }
                if union.count() != ns {
                    proved = false;
                    break 'seq;
                }
                for piece in &cover {
                    let conj = Phi::True.and(piece.clone());
                    if sd_core::Query::new(conj.clone(), a.clone())
                        .beta(beta)
                        .engine(Engine::Auto)
                        .budget(budget)
                        .run_on(&sys)?
                        .into_witness()
                        .is_some()
                    {
                        proved = false;
                        break 'seq;
                    }
                }
            }
            samples.push(t0.elapsed().as_secs_f64() * 1e3);
            if enough(&samples) {
                break proved;
            }
        };
        let seq_ms = median(samples);

        let mut samples = Vec::new();
        let oracle_proved = loop {
            let t0 = Instant::now();
            let out = sd_core::cover::prove_separation_of_variety(
                &sys,
                &Phi::True,
                &cover,
                &a,
                beta,
                PieceStrategy::ExactBfs,
            )?;
            samples.push(t0.elapsed().as_secs_f64() * 1e3);
            if enough(&samples) {
                break out.is_proved();
            }
        };
        let oracle_ms = median(samples);
        let agree = seq_proved == oracle_proved;

        t.row(&[
            name.clone(),
            ns.to_string(),
            format!("{} pieces", cover.len()),
            format!("{seq_ms:.3}"),
            format!("{oracle_ms:.3}"),
            format!("{:.2}x", seq_ms / oracle_ms),
            yes(agree),
        ]);
        json_rows.push(format!(
            concat!(
                "    {{\"workload\": {:?}, \"states\": {}, \"pieces\": {}, ",
                "\"sequential_ms\": {:.3}, \"oracle_ms\": {:.3}, ",
                "\"speedup\": {:.2}, \"agree\": {}}}"
            ),
            name,
            ns,
            cover.len(),
            seq_ms,
            oracle_ms,
            seq_ms / oracle_ms,
            agree
        ));
    }

    print!("{}", t.render());
    println!("expected: oracle ≥5x on the maximal-solution workloads with ≥64 classes");

    let json = format!(
        "{{\n  \"benchmark\": \"provers\",\n  \"unit\": \"wall_ms\",\n  \"rows\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    std::fs::write("BENCH_provers.json", json)?;
    println!("wrote BENCH_provers.json");
    Ok(())
}

fn p3_static_vs_semantic() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== P3: static transitive baseline vs exact strong dependency ==");
    let mut t = Table::new(&[
        "system",
        "static flows",
        "semantic flows",
        "false+",
        "precision",
        "sound",
    ]);
    let cases: Vec<(&str, sd_core::System)> = vec![
        ("copy", examples::copy_system(3)?),
        ("guarded copy", examples::guarded_copy_system(2)?),
        ("non-transitive (§4.4)", examples::nontransitive_system(2)?),
        ("flag copy (§3.3)", examples::flag_copy_system(2)?),
        ("m1/m2 (§5.5)", examples::m1m2_system(2)?),
    ];
    for (name, sys) in cases {
        let r = sd_flow::compare(&sys, &Phi::True)?;
        t.row(&[
            name.into(),
            r.static_flows.len().to_string(),
            r.semantic_flows.len().to_string(),
            r.false_positives.len().to_string(),
            format!("{:.2}", r.precision()),
            yes(r.sound()),
        ]);
    }
    print!("{}", t.render());
    println!("expected: soundness everywhere; precision < 1 exactly where the paper predicts");

    // The Millen-style constraint-aware refinement (§1.5) on the
    // non-transitive system: the {q, ¬q} cover removes the false α → β
    // path that the plain baseline cannot.
    let sys = examples::nontransitive_system(2)?;
    let u = sys.universe();
    let a = u.obj("alpha")?;
    let b = u.obj("beta")?;
    let q = u.obj("q")?;
    let cover = vec![Phi::expr(Expr::var(q)), Phi::expr(Expr::var(q).not())];
    let refined = sd_flow::cover_sensitive_flows(&sys, &Phi::True, &cover)?;
    let baseline = sd_flow::transitive_flows(&sys)?;
    println!(
        "Millen refinement over {{q, ¬q}}: α → β reported = {} (baseline: {}; exact: no)",
        yes(refined.contains(&(a, b))),
        yes(baseline.contains(&(a, b))),
    );
    Ok(())
}
