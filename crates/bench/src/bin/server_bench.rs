//! Load generator for the sd-server query service.
//!
//! Spawns an in-process `sdserved` on loopback and drives it with real
//! TCP clients through two phases per concurrency level:
//!
//! - **cold**: a fixed pool of distinct queries, partitioned across the
//!   clients, so every request misses the result cache and runs a pair
//!   search on the shared Oracle;
//! - **warm**: every client replays the *whole* pool, so after the cold
//!   phase each request is a byte-identical cache replay.
//!
//! The cold/warm throughput ratio is the headline number: it bounds
//! what the result cache buys a repeated-query workload over the wire.
//! Writes `BENCH_server.json`; run with
//! `cargo run -p sd-bench --bin server_bench --release`.

use std::fmt::Write as _;
use std::time::Instant;

use sd_server::{Client, Config, QueryReq, ServeHandle, SystemDesc};

struct PhaseRow {
    phase: &'static str,
    concurrency: usize,
    requests: u64,
    wall_ms: f64,
    qps: f64,
    hits: u64,
    misses: u64,
}

fn server() -> ServeHandle {
    let cfg = Config {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        queue_depth: 256,
        cache_cap: 4096,
        ..Config::default()
    };
    ServeHandle::spawn(cfg).expect("bind loopback")
}

/// The distinct-query pool: every (source-subset, β) depends pair and
/// every source-subset sinks query, over two registered systems, with a
/// couple of bounded variants thrown in (the bound splits the cache
/// key, so each is a distinct cacheable query).
fn query_pool(client: &mut Client) -> Vec<QueryReq> {
    let mut pool = Vec::new();
    let systems: [(SystemDesc, &[&str]); 2] = [
        (
            SystemDesc::Example {
                name: "flag_copy".into(),
                params: vec![3],
            },
            &["alpha", "beta", "flag", "x"],
        ),
        (
            SystemDesc::Example {
                name: "guarded_copy".into(),
                params: vec![3],
            },
            &["alpha", "beta", "m"],
        ),
    ];
    for (desc, objects) in systems {
        let key = client.register(desc).expect("register");
        for mask in 1u32..(1 << objects.len()) {
            let a: Vec<String> = objects
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, n)| n.to_string())
                .collect();
            pool.push(QueryReq::sinks(key, a.clone()));
            for beta in objects {
                let mut q = QueryReq::depends(key, a.clone(), *beta);
                pool.push(q.clone());
                q.bound = Some(2);
                pool.push(q);
            }
        }
    }
    pool
}

/// Runs one phase: each client thread issues its slice of `work`
/// sequentially; returns total requests and wall time.
fn run_phase(addr: std::net::SocketAddr, work: &[Vec<QueryReq>]) -> (u64, f64) {
    let start = Instant::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = work
            .iter()
            .map(|slice| {
                s.spawn(move || {
                    let mut c = Client::connect(addr).expect("connect");
                    for req in slice {
                        c.query(req.clone()).expect("query succeeds");
                    }
                    slice.len() as u64
                })
            })
            .collect();
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        (total, start.elapsed().as_secs_f64() * 1e3)
    })
}

fn main() {
    let mut rows: Vec<PhaseRow> = Vec::new();
    for concurrency in [1usize, 2, 4, 8] {
        let handle = server();
        let addr = handle.local_addr();
        let mut c = Client::connect(addr).expect("connect");
        let pool = query_pool(&mut c);

        // Cold: the pool partitioned across clients — every query is
        // distinct, every request is a miss.
        let cold_work: Vec<Vec<QueryReq>> = (0..concurrency)
            .map(|i| pool.iter().skip(i).step_by(concurrency).cloned().collect())
            .collect();
        let (cold_reqs, cold_ms) = run_phase(addr, &cold_work);
        let cold_stats = handle.cache_stats();
        rows.push(PhaseRow {
            phase: "cold",
            concurrency,
            requests: cold_reqs,
            wall_ms: cold_ms,
            qps: f64::from(cold_reqs as u32) / (cold_ms / 1e3),
            hits: cold_stats.hits,
            misses: cold_stats.misses,
        });

        // Warm: every client replays the whole pool — all cache hits.
        let warm_work: Vec<Vec<QueryReq>> = (0..concurrency).map(|_| pool.clone()).collect();
        let (warm_reqs, warm_ms) = run_phase(addr, &warm_work);
        let warm_stats = handle.cache_stats();
        rows.push(PhaseRow {
            phase: "warm",
            concurrency,
            requests: warm_reqs,
            wall_ms: warm_ms,
            qps: f64::from(warm_reqs as u32) / (warm_ms / 1e3),
            hits: warm_stats.hits - cold_stats.hits,
            misses: warm_stats.misses - cold_stats.misses,
        });
        handle.shutdown();
        println!(
            "concurrency {concurrency}: cold {:.0} q/s, warm {:.0} q/s ({}x)",
            rows[rows.len() - 2].qps,
            rows[rows.len() - 1].qps,
            (rows[rows.len() - 1].qps / rows[rows.len() - 2].qps).round(),
        );
    }

    let mut json =
        String::from("{\n  \"benchmark\": \"server\",\n  \"unit\": \"qps\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"phase\": \"{}\", \"concurrency\": {}, \"requests\": {}, \"wall_ms\": {:.3}, \"qps\": {:.0}, \"cache_hits\": {}, \"cache_misses\": {}}}{}",
            r.phase,
            r.concurrency,
            r.requests,
            r.wall_ms,
            r.qps,
            r.hits,
            r.misses,
            if i + 1 == rows.len() { "" } else { "," },
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_server.json", &json).expect("write BENCH_server.json");
    println!("wrote BENCH_server.json");
}
