//! Load generator for the sd-server query service.
//!
//! Spawns an in-process `sdserved` on loopback and drives it with real
//! TCP clients through two phases per concurrency level:
//!
//! - **cold**: a fixed pool of distinct queries, partitioned across the
//!   clients, so every request misses the result cache and runs a pair
//!   search on the shared Oracle;
//! - **warm**: every client replays the *whole* pool, so after the cold
//!   phase each request is a byte-identical cache replay.
//!
//! The cold/warm throughput ratio is the headline number: it bounds
//! what the result cache buys a repeated-query workload over the wire.
//! Each row also reports request latency percentiles twice — as seen
//! by the clients (round-trip) and from the server's own histograms
//! (parse-to-write) — so queueing and loopback time are separable.
//!
//! A final A/B pass times the warm path with metrics enabled and
//! disabled (`Config::metrics`) and writes the observed overhead to
//! `BENCH_metrics_overhead.json`. Writes `BENCH_server.json`; run with
//! `cargo run -p sd-bench --bin server_bench --release`.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use sd_core::HistogramSnapshot;
use sd_server::{Client, Config, Method, QueryReq, ServeHandle, SystemDesc};

struct PhaseRow {
    phase: &'static str,
    concurrency: usize,
    requests: u64,
    wall_ms: f64,
    qps: f64,
    hits: u64,
    misses: u64,
    /// Client-observed round-trip percentiles, ns: (p50, p95, p99).
    client_ns: (u64, u64, u64),
    /// Server-side (histogram) percentiles, ns: (p50, p95, p99).
    server_ns: (u64, u64, u64),
}

fn server(metrics: bool) -> ServeHandle {
    let cfg = Config {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        queue_depth: 256,
        cache_cap: 4096,
        metrics,
        ..Config::default()
    };
    ServeHandle::spawn(cfg).expect("bind loopback")
}

/// The distinct-query pool: every (source-subset, β) depends pair and
/// every source-subset sinks query, over two registered systems, with a
/// couple of bounded variants thrown in (the bound splits the cache
/// key, so each is a distinct cacheable query).
fn query_pool(client: &mut Client) -> Vec<QueryReq> {
    let mut pool = Vec::new();
    let systems: [(SystemDesc, &[&str]); 2] = [
        (
            SystemDesc::Example {
                name: "flag_copy".into(),
                params: vec![3],
            },
            &["alpha", "beta", "flag", "x"],
        ),
        (
            SystemDesc::Example {
                name: "guarded_copy".into(),
                params: vec![3],
            },
            &["alpha", "beta", "m"],
        ),
    ];
    for (desc, objects) in systems {
        let key = client.register(desc).expect("register");
        for mask in 1u32..(1 << objects.len()) {
            let a: Vec<String> = objects
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, n)| n.to_string())
                .collect();
            pool.push(QueryReq::sinks(key, a.clone()));
            for beta in objects {
                let mut q = QueryReq::depends(key, a.clone(), *beta);
                pool.push(q.clone());
                q.bound = Some(2);
                pool.push(q);
            }
        }
    }
    pool
}

/// Runs one phase: each client thread issues its slice of `work`
/// sequentially; returns total requests, wall time, and every
/// client-observed round-trip latency in ns.
fn run_phase(addr: std::net::SocketAddr, work: &[Vec<QueryReq>]) -> (u64, f64, Vec<u64>) {
    let start = Instant::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = work
            .iter()
            .map(|slice| {
                s.spawn(move || {
                    let mut c = Client::connect(addr).expect("connect");
                    let mut lat = Vec::with_capacity(slice.len());
                    for req in slice {
                        let t = Instant::now();
                        c.query(req.clone()).expect("query succeeds");
                        lat.push(t.elapsed().as_nanos() as u64);
                    }
                    lat
                })
            })
            .collect();
        let mut lat: Vec<u64> = Vec::new();
        for h in handles {
            lat.extend(h.join().unwrap());
        }
        (lat.len() as u64, start.elapsed().as_secs_f64() * 1e3, lat)
    })
}

/// Exact percentiles over the raw client latencies (nearest-rank).
fn client_percentiles(lat: &mut [u64]) -> (u64, u64, u64) {
    if lat.is_empty() {
        return (0, 0, 0);
    }
    lat.sort_unstable();
    let at = |num: usize, den: usize| {
        let rank = (lat.len() * num).div_ceil(den).clamp(1, lat.len());
        lat[rank - 1]
    };
    (at(50, 100), at(95, 100), at(99, 100))
}

/// Merges per-method snapshots into one and reads p50/p95/p99 off the
/// combined buckets — the server-side view of the same phase.
fn server_percentiles(parts: &[HistogramSnapshot]) -> (u64, u64, u64) {
    let mut merged: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    let mut count = 0u64;
    let mut sum = 0u64;
    for s in parts {
        count += s.count;
        sum = sum.wrapping_add(s.sum);
        for &(upper, n) in &s.buckets {
            *merged.entry(upper).or_insert(0) += n;
        }
    }
    let snap = HistogramSnapshot {
        count,
        sum,
        buckets: merged.into_iter().collect(),
    };
    (
        snap.quantile(50, 100),
        snap.quantile(95, 100),
        snap.quantile(99, 100),
    )
}

/// Server-side percentiles for one phase: the cold phase lands in the
/// `cold=true` histograms and the warm phase in `cold=false`, so the
/// two phases separate cleanly without resetting anything.
fn phase_server_ns(handle: &ServeHandle, cold: bool) -> (u64, u64, u64) {
    // Observation happens after the response is written; give the last
    // in-flight observes a moment to land before snapshotting.
    std::thread::sleep(Duration::from_millis(50));
    let m = handle.metrics();
    server_percentiles(&[
        m.duration_snapshot(Method::Depends, cold),
        m.duration_snapshot(Method::Sinks, cold),
    ])
}

/// The metrics-overhead A/B: identical warm-path runs against a server
/// with metrics on and off; best-of-N throughput on each side so the
/// comparison is between the two fast paths, not between noise floors.
fn overhead_ab(pool_passes: usize, repeats: usize) -> (f64, f64) {
    let concurrency = 4;
    let mut best = [0f64, 0f64];
    for (slot, metrics_on) in [(0usize, true), (1usize, false)] {
        let handle = server(metrics_on);
        let addr = handle.local_addr();
        let mut c = Client::connect(addr).expect("connect");
        let pool = query_pool(&mut c);
        // Fill the cache so every timed request is a warm replay.
        let cold: Vec<Vec<QueryReq>> = (0..concurrency)
            .map(|i| pool.iter().skip(i).step_by(concurrency).cloned().collect())
            .collect();
        run_phase(addr, &cold);
        let warm: Vec<Vec<QueryReq>> = (0..concurrency)
            .map(|_| {
                std::iter::repeat_with(|| pool.clone())
                    .take(pool_passes)
                    .flatten()
                    .collect()
            })
            .collect();
        for _ in 0..repeats {
            let (reqs, ms, _) = run_phase(addr, &warm);
            let qps = f64::from(reqs as u32) / (ms / 1e3);
            if qps > best[slot] {
                best[slot] = qps;
            }
        }
        handle.shutdown();
    }
    (best[0], best[1])
}

fn main() {
    let mut rows: Vec<PhaseRow> = Vec::new();
    for concurrency in [1usize, 2, 4, 8] {
        let handle = server(true);
        let addr = handle.local_addr();
        let mut c = Client::connect(addr).expect("connect");
        let pool = query_pool(&mut c);

        // Cold: the pool partitioned across clients — every query is
        // distinct, every request is a miss.
        let cold_work: Vec<Vec<QueryReq>> = (0..concurrency)
            .map(|i| pool.iter().skip(i).step_by(concurrency).cloned().collect())
            .collect();
        let (cold_reqs, cold_ms, mut cold_lat) = run_phase(addr, &cold_work);
        let cold_stats = handle.cache_stats();
        rows.push(PhaseRow {
            phase: "cold",
            concurrency,
            requests: cold_reqs,
            wall_ms: cold_ms,
            qps: f64::from(cold_reqs as u32) / (cold_ms / 1e3),
            hits: cold_stats.hits,
            misses: cold_stats.misses,
            client_ns: client_percentiles(&mut cold_lat),
            server_ns: phase_server_ns(&handle, true),
        });

        // Warm: every client replays the whole pool — all cache hits.
        let warm_work: Vec<Vec<QueryReq>> = (0..concurrency).map(|_| pool.clone()).collect();
        let (warm_reqs, warm_ms, mut warm_lat) = run_phase(addr, &warm_work);
        let warm_stats = handle.cache_stats();
        rows.push(PhaseRow {
            phase: "warm",
            concurrency,
            requests: warm_reqs,
            wall_ms: warm_ms,
            qps: f64::from(warm_reqs as u32) / (warm_ms / 1e3),
            hits: warm_stats.hits - cold_stats.hits,
            misses: warm_stats.misses - cold_stats.misses,
            client_ns: client_percentiles(&mut warm_lat),
            server_ns: phase_server_ns(&handle, false),
        });
        handle.shutdown();
        let (w, c) = (&rows[rows.len() - 1], &rows[rows.len() - 2]);
        println!(
            "concurrency {concurrency}: cold {:.0} q/s, warm {:.0} q/s ({}x); \
             warm p50 client {} ns / server {} ns",
            c.qps,
            w.qps,
            (w.qps / c.qps).round(),
            w.client_ns.0,
            w.server_ns.0,
        );
    }

    let mut json =
        String::from("{\n  \"benchmark\": \"server\",\n  \"unit\": \"qps\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"phase\": \"{}\", \"concurrency\": {}, \"requests\": {}, \"wall_ms\": {:.3}, \"qps\": {:.0}, \"cache_hits\": {}, \"cache_misses\": {}, \
             \"client_p50_ns\": {}, \"client_p95_ns\": {}, \"client_p99_ns\": {}, \
             \"server_p50_ns\": {}, \"server_p95_ns\": {}, \"server_p99_ns\": {}}}{}",
            r.phase,
            r.concurrency,
            r.requests,
            r.wall_ms,
            r.qps,
            r.hits,
            r.misses,
            r.client_ns.0,
            r.client_ns.1,
            r.client_ns.2,
            r.server_ns.0,
            r.server_ns.1,
            r.server_ns.2,
            if i + 1 == rows.len() { "" } else { "," },
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_server.json", &json).expect("write BENCH_server.json");
    println!("wrote BENCH_server.json");

    let (on_qps, off_qps) = overhead_ab(4, 3);
    let overhead_pct = (off_qps - on_qps) / off_qps * 100.0;
    let ab = format!(
        "{{\n  \"benchmark\": \"server_metrics_overhead\",\n  \"phase\": \"warm\",\n  \
         \"concurrency\": 4,\n  \"metrics_on_qps\": {on_qps:.0},\n  \
         \"metrics_off_qps\": {off_qps:.0},\n  \"overhead_pct\": {overhead_pct:.2}\n}}\n"
    );
    std::fs::write("BENCH_metrics_overhead.json", &ab).expect("write BENCH_metrics_overhead.json");
    println!(
        "metrics overhead: on {on_qps:.0} q/s, off {off_qps:.0} q/s ({overhead_pct:.2}%); \
         wrote BENCH_metrics_overhead.json"
    );
}
