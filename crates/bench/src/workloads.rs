//! Parameterized workload generators for benchmarks and scaling studies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sd_core::{Cmd, Domain, Expr, Op, Result, System, Universe};

/// A random guarded-copy system: `n` objects over a `k`-valued domain and
/// `ops` operations of the shape `if x ◇ c then y ← z`, with everything
/// chosen by `seed`. All assignments copy whole objects, so the system is
/// closed over its domains by construction.
pub fn random_system(n: usize, k: i64, ops: usize, seed: u64) -> Result<System> {
    let mut rng = StdRng::seed_from_u64(seed);
    let objects = (0..n)
        .map(|i| Ok((format!("x{i}"), Domain::int_range(0, k - 1)?)))
        .collect::<Result<Vec<_>>>()?;
    let u = Universe::new(objects)?;
    let ids: Vec<_> = u.objects().collect();
    let mut op_list = Vec::with_capacity(ops);
    for i in 0..ops {
        let guard_var = ids[rng.gen_range(0..n)];
        let threshold = rng.gen_range(0..k);
        let dst = ids[rng.gen_range(0..n)];
        let src = ids[rng.gen_range(0..n)];
        let guard = if rng.gen_bool(0.5) {
            Expr::var(guard_var).lt(Expr::int(threshold))
        } else {
            Expr::var(guard_var).eq(Expr::int(threshold))
        };
        op_list.push(Op::from_cmd(
            format!("g{i}"),
            Cmd::when(guard, Cmd::assign(dst, Expr::var(src))),
        ));
    }
    Ok(System::new(u, op_list))
}

/// A chain-copy system: `x0 → x1 → … → x(n−1)`, one guarded copy per
/// hop. The exact checker must walk the whole chain; Strong Dependency
/// Induction discharges it per operation.
pub fn chain_system(n: usize, k: i64) -> Result<System> {
    let objects = (0..n)
        .map(|i| Ok((format!("x{i}"), Domain::int_range(0, k - 1)?)))
        .collect::<Result<Vec<_>>>()?;
    let u = Universe::new(objects)?;
    let ids: Vec<_> = u.objects().collect();
    let mut ops = Vec::new();
    for i in 0..n.saturating_sub(1) {
        ops.push(Op::from_cmd(
            format!("hop{i}"),
            Cmd::assign(ids[i + 1], Expr::var(ids[i])),
        ));
    }
    Ok(System::new(u, ops))
}

/// A random straight-line program over `n` int variables with `stmts`
/// assignments and occasional branch-free conditionals — the workload for
/// the static-vs-semantic comparison.
pub fn random_program(n: usize, k: i64, stmts: usize, seed: u64) -> sd_lang::Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let decls: Vec<(String, sd_lang::Type)> = (0..n)
        .map(|i| (format!("v{i}"), sd_lang::Type::Int { lo: 0, hi: k - 1 }))
        .collect();
    let var = |i: usize| sd_lang::Expr::Var(format!("v{i}"));
    let mut body = Vec::new();
    for _ in 0..stmts {
        let dst = rng.gen_range(0..n);
        let src = rng.gen_range(0..n);
        let assign = sd_lang::Stmt::Assign(format!("v{dst}"), var(src));
        if rng.gen_bool(0.4) {
            let g = rng.gen_range(0..n);
            let c = rng.gen_range(0..k);
            body.push(sd_lang::Stmt::If(
                sd_lang::Expr::Bin(
                    sd_lang::ast::BinOp::Lt,
                    Box::new(var(g)),
                    Box::new(sd_lang::Expr::Int(c)),
                ),
                vec![assign],
                vec![],
            ));
        } else {
            body.push(assign);
        }
    }
    sd_lang::Program { decls, body }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_system_is_closed_and_deterministic() {
        let a = random_system(4, 3, 5, 42).unwrap();
        a.validate().unwrap();
        let b = random_system(4, 3, 5, 42).unwrap();
        // Same seed, same behaviour on a sample state.
        let s = sd_core::State::from_indices(vec![1, 2, 0, 1]);
        for op in a.op_ids() {
            assert_eq!(a.apply(op, &s).unwrap(), b.apply(op, &s).unwrap());
        }
    }

    #[test]
    fn chain_flows_end_to_end() {
        let sys = chain_system(4, 2).unwrap();
        sys.validate().unwrap();
        let u = sys.universe();
        let first = u.obj("x0").unwrap();
        let last = u.obj("x3").unwrap();
        assert!(sd_core::reach::depends(
            &sys,
            &sd_core::Phi::True,
            &sd_core::ObjSet::singleton(first),
            last
        )
        .unwrap()
        .is_some());
        // No flow backwards.
        assert!(sd_core::reach::depends(
            &sys,
            &sd_core::Phi::True,
            &sd_core::ObjSet::singleton(last),
            first
        )
        .unwrap()
        .is_none());
    }

    #[test]
    fn random_programs_compile() {
        for seed in 0..5 {
            let p = random_program(4, 3, 6, seed);
            let c = sd_lang::compile(&p).unwrap();
            c.system.validate().unwrap();
        }
    }
}
