//! Parameterized workload generators for benchmarks and scaling studies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sd_core::{Cmd, Domain, Expr, Op, Phi, Result, System, Universe, Value};

/// A random guarded-copy system: `n` objects over a `k`-valued domain and
/// `ops` operations of the shape `if x ◇ c then y ← z`, with everything
/// chosen by `seed`. All assignments copy whole objects, so the system is
/// closed over its domains by construction.
pub fn random_system(n: usize, k: i64, ops: usize, seed: u64) -> Result<System> {
    let mut rng = StdRng::seed_from_u64(seed);
    let objects = (0..n)
        .map(|i| Ok((format!("x{i}"), Domain::int_range(0, k - 1)?)))
        .collect::<Result<Vec<_>>>()?;
    let u = Universe::new(objects)?;
    let ids: Vec<_> = u.objects().collect();
    let mut op_list = Vec::with_capacity(ops);
    for i in 0..ops {
        let guard_var = ids[rng.gen_range(0..n)];
        let threshold = rng.gen_range(0..k);
        let dst = ids[rng.gen_range(0..n)];
        let src = ids[rng.gen_range(0..n)];
        let guard = if rng.gen_bool(0.5) {
            Expr::var(guard_var).lt(Expr::int(threshold))
        } else {
            Expr::var(guard_var).eq(Expr::int(threshold))
        };
        op_list.push(Op::from_cmd(
            format!("g{i}"),
            Cmd::when(guard, Cmd::assign(dst, Expr::var(src))),
        ));
    }
    Ok(System::new(u, op_list))
}

/// A wide-bodied converging "mixing" system with a single deterministic
/// operation: one ascending sweep rewrites each of `x1 … x(n−2)` by a
/// modular sum of up to `width` *already-updated* predecessors
/// (`x_i ← (x_(i−1) + … + x_(i−width)) mod k`, sequential semantics),
/// while `x0` is never written and the last object is an isolated sink
/// that no operation reads or writes.
///
/// Three properties make this the stress case for repeated-query engines:
///
/// - **Every per-class query is an exhaustive "no".** The sink never
///   changes, so differences confined to other objects can never reach
///   it and the pair search must drain its whole frontier — no early
///   exits to hide setup costs behind.
/// - **The pair frontier dies fast.** Because each update reads only
///   already-rewritten predecessors, one sweep collapses `x1 … x(n−2)`
///   to functions of `x0` alone: state pairs differing anywhere but `x0`
///   converge within two steps, so the search visits O(roots) pairs
///   instead of a long orbit.
/// - **Successor rows are expensive to interpret.** The sweep body costs
///   ~`(n − 2) · width` AST node evaluations per state, against two
///   table lookups per compiled pair expansion. Engines that
///   re-interpret rows per query (the per-call sequential path) pay that
///   for every class's states; a shared compiled Oracle pays it once per
///   *sweep* of queries.
pub fn mixing_system(n: usize, k: i64, width: usize) -> Result<System> {
    assert!(n >= 3, "mixing_system needs a seed, a mixer, and a sink");
    let objects = (0..n)
        .map(|i| Ok((format!("x{i}"), Domain::int_range(0, k - 1)?)))
        .collect::<Result<Vec<_>>>()?;
    let u = Universe::new(objects)?;
    let ids: Vec<_> = u.objects().collect();
    let m = n - 1; // objects that mix; ids[m] is the isolated sink
    let mut sweep = Vec::with_capacity(m - 1);
    for i in 1..m {
        let mut body = Expr::var(ids[i - 1]);
        for j in 2..=width.min(i) {
            body = body.add(Expr::var(ids[i - j]));
        }
        sweep.push(Cmd::assign(ids[i], body.modulo(Expr::int(k))));
    }
    Ok(System::new(u, vec![Op::from_cmd("mix", Cmd::Seq(sweep))]))
}

/// A chain-copy system: `x0 → x1 → … → x(n−1)`, one guarded copy per
/// hop. The exact checker must walk the whole chain; Strong Dependency
/// Induction discharges it per operation.
pub fn chain_system(n: usize, k: i64) -> Result<System> {
    let objects = (0..n)
        .map(|i| Ok((format!("x{i}"), Domain::int_range(0, k - 1)?)))
        .collect::<Result<Vec<_>>>()?;
    let u = Universe::new(objects)?;
    let ids: Vec<_> = u.objects().collect();
    let mut ops = Vec::new();
    for i in 0..n.saturating_sub(1) {
        ops.push(Op::from_cmd(
            format!("hop{i}"),
            Cmd::assign(ids[i + 1], Expr::var(ids[i])),
        ));
    }
    Ok(System::new(u, ops))
}

/// The benchmark member of the §4.3 pointer-chain family: the same
/// `(data, ptr)` records and pointer-advance `δ2` as
/// [`sd_core::examples::pointer_chain_system`], but `δ1` *accumulates*
/// instead of copying — `y.data ← (y.data + x.data) mod d` when
/// `y.ptr = x`. A plain copy makes every downstream difference a verbatim
/// image of the source's, so state pairs stay cheap to enumerate;
/// accumulation decorrelates the difference pattern from the data values
/// and the reachable *pair* space dwarfs the reachable *state* space —
/// the regime the pair search actually lives in.
pub fn accumulator_chain_system(n: usize, d: i64) -> Result<System> {
    let names: Vec<String> = (0..n).map(|i| format!("o{i}")).collect();
    let mut objects = Vec::with_capacity(n);
    for name in &names {
        let mut values = Vec::new();
        for data in 0..d {
            for ptr in 0..n {
                values.push(Value::Record(vec![
                    Value::Int(data),
                    Value::Name(sd_core::ObjId::from_index(ptr)),
                ]));
            }
        }
        objects.push((
            name.clone(),
            Domain::with_fields(values, vec!["data".into(), "ptr".into()])?,
        ));
    }
    let u = Universe::new(objects)?;
    let ids: Vec<_> = u.objects().collect();
    let mut ops = Vec::new();
    for &y in &ids {
        for &x in &ids {
            if y == x {
                continue;
            }
            let y_points_x = Expr::var(y).field(1).eq(Expr::Const(Value::Name(x)));
            // a1(y, x): if y.ptr = x then y.data ← (y.data + x.data) mod d.
            ops.push(Op::from_cmd(
                format!("a1({},{})", u.name(y), u.name(x)),
                Cmd::when(
                    y_points_x.clone(),
                    Cmd::assign_field(
                        y,
                        0,
                        Expr::var(y)
                            .field(0)
                            .add(Expr::var(x).field(0))
                            .modulo(Expr::int(d)),
                    ),
                ),
            ));
            // δ2(y, x): if y.ptr = x then y.ptr ← x.ptr.
            ops.push(Op::from_cmd(
                format!("d2({},{})", u.name(y), u.name(x)),
                Cmd::when(y_points_x, Cmd::assign_field(y, 1, Expr::var(x).field(1))),
            ));
        }
    }
    Ok(System::new(u, ops))
}

/// The [`accumulator_chain_system`] pinned to one *backward* chain with an
/// isolated tail: φ requires `o0.ptr = o0`, `o_i.ptr = o_(i−1)` for
/// `1 ≤ i ≤ n−2`, and `o_(n−1).ptr = o_(n−1)`, leaving only the data
/// fields free.
///
/// Each `a1` pulls data from the pointed-to object, so `o0`'s variety
/// spreads *forward* through `o1 … o_(n−2)` — and because it accumulates,
/// any subset of those objects can end up differing, independent of the
/// underlying data values. The tail `o_(n−1)` only ever points at itself
/// (δ2 can never move a self-pointer), so `o0 ▷φ o_(n−1)` is *false* and
/// the search must exhaust the entire reachable pair space — the worst
/// case for engine throughput, with no early exit.
///
/// The constraint is returned materialised as an extensional [`Phi::Set`],
/// so Sat(φ) enumeration costs the same (near nothing) for every engine
/// and the benchmark measures pair expansion, not constraint evaluation.
///
/// The set is built *directly* rather than by evaluating a pinning
/// expression over all `(d·n)^n` states: only the `d^n` free data
/// assignments satisfy φ, and each one's mixed-radix state code follows
/// arithmetically from the per-object strides (a record's value index is
/// `data·n + ptr` by [`accumulator_chain_system`]'s construction order).
/// That keeps setup instant even when the ambient space has tens of
/// millions of states, e.g. `n = 6, d = 3`.
pub fn pointer_chain_pinned(n: usize, d: i64) -> Result<(System, Phi)> {
    let sys = accumulator_chain_system(n, d)?;
    let u = sys.universe();
    let ns = u.checked_state_count(u64::MAX as u128)?;
    let pinned_ptr = |i: usize| if i == 0 || i == n - 1 { i } else { i - 1 };
    let strides: Vec<u64> = (0..n)
        .map(|i| u.stride(sd_core::ObjId::from_index(i)) as u64)
        .collect();
    let base: u64 = strides
        .iter()
        .enumerate()
        .map(|(i, s)| s * pinned_ptr(i) as u64)
        .sum();
    let mut set = sd_core::StateSet::new(ns);
    // Odometer over the free data fields; ptr fields stay pinned.
    let mut data = vec![0u64; n];
    loop {
        let code = base
            + strides
                .iter()
                .zip(&data)
                .map(|(s, v)| s * v * n as u64)
                .sum::<u64>();
        set.insert(code);
        let mut i = 0;
        while i < n {
            data[i] += 1;
            if data[i] < d as u64 {
                break;
            }
            data[i] = 0;
            i += 1;
        }
        if i == n {
            break;
        }
    }
    Ok((sys, Phi::from_set(set)))
}

/// A random straight-line program over `n` int variables with `stmts`
/// assignments and occasional branch-free conditionals — the workload for
/// the static-vs-semantic comparison.
pub fn random_program(n: usize, k: i64, stmts: usize, seed: u64) -> sd_lang::Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let decls: Vec<(String, sd_lang::Type)> = (0..n)
        .map(|i| (format!("v{i}"), sd_lang::Type::Int { lo: 0, hi: k - 1 }))
        .collect();
    let var = |i: usize| sd_lang::Expr::Var(format!("v{i}"));
    let mut body = Vec::new();
    for _ in 0..stmts {
        let dst = rng.gen_range(0..n);
        let src = rng.gen_range(0..n);
        let assign = sd_lang::Stmt::Assign(format!("v{dst}"), var(src));
        if rng.gen_bool(0.4) {
            let g = rng.gen_range(0..n);
            let c = rng.gen_range(0..k);
            body.push(sd_lang::Stmt::If(
                sd_lang::Expr::Bin(
                    sd_lang::ast::BinOp::Lt,
                    Box::new(var(g)),
                    Box::new(sd_lang::Expr::Int(c)),
                ),
                vec![assign],
                vec![],
            ));
        } else {
            body.push(assign);
        }
    }
    sd_lang::Program { decls, body }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_system_is_closed_and_deterministic() {
        let a = random_system(4, 3, 5, 42).unwrap();
        a.validate().unwrap();
        let b = random_system(4, 3, 5, 42).unwrap();
        // Same seed, same behaviour on a sample state.
        let s = sd_core::State::from_indices(vec![1, 2, 0, 1]);
        for op in a.op_ids() {
            assert_eq!(a.apply(op, &s).unwrap(), b.apply(op, &s).unwrap());
        }
    }

    #[test]
    fn mixing_spreads_variety_but_spares_the_sink() {
        let sys = mixing_system(5, 3, 3).unwrap();
        sys.validate().unwrap();
        let u = sys.universe();
        let x0 = sd_core::ObjSet::singleton(u.obj("x0").unwrap());
        // Mixing carries x0's variety to every other mixer...
        assert!(sd_core::Query::new(sd_core::Phi::True, x0.clone())
            .beta(u.obj("x2").unwrap())
            .run_on(&sys)
            .unwrap()
            .holds());
        // ...but the isolated sink is untouched: an exhaustive "no".
        assert!(!sd_core::Query::new(sd_core::Phi::True, x0.clone())
            .beta(u.obj("x4").unwrap())
            .run_on(&sys)
            .unwrap()
            .holds());
    }

    #[test]
    fn chain_flows_end_to_end() {
        let sys = chain_system(4, 2).unwrap();
        sys.validate().unwrap();
        let u = sys.universe();
        let first = u.obj("x0").unwrap();
        let last = u.obj("x3").unwrap();
        assert!(sd_core::Query::new(
            sd_core::Phi::True,
            sd_core::ObjSet::singleton(first).clone()
        )
        .beta(last)
        .run_on(&sys)
        .unwrap()
        .holds());
        // No flow backwards.
        assert!(
            !sd_core::Query::new(sd_core::Phi::True, sd_core::ObjSet::singleton(last).clone())
                .beta(first)
                .run_on(&sys)
                .unwrap()
                .holds()
        );
    }

    #[test]
    fn pinned_pointer_chain_spreads_variety_but_spares_the_tail() {
        let (sys, phi) = pointer_chain_pinned(4, 2).unwrap();
        sys.validate().unwrap();
        let u = sys.universe();
        let o0 = sd_core::ObjSet::singleton(u.obj("o0").unwrap());
        // o0's variety spreads through the backward chain...
        assert!(sd_core::Query::new(phi.clone(), o0.clone())
            .beta(u.obj("o2").unwrap())
            .run_on(&sys)
            .unwrap()
            .holds());
        // ...but the isolated tail only ever reads itself, so the
        // benchmark query is an exhaustive "no".
        assert!(!sd_core::Query::new(phi.clone(), o0.clone())
            .beta(u.obj("o3").unwrap())
            .run_on(&sys)
            .unwrap()
            .holds());
    }

    #[test]
    fn pinned_set_matches_the_pinning_expression() {
        // The arithmetically-built Sat set must equal the one obtained by
        // evaluating the pinning expression over the whole state space.
        for (n, d) in [(3usize, 2i64), (4, 2), (3, 3)] {
            let (sys, phi) = pointer_chain_pinned(n, d).unwrap();
            let u = sys.universe();
            let ids: Vec<_> = u.objects().collect();
            let mut expr: Option<Expr> = None;
            for i in 0..n {
                let target = if i == 0 || i == n - 1 {
                    ids[i]
                } else {
                    ids[i - 1]
                };
                let clause = Expr::var(ids[i])
                    .field(1)
                    .eq(Expr::Const(Value::Name(target)));
                expr = Some(match expr {
                    Some(e) => e.and(clause),
                    None => clause,
                });
            }
            let by_expr = Phi::expr(expr.unwrap()).sat(&sys).unwrap();
            assert_eq!(phi.sat(&sys).unwrap(), by_expr, "n={n} d={d}");
        }
    }

    #[test]
    fn random_programs_compile() {
        for seed in 0..5 {
            let p = random_program(4, 3, 6, seed);
            let c = sd_lang::compile(&p).unwrap();
            c.system.validate().unwrap();
        }
    }
}
