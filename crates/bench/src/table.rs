//! Plain-text table rendering for the experiment harness.

/// A simple left-aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience for string-slice rows.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Table {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push(' ');
                line.push_str(c);
                for _ in c.chars().count()..*w {
                    line.push(' ');
                }
                line.push_str(" |");
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&"-".repeat(w + 2));
            sep.push('|');
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row_str(&["x", "1"]);
        t.row_str(&["longer", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines the same width.
        assert!(lines
            .iter()
            .all(|l| l.chars().count() == lines[0].chars().count()));
        assert!(lines[0].contains("name"));
        assert!(lines[3].contains("longer"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row_str(&["only one"]);
    }
}
