//! Benchmark harness and experiment tables for the Strong Dependency
//! reproduction.
//!
//! - [`table`]: plain-text table rendering used by the `experiments`
//!   binary (which regenerates every claim in EXPERIMENTS.md);
//! - [`workloads`]: parameterized system and program families for the
//!   Criterion benches in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod table;
pub mod workloads;

pub use crate::table::Table;
