//! P3 (performance side): Denning-style static certification vs the exact
//! semantic checker on compiled programs.
//!
//! Static certification is syntax-directed (near-constant per statement);
//! the exact checker pays for its precision with state exploration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sd_bench::workloads::random_program;
use sd_core::{ObjSet, Phi};
use sd_flow::{Classification, FiniteLattice};

fn bench_static_vs_semantic(c: &mut Criterion) {
    let mut g = c.benchmark_group("static_vs_semantic");
    g.sample_size(10);
    for stmts in [4usize, 6, 8] {
        let p = random_program(4, 2, stmts, 11);
        let lat = FiniteLattice::two_point();
        let hi = lat.label("H").expect("H");
        let lo = lat.label("L").expect("L");
        let mut cls = Classification::new().with("v0", hi);
        for i in 1..4 {
            cls = cls.with(format!("v{i}"), lo);
        }
        g.bench_with_input(BenchmarkId::new("denning_certify", stmts), &p, |b, p| {
            b.iter(|| sd_flow::certify(p, &lat, &cls).expect("certify succeeds"))
        });
        let compiled = sd_lang::compile(&p).expect("program compiles");
        let from = compiled.var("v0").expect("v0");
        let to = compiled.var("v3").expect("v3");
        let semantic_query =
            sd_core::Query::new(compiled.at_entry(), ObjSet::singleton(from)).beta(to);
        g.bench_with_input(
            BenchmarkId::new("semantic_exact", stmts),
            &compiled,
            |b, compiled| {
                b.iter(|| {
                    semantic_query
                        .run_on(&compiled.system)
                        .expect("oracle succeeds")
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("transitive_flows", stmts),
            &compiled,
            |b, compiled| {
                b.iter(|| sd_flow::transitive_flows(&compiled.system).expect("flows computed"))
            },
        );
        // Keep Phi referenced so the import is obviously used.
        let _ = Phi::True;
    }
    g.finish();
}

criterion_group!(benches, bench_static_vs_semantic);
criterion_main!(benches);
