//! Matrix-substrate benchmarks: confinement verification and the
//! secure-configuration proof as the matrix grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sd_core::Phi;
use sd_matrix::{Confinement, MatrixBuilder, SecurityPolicy};

fn bench_confinement(c: &mut Criterion) {
    let mut g = c.benchmark_group("confinement");
    g.sample_size(10);
    for files in [2usize, 3] {
        let mut b = MatrixBuilder::new().subject("u").file("secret", 2);
        for i in 1..files {
            b = b.file(&format!("f{i}"), 2);
        }
        let m = b.file("spy", 2).build().expect("matrix builds");
        let conf = Confinement::new(&m, &["secret"], &["spy"]).expect("policy builds");
        let phi = sd_matrix::no_reads_of_confined(&m, &["secret"]).expect("phi builds");
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{}files", files + 1)),
            &m,
            |bch, m| {
                bch.iter(|| {
                    conf.is_solution_for_pair(m, &phi, "secret", "spy")
                        .expect("check succeeds")
                })
            },
        );
    }
    g.finish();
}

fn bench_security_proof(c: &mut Criterion) {
    let mut g = c.benchmark_group("security_cor_4_3");
    g.sample_size(10);
    for files in [2usize, 3] {
        let mut b = MatrixBuilder::new().subject("u");
        for i in 0..files {
            b = b.file(&format!("f{i}"), 2);
        }
        let m = b.build().expect("matrix builds");
        let levels: Vec<(String, u32)> = (0..files).map(|i| (format!("f{i}"), i as u32)).collect();
        let refs: Vec<(&str, u32)> = levels.iter().map(|(f, l)| (f.as_str(), *l)).collect();
        let p = SecurityPolicy::new(&m, &refs, 0).expect("policy builds");
        let phi = p.secure_configuration(&m).expect("configuration builds");
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{files}files")),
            &m,
            |bch, m| bch.iter(|| p.prove(m, &phi).expect("proof attempt succeeds")),
        );
        // Exact check for comparison.
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{files}files_exact")),
            &m,
            |bch, m| bch.iter(|| p.holds(m, &phi).expect("exact check succeeds")),
        );
        let _ = Phi::True;
    }
    g.finish();
}

criterion_group!(benches, bench_confinement, bench_security_proof);
criterion_main!(benches);
