//! P4: quantitative-measure scaling — mutual information on the §7.4
//! mod-adder and Blahut–Arimoto capacity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sd_core::{examples, History, ObjSet, OpId, Phi};
use sd_info::{Channel, Dist};

fn bench_bits(c: &mut Criterion) {
    let mut g = c.benchmark_group("bits_equivocation");
    for k in [3u32, 5, 6] {
        let sys = examples::mod_adder_system(k).expect("adder builds");
        let u = sys.universe();
        let a1 = u.obj("a1").expect("a1");
        let b = u.obj("beta").expect("beta");
        let d = Dist::uniform(&sys, &Phi::True).expect("uniform dist");
        let h = History::single(OpId(0));
        g.bench_with_input(BenchmarkId::from_parameter(k), &sys, |bch, sys| {
            bch.iter(|| {
                sd_info::bits_equivocation(sys, &d, &ObjSet::singleton(a1), b, &h)
                    .expect("bits computed")
            })
        });
    }
    g.finish();
}

fn bench_capacity(c: &mut Criterion) {
    let mut g = c.benchmark_group("blahut_arimoto");
    for m in [2usize, 4, 8, 16] {
        let ch = Channel::symmetric(m, 0.1).expect("channel builds");
        g.bench_with_input(BenchmarkId::from_parameter(m), &ch, |b, ch| {
            b.iter(|| ch.capacity(1e-9, 10_000).expect("capacity converges"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_bits, bench_capacity);
criterion_main!(benches);
