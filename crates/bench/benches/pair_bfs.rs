//! P2: scaling of the exact pair-reachability decision procedure
//! (`A ▷φ β`) in the size of the state space.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sd_bench::workloads::random_system;
use sd_core::{ObjSet, Phi};

fn bench_pair_bfs(c: &mut Criterion) {
    let mut g = c.benchmark_group("pair_bfs");
    for (n, k) in [(4usize, 2i64), (5, 2), (6, 2), (4, 3), (5, 3)] {
        let sys = random_system(n, k, 4, 7).expect("workload builds");
        let u = sys.universe();
        let a = ObjSet::singleton(u.obj("x0").expect("x0 exists"));
        let beta = u.obj(&format!("x{}", n - 1)).expect("last object exists");
        let states = sys.state_count().expect("countable");
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_k{k}_{states}states")),
            &sys,
            |b, sys| {
                b.iter(|| {
                    sd_core::reach::depends(sys, &Phi::True, &a, beta).expect("depends succeeds")
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_pair_bfs);
criterion_main!(benches);
