//! P2: scaling of the exact pair-reachability decision procedure
//! (`A ▷φ β`) in the size of the state space — interpreted reference
//! vs the compiled transition-table engine, side by side.
//!
//! Two families:
//!
//! - `random`: small guarded-copy systems under φ = True; shows the
//!   crossover region where compilation overhead still matters.
//! - `pointer_chain`: the §4.3 record/pointer system with the chain
//!   pinned by φ (see [`sd_bench::workloads::pointer_chain_pinned`]).
//!   `o0 ▷φ o(n−1)` is false there, so every engine must exhaust the
//!   reachable pair space — the headline throughput comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sd_bench::workloads::{pointer_chain_pinned, random_system};
use sd_core::{CompileBudget, Engine, ObjSet, Phi, Query};

const ENGINES: [(Engine, &str); 2] = [
    (Engine::Interpreted, "interpreted"),
    (Engine::Auto, "compiled"),
];

fn bench_random(c: &mut Criterion) {
    let mut g = c.benchmark_group("pair_bfs/random");
    let budget = CompileBudget::default();
    for (n, k) in [(4usize, 2i64), (5, 2), (6, 2), (4, 3), (5, 3)] {
        let sys = random_system(n, k, 4, 7).expect("workload builds");
        let u = sys.universe();
        let a = ObjSet::singleton(u.obj("x0").expect("x0 exists"));
        let beta = u.obj(&format!("x{}", n - 1)).expect("last object exists");
        let states = sys.state_count().expect("countable");
        for (engine, name) in ENGINES {
            let query = Query::new(Phi::True, a.clone())
                .beta(beta)
                .engine(engine)
                .budget(budget);
            g.bench_with_input(
                BenchmarkId::new(name, format!("n{n}_k{k}_{states}states")),
                &sys,
                |b, sys| b.iter(|| query.run_on(sys).expect("depends succeeds")),
            );
        }
    }
    g.finish();
}

fn bench_pointer_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("pair_bfs/pointer_chain");
    let budget = CompileBudget::default();
    // d = 2 scales the chain length; d = 3 deepens the data alphabet,
    // which decorrelates difference patterns further and pushes the
    // visited-pairs / reached-states ratio from ~8 to ~81.
    for (n, d) in [(4usize, 2i64), (5, 2), (6, 2), (6, 3)] {
        let (sys, phi) = pointer_chain_pinned(n, d).expect("workload builds");
        let u = sys.universe();
        let a = ObjSet::singleton(u.obj("o0").expect("o0 exists"));
        let beta = u.obj(&format!("o{}", n - 1)).expect("last object exists");
        let states = sys.state_count().expect("countable");
        for (engine, name) in ENGINES {
            let query = Query::new(phi.clone(), a.clone())
                .beta(beta)
                .engine(engine)
                .budget(budget);
            g.bench_with_input(
                BenchmarkId::new(name, format!("n{n}_d{d}_{states}states")),
                &sys,
                |b, sys| b.iter(|| query.run_on(sys).expect("depends succeeds")),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_random, bench_pointer_chain);
criterion_main!(benches);
