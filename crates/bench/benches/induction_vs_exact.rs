//! P1: Strong Dependency Induction (Corollary 4-3) vs the exact
//! pair-reachability oracle on the §4.3 pointer-chain family.
//!
//! The paper's point: induction discharges per-operation checks and scales
//! with |Σ| · |Δ|, while the exact search explores pairs of states.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sd_core::{examples, ObjId, ObjSet, Phi};

fn chain_setup(n: usize) -> (sd_core::System, Phi, ObjId, ObjId) {
    let sys = examples::pointer_chain_system(n, 2).expect("pointer system builds");
    let u = sys.universe();
    let alpha = u.obj("o0").expect("o0");
    let beta = u.obj(&format!("o{}", n - 1)).expect("last");
    let chain = ObjSet::singleton(alpha);
    let phi = Phi::pred("chain-closed", move |sys, sigma| {
        let u = sys.universe();
        for y in u.objects() {
            let target = match sigma.value(u, y) {
                sd_core::Value::Record(fields) => fields[1].as_name().expect("ptr is a name"),
                _ => unreachable!(),
            };
            if chain.contains(target) && !chain.contains(y) {
                return Ok(false);
            }
        }
        Ok(true)
    });
    (sys, phi, alpha, beta)
}

fn bench_induction_vs_exact(c: &mut Criterion) {
    let mut g = c.benchmark_group("induction_vs_exact");
    g.sample_size(10);
    for n in [3usize, 4] {
        let (sys, phi, alpha, beta) = chain_setup(n);
        let chain = ObjSet::singleton(alpha);
        let q = move |x: ObjId, y: ObjId| !chain.contains(x) || chain.contains(y);
        g.bench_with_input(BenchmarkId::new("cor_4_3", n), &sys, |b, sys| {
            b.iter(|| {
                sd_core::induction::prove_cor_4_3(sys, &phi, &q, "chain").expect("prover succeeds")
            })
        });
        let exact_query = sd_core::Query::new(phi.clone(), ObjSet::singleton(alpha)).beta(beta);
        g.bench_with_input(BenchmarkId::new("exact_bfs", n), &sys, |b, sys| {
            b.iter(|| exact_query.run_on(sys).expect("oracle succeeds"))
        });
        // Ablation: the naive pre-pair-BFS approach — enumerate every
        // history up to a bound and run the per-history check. Exponential
        // in the bound, and still only *bounded*; measured for the small
        // instance only (it is already orders of magnitude slower).
        if n == 3 {
            let bounded_query = sd_core::Query::new(phi.clone(), ObjSet::singleton(alpha))
                .beta(beta)
                .bounded(2);
            g.bench_with_input(BenchmarkId::new("bounded_enum_len2", n), &sys, |b, sys| {
                b.iter(|| bounded_query.run_on(sys).expect("bounded search succeeds"))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_induction_vs_exact);
criterion_main!(benches);
