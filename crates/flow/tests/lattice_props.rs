//! Property tests for the lattice constructions and metamorphic tests for
//! Denning certification.

use proptest::prelude::*;
use sd_flow::{certify, static_flows, Classification, FiniteLattice, Label};
use sd_lang::parse;

fn lattices() -> Vec<FiniteLattice> {
    vec![
        FiniteLattice::two_point(),
        FiniteLattice::chain(&["0", "1", "2", "3", "4"]).unwrap(),
        FiniteLattice::powerset(&["a", "b", "c"]).unwrap(),
        FiniteLattice::product(
            &FiniteLattice::two_point(),
            &FiniteLattice::powerset(&["x", "y"]).unwrap(),
        )
        .unwrap(),
    ]
}

#[test]
fn join_is_least_upper_bound_everywhere() {
    for l in lattices() {
        for a in l.labels() {
            for b in l.labels() {
                let j = l.join(a, b);
                assert!(l.leq(a, j) && l.leq(b, j));
                for c in l.labels() {
                    if l.leq(a, c) && l.leq(b, c) {
                        assert!(l.leq(j, c), "{l}: join not least");
                    }
                }
            }
        }
    }
}

#[test]
fn meet_is_greatest_lower_bound_everywhere() {
    for l in lattices() {
        for a in l.labels() {
            for b in l.labels() {
                let m = l.meet(a, b);
                assert!(l.leq(m, a) && l.leq(m, b));
                for c in l.labels() {
                    if l.leq(c, a) && l.leq(c, b) {
                        assert!(l.leq(c, m), "{l}: meet not greatest");
                    }
                }
            }
        }
    }
}

#[test]
fn join_meet_are_associative() {
    for l in lattices() {
        for a in l.labels() {
            for b in l.labels() {
                for c in l.labels() {
                    assert_eq!(l.join(l.join(a, b), c), l.join(a, l.join(b, c)));
                    assert_eq!(l.meet(l.meet(a, b), c), l.meet(a, l.meet(b, c)));
                }
            }
        }
    }
}

#[test]
fn bottom_and_top_are_extremes() {
    for l in lattices() {
        let bot = l.bottom();
        let top = l.top();
        for a in l.labels() {
            assert!(l.leq(bot, a));
            assert!(l.leq(a, top));
        }
    }
}

/// Metamorphic: raising a *target* label can only remove violations;
/// raising a *source* label can only add them.
#[test]
fn certification_is_monotone_in_labels() {
    let src = "\
var s: int 0..3;
var t: int 0..3;
var u: int 0..3;
t := s;
if t > 0 { u := 1; }
";
    let p = parse(src).unwrap();
    let l = FiniteLattice::chain(&["0", "1", "2"]).unwrap();
    let lab = |i: usize| Label(i);
    for s_lvl in 0..3 {
        for t_lvl in 0..3 {
            for u_lvl in 0..3 {
                let count = |s, t, u| {
                    let cls = Classification::new()
                        .with("s", lab(s))
                        .with("t", lab(t))
                        .with("u", lab(u));
                    certify(&p, &l, &cls).unwrap().violations.len()
                };
                let base = count(s_lvl, t_lvl, u_lvl);
                if u_lvl < 2 {
                    assert!(
                        count(s_lvl, t_lvl, u_lvl + 1) <= base,
                        "raising a sink added violations"
                    );
                }
                if s_lvl < 2 {
                    assert!(
                        count(s_lvl + 1, t_lvl, u_lvl) >= base,
                        "raising a source removed violations"
                    );
                }
            }
        }
    }
}

proptest! {
    /// static_flows is reflexive and transitively closed, and contains
    /// every assignment edge syntactically present.
    #[test]
    fn static_flows_closure_properties(seed in 0u64..30) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // Random straight-line copy program over 4 vars.
        let n = 4;
        let mut body = String::new();
        let mut decls = String::new();
        for i in 0..n {
            decls.push_str(&format!("var v{i}: int 0..1;\n"));
        }
        let mut edges = Vec::new();
        for _ in 0..5 {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            body.push_str(&format!("v{b} := v{a};\n"));
            edges.push((format!("v{a}"), format!("v{b}")));
        }
        let p = parse(&format!("{decls}{body}")).unwrap();
        let flows = static_flows(&p).unwrap();
        // Reflexive.
        for i in 0..n {
            let v = format!("v{i}");
            let pair = (v.clone(), v);
            prop_assert!(flows.contains(&pair), "missing reflexive {:?}", pair);
        }
        // Contains direct edges.
        for e in &edges {
            prop_assert!(flows.contains(e), "missing edge {e:?}");
        }
        // Transitively closed.
        for (a, b) in &flows {
            for (c, d) in &flows {
                if b == c {
                    prop_assert!(
                        flows.contains(&(a.clone(), d.clone())),
                        "not closed: {a} → {b} → {d}"
                    );
                }
            }
        }
    }
}

/// Certification with every variable at one level always succeeds.
#[test]
fn single_level_always_certifies() {
    let src = "\
var a: int 0..3;
var b: int 0..3;
b := a;
while b > 0 { a := a - 1; b := b - 1; }
";
    let p = parse(src).unwrap();
    for l in lattices() {
        for lvl in l.labels() {
            let cls = Classification::new().with("a", lvl).with("b", lvl);
            assert!(certify(&p, &l, &cls).unwrap().ok());
        }
    }
}
