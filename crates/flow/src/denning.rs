//! Denning-style static certification of programs.
//!
//! This is the [Denning 75] baseline the paper positions itself against
//! (§1.5): a syntax-directed analysis over the program text that tracks
//! *explicit* flows (assignments) and *implicit* flows (assignments under
//! guards), with every object statically bound to a lattice label.
//!
//! Certification rule: for `x := e` executing under guard context `g`,
//! require `join(labels(vars(e)), g) ≤ label(x)`. `if`/`while` raise the
//! guard context by their condition's label.
//!
//! The analysis is *sound* for the paper's semantics (see
//! [`crate::compare`] for the machine-checked statement) but conservative:
//! it ignores the state in which operations execute, so it rejects programs
//! that transmit nothing (the §4.4 non-transitivity example).

use std::collections::BTreeMap;

use sd_core::{Error, Result};
use sd_lang::{Expr, Program, Stmt};

use crate::lattice::{FiniteLattice, Label};

/// A static binding of program variables to lattice labels.
#[derive(Debug, Clone, Default)]
pub struct Classification {
    labels: BTreeMap<String, Label>,
}

impl Classification {
    /// Creates an empty classification.
    pub fn new() -> Classification {
        Classification::default()
    }

    /// Binds a variable to a label.
    #[must_use]
    pub fn with(mut self, var: impl Into<String>, label: Label) -> Classification {
        self.labels.insert(var.into(), label);
        self
    }

    /// Looks up a variable's label.
    pub fn of(&self, var: &str) -> Result<Label> {
        self.labels
            .get(var)
            .copied()
            .ok_or_else(|| Error::Invalid(format!("variable `{var}` has no classification")))
    }
}

/// One certification violation: a potential flow the policy forbids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The assignment's target variable.
    pub target: String,
    /// Rendering of the offending statement.
    pub stmt: String,
    /// The (joined) source label.
    pub from: Label,
    /// The target's label.
    pub to: Label,
    /// Whether the flow is implicit (through a guard) rather than explicit.
    pub implicit: bool,
}

/// The result of certifying a program.
#[derive(Debug, Clone)]
pub struct Certified {
    /// All violations found (empty means the program is certified secure).
    pub violations: Vec<Violation>,
}

impl Certified {
    /// Whether certification succeeded.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

fn expr_label(e: &Expr, lat: &FiniteLattice, cls: &Classification) -> Result<Label> {
    let mut vars = Vec::new();
    e.reads(&mut vars);
    let mut acc = lat.bottom();
    for v in vars {
        acc = lat.join(acc, cls.of(&v)?);
    }
    Ok(acc)
}

fn certify_block(
    stmts: &[Stmt],
    ctx: Label,
    lat: &FiniteLattice,
    cls: &Classification,
    out: &mut Vec<Violation>,
) -> Result<()> {
    for s in stmts {
        match s {
            Stmt::Skip => {}
            Stmt::Assign(x, e) => {
                let explicit = expr_label(e, lat, cls)?;
                let src = lat.join(explicit, ctx);
                let dst = cls.of(x)?;
                if !lat.leq(src, dst) {
                    out.push(Violation {
                        target: x.clone(),
                        stmt: format!("{x} := {e}"),
                        from: src,
                        to: dst,
                        implicit: !lat.leq(ctx, dst),
                    });
                }
            }
            Stmt::If(g, t, els) => {
                let gctx = lat.join(ctx, expr_label(g, lat, cls)?);
                certify_block(t, gctx, lat, cls, out)?;
                certify_block(els, gctx, lat, cls, out)?;
            }
            Stmt::While(g, b) => {
                let gctx = lat.join(ctx, expr_label(g, lat, cls)?);
                certify_block(b, gctx, lat, cls, out)?;
            }
        }
    }
    Ok(())
}

/// Certifies a program against a lattice and classification.
pub fn certify(p: &Program, lat: &FiniteLattice, cls: &Classification) -> Result<Certified> {
    let mut violations = Vec::new();
    certify_block(&p.body, lat.bottom(), lat, cls, &mut violations)?;
    Ok(Certified { violations })
}

/// The set of *static* variable-to-variable flows the analysis infers:
/// `(x, y)` means information may flow from x to y somewhere in the
/// program (explicit or implicit), closed transitively — the [Case 74]
/// composition of per-statement flows (§1.5).
pub fn static_flows(p: &Program) -> Result<Vec<(String, String)>> {
    // Collect direct flows per statement.
    let mut direct: Vec<(String, String)> = Vec::new();
    fn walk(stmts: &[Stmt], guards: &mut Vec<String>, out: &mut Vec<(String, String)>) {
        for s in stmts {
            match s {
                Stmt::Skip => {}
                Stmt::Assign(x, e) => {
                    let mut vars = Vec::new();
                    e.reads(&mut vars);
                    for v in vars.into_iter().chain(guards.iter().cloned()) {
                        out.push((v, x.clone()));
                    }
                }
                Stmt::If(g, t, els) => {
                    let mut vars = Vec::new();
                    g.reads(&mut vars);
                    let depth = guards.len();
                    guards.extend(vars);
                    walk(t, guards, out);
                    walk(els, guards, out);
                    guards.truncate(depth);
                }
                Stmt::While(g, b) => {
                    let mut vars = Vec::new();
                    g.reads(&mut vars);
                    let depth = guards.len();
                    guards.extend(vars);
                    walk(b, guards, out);
                    guards.truncate(depth);
                }
            }
        }
    }
    let mut guards = Vec::new();
    walk(&p.body, &mut guards, &mut direct);

    // Reflexive-transitive closure over declared variables.
    let vars: Vec<String> = p.decls.iter().map(|(n, _)| n.clone()).collect();
    let idx = |v: &str| vars.iter().position(|x| x == v);
    let n = vars.len();
    let mut reach = vec![vec![false; n]; n];
    for (i, row) in reach.iter_mut().enumerate() {
        row[i] = true;
    }
    for (a, b) in &direct {
        if let (Some(i), Some(j)) = (idx(a), idx(b)) {
            reach[i][j] = true;
        }
    }
    // Floyd–Warshall closure.
    for k in 0..n {
        // Row k is stable during iteration k (reach[k][j] |= reach[k][k] &&
        // reach[k][j] changes nothing), so a snapshot is exact.
        let row_k = reach[k].clone();
        for row in reach.iter_mut() {
            if row[k] {
                for (j, &via_k) in row_k.iter().enumerate() {
                    if via_k {
                        row[j] = true;
                    }
                }
            }
        }
    }
    let mut out = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if reach[i][j] {
                out.push((vars[i].clone(), vars[j].clone()));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_lang::parse;

    fn two() -> (FiniteLattice, Label, Label) {
        let l = FiniteLattice::two_point();
        let lo = l.label("L").unwrap();
        let hi = l.label("H").unwrap();
        (l, lo, hi)
    }

    #[test]
    fn explicit_flow_violation() {
        let (lat, lo, hi) = two();
        let p = parse("var h: int 0..3; var l: int 0..3; l := h;").unwrap();
        let cls = Classification::new().with("h", hi).with("l", lo);
        let c = certify(&p, &lat, &cls).unwrap();
        assert_eq!(c.violations.len(), 1);
        assert!(!c.violations[0].implicit);
        assert_eq!(c.violations[0].target, "l");
    }

    #[test]
    fn implicit_flow_violation() {
        let (lat, lo, hi) = two();
        let p = parse("var h: bool; var l: int 0..1; if h { l := 1; }").unwrap();
        let cls = Classification::new().with("h", hi).with("l", lo);
        let c = certify(&p, &lat, &cls).unwrap();
        assert_eq!(c.violations.len(), 1);
        assert!(c.violations[0].implicit);
    }

    #[test]
    fn upward_flows_certified() {
        let (lat, lo, hi) = two();
        let p =
            parse("var h: int 0..3; var l: int 0..3; h := l; if l > 0 { h := h + 0; }").unwrap();
        let cls = Classification::new().with("h", hi).with("l", lo);
        assert!(certify(&p, &lat, &cls).unwrap().ok());
    }

    #[test]
    fn nested_guards_accumulate() {
        let (lat, lo, hi) = two();
        // The inner assignment to l sits under an h guard two levels up.
        let p =
            parse("var h: bool; var m: bool; var l: int 0..1; if h { if m { l := 1; } }").unwrap();
        let cls = Classification::new()
            .with("h", hi)
            .with("m", lo)
            .with("l", lo);
        let c = certify(&p, &lat, &cls).unwrap();
        assert_eq!(c.violations.len(), 1);
    }

    #[test]
    fn while_guard_is_a_source() {
        let (lat, lo, hi) = two();
        let p =
            parse("var h: int 0..3; var l: int 0..3; while h > 0 { l := 1; h := h - 1; }").unwrap();
        let cls = Classification::new().with("h", hi).with("l", lo);
        let c = certify(&p, &lat, &cls).unwrap();
        assert!(!c.ok());
    }

    #[test]
    fn missing_classification_is_an_error() {
        let (lat, _, hi) = two();
        let p = parse("var h: int 0..3; var l: int 0..3; l := h;").unwrap();
        let cls = Classification::new().with("h", hi);
        assert!(certify(&p, &lat, &cls).is_err());
    }

    #[test]
    fn static_flows_are_transitive() {
        // x → m → y: the closure includes x → y even though no statement
        // copies x to y directly.
        let p =
            parse("var x: int 0..1; var m: int 0..1; var y: int 0..1; m := x; y := m;").unwrap();
        let flows = static_flows(&p).unwrap();
        assert!(flows.contains(&("x".into(), "y".into())));
        assert!(flows.contains(&("x".into(), "m".into())));
        // Reflexive by definition (λ case of §1.5).
        assert!(flows.contains(&("y".into(), "y".into())));
        // No flow from y anywhere else.
        assert!(!flows.contains(&("y".into(), "x".into())));
    }

    #[test]
    fn static_flows_include_guards() {
        let p = parse("var g: bool; var y: int 0..1; if g { y := 1; }").unwrap();
        let flows = static_flows(&p).unwrap();
        assert!(flows.contains(&("g".into(), "y".into())));
    }
}
