//! Static information-flow baseline for the Strong Dependency
//! reproduction.
//!
//! The paper positions strong dependency against the flow models of
//! [Denning 75] and [Case 74] (§1.5): analyses that disregard the state in
//! which operations execute and assume flows compose transitively. This
//! crate implements that baseline in full —
//!
//! - verified finite security lattices ([`lattice`]);
//! - Denning-style syntax-directed certification of programs, with
//!   explicit and implicit flows ([`denning`]);
//! - semantically derived per-operation flow relations and their
//!   transitive closure over histories ([`flowrel`]);
//! - the precision comparison against exact strong dependency
//!   ([`compare`]) — sound, but over-approximate on the §4.4 example;
//! - the Millen-style constraint-aware refinement and its §1.5 limits
//!   ([`millen`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod denning;
pub mod flowrel;
pub mod lattice;
pub mod millen;

pub use crate::compare::{compare, PrecisionReport};
pub use crate::denning::{certify, static_flows, Certified, Classification, Violation};
pub use crate::flowrel::{op_flow_relation, semantic_flows, transitive_flows, Relation};
pub use crate::lattice::{FiniteLattice, Label};
pub use crate::millen::{cover_sensitive_flows, op_flow_relation_under};
