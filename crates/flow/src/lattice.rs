//! Finite security lattices.
//!
//! The Security Problem (§3.4) classifies objects and demands that
//! information only move upward. Following the paper's note that
//! classifications "need not be a single value, but could be a vector of
//! clearance/classification values", labels form a *lattice*: a partial
//! order with least upper bounds. This module provides finite lattices with
//! verified laws — chains, powersets of categories, products, and arbitrary
//! user-supplied orders.

use std::fmt;

use sd_core::{Error, Result};

/// An element of a [`FiniteLattice`], by index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(pub usize);

/// A finite lattice given by an explicit order relation, with joins and
/// meets precomputed and the lattice laws verified at construction.
#[derive(Debug, Clone)]
pub struct FiniteLattice {
    names: Vec<String>,
    leq: Vec<Vec<bool>>,
    join: Vec<Vec<usize>>,
    meet: Vec<Vec<usize>>,
}

impl FiniteLattice {
    /// Builds a lattice from element names and a ≤ relation.
    ///
    /// Verifies that `leq` is a partial order and that every pair has a
    /// least upper bound and a greatest lower bound.
    pub fn from_leq(names: Vec<String>, leq: Vec<Vec<bool>>) -> Result<FiniteLattice> {
        let n = names.len();
        if n == 0 {
            return Err(Error::Invalid("lattice must be non-empty".into()));
        }
        if leq.len() != n || leq.iter().any(|r| r.len() != n) {
            return Err(Error::Invalid("leq must be an n×n matrix".into()));
        }
        // Partial order laws.
        for a in 0..n {
            if !leq[a][a] {
                return Err(Error::Invalid(format!("≤ not reflexive at {}", names[a])));
            }
            for b in 0..n {
                if a != b && leq[a][b] && leq[b][a] {
                    return Err(Error::Invalid(format!(
                        "≤ not antisymmetric at ({}, {})",
                        names[a], names[b]
                    )));
                }
                for c in 0..n {
                    if leq[a][b] && leq[b][c] && !leq[a][c] {
                        return Err(Error::Invalid(format!(
                            "≤ not transitive at ({}, {}, {})",
                            names[a], names[b], names[c]
                        )));
                    }
                }
            }
        }
        // Joins and meets.
        let mut join = vec![vec![0usize; n]; n];
        let mut meet = vec![vec![0usize; n]; n];
        for a in 0..n {
            for b in 0..n {
                join[a][b] = lub(&leq, a, b).ok_or_else(|| {
                    Error::Invalid(format!("no join for ({}, {})", names[a], names[b]))
                })?;
                meet[a][b] = glb(&leq, a, b).ok_or_else(|| {
                    Error::Invalid(format!("no meet for ({}, {})", names[a], names[b]))
                })?;
            }
        }
        Ok(FiniteLattice {
            names,
            leq,
            join,
            meet,
        })
    }

    /// The two-point lattice `L ≤ H`.
    pub fn two_point() -> FiniteLattice {
        FiniteLattice::chain(&["L", "H"]).expect("two-point chain is a lattice")
    }

    /// A totally ordered chain with the given level names (low to high).
    ///
    /// # Examples
    ///
    /// ```
    /// use sd_flow::FiniteLattice;
    ///
    /// let l = FiniteLattice::chain(&["U", "C", "S", "TS"])?;
    /// assert!(l.leq(l.label("U")?, l.label("TS")?));
    /// assert_eq!(l.top(), l.label("TS")?);
    /// # Ok::<(), sd_core::Error>(())
    /// ```
    pub fn chain(levels: &[&str]) -> Result<FiniteLattice> {
        let n = levels.len();
        let leq = (0..n).map(|a| (0..n).map(|b| a <= b).collect()).collect();
        FiniteLattice::from_leq(levels.iter().map(|s| s.to_string()).collect(), leq)
    }

    /// The powerset lattice over `categories`, ordered by inclusion —
    /// Denning-style category sets. Element `i` is the subset with bit
    /// pattern `i`.
    pub fn powerset(categories: &[&str]) -> Result<FiniteLattice> {
        let k = categories.len();
        if k > 8 {
            return Err(Error::Invalid("at most 8 categories supported".into()));
        }
        let n = 1usize << k;
        let names = (0..n)
            .map(|mask| {
                if mask == 0 {
                    "{}".to_string()
                } else {
                    let parts: Vec<&str> = (0..k)
                        .filter(|i| mask & (1 << i) != 0)
                        .map(|i| categories[i])
                        .collect();
                    format!("{{{}}}", parts.join(","))
                }
            })
            .collect();
        let leq = (0..n)
            .map(|a| (0..n).map(|b| a & b == a).collect())
            .collect();
        FiniteLattice::from_leq(names, leq)
    }

    /// The product lattice: pairs ordered componentwise (e.g. clearance
    /// level × category set).
    pub fn product(l1: &FiniteLattice, l2: &FiniteLattice) -> Result<FiniteLattice> {
        let n1 = l1.len();
        let n2 = l2.len();
        let mut names = Vec::with_capacity(n1 * n2);
        for a in 0..n1 {
            for b in 0..n2 {
                names.push(format!("({},{})", l1.names[a], l2.names[b]));
            }
        }
        let idx = |a: usize, b: usize| a * n2 + b;
        let mut leq = vec![vec![false; n1 * n2]; n1 * n2];
        for a1 in 0..n1 {
            for b1 in 0..n2 {
                for a2 in 0..n1 {
                    for b2 in 0..n2 {
                        leq[idx(a1, b1)][idx(a2, b2)] = l1.leq[a1][a2] && l2.leq[b1][b2];
                    }
                }
            }
        }
        FiniteLattice::from_leq(names, leq)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the lattice is empty (never true for a constructed one).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Looks up a label by name.
    pub fn label(&self, name: &str) -> Result<Label> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(Label)
            .ok_or_else(|| Error::Invalid(format!("unknown label `{name}`")))
    }

    /// The name of a label.
    pub fn name(&self, l: Label) -> &str {
        &self.names[l.0]
    }

    /// `a ≤ b`.
    pub fn leq(&self, a: Label, b: Label) -> bool {
        self.leq[a.0][b.0]
    }

    /// Least upper bound.
    pub fn join(&self, a: Label, b: Label) -> Label {
        Label(self.join[a.0][b.0])
    }

    /// Greatest lower bound.
    pub fn meet(&self, a: Label, b: Label) -> Label {
        Label(self.meet[a.0][b.0])
    }

    /// The least element ⊥.
    pub fn bottom(&self) -> Label {
        let mut cur = Label(0);
        for i in 1..self.len() {
            cur = self.meet(cur, Label(i));
        }
        cur
    }

    /// The greatest element ⊤.
    pub fn top(&self) -> Label {
        let mut cur = Label(0);
        for i in 1..self.len() {
            cur = self.join(cur, Label(i));
        }
        cur
    }

    /// All labels.
    pub fn labels(&self) -> impl Iterator<Item = Label> {
        (0..self.len()).map(Label)
    }
}

impl fmt::Display for FiniteLattice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lattice[{}]", self.names.join(" "))
    }
}

fn lub(leq: &[Vec<bool>], a: usize, b: usize) -> Option<usize> {
    let n = leq.len();
    let uppers: Vec<usize> = (0..n).filter(|&u| leq[a][u] && leq[b][u]).collect();
    uppers
        .iter()
        .copied()
        .find(|&u| uppers.iter().all(|&v| leq[u][v]))
}

fn glb(leq: &[Vec<bool>], a: usize, b: usize) -> Option<usize> {
    let n = leq.len();
    let lowers: Vec<usize> = (0..n).filter(|&l| leq[l][a] && leq[l][b]).collect();
    lowers
        .iter()
        .copied()
        .find(|&l| lowers.iter().all(|&v| leq[v][l]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_orders_totally() {
        let l = FiniteLattice::chain(&["U", "C", "S", "TS"]).unwrap();
        let u = l.label("U").unwrap();
        let ts = l.label("TS").unwrap();
        assert!(l.leq(u, ts));
        assert!(!l.leq(ts, u));
        assert_eq!(l.join(u, ts), ts);
        assert_eq!(l.meet(u, ts), u);
        assert_eq!(l.bottom(), u);
        assert_eq!(l.top(), ts);
    }

    #[test]
    fn powerset_is_inclusion() {
        let l = FiniteLattice::powerset(&["nuc", "crypto"]).unwrap();
        assert_eq!(l.len(), 4);
        let empty = Label(0b00);
        let nuc = Label(0b01);
        let crypto = Label(0b10);
        let both = Label(0b11);
        assert!(l.leq(empty, nuc));
        assert!(!l.leq(nuc, crypto));
        assert_eq!(l.join(nuc, crypto), both);
        assert_eq!(l.meet(nuc, crypto), empty);
        assert_eq!(l.name(both), "{nuc,crypto}");
    }

    #[test]
    fn product_is_componentwise() {
        let levels = FiniteLattice::two_point();
        let cats = FiniteLattice::powerset(&["x"]).unwrap();
        let p = FiniteLattice::product(&levels, &cats).unwrap();
        assert_eq!(p.len(), 4);
        // (L,{}) ≤ (H,{x}) but (L,{x}) and (H,{}) are incomparable.
        let l_empty = p.label("(L,{})").unwrap();
        let h_x = p.label("(H,{x})").unwrap();
        let l_x = p.label("(L,{x})").unwrap();
        let h_empty = p.label("(H,{})").unwrap();
        assert!(p.leq(l_empty, h_x));
        assert!(!p.leq(l_x, h_empty));
        assert!(!p.leq(h_empty, l_x));
        assert_eq!(p.join(l_x, h_empty), h_x);
    }

    #[test]
    fn invalid_orders_rejected() {
        // Not reflexive.
        let r = FiniteLattice::from_leq(vec!["a".into()], vec![vec![false]]);
        assert!(r.is_err());
        // Not antisymmetric.
        let r2 = FiniteLattice::from_leq(
            vec!["a".into(), "b".into()],
            vec![vec![true, true], vec![true, true]],
        );
        assert!(r2.is_err());
        // No join: two incomparable elements with two incomparable uppers
        // (the "diamond-free" N5-ish failure).
        let names: Vec<String> = ["a", "b", "c", "d"].iter().map(|s| s.to_string()).collect();
        // a, b incomparable; c, d both above a and b; c, d incomparable.
        let mut leq = vec![vec![false; 4]; 4];
        for (i, row) in leq.iter_mut().enumerate() {
            row[i] = true;
        }
        leq[0][2] = true;
        leq[0][3] = true;
        leq[1][2] = true;
        leq[1][3] = true;
        let r3 = FiniteLattice::from_leq(names, leq);
        assert!(r3.to_owned().is_err());
        assert!(r3.unwrap_err().to_string().contains("no join"));
    }

    #[test]
    fn lattice_laws_hold_on_constructions() {
        for l in [
            FiniteLattice::two_point(),
            FiniteLattice::chain(&["1", "2", "3"]).unwrap(),
            FiniteLattice::powerset(&["a", "b", "c"]).unwrap(),
        ] {
            for a in l.labels() {
                for b in l.labels() {
                    let j = l.join(a, b);
                    assert!(l.leq(a, j) && l.leq(b, j));
                    let m = l.meet(a, b);
                    assert!(l.leq(m, a) && l.leq(m, b));
                    // Commutativity.
                    assert_eq!(l.join(a, b), l.join(b, a));
                    assert_eq!(l.meet(a, b), l.meet(b, a));
                    // Absorption.
                    assert_eq!(l.join(a, l.meet(a, b)), a);
                    assert_eq!(l.meet(a, l.join(a, b)), a);
                }
            }
        }
    }
}
