//! Per-operation flow relations and their transitive composition (§1.5).
//!
//! [Denning 75] and [Case 74] sidestep implicit-flow subtleties by
//! *disregarding the state* in which an operation executes: information
//! flows `α -(δ)-> β` as long as **some** state exhibits the transmission,
//! and flow over histories is defined by assuming transitivity:
//!
//! ```text
//! α -(λ)-> β  ⇔  α = β
//! α -(Hδ)-> β ⇔  ∃m: α -(H)-> m ∧ m -(δ)-> β
//! ```
//!
//! The paper derives the per-operation relation from the operation's
//! *semantics* (as it advocates in §1.5): `α -(δ)-> β` is exactly
//! single-operation strong dependency with φ = tt. The union over all
//! histories is then the reflexive-transitive closure of the per-operation
//! union. This module computes both, giving the machine-checkable baseline
//! for the paper's precision comparison (§4.4).

use std::collections::BTreeSet;

use sd_core::{History, ObjId, ObjSet, OpId, Phi, Result, System};

/// A relation over objects.
pub type Relation = BTreeSet<(ObjId, ObjId)>;

/// The per-operation flow relation `α -(δ)-> β`, derived semantically:
/// there exists a state pair differing only at α for which δ's outputs
/// differ at β (strong dependency after the single-op history, φ = tt).
pub fn op_flow_relation(sys: &System, op: OpId) -> Result<Relation> {
    let mut out = Relation::new();
    let h = History::single(op);
    for alpha in sys.universe().objects() {
        let sinks = sd_core::depend::sinks_after(sys, &Phi::True, &ObjSet::singleton(alpha), &h)?;
        for beta in sinks.iter() {
            out.insert((alpha, beta));
        }
    }
    Ok(out)
}

/// The transitive flow relation over all histories:
/// `⋃_H Rel(H)` = the reflexive-transitive closure of `⋃_δ Rel(δ)`.
pub fn transitive_flows(sys: &System) -> Result<Relation> {
    let n = sys.universe().num_objects();
    let mut reach = vec![vec![false; n]; n];
    for (i, row) in reach.iter_mut().enumerate() {
        row[i] = true;
    }
    for op in sys.op_ids() {
        for (a, b) in op_flow_relation(sys, op)? {
            reach[a.index()][b.index()] = true;
        }
    }
    for k in 0..n {
        // Row k is stable during iteration k (reach[k][j] |= reach[k][k] &&
        // reach[k][j] changes nothing), so a snapshot is exact.
        let row_k = reach[k].clone();
        for row in reach.iter_mut() {
            if row[k] {
                for (j, &via_k) in row_k.iter().enumerate() {
                    if via_k {
                        row[j] = true;
                    }
                }
            }
        }
    }
    let mut out = Relation::new();
    for (i, row) in reach.iter().enumerate() {
        for (j, &connected) in row.iter().enumerate() {
            if connected {
                out.insert((ObjId::from_index(i), ObjId::from_index(j)));
            }
        }
    }
    Ok(out)
}

/// The exact semantic flow relation `{(α, β) | α ▷φ β}` via pair
/// reachability (one sweep per source object).
pub fn semantic_flows(sys: &System, phi: &Phi) -> Result<Relation> {
    // One compile + parallel row sweep over all sources, rather than a
    // fresh per-source search for every α.
    let sources: Vec<ObjSet> = sys.universe().objects().map(ObjSet::singleton).collect();
    let rows = sd_core::Query::matrix(phi.clone(), sources)
        .run_on(sys)?
        .into_rows()
        .expect("a matrix query returns rows");
    let mut out = Relation::new();
    for (alpha, sinks) in sys.universe().objects().zip(rows) {
        for beta in sinks.iter() {
            out.insert((alpha, beta));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_core::examples;

    #[test]
    fn per_op_relation_matches_semantics() {
        // δ: if m then β ← α: flows α→β, m→β, plus every preserved object
        // reflexively.
        let sys = examples::guarded_copy_system(2).unwrap();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let m = u.obj("m").unwrap();
        let rel = op_flow_relation(&sys, OpId(0)).unwrap();
        assert!(rel.contains(&(a, b)));
        assert!(rel.contains(&(m, b)));
        assert!(rel.contains(&(a, a)) && rel.contains(&(m, m)));
        // β is (conditionally) overwritten but persists when m = ff.
        assert!(rel.contains(&(b, b)));
        assert!(!rel.contains(&(b, a)));
    }

    #[test]
    fn overwritten_object_not_reflexive() {
        // δ: β ← α: β's own variety is always destroyed, so (β, β) is NOT
        // in the per-op relation (§2.5's reflexivity discussion).
        let sys = examples::copy_system(3).unwrap();
        let u = sys.universe();
        let b = u.obj("beta").unwrap();
        let rel = op_flow_relation(&sys, OpId(0)).unwrap();
        assert!(!rel.contains(&(b, b)));
    }

    #[test]
    fn transitive_baseline_overapproximates_sec_4_4() {
        // δ1: if q then m ← α; δ2: if ¬q then β ← m.
        // The transitive baseline reports α → β (via m); the semantic
        // relation does not — the paper's headline precision gap.
        let sys = examples::nontransitive_system(2).unwrap();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let m = u.obj("m").unwrap();
        let stat = transitive_flows(&sys).unwrap();
        assert!(stat.contains(&(a, m)));
        assert!(stat.contains(&(m, b)));
        assert!(stat.contains(&(a, b)), "baseline assumes transitivity");
        let sem = semantic_flows(&sys, &Phi::True).unwrap();
        assert!(sem.contains(&(a, m)));
        assert!(sem.contains(&(m, b)));
        assert!(!sem.contains(&(a, b)), "no real transmission (Thm of §4.4)");
    }

    #[test]
    fn static_is_sound_wrt_semantic() {
        // For every example system: semantic ⊆ static (the baseline never
        // misses a real flow; it only over-approximates).
        for sys in [
            examples::copy_system(3).unwrap(),
            examples::guarded_copy_system(2).unwrap(),
            examples::nontransitive_system(2).unwrap(),
            examples::flag_copy_system(2).unwrap(),
            examples::m1m2_system(2).unwrap(),
            examples::oscillator_system(5).unwrap(),
        ] {
            let stat = transitive_flows(&sys).unwrap();
            let sem = semantic_flows(&sys, &Phi::True).unwrap();
            for pair in &sem {
                assert!(stat.contains(pair), "static misses {pair:?}");
            }
        }
    }
}
