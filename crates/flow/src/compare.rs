//! Precision comparison: static baseline vs exact strong dependency.
//!
//! The paper's central methodological claim (§1.5, §4.4) is that
//! flow-model analyses which assume transitivity over-approximate real
//! information transmission, while strong dependency is exact. This module
//! quantifies the gap on any finite system.

use std::fmt;

use sd_core::{Phi, Result, System};

use crate::flowrel::{semantic_flows, transitive_flows, Relation};

/// The outcome of comparing the static baseline against the exact
/// semantics on one system.
#[derive(Debug, Clone)]
pub struct PrecisionReport {
    /// Flows reported by the transitive static baseline.
    pub static_flows: Relation,
    /// Flows that really exist (strong dependency, given φ).
    pub semantic_flows: Relation,
    /// Static flows with no semantic counterpart (false positives).
    pub false_positives: Relation,
    /// Semantic flows the static analysis missed (must be empty — the
    /// baseline is sound; kept for the machine-checked statement).
    pub missed: Relation,
}

impl PrecisionReport {
    /// Whether the baseline is sound on this system (no missed flows).
    pub fn sound(&self) -> bool {
        self.missed.is_empty()
    }

    /// Precision: |semantic| / |static| over non-reflexive pairs, in
    /// [0, 1]; 1.0 means the baseline is exact here.
    pub fn precision(&self) -> f64 {
        let stat = self.static_flows.iter().filter(|(a, b)| a != b).count();
        let sem = self.semantic_flows.iter().filter(|(a, b)| a != b).count();
        if stat == 0 {
            1.0
        } else {
            sem as f64 / stat as f64
        }
    }
}

impl fmt::Display for PrecisionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "static: {} flows, semantic: {} flows, false positives: {}, precision {:.2}",
            self.static_flows.len(),
            self.semantic_flows.len(),
            self.false_positives.len(),
            self.precision()
        )
    }
}

/// Compares the transitive static baseline (which ignores φ — it cannot
/// exploit constraints) against exact strong dependency under φ.
pub fn compare(sys: &System, phi: &Phi) -> Result<PrecisionReport> {
    let stat = transitive_flows(sys)?;
    let sem = semantic_flows(sys, phi)?;
    let false_positives = stat.difference(&sem).copied().collect();
    let missed = sem.difference(&stat).copied().collect();
    Ok(PrecisionReport {
        static_flows: stat,
        semantic_flows: sem,
        false_positives,
        missed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_core::examples;

    #[test]
    fn nontransitive_system_has_false_positives() {
        let sys = examples::nontransitive_system(2).unwrap();
        let r = compare(&sys, &Phi::True).unwrap();
        assert!(r.sound());
        assert!(!r.false_positives.is_empty());
        assert!(r.precision() < 1.0);
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        assert!(r.false_positives.contains(&(a, b)));
    }

    #[test]
    fn plain_copy_is_exact() {
        let sys = examples::copy_system(3).unwrap();
        let r = compare(&sys, &Phi::True).unwrap();
        assert!(r.sound());
        assert!(r.false_positives.is_empty());
        assert!((r.precision() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constraints_widen_the_gap() {
        // Under φ: ¬m in the guarded copy, the semantic relation drops the
        // α → β path but the state-blind static baseline cannot.
        let sys = examples::guarded_copy_system(2).unwrap();
        let u = sys.universe();
        let m = u.obj("m").unwrap();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let free = compare(&sys, &Phi::True).unwrap();
        assert!(free.semantic_flows.contains(&(a, b)));
        let phi = Phi::expr(sd_core::Expr::var(m).not());
        let constrained = compare(&sys, &phi).unwrap();
        assert!(!constrained.semantic_flows.contains(&(a, b)));
        assert!(constrained.false_positives.contains(&(a, b)));
        assert!(constrained.precision() < free.precision());
    }

    #[test]
    fn display_renders_counts() {
        let sys = examples::copy_system(2).unwrap();
        let r = compare(&sys, &Phi::True).unwrap();
        let s = r.to_string();
        assert!(s.contains("precision"));
    }
}
