//! Constraint-aware static flow analysis, after [Millen 76] (§1.5).
//!
//! §1.5 notes that Millen "has shown how certain information paths may be
//! ignored in the face of appropriate constraints", and that the Strong
//! Dependency theory both validates the approach and determines its
//! limits. This module implements a cover-sensitive refinement of the
//! transitive baseline:
//!
//! Given an inductive cover `{φi}` (Def 6-2), per-operation flow
//! relations are computed *under each piece* — `α -(δ | φi)-> β` is
//! single-operation strong dependency given φi — and composed along the
//! cover's own transition structure (piece i steps to piece j under δ
//! when `δ(Sat(φi)) ⊆ Sat(φj)`). Reachability in the product graph over
//! (piece, object) yields a flow relation that is:
//!
//! - **sound**: it contains every real flow (each real history threads
//!   through cover pieces, and each step's dependency is inside the
//!   per-piece relation);
//! - **at least as precise as the baseline**: per-piece relations are
//!   subsets of the unconstrained ones;
//! - **still conservative**: it assumes transitivity within a piece, so
//!   the §4.4 example is only resolved when the cover separates the
//!   conflicting guard values — exactly Millen's "appropriate
//!   constraints".

use std::collections::BTreeSet;

use sd_core::{History, ObjId, ObjSet, OpId, Phi, Result, System};

use crate::flowrel::Relation;

/// The per-operation flow relation *under a constraint*:
/// `{(α, β) | α ▷φδ β}`.
pub fn op_flow_relation_under(sys: &System, phi: &Phi, op: OpId) -> Result<Relation> {
    let mut out = Relation::new();
    let h = History::single(op);
    for alpha in sys.universe().objects() {
        let sinks = sd_core::depend::sinks_after(sys, phi, &ObjSet::singleton(alpha), &h)?;
        for beta in sinks.iter() {
            out.insert((alpha, beta));
        }
    }
    Ok(out)
}

/// Cover-sensitive transitive flows from an initial constraint φ with
/// inductive cover `{φi}`.
///
/// Returns the set of `(α, β)` pairs reachable in the product graph:
/// start at any piece containing Sat(φ) with α = β, step with
/// `(i, x) → (j, y)` whenever `x -(δ | φi)-> y` and δ sends piece i into
/// piece j.
///
/// Soundness preconditions (checked; each failure is an error):
///
/// - the pieces cover the state space and are **one-step closed**
///   (`δ(Sat(φi)) ⊆ Sat(φj)` for some j — the §6.4 sufficient condition
///   for Def 6-2);
/// - every piece is **autonomous** — this is "the limit of Millen's
///   approach" the paper announces in §1.5: under a non-autonomous piece,
///   per-single-object relations under-approximate (Thm 4-1's
///   intermediate object need not exist; only a *set* intermediate does,
///   per Thm 5-4) and the composition misses real flows. See
///   [`cover_sensitive_flows_unchecked`] and its test for a concrete
///   demonstration of the unsoundness.
///
/// Additionally, tracking a source α through single pieces requires the
/// pieces not to split α's own variety; for sources where some piece is
/// not α-independent, the analysis falls back to the unconstrained
/// baseline row for that source (conservative, still sound).
pub fn cover_sensitive_flows(sys: &System, phi: &Phi, cover: &[Phi]) -> Result<Relation> {
    for (i, piece) in cover.iter().enumerate() {
        if !sd_core::classify::is_autonomous(sys, piece)? {
            return Err(sd_core::Error::Invalid(format!(
                "cover piece {i} is not autonomous; per-object composition \
                 would be unsound (the §1.5 limit of constraint-aware analysis)"
            )));
        }
    }
    let n = sys.state_count()?;
    let mut union = sd_core::StateSet::new(n);
    for piece in cover {
        union.union_with(&piece.sat(sys)?);
    }
    if union.count() != n {
        return Err(sd_core::Error::Invalid(
            "pieces do not cover the state space".into(),
        ));
    }
    cover_sensitive_flows_unchecked(sys, phi, cover)
}

/// [`cover_sensitive_flows`] without the autonomy guard. Unsound for
/// non-autonomous pieces — exposed so the limitation can be demonstrated
/// and studied.
pub fn cover_sensitive_flows_unchecked(sys: &System, phi: &Phi, cover: &[Phi]) -> Result<Relation> {
    let n_obj = sys.universe().num_objects();
    let n_piece = cover.len();
    let sats: Vec<_> = cover
        .iter()
        .map(|p| p.sat(sys))
        .collect::<Result<Vec<_>>>()?;

    // Per-piece, per-op relations and piece transitions. Every piece must
    // step into SOME piece under every operation (one-step closure), or
    // the product graph would silently drop trajectories.
    let mut rel = vec![Vec::new(); n_piece];
    let mut step = vec![Vec::new(); n_piece];
    for (i, piece) in cover.iter().enumerate() {
        for op in sys.op_ids() {
            let r = op_flow_relation_under(sys, piece, op)?;
            // δ sends piece i into any piece containing its image.
            let img = sd_core::after::image_op(sys, &sats[i], op)?;
            let targets: Vec<usize> = (0..n_piece).filter(|&j| img.is_subset(&sats[j])).collect();
            if targets.is_empty() && !sats[i].is_empty() {
                return Err(sd_core::Error::Invalid(format!(
                    "pieces are not one-step closed: δ{} scatters piece {i}",
                    op.0
                )));
            }
            rel[i].push(r);
            step[i].push(targets);
        }
    }

    // Baseline rows for the conservative fallback.
    let baseline = crate::flowrel::transitive_flows(sys)?;
    // Piece membership mask per state (pieces may overlap).
    let membership = |code: u64| -> u64 {
        let mut mask = 0u64;
        for (i, sat) in sats.iter().enumerate() {
            if sat.contains(code) {
                mask |= 1 << i;
            }
        }
        mask
    };
    if n_piece > 64 {
        return Err(sd_core::Error::Invalid(
            "at most 64 pieces supported".into(),
        ));
    }

    let mut flows = Relation::new();
    for alpha in sys.universe().objects() {
        // Tracking α through single pieces is sound when every φ-pair
        // differing only at α starts inside a *common* piece; we start
        // the product BFS at those common pieces. If some `=α=`-class
        // straddles pieces with no common one, fall back to the baseline
        // row for this source (conservative, still sound).
        let alpha_set = ObjSet::singleton(alpha);
        let classes = sd_core::depend::classes(sys, phi, &alpha_set)?;
        let mut start_mask = 0u64;
        let mut straddles = false;
        for class in &classes {
            if class.len() < 2 {
                continue;
            }
            let mut common = u64::MAX;
            for s in class {
                common &= membership(s.encode(sys.universe()));
            }
            if common == 0 {
                straddles = true;
                break;
            }
            start_mask |= common;
        }
        if straddles {
            for &(x, y) in baseline.iter() {
                if x == alpha {
                    flows.insert((x, y));
                }
            }
            continue;
        }
        let mut seen = vec![false; n_piece * n_obj];
        let mut queue: Vec<(usize, ObjId)> = Vec::new();
        for i in 0..n_piece {
            if start_mask & (1 << i) != 0 {
                let idx = i * n_obj + alpha.index();
                if !seen[idx] {
                    seen[idx] = true;
                    queue.push((i, alpha));
                }
            }
        }
        let mut reached: BTreeSet<ObjId> = BTreeSet::new();
        reached.insert(alpha);
        while let Some((i, x)) = queue.pop() {
            reached.insert(x);
            for op in sys.op_ids() {
                for &(rx, ry) in rel[i][op.index()].iter() {
                    if rx != x {
                        continue;
                    }
                    for &j in &step[i][op.index()] {
                        let idx = j * n_obj + ry.index();
                        if !seen[idx] {
                            seen[idx] = true;
                            queue.push((j, ry));
                        }
                    }
                }
            }
        }
        for beta in reached {
            flows.insert((alpha, beta));
        }
    }
    Ok(flows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_core::examples;
    use sd_core::Expr;

    #[test]
    fn per_piece_relations_shrink() {
        // Under φ: ¬m, the guarded copy's relation drops α → β.
        let sys = examples::guarded_copy_system(2).unwrap();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let m = u.obj("m").unwrap();
        let free = op_flow_relation_under(&sys, &Phi::True, OpId(0)).unwrap();
        assert!(free.contains(&(a, b)));
        let constrained =
            op_flow_relation_under(&sys, &Phi::expr(Expr::var(m).not()), OpId(0)).unwrap();
        assert!(!constrained.contains(&(a, b)));
        assert!(constrained.is_subset(&free));
    }

    #[test]
    fn cover_resolves_sec_4_4() {
        // With the {q, ¬q} cover, the Millen-style analysis sees that δ1
        // only moves α → m in q-pieces, δ2 only moves m → β in ¬q-pieces,
        // and q never changes — so no piece path composes them. The plain
        // baseline cannot see this.
        let sys = examples::nontransitive_system(2).unwrap();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let q = u.obj("q").unwrap();
        let cover = vec![Phi::expr(Expr::var(q)), Phi::expr(Expr::var(q).not())];
        let refined = cover_sensitive_flows(&sys, &Phi::True, &cover).unwrap();
        assert!(!refined.contains(&(a, b)), "cover separates the variety");
        let baseline = crate::flowrel::transitive_flows(&sys).unwrap();
        assert!(baseline.contains(&(a, b)));
        // Soundness spot checks: real flows survive the refinement.
        let m = u.obj("m").unwrap();
        assert!(refined.contains(&(a, m)));
        assert!(refined.contains(&(m, b)));
    }

    #[test]
    fn trivial_cover_recovers_baseline() {
        // With the trivial cover {tt}, the analysis degenerates to the
        // plain transitive baseline.
        for sys in [
            examples::guarded_copy_system(2).unwrap(),
            examples::nontransitive_system(2).unwrap(),
            examples::m1m2_system(2).unwrap(),
        ] {
            let refined = cover_sensitive_flows(&sys, &Phi::True, &[Phi::True]).unwrap();
            let baseline = crate::flowrel::transitive_flows(&sys).unwrap();
            assert_eq!(refined, baseline);
        }
    }

    #[test]
    fn refinement_is_sound_and_between() {
        // semantic ⊆ cover-sensitive ⊆ baseline, on the oscillator with
        // its natural cover.
        let sys = examples::oscillator_system(5).unwrap();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let phi = Phi::expr(Expr::var(a).eq(Expr::int(5)));
        let cover = vec![
            Phi::expr(Expr::var(a).eq(Expr::int(5))),
            Phi::expr(Expr::var(a).eq(Expr::int(-5))),
        ];
        let refined = cover_sensitive_flows(&sys, &phi, &cover).unwrap();
        let semantic = crate::flowrel::semantic_flows(&sys, &phi).unwrap();
        let baseline = crate::flowrel::transitive_flows(&sys).unwrap();
        for pair in &semantic {
            assert!(refined.contains(pair), "refinement missed {pair:?}");
        }
        for pair in &refined {
            assert!(baseline.contains(pair), "refinement invented {pair:?}");
        }
        // And it is a strict refinement here: the pinned α transmits
        // nothing to β under the cover, while the baseline says it does.
        let b = u.obj("beta").unwrap();
        assert!(!refined.contains(&(a, b)));
        assert!(baseline.contains(&(a, b)));
    }

    #[test]
    fn rejects_non_covering_family() {
        let sys = examples::nontransitive_system(2).unwrap();
        let q = sys.universe().obj("q").unwrap();
        let only_q = vec![Phi::expr(Expr::var(q))];
        assert!(cover_sensitive_flows(&sys, &Phi::True, &only_q).is_err());
    }

    #[test]
    fn non_autonomous_pieces_are_the_limit() {
        // §5.5's system with φ: m1 = m2 — a non-autonomous invariant
        // constraint. The per-object composition misses the real
        // α → β flow (neither m1 nor m2 alone carries it under φ;
        // only the set {m1, m2} does, Thm 5-4), so:
        let sys = examples::m1m2_system(2).unwrap();
        let u = sys.universe();
        let a = u.obj("alpha").unwrap();
        let b = u.obj("beta").unwrap();
        let m1 = u.obj("m1").unwrap();
        let m2 = u.obj("m2").unwrap();
        let phi = Phi::expr(Expr::var(m1).eq(Expr::var(m2)));
        // The real flow exists…
        let semantic = crate::flowrel::semantic_flows(&sys, &phi).unwrap();
        assert!(semantic.contains(&(a, b)));
        // …the unchecked analysis misses it (unsound!)…
        let unchecked =
            cover_sensitive_flows_unchecked(&sys, &phi, std::slice::from_ref(&phi)).unwrap();
        assert!(
            !unchecked.contains(&(a, b)),
            "this is exactly the unsoundness the guard prevents"
        );
        // …and the checked entry point refuses the non-autonomous piece.
        let err = cover_sensitive_flows(&sys, &phi, std::slice::from_ref(&phi)).unwrap_err();
        assert!(err.to_string().contains("not autonomous"));
    }
}
