//! The TCP daemon: accept loop, bounded admission queue, fixed worker
//! pool, graceful shutdown, and the observability hooks around all of
//! it.
//!
//! # Threading model
//!
//! - One **accept thread** polls a non-blocking listener and spawns a
//!   thread per connection (connections are cheap: they block on reads).
//! - Each **connection thread** reads bounded JSON lines, answers
//!   control methods (`ping`, `register`, `stats`, `metrics`,
//!   `slowlog`, `shutdown`) inline, and submits query work to a bounded
//!   [`mpsc::sync_channel`]. A full queue is an immediate `overloaded`
//!   error — the client backs off, the server never buffers unbounded
//!   work.
//! - A **fixed pool** of worker threads drains the queue, runs
//!   [`engine::execute_query`], and replies over a per-request channel.
//!
//! # Observability
//!
//! Every request carries a [`RequestTrace`] from the moment its line is
//! read: parsing, cache probes, registry/compile work, the search,
//! serialisation, and the response write are each timed as phases. The
//! finished trace plus the request's outcome feed
//! [`ServerMetrics::observe_request`], which maintains the counter and
//! histogram families the `metrics` method scrapes and captures
//! requests slower than `--slow-ms` into the `slowlog` ring. Oracle
//! telemetry (compiles, partition cache traffic, memo rows) rolls up
//! through a [`MetricsSink`] wrapped around any user-provided sink.
//!
//! The access log never blocks a request on a slow or broken writer:
//! lines are serialised outside the lock, the lock is held only for the
//! `write_all`, and write failures drop the line and bump
//! `sd_access_log_dropped_total` instead of erroring the request.
//!
//! # Graceful shutdown
//!
//! `shutdown` (request or [`ServeHandle::shutdown`]) flips a flag and
//! closes the job queue's sender side. Workers finish every job already
//! admitted (the drain), then exit; new queries are refused with
//! `shutting_down`; the accept thread stops on its next poll. In-flight
//! requests therefore complete normally while the server drains — the
//! robustness property the e2e tests pin.

use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use sd_core::{CompileBudget, JsonBuf, QueryReport, Sink};

use crate::cache::ResultCache;
use crate::engine::{self, ExecOutcome};
use crate::metrics::{
    Method, MetricsSink, Phase, RequestObs, RequestTrace, ScrapeGauges, ServerMetrics,
};
use crate::proto::{self, ErrorKind, QueryReq, Request, WireError, MAX_FRAME};
use crate::registry::{Registry, SystemEntry};

/// Server tuning knobs. [`Config::default`] is suitable for tests and
/// small deployments: loopback, four workers, a 64-deep queue.
pub struct Config {
    /// Bind address (`"127.0.0.1:0"` picks a free port).
    pub addr: String,
    /// Worker threads executing queries.
    pub workers: usize,
    /// Bounded admission-queue depth; a full queue refuses work.
    pub queue_depth: usize,
    /// Maximum registered systems (entries live for the process).
    pub registry_cap: usize,
    /// Result-cache capacity in answers (0 disables caching).
    pub cache_cap: usize,
    /// Maximum request-line length in bytes.
    pub max_frame: usize,
    /// Cap — and default — for per-request deadlines.
    pub max_timeout: Duration,
    /// Compile budget for registered systems.
    pub budget: CompileBudget,
    /// Telemetry sink observing compiles, searches and cache events.
    pub sink: Option<Arc<dyn Sink>>,
    /// JSON-lines access log (one line per request).
    pub access_log: Option<Box<dyn Write + Send>>,
    /// Requests slower than this land in the slow-query ring (and on
    /// the access log stream when one is configured). 0 captures
    /// everything.
    pub slow_ms: u64,
    /// Slow-query ring capacity (most recent N kept).
    pub slowlog_cap: usize,
    /// Whether metric recording is live. `false` turns every recording
    /// call into a no-op — the A/B baseline for the overhead bench.
    pub metrics: bool,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_depth: 64,
            registry_cap: 16,
            cache_cap: 1024,
            max_frame: MAX_FRAME,
            max_timeout: Duration::from_secs(30),
            budget: CompileBudget::default(),
            sink: None,
            access_log: None,
            slow_ms: 100,
            slowlog_cap: 128,
            metrics: true,
        }
    }
}

/// Aggregate request counters, surfaced by `stats`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Requests parsed (including failed ones).
    pub requests: u64,
    /// Error responses sent.
    pub errors: u64,
    /// Queries currently executing in the worker pool.
    pub inflight: u64,
}

struct Shared {
    registry: Registry,
    cache: ResultCache,
    sink: Option<Arc<dyn Sink>>,
    metrics: Arc<ServerMetrics>,
    access: Option<Mutex<Box<dyn Write + Send>>>,
    max_frame: usize,
    max_timeout: Duration,
    workers: usize,
    shutdown: AtomicBool,
    jobs: Mutex<Option<SyncSender<Job>>>,
    connections: AtomicU64,
    connections_open: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    inflight: AtomicU64,
    queue_depth: AtomicU64,
}

struct Job {
    entry: Arc<SystemEntry>,
    req: QueryReq,
    trace: RequestTrace,
    reply: mpsc::SyncSender<(Result<ExecOutcome, WireError>, RequestTrace)>,
}

/// Everything known about a finished request when it is folded into the
/// metric families and the access log.
struct Done {
    response: String,
    method: Method,
    outcome: Option<ErrorKind>,
    cached: bool,
    cold: bool,
    system: Option<u64>,
    fingerprint: Option<u64>,
    report: Option<QueryReport>,
}

impl Done {
    fn ok(method: Method, response: String) -> Done {
        Done {
            response,
            method,
            outcome: None,
            cached: false,
            cold: false,
            system: None,
            fingerprint: None,
            report: None,
        }
    }

    fn err(method: Method, id: Option<u64>, err: &WireError) -> Done {
        let mut d = Done::ok(method, proto::encode_error(id, err));
        d.outcome = Some(err.kind);
        d
    }
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Closing the sender lets workers drain the queue and exit.
        self.jobs.lock().expect("jobs lock").take();
    }

    fn scrape_gauges(&self) -> ScrapeGauges {
        ScrapeGauges {
            connections_total: self.connections.load(Ordering::SeqCst),
            connections_open: self.connections_open.load(Ordering::SeqCst),
            inflight: self.inflight.load(Ordering::SeqCst),
            queue_depth: self.queue_depth.load(Ordering::SeqCst),
            workers: self.workers as u64,
            cache: self.cache.stats(),
            registry_systems: self.registry.len() as u64,
            registry_cap: self.registry.cap() as u64,
        }
    }

    /// Folds the finished request into the metric families and appends
    /// its access-log line (plus the slow-query line, when it crossed
    /// the threshold). The log write happens on a line serialised
    /// *outside* the lock; a failed or poisoned writer drops the lines
    /// and counts them rather than blocking or erroring the request.
    fn observe_and_log(&self, id: Option<u64>, done: &Done, trace: &RequestTrace) {
        let obs = RequestObs {
            method: done.method,
            id,
            outcome: done.outcome,
            cached: done.cached,
            cold: done.cold,
            system: done.system,
            fingerprint: done.fingerprint,
            report: done.report.as_ref(),
        };
        let slow_line = self.metrics.observe_request(&obs, trace);
        let Some(access) = &self.access else { return };
        let mut j = JsonBuf::new();
        j.begin_obj().str_field("event", "request");
        match id {
            Some(id) => j.u64_field("id", id),
            None => j.null_field("id"),
        };
        j.str_field("method", done.method.as_str());
        match done.outcome {
            None => {
                j.bool_field("ok", true).bool_field("cached", done.cached);
            }
            Some(kind) => {
                j.bool_field("ok", false).str_field("error", kind.as_str());
            }
        }
        j.u64_field("wall_ns", trace.total_ns());
        j.end_obj();
        let mut buf = j.finish();
        buf.push('\n');
        let mut lines = 1u64;
        if let Some(slow) = slow_line {
            buf.push_str(&slow);
            buf.push('\n');
            lines += 1;
        }
        let wrote = match access.lock() {
            Ok(mut out) => out.write_all(buf.as_bytes()).and_then(|()| out.flush()),
            Err(_) => Err(std::io::Error::other("access log lock poisoned")),
        };
        if wrote.is_err() {
            self.metrics.access_log_dropped(lines);
        }
    }
}

/// A handle to a running server: its bound address and the means to
/// stop it.
pub struct ServeHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServeHandle {
    /// Binds, spawns the accept thread and worker pool, and returns
    /// immediately.
    pub fn spawn(cfg: Config) -> std::io::Result<ServeHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let (tx, rx) = mpsc::sync_channel::<Job>(cfg.queue_depth.max(1));
        let metrics = Arc::new(ServerMetrics::new(
            cfg.metrics,
            cfg.slow_ms,
            cfg.slowlog_cap,
        ));
        // Wrap any user sink so Oracle telemetry (compiles, partition
        // traffic, memo rows) also rolls up into the metric families.
        let sink: Option<Arc<dyn Sink>> = if cfg.metrics {
            Some(Arc::new(MetricsSink::new(Arc::clone(&metrics), cfg.sink)))
        } else {
            cfg.sink
        };
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            registry: Registry::new(cfg.registry_cap, cfg.budget, sink.clone()),
            cache: ResultCache::new(cfg.cache_cap),
            sink,
            metrics,
            access: cfg.access_log.map(Mutex::new),
            max_frame: cfg.max_frame,
            max_timeout: cfg.max_timeout,
            workers,
            shutdown: AtomicBool::new(false),
            jobs: Mutex::new(Some(tx)),
            connections: AtomicU64::new(0),
            connections_open: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
        });
        let mut threads = Vec::new();
        // Worker pool: shared receiver behind a mutex (std mpsc is
        // single-consumer; the hand-off cost is dwarfed by the search).
        let rx = Arc::new(Mutex::new(rx));
        for _ in 0..workers {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || worker_loop(&rx, &shared)));
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || accept_loop(listener, &shared)));
        }
        Ok(ServeHandle {
            addr,
            shared,
            threads,
        })
    }

    /// The bound socket address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry, for in-process inspection in tests.
    pub fn registry(&self) -> &Registry {
        &self.shared.registry
    }

    /// Result-cache counters.
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.shared.cache.stats()
    }

    /// The server's metric families, for in-process inspection in tests
    /// and the load bench.
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Begins graceful shutdown and joins the accept thread and worker
    /// pool (queued queries complete first). Connection threads exit as
    /// their clients disconnect or issue their next request.
    pub fn shutdown(mut self) {
        self.shared.begin_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Blocks until the server shuts down (via a `shutdown` request).
    pub fn wait(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn worker_loop(rx: &Arc<Mutex<mpsc::Receiver<Job>>>, shared: &Arc<Shared>) {
    loop {
        let mut job = match rx.lock().expect("worker rx lock").recv() {
            Ok(job) => job,
            Err(_) => return, // sender closed: drained, exit
        };
        shared.queue_depth.fetch_sub(1, Ordering::SeqCst);
        shared.inflight.fetch_add(1, Ordering::SeqCst);
        let result = engine::execute_query(
            &job.entry,
            &shared.cache,
            shared.sink.as_ref(),
            &job.req,
            shared.max_timeout,
            &mut job.trace,
        );
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
        let _ = job.reply.send((result, job.trace));
    }
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    loop {
        if shared.shutting_down() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                // One request-response per round trip: Nagle + delayed
                // ACK would add ~40ms to every reply.
                stream.set_nodelay(true).ok();
                shared.connections.fetch_add(1, Ordering::SeqCst);
                shared.connections_open.fetch_add(1, Ordering::SeqCst);
                let shared = Arc::clone(shared);
                std::thread::spawn(move || {
                    let _ = serve_conn(stream, &shared);
                    shared.connections_open.fetch_sub(1, Ordering::SeqCst);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Reads one newline-terminated line of at most `max` bytes. Returns
/// `Ok(None)` on a clean EOF, `Err(Some(err))` when the line was too
/// long (the rest of the line is consumed so the connection stays
/// usable).
fn read_bounded_line(
    reader: &mut BufReader<TcpStream>,
    max: usize,
) -> std::io::Result<Result<Option<String>, WireError>> {
    let mut buf: Vec<u8> = Vec::new();
    let mut overflow = false;
    loop {
        let mut byte = [0u8; 1];
        let n = loop {
            match reader.read(&mut byte) {
                Ok(n) => break n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        if n == 0 {
            if buf.is_empty() && !overflow {
                return Ok(Ok(None));
            }
            break;
        }
        if byte[0] == b'\n' {
            break;
        }
        if buf.len() >= max {
            overflow = true;
            buf.clear(); // keep consuming to the newline, discard payload
            continue;
        }
        buf.push(byte[0]);
    }
    if overflow {
        return Ok(Err(WireError::new(
            ErrorKind::TooLarge,
            format!("frame exceeds limit of {max} bytes"),
        )));
    }
    match String::from_utf8(buf) {
        Ok(mut s) => {
            if s.ends_with('\r') {
                s.pop();
            }
            Ok(Ok(Some(s)))
        }
        Err(_) => Ok(Err(WireError::new(
            ErrorKind::Parse,
            "request is not valid UTF-8",
        ))),
    }
}

fn put_id(j: &mut JsonBuf, id: Option<u64>) {
    match id {
        Some(id) => j.u64_field("id", id),
        None => j.null_field("id"),
    };
}

fn flag_response(id: Option<u64>, flag: &str) -> String {
    let mut j = JsonBuf::new();
    j.begin_obj();
    put_id(&mut j, id);
    j.bool_field("ok", true).bool_field(flag, true).end_obj();
    j.finish()
}

fn stats_response(shared: &Shared, id: Option<u64>) -> String {
    let cache = shared.cache.stats();
    let mut j = JsonBuf::new();
    j.begin_obj();
    put_id(&mut j, id);
    j.bool_field("ok", true);
    j.begin_obj_field("cache")
        .u64_field("hits", cache.hits)
        .u64_field("misses", cache.misses)
        .u64_field("insertions", cache.insertions)
        .u64_field("evictions", cache.evictions)
        .u64_field("entries", cache.entries)
        .u64_field("capacity", cache.capacity)
        .end_obj();
    j.u64_field("connections", shared.connections.load(Ordering::SeqCst))
        .u64_field("requests", shared.requests.load(Ordering::SeqCst))
        .u64_field("errors", shared.errors.load(Ordering::SeqCst))
        .u64_field("inflight", shared.inflight.load(Ordering::SeqCst));
    j.begin_arr_field("systems");
    for (key, desc) in shared.registry.list() {
        j.begin_obj()
            .u64_field("system", key)
            .str_field("desc", &desc)
            .end_obj();
    }
    j.end_arr();
    j.end_obj();
    j.finish()
}

fn metrics_response(shared: &Shared, id: Option<u64>, prom: bool) -> String {
    let gauges = shared.scrape_gauges();
    let mut j = JsonBuf::new();
    j.begin_obj();
    put_id(&mut j, id);
    j.bool_field("ok", true);
    if prom {
        j.str_field("format", "prometheus");
        j.str_field("text", &shared.metrics.render_prom(&gauges));
    } else {
        j.begin_obj_field("metrics");
        shared.metrics.json_fields(&gauges, &mut j);
        j.end_obj();
    }
    j.end_obj();
    j.finish()
}

fn slowlog_response(shared: &Shared, id: Option<u64>, limit: Option<u64>) -> String {
    let limit = limit.map_or(usize::MAX, |l| usize::try_from(l).unwrap_or(usize::MAX));
    let entries = shared.metrics.slowlog_tail(limit);
    let mut j = JsonBuf::new();
    j.begin_obj();
    put_id(&mut j, id);
    j.bool_field("ok", true);
    j.begin_arr_field("entries");
    for e in &entries {
        j.raw_elem(&e.to_json());
    }
    j.end_arr();
    j.end_obj();
    j.finish()
}

fn register_response(id: Option<u64>, entry: &SystemEntry, fresh: bool) -> String {
    let u = entry.system.universe();
    let mut j = JsonBuf::new();
    j.begin_obj();
    put_id(&mut j, id);
    j.bool_field("ok", true)
        .u64_field("system", entry.key)
        .str_field("desc", &entry.desc)
        .bool_field("fresh", fresh);
    j.begin_arr_field("objects");
    for obj in u.objects() {
        j.str_elem(u.name(obj));
    }
    j.end_arr();
    j.end_obj();
    j.finish()
}

fn handle_register(
    shared: &Shared,
    id: Option<u64>,
    desc: &proto::SystemDesc,
    trace: &mut RequestTrace,
) -> Done {
    if shared.shutting_down() {
        let err = WireError::new(ErrorKind::ShuttingDown, "server is draining");
        return Done::err(Method::Register, id, &err);
    }
    // Registration *is* the compile phase: a fresh description parses
    // and compiles under the registry lock.
    match trace.time(Phase::Compile, || shared.registry.register(desc)) {
        Ok((entry, fresh)) => {
            let response = trace.time(Phase::Serialize, || register_response(id, &entry, fresh));
            let mut d = Done::ok(Method::Register, response);
            d.cold = fresh;
            d.system = Some(entry.key);
            d
        }
        Err(err) => Done::err(Method::Register, id, &err),
    }
}

fn handle_query(shared: &Shared, id: Option<u64>, req: QueryReq, trace: &mut RequestTrace) -> Done {
    let method = Method::from_kind(req.kind);
    if shared.shutting_down() {
        let err = WireError::new(ErrorKind::ShuttingDown, "server is draining");
        return Done::err(method, id, &err);
    }
    let system = req.system;
    let Some(entry) = shared.registry.get(system) else {
        let err = WireError::new(
            ErrorKind::UnknownSystem,
            format!("system {system} is not registered"),
        );
        return Done::err(method, id, &err);
    };
    let (reply_tx, reply_rx) = mpsc::sync_channel(1);
    // The trace travels with the job so worker-side phases (cache,
    // compile, search, serialize) land on this request; it comes back
    // with the reply. `take` leaves a fresh trace behind, immediately
    // overwritten on every path below.
    let job = Job {
        entry,
        req,
        trace: std::mem::take(trace),
        reply: reply_tx,
    };
    shared.queue_depth.fetch_add(1, Ordering::SeqCst);
    let submit = {
        let guard = shared.jobs.lock().expect("jobs lock");
        match &*guard {
            Some(tx) => tx.try_send(job),
            None => Err(TrySendError::Disconnected(job)),
        }
    };
    let err = match submit {
        Ok(()) => match reply_rx.recv() {
            Ok((Ok(out), t)) => {
                *trace = t;
                let response = trace.time(Phase::Serialize, || {
                    proto::encode_query_ok(id, &out.answer, out.cached, out.report.as_ref())
                });
                let mut d = Done::ok(method, response);
                d.cached = out.cached;
                d.cold = !out.cached;
                d.system = Some(system);
                d.fingerprint = out.fingerprint;
                d.report = out.report;
                return d;
            }
            Ok((Err(err), t)) => {
                *trace = t;
                err
            }
            Err(_) => WireError::new(ErrorKind::ShuttingDown, "worker pool stopped"),
        },
        Err(TrySendError::Full(job)) => {
            shared.queue_depth.fetch_sub(1, Ordering::SeqCst);
            *trace = job.trace;
            WireError::new(ErrorKind::Overloaded, "admission queue full; retry later")
        }
        Err(TrySendError::Disconnected(job)) => {
            shared.queue_depth.fetch_sub(1, Ordering::SeqCst);
            *trace = job.trace;
            WireError::new(ErrorKind::ShuttingDown, "server is draining")
        }
    };
    let mut d = Done::err(method, id, &err);
    d.system = Some(system);
    d
}

fn serve_conn(stream: TcpStream, shared: &Arc<Shared>) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        // The trace clock starts once a line has arrived: time blocked
        // on the client is not request time.
        let (line, mut trace) = match read_bounded_line(&mut reader, shared.max_frame)? {
            Ok(None) => return Ok(()), // clean disconnect
            Ok(Some(line)) => (line, RequestTrace::start()),
            Err(err) => {
                let mut trace = RequestTrace::start();
                shared.requests.fetch_add(1, Ordering::SeqCst);
                shared.errors.fetch_add(1, Ordering::SeqCst);
                let done = Done::err(Method::Unknown, None, &err);
                let wres = trace.time(Phase::Write, || writeln!(writer, "{}", done.response));
                shared.observe_and_log(None, &done, &trace);
                wres?;
                continue;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        shared.requests.fetch_add(1, Ordering::SeqCst);
        let frame = match trace.time(Phase::Parse, || proto::parse_frame(&line)) {
            Ok(frame) => frame,
            Err(err) => {
                shared.errors.fetch_add(1, Ordering::SeqCst);
                let done = Done::err(Method::Unknown, None, &err);
                let wres = trace.time(Phase::Write, || writeln!(writer, "{}", done.response));
                shared.observe_and_log(None, &done, &trace);
                wres?;
                continue;
            }
        };
        let id = frame.id;
        let done = match frame.req {
            Request::Ping => Done::ok(Method::Ping, flag_response(id, "pong")),
            Request::Stats => Done::ok(
                Method::Stats,
                trace.time(Phase::Serialize, || stats_response(shared, id)),
            ),
            Request::Metrics { prom } => Done::ok(
                Method::Metrics,
                trace.time(Phase::Serialize, || metrics_response(shared, id, prom)),
            ),
            Request::SlowLog { limit } => Done::ok(
                Method::SlowLog,
                trace.time(Phase::Serialize, || slowlog_response(shared, id, limit)),
            ),
            Request::Shutdown => {
                shared.begin_shutdown();
                Done::ok(Method::Shutdown, flag_response(id, "shutting_down"))
            }
            Request::Register(desc) => handle_register(shared, id, &desc, &mut trace),
            Request::Query(q) => handle_query(shared, id, q, &mut trace),
        };
        if done.outcome.is_some() {
            shared.errors.fetch_add(1, Ordering::SeqCst);
        }
        let wres = trace.time(Phase::Write, || writeln!(writer, "{}", done.response));
        // Observe after the write so the trace's write phase and total
        // cover the full request. A scrape therefore does not count
        // itself — the mix a test issues is exactly what it reads back.
        shared.observe_and_log(id, &done, &trace);
        wres?;
    }
}
