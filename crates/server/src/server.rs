//! The TCP daemon: accept loop, bounded admission queue, fixed worker
//! pool, graceful shutdown.
//!
//! # Threading model
//!
//! - One **accept thread** polls a non-blocking listener and spawns a
//!   thread per connection (connections are cheap: they block on reads).
//! - Each **connection thread** reads bounded JSON lines, answers
//!   control methods (`ping`, `register`, `stats`, `shutdown`) inline,
//!   and submits query work to a bounded [`mpsc::sync_channel`]. A full
//!   queue is an immediate `overloaded` error — the client backs off,
//!   the server never buffers unbounded work.
//! - A **fixed pool** of worker threads drains the queue, runs
//!   [`engine::execute_query`], and replies over a per-request channel.
//!
//! # Graceful shutdown
//!
//! `shutdown` (request or [`ServeHandle::shutdown`]) flips a flag and
//! closes the job queue's sender side. Workers finish every job already
//! admitted (the drain), then exit; new queries are refused with
//! `shutting_down`; the accept thread stops on its next poll. In-flight
//! requests therefore complete normally while the server drains — the
//! robustness property the e2e tests pin.

use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sd_core::{CompileBudget, JsonBuf, Sink};

use crate::cache::ResultCache;
use crate::engine::{self, ExecOutcome};
use crate::proto::{self, ErrorKind, QueryReq, Request, WireError, MAX_FRAME};
use crate::registry::{Registry, SystemEntry};

/// Server tuning knobs. [`Config::default`] is suitable for tests and
/// small deployments: loopback, four workers, a 64-deep queue.
pub struct Config {
    /// Bind address (`"127.0.0.1:0"` picks a free port).
    pub addr: String,
    /// Worker threads executing queries.
    pub workers: usize,
    /// Bounded admission-queue depth; a full queue refuses work.
    pub queue_depth: usize,
    /// Maximum registered systems (entries live for the process).
    pub registry_cap: usize,
    /// Result-cache capacity in answers (0 disables caching).
    pub cache_cap: usize,
    /// Maximum request-line length in bytes.
    pub max_frame: usize,
    /// Cap — and default — for per-request deadlines.
    pub max_timeout: Duration,
    /// Compile budget for registered systems.
    pub budget: CompileBudget,
    /// Telemetry sink observing compiles, searches and cache events.
    pub sink: Option<Arc<dyn Sink>>,
    /// JSON-lines access log (one line per request).
    pub access_log: Option<Box<dyn Write + Send>>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_depth: 64,
            registry_cap: 16,
            cache_cap: 1024,
            max_frame: MAX_FRAME,
            max_timeout: Duration::from_secs(30),
            budget: CompileBudget::default(),
            sink: None,
            access_log: None,
        }
    }
}

/// Aggregate request counters, surfaced by `stats`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Requests parsed (including failed ones).
    pub requests: u64,
    /// Error responses sent.
    pub errors: u64,
    /// Queries currently executing in the worker pool.
    pub inflight: u64,
}

struct Shared {
    registry: Registry,
    cache: ResultCache,
    sink: Option<Arc<dyn Sink>>,
    access: Option<Mutex<Box<dyn Write + Send>>>,
    max_frame: usize,
    max_timeout: Duration,
    shutdown: AtomicBool,
    jobs: Mutex<Option<SyncSender<Job>>>,
    connections: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    inflight: AtomicU64,
}

struct Job {
    entry: Arc<SystemEntry>,
    req: QueryReq,
    reply: mpsc::SyncSender<Result<ExecOutcome, WireError>>,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Closing the sender lets workers drain the queue and exit.
        self.jobs.lock().expect("jobs lock").take();
    }

    fn log_access(&self, method: &str, id: Option<u64>, outcome: &RequestLog) {
        let Some(access) = &self.access else { return };
        let mut j = JsonBuf::new();
        j.begin_obj().str_field("event", "request");
        match id {
            Some(id) => j.u64_field("id", id),
            None => j.null_field("id"),
        };
        j.str_field("method", method);
        match outcome {
            RequestLog::Ok { cached, wall_ns } => {
                j.bool_field("ok", true).bool_field("cached", *cached);
                j.u64_field("wall_ns", *wall_ns);
            }
            RequestLog::Err { kind } => {
                j.bool_field("ok", false).str_field("error", kind.as_str());
            }
        }
        j.end_obj();
        let mut out = access.lock().expect("access log lock");
        let _ = writeln!(out, "{}", j.finish());
        let _ = out.flush();
    }
}

enum RequestLog {
    Ok { cached: bool, wall_ns: u64 },
    Err { kind: ErrorKind },
}

/// A handle to a running server: its bound address and the means to
/// stop it.
pub struct ServeHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServeHandle {
    /// Binds, spawns the accept thread and worker pool, and returns
    /// immediately.
    pub fn spawn(cfg: Config) -> std::io::Result<ServeHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let (tx, rx) = mpsc::sync_channel::<Job>(cfg.queue_depth.max(1));
        let shared = Arc::new(Shared {
            registry: Registry::new(cfg.registry_cap, cfg.budget, cfg.sink.clone()),
            cache: ResultCache::new(cfg.cache_cap),
            sink: cfg.sink,
            access: cfg.access_log.map(Mutex::new),
            max_frame: cfg.max_frame,
            max_timeout: cfg.max_timeout,
            shutdown: AtomicBool::new(false),
            jobs: Mutex::new(Some(tx)),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
        });
        let mut threads = Vec::new();
        // Worker pool: shared receiver behind a mutex (std mpsc is
        // single-consumer; the hand-off cost is dwarfed by the search).
        let rx = Arc::new(Mutex::new(rx));
        for _ in 0..cfg.workers.max(1) {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || worker_loop(&rx, &shared)));
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || accept_loop(listener, &shared)));
        }
        Ok(ServeHandle {
            addr,
            shared,
            threads,
        })
    }

    /// The bound socket address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry, for in-process inspection in tests.
    pub fn registry(&self) -> &Registry {
        &self.shared.registry
    }

    /// Result-cache counters.
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.shared.cache.stats()
    }

    /// Begins graceful shutdown and joins the accept thread and worker
    /// pool (queued queries complete first). Connection threads exit as
    /// their clients disconnect or issue their next request.
    pub fn shutdown(mut self) {
        self.shared.begin_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Blocks until the server shuts down (via a `shutdown` request).
    pub fn wait(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn worker_loop(rx: &Arc<Mutex<mpsc::Receiver<Job>>>, shared: &Arc<Shared>) {
    loop {
        let job = match rx.lock().expect("worker rx lock").recv() {
            Ok(job) => job,
            Err(_) => return, // sender closed: drained, exit
        };
        shared.inflight.fetch_add(1, Ordering::SeqCst);
        let result = engine::execute_query(
            &job.entry,
            &shared.cache,
            shared.sink.as_ref(),
            &job.req,
            shared.max_timeout,
        );
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
        let _ = job.reply.send(result);
    }
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    loop {
        if shared.shutting_down() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                // One request-response per round trip: Nagle + delayed
                // ACK would add ~40ms to every reply.
                stream.set_nodelay(true).ok();
                shared.connections.fetch_add(1, Ordering::SeqCst);
                let shared = Arc::clone(shared);
                std::thread::spawn(move || {
                    let _ = serve_conn(stream, &shared);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Reads one newline-terminated line of at most `max` bytes. Returns
/// `Ok(None)` on a clean EOF, `Err(Some(err))` when the line was too
/// long (the rest of the line is consumed so the connection stays
/// usable).
fn read_bounded_line(
    reader: &mut BufReader<TcpStream>,
    max: usize,
) -> std::io::Result<Result<Option<String>, WireError>> {
    let mut buf: Vec<u8> = Vec::new();
    let mut overflow = false;
    loop {
        let mut byte = [0u8; 1];
        let n = loop {
            match reader.read(&mut byte) {
                Ok(n) => break n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        if n == 0 {
            if buf.is_empty() && !overflow {
                return Ok(Ok(None));
            }
            break;
        }
        if byte[0] == b'\n' {
            break;
        }
        if buf.len() >= max {
            overflow = true;
            buf.clear(); // keep consuming to the newline, discard payload
            continue;
        }
        buf.push(byte[0]);
    }
    if overflow {
        return Ok(Err(WireError::new(
            ErrorKind::TooLarge,
            format!("frame exceeds limit of {max} bytes"),
        )));
    }
    match String::from_utf8(buf) {
        Ok(mut s) => {
            if s.ends_with('\r') {
                s.pop();
            }
            Ok(Ok(Some(s)))
        }
        Err(_) => Ok(Err(WireError::new(
            ErrorKind::Parse,
            "request is not valid UTF-8",
        ))),
    }
}

fn stats_response(shared: &Shared, id: Option<u64>) -> String {
    let cache = shared.cache.stats();
    let mut j = JsonBuf::new();
    j.begin_obj();
    match id {
        Some(id) => j.u64_field("id", id),
        None => j.null_field("id"),
    };
    j.bool_field("ok", true);
    j.begin_obj_field("cache")
        .u64_field("hits", cache.hits)
        .u64_field("misses", cache.misses)
        .u64_field("insertions", cache.insertions)
        .u64_field("evictions", cache.evictions)
        .u64_field("entries", cache.entries)
        .u64_field("capacity", cache.capacity)
        .end_obj();
    j.u64_field("connections", shared.connections.load(Ordering::SeqCst))
        .u64_field("requests", shared.requests.load(Ordering::SeqCst))
        .u64_field("errors", shared.errors.load(Ordering::SeqCst))
        .u64_field("inflight", shared.inflight.load(Ordering::SeqCst));
    j.begin_arr_field("systems");
    for (key, desc) in shared.registry.list() {
        j.begin_obj()
            .u64_field("system", key)
            .str_field("desc", &desc)
            .end_obj();
    }
    j.end_arr();
    j.end_obj();
    j.finish()
}

fn register_response(shared: &Shared, id: Option<u64>, entry: &SystemEntry) -> String {
    let u = entry.system.universe();
    let mut j = JsonBuf::new();
    j.begin_obj();
    match id {
        Some(id) => j.u64_field("id", id),
        None => j.null_field("id"),
    };
    j.bool_field("ok", true)
        .u64_field("system", entry.key)
        .str_field("desc", &entry.desc);
    j.begin_arr_field("objects");
    for obj in u.objects() {
        j.str_elem(u.name(obj));
    }
    j.end_arr();
    j.end_obj();
    let _ = shared; // symmetric signature with stats_response
    j.finish()
}

fn handle_query(shared: &Shared, id: Option<u64>, req: QueryReq) -> (String, RequestLog) {
    if shared.shutting_down() {
        let err = WireError::new(ErrorKind::ShuttingDown, "server is draining");
        return (
            proto::encode_error(id, &err),
            RequestLog::Err { kind: err.kind },
        );
    }
    let Some(entry) = shared.registry.get(req.system) else {
        let err = WireError::new(
            ErrorKind::UnknownSystem,
            format!("system {} is not registered", req.system),
        );
        return (
            proto::encode_error(id, &err),
            RequestLog::Err { kind: err.kind },
        );
    };
    let (reply_tx, reply_rx) = mpsc::sync_channel(1);
    let job = Job {
        entry,
        req,
        reply: reply_tx,
    };
    let submit = {
        let guard = shared.jobs.lock().expect("jobs lock");
        match &*guard {
            Some(tx) => tx.try_send(job),
            None => Err(TrySendError::Disconnected(job)),
        }
    };
    let err = match submit {
        Ok(()) => match reply_rx.recv() {
            Ok(Ok(out)) => {
                let line = proto::encode_query_ok(id, &out.answer, out.cached, out.report.as_ref());
                let wall_ns = out.report.map_or(0, |r| r.wall_ns);
                return (
                    line,
                    RequestLog::Ok {
                        cached: out.cached,
                        wall_ns,
                    },
                );
            }
            Ok(Err(err)) => err,
            Err(_) => WireError::new(ErrorKind::ShuttingDown, "worker pool stopped"),
        },
        Err(TrySendError::Full(_)) => {
            WireError::new(ErrorKind::Overloaded, "admission queue full; retry later")
        }
        Err(TrySendError::Disconnected(_)) => {
            WireError::new(ErrorKind::ShuttingDown, "server is draining")
        }
    };
    (
        proto::encode_error(id, &err),
        RequestLog::Err { kind: err.kind },
    )
}

fn serve_conn(stream: TcpStream, shared: &Arc<Shared>) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_bounded_line(&mut reader, shared.max_frame)? {
            Ok(None) => return Ok(()), // clean disconnect
            Ok(Some(line)) => line,
            Err(err) => {
                shared.requests.fetch_add(1, Ordering::SeqCst);
                shared.errors.fetch_add(1, Ordering::SeqCst);
                shared.log_access("?", None, &RequestLog::Err { kind: err.kind });
                writeln!(writer, "{}", proto::encode_error(None, &err))?;
                continue;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        shared.requests.fetch_add(1, Ordering::SeqCst);
        let start = Instant::now();
        let frame = match proto::parse_frame(&line) {
            Ok(frame) => frame,
            Err(err) => {
                shared.errors.fetch_add(1, Ordering::SeqCst);
                shared.log_access("?", None, &RequestLog::Err { kind: err.kind });
                writeln!(writer, "{}", proto::encode_error(None, &err))?;
                continue;
            }
        };
        let id = frame.id;
        let (response, log, method) = match frame.req {
            Request::Ping => {
                let mut j = JsonBuf::new();
                j.begin_obj();
                match id {
                    Some(id) => j.u64_field("id", id),
                    None => j.null_field("id"),
                };
                j.bool_field("ok", true).bool_field("pong", true).end_obj();
                (
                    j.finish(),
                    RequestLog::Ok {
                        cached: false,
                        wall_ns: start.elapsed().as_nanos() as u64,
                    },
                    "ping",
                )
            }
            Request::Stats => (
                stats_response(shared, id),
                RequestLog::Ok {
                    cached: false,
                    wall_ns: start.elapsed().as_nanos() as u64,
                },
                "stats",
            ),
            Request::Shutdown => {
                shared.begin_shutdown();
                let mut j = JsonBuf::new();
                j.begin_obj();
                match id {
                    Some(id) => j.u64_field("id", id),
                    None => j.null_field("id"),
                };
                j.bool_field("ok", true)
                    .bool_field("shutting_down", true)
                    .end_obj();
                (
                    j.finish(),
                    RequestLog::Ok {
                        cached: false,
                        wall_ns: start.elapsed().as_nanos() as u64,
                    },
                    "shutdown",
                )
            }
            Request::Register(desc) => {
                if shared.shutting_down() {
                    let err = WireError::new(ErrorKind::ShuttingDown, "server is draining");
                    (
                        proto::encode_error(id, &err),
                        RequestLog::Err { kind: err.kind },
                        "register",
                    )
                } else {
                    match shared.registry.register(&desc) {
                        Ok(entry) => (
                            register_response(shared, id, &entry),
                            RequestLog::Ok {
                                cached: false,
                                wall_ns: start.elapsed().as_nanos() as u64,
                            },
                            "register",
                        ),
                        Err(err) => (
                            proto::encode_error(id, &err),
                            RequestLog::Err { kind: err.kind },
                            "register",
                        ),
                    }
                }
            }
            Request::Query(q) => {
                let method = q.kind.method();
                let (response, log) = handle_query(shared, id, q);
                (response, log, method)
            }
        };
        if matches!(log, RequestLog::Err { .. }) {
            shared.errors.fetch_add(1, Ordering::SeqCst);
        }
        shared.log_access(method, id, &log);
        writeln!(writer, "{response}")?;
    }
}
