//! A concurrent strong-dependency query service.
//!
//! `sd-server` turns the workspace's compile-once [`sd_core::Oracle`]
//! sessions into a long-running daemon: systems are registered once
//! (parsed/compiled once, keyed by content hash), then any number of
//! clients ask `depends` / `sinks` / `sinks_matrix` questions over a
//! JSON-lines TCP protocol. The paper's framing (§7.4) treats the
//! dependency analysis as something one *consults* about a fixed
//! system; this crate is that consultation made operational.
//!
//! The crate is std-only (the build is offline): `std::net` + threads,
//! no async runtime, no serialisation framework. Structure:
//!
//! - [`wire`] — strict JSON reading (writing uses [`sd_core::JsonBuf`],
//!   the workspace's single escaper);
//! - [`proto`] — request/response frames, error kinds, size limits, and
//!   the canonical answer encoding;
//! - [`registry`] — content-hash-keyed systems, one shared
//!   [`sd_core::Oracle`] each, compiled exactly once;
//! - [`cache`] — an LRU over canonical query fingerprints
//!   ([`sd_core::Query::fingerprint`]) storing serialised answers, so
//!   repeat queries replay byte-identically without searching;
//! - [`engine`] — the pure request-execution path (resolve, lower φ,
//!   fingerprint, cache, run, serialise);
//! - [`metrics`] — server observability: per-method/per-outcome request
//!   counters, cold/warm latency histograms, six-phase request traces,
//!   rolled-up query-cost counters, the slow-query ring, and the
//!   Prometheus/JSON scrape renderers;
//! - [`server`] — the TCP daemon: bounded admission queue, fixed worker
//!   pool, per-request deadlines/budgets, graceful draining shutdown,
//!   JSON-lines access log;
//! - [`client`] — a blocking client library (used by `sdcheck client`
//!   and the load-generator bench).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod engine;
pub mod metrics;
pub mod proto;
pub mod registry;
pub mod server;
pub mod wire;

pub use crate::cache::{CacheStats, ResultCache};
pub use crate::client::{Client, ClientError};
pub use crate::metrics::{
    Method, MetricsSink, Phase, RequestObs, RequestTrace, ScrapeGauges, ServerMetrics, SlowEntry,
};
pub use crate::proto::{
    ErrorKind, Frame, QueryKind, QueryReq, Request, ResponseFrame, SystemDesc, WireError, MAX_FRAME,
};
pub use crate::registry::{Registry, SystemEntry};
pub use crate::server::{Config, ServeHandle, ServerStats};
pub use crate::wire::Json;
