//! Pure query execution: one request against one registered system.
//!
//! This layer is deliberately free of I/O and threading so the whole
//! request path — name resolution, φ lowering, fingerprinting, cache
//! lookup, query run, answer serialisation — is testable in-process.
//! The TCP server calls [`execute_query`] from its worker pool.

use std::sync::Arc;
use std::time::Duration;

use sd_core::{Error, ObjSet, Phi, Query, QueryEvent, QueryReport, Sink};
use sd_lang::lower_phi;

use crate::cache::ResultCache;
use crate::metrics::{Phase, RequestTrace};
use crate::proto::{self, ErrorKind, QueryKind, QueryReq, WireError};
use crate::registry::SystemEntry;

/// The result of executing one query request.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// The serialised answer value (spliced into the response).
    pub answer: Arc<str>,
    /// Whether it came from the result cache.
    pub cached: bool,
    /// The canonical fingerprint, when the query was fingerprintable.
    pub fingerprint: Option<u64>,
    /// The cost report — `None` on cache hits (no search ran).
    pub report: Option<QueryReport>,
}

fn resolve_set(entry: &SystemEntry, names: &[String]) -> Result<ObjSet, WireError> {
    let u = entry.system.universe();
    let mut set = ObjSet::empty();
    for name in names {
        let obj = u
            .obj(name)
            .map_err(|_| WireError::new(ErrorKind::Invalid, format!("unknown object `{name}`")))?;
        set.insert(obj);
    }
    Ok(set)
}

fn core_error(e: Error) -> WireError {
    let kind = match e {
        Error::DeadlineExceeded => ErrorKind::Timeout,
        Error::BudgetExhausted { .. } => ErrorKind::Budget,
        _ => ErrorKind::Invalid,
    };
    WireError::new(kind, e.to_string())
}

/// Builds the [`Query`] a request denotes, with limits applied.
fn build_query(
    entry: &SystemEntry,
    req: &QueryReq,
    max_timeout: Duration,
) -> Result<Query, WireError> {
    let u = entry.system.universe();
    let phi = match req.phi.as_deref() {
        None | Some("") => Phi::True,
        Some(src) => lower_phi(u, src)
            .map_err(|e| WireError::new(ErrorKind::Invalid, format!("bad phi: {e}")))?,
    };
    let mut q = match req.kind {
        QueryKind::SinksMatrix => {
            let sources = req
                .sources
                .iter()
                .map(|row| resolve_set(entry, row))
                .collect::<Result<Vec<ObjSet>, WireError>>()?;
            Query::matrix(phi, sources)
        }
        QueryKind::Sinks => Query::new(phi, resolve_set(entry, &req.a)?),
        QueryKind::Depends => {
            let q = Query::new(phi, resolve_set(entry, &req.a)?);
            match (&req.beta, req.set.is_empty()) {
                (Some(beta), true) => {
                    let obj = u.obj(beta).map_err(|_| {
                        WireError::new(ErrorKind::Invalid, format!("unknown object `{beta}`"))
                    })?;
                    q.beta(obj)
                }
                (None, false) => q.set(resolve_set(entry, &req.set)?),
                _ => {
                    return Err(WireError::new(
                        ErrorKind::Protocol,
                        "depends needs exactly one of `beta` or `set`",
                    ))
                }
            }
        }
    };
    if let Some(b) = req.bound {
        q = q.bounded(b);
    }
    let timeout = req
        .timeout_ms
        .map(Duration::from_millis)
        .map_or(max_timeout, |t| t.min(max_timeout));
    q = q.timeout(timeout);
    if let Some(m) = req.max_pairs {
        q = q.max_pairs(m);
    }
    Ok(q)
}

/// Executes one query request against a registered system: fingerprint
/// → cache lookup → (on miss) run on the shared Oracle → cache fill.
///
/// `max_timeout` caps (and defaults) the per-request deadline — the
/// server's robustness floor against requests that would otherwise pin
/// a worker forever.
///
/// `trace` attributes the stage costs to request phases: query
/// construction (φ lowering, name resolution) is `compile`, the
/// fingerprint probe is `cache`, the pair search is `search`, and
/// answer encoding is `serialize`. Any fresh successor-table compile
/// triggered inside `Query::run` lands in `search` here; the dedicated
/// compile accounting for it comes from the telemetry stream
/// (`CompileFinish.wall_ns`) instead, which is why `QueryReport.wall_ns`
/// excluding compile time no longer loses information at the server.
pub fn execute_query(
    entry: &SystemEntry,
    cache: &ResultCache,
    sink: Option<&Arc<dyn Sink>>,
    req: &QueryReq,
    max_timeout: Duration,
    trace: &mut RequestTrace,
) -> Result<ExecOutcome, WireError> {
    let q = trace.time(Phase::Compile, || build_query(entry, req, max_timeout))?;
    let fingerprint = q.fingerprint();
    if let Some(fp) = fingerprint {
        let key = (u128::from(entry.key) << 64) | u128::from(fp);
        if let Some(answer) = trace.time(Phase::Cache, || cache.get(key)) {
            if let Some(s) = sink {
                s.record(&QueryEvent::ResultCacheHit { key: fp });
            }
            return Ok(ExecOutcome {
                answer,
                cached: true,
                fingerprint,
                report: None,
            });
        }
        if let Some(s) = sink {
            s.record(&QueryEvent::ResultCacheMiss { key: fp });
        }
    }
    let outcome = trace
        .time(Phase::Search, || q.run(&entry.oracle))
        .map_err(core_error)?;
    let answer: Arc<str> = trace.time(Phase::Serialize, || {
        Arc::from(proto::encode_answer(entry.system, &outcome))
    });
    if let Some(fp) = fingerprint {
        let key = (u128::from(entry.key) << 64) | u128::from(fp);
        trace.time(Phase::Cache, || cache.insert(key, Arc::clone(&answer)));
    }
    Ok(ExecOutcome {
        answer,
        cached: false,
        fingerprint,
        report: Some(outcome.report),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::SystemDesc;
    use crate::registry::Registry;
    use sd_core::CompileBudget;

    fn entry() -> Arc<SystemEntry> {
        let reg = Registry::new(4, CompileBudget::default(), None);
        reg.register(&SystemDesc::Example {
            name: "guarded_copy".into(),
            params: vec![2],
        })
        .unwrap()
        .0
    }

    fn run(
        entry: &SystemEntry,
        cache: &ResultCache,
        req: &QueryReq,
    ) -> Result<ExecOutcome, WireError> {
        let mut trace = RequestTrace::start();
        execute_query(entry, cache, None, req, Duration::from_secs(5), &mut trace)
    }

    fn depends_req(entry: &SystemEntry, phi: &str) -> QueryReq {
        let mut r = QueryReq::depends(entry.key, vec!["alpha".into()], "beta");
        r.phi = Some(phi.into());
        r
    }

    #[test]
    fn second_identical_query_hits_cache_byte_identically() {
        let entry = entry();
        let cache = ResultCache::new(8);
        let req = depends_req(&entry, "m");
        let mut trace = RequestTrace::start();
        let cold = execute_query(
            &entry,
            &cache,
            None,
            &req,
            Duration::from_secs(5),
            &mut trace,
        )
        .unwrap();
        assert!(trace.phase_ns(Phase::Search) > 0, "search phase timed");
        let warm = run(&entry, &cache, &req).unwrap();
        assert!(!cold.cached);
        assert!(warm.cached);
        assert_eq!(&*cold.answer, &*warm.answer);
        assert!(warm.report.is_none());
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn limits_do_not_split_the_cache_key() {
        let entry = entry();
        let cache = ResultCache::new(8);
        let mut req = depends_req(&entry, "m");
        run(&entry, &cache, &req).unwrap();
        req.timeout_ms = Some(4000);
        req.max_pairs = Some(1 << 40);
        let warm = run(&entry, &cache, &req).unwrap();
        assert!(warm.cached, "limits must not change the fingerprint");
    }

    #[test]
    fn unknown_object_is_invalid_not_panic() {
        let entry = entry();
        let cache = ResultCache::new(8);
        let req = QueryReq::depends(entry.key, vec!["nope".into()], "beta");
        let err = run(&entry, &cache, &req).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Invalid);
        assert!(err.message.contains("nope"));
    }

    #[test]
    fn exhausted_budget_maps_to_budget_kind() {
        let entry = entry();
        let cache = ResultCache::new(8);
        let mut req = QueryReq::sinks(entry.key, vec!["alpha".into()]);
        req.max_pairs = Some(0);
        let err = run(&entry, &cache, &req).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Budget);
    }

    #[test]
    fn failed_queries_are_not_cached() {
        let entry = entry();
        let cache = ResultCache::new(8);
        let mut req = QueryReq::sinks(entry.key, vec!["alpha".into()]);
        req.max_pairs = Some(0);
        let _ = run(&entry, &cache, &req);
        // Same semantic query, no budget: must run and succeed.
        req.max_pairs = None;
        let out = run(&entry, &cache, &req).unwrap();
        assert!(!out.cached);
        assert!(out.report.is_some());
    }
}
