//! The sd-server wire protocol: JSON-lines request/response framing.
//!
//! One request per line, one response per line, both single JSON
//! objects. Every request may carry an `"id"`; the response echoes it.
//! Methods:
//!
//! | method         | fields                                                        |
//! |----------------|---------------------------------------------------------------|
//! | `ping`         | —                                                             |
//! | `register`     | `example`+`params`, or `program` (mini-language source)       |
//! | `depends`      | `system`, `a`, `beta` or `set`, `phi?`, `bound?`, limits      |
//! | `sinks`        | `system`, `a`, `phi?`, limits                                 |
//! | `sinks_matrix` | `system`, `sources`, `phi?`, limits                           |
//! | `stats`        | —                                                             |
//! | `metrics`      | `format?` (`"json"` default, or `"prometheus"`)               |
//! | `slowlog`      | `limit?` (most recent N slow queries; default all buffered)   |
//! | `shutdown`     | —                                                             |
//!
//! Limits are `timeout_ms` and `max_pairs`, mapped onto
//! [`sd_core::Query`]'s deadline/budget. Success responses are
//! `{"id":…,"ok":true,…}`; failures are `{"id":…,"ok":false,
//! "error":{"kind":…,"message":…}}` with a machine-readable kind.
//! Malformed input is answered with an error response and the
//! connection stays usable — the framing resynchronises at the next
//! newline.

use sd_core::{Fnv64, JsonBuf, QueryAnswer, QueryOutcome, QueryReport, System};

use crate::wire::{self, Json};

/// Maximum accepted request-line length in bytes. Longer frames are
/// rejected with a `too_large` error without buffering the payload.
pub const MAX_FRAME: usize = 1 << 20;

/// Machine-readable error categories carried in error responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line was not valid JSON.
    Parse,
    /// The request was valid JSON but not a valid frame.
    Protocol,
    /// The request line exceeded [`MAX_FRAME`].
    TooLarge,
    /// The `method` is not one the server knows.
    UnknownMethod,
    /// The `system` key is not registered.
    UnknownSystem,
    /// The request named unknown objects, an unparsable φ, or an
    /// otherwise semantically invalid query.
    Invalid,
    /// The query ran past its deadline ([`sd_core::Error::DeadlineExceeded`]).
    Timeout,
    /// The query exhausted its pair budget ([`sd_core::Error::BudgetExhausted`]).
    Budget,
    /// The admission queue was full; retry later.
    Overloaded,
    /// The server is draining and accepts no new queries.
    ShuttingDown,
    /// Unexpected server-side failure.
    Internal,
}

impl ErrorKind {
    /// The wire spelling of the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::Protocol => "protocol",
            ErrorKind::TooLarge => "too_large",
            ErrorKind::UnknownMethod => "unknown_method",
            ErrorKind::UnknownSystem => "unknown_system",
            ErrorKind::Invalid => "invalid",
            ErrorKind::Timeout => "timeout",
            ErrorKind::Budget => "budget",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::Internal => "internal",
        }
    }

    /// Parses the wire spelling back (client side).
    pub fn from_wire(s: &str) -> Option<ErrorKind> {
        Some(match s {
            "parse" => ErrorKind::Parse,
            "protocol" => ErrorKind::Protocol,
            "too_large" => ErrorKind::TooLarge,
            "unknown_method" => ErrorKind::UnknownMethod,
            "unknown_system" => ErrorKind::UnknownSystem,
            "invalid" => ErrorKind::Invalid,
            "timeout" => ErrorKind::Timeout,
            "budget" => ErrorKind::Budget,
            "overloaded" => ErrorKind::Overloaded,
            "shutting_down" => ErrorKind::ShuttingDown,
            "internal" => ErrorKind::Internal,
            _ => return None,
        })
    }
}

/// A structured protocol error: kind + human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Machine-readable category.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// Builds an error of `kind` with a message.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> WireError {
        WireError {
            kind,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.as_str(), self.message)
    }
}

/// How a system is defined at registration time. The registry keys
/// systems by [`SystemDesc::content_key`] — the hash of this content —
/// so re-registering the same description is idempotent and never
/// recompiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SystemDesc {
    /// A named paper-example builder with integer parameters
    /// (`"guarded_copy"` with `[2]`, `"pointer_chain"` with `[3, 2]`…).
    Example {
        /// Builder name (see `sd_core::examples`).
        name: String,
        /// Builder parameters, in declaration order.
        params: Vec<i64>,
    },
    /// A mini-language program (see `sd_lang`), compiled with the pc
    /// construction.
    Program {
        /// The program source text.
        source: String,
    },
}

impl SystemDesc {
    /// Canonical content hash: FNV-1a over a tagged encoding of the
    /// description. Stable across processes, so clients may predict it.
    pub fn content_key(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = Fnv64::new();
        match self {
            SystemDesc::Example { name, params } => {
                h.write_u8(1);
                h.write(name.as_bytes());
                h.write_u8(0);
                for p in params {
                    h.write_i64(*p);
                }
            }
            SystemDesc::Program { source } => {
                h.write_u8(2);
                h.write(source.as_bytes());
            }
        }
        h.digest()
    }

    /// Human-readable one-line description for stats and logs.
    pub fn describe(&self) -> String {
        match self {
            SystemDesc::Example { name, params } => {
                let ps: Vec<String> = params.iter().map(|p| p.to_string()).collect();
                format!("example:{}({})", name, ps.join(","))
            }
            SystemDesc::Program { source } => {
                format!("program({} bytes)", source.len())
            }
        }
    }
}

/// Which relation a query asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// `A ▷φ β` (or the set-target `A ▷φ B`).
    Depends,
    /// All sinks of A.
    Sinks,
    /// One sinks row per source set.
    SinksMatrix,
}

impl QueryKind {
    /// The wire method name.
    pub fn method(self) -> &'static str {
        match self {
            QueryKind::Depends => "depends",
            QueryKind::Sinks => "sinks",
            QueryKind::SinksMatrix => "sinks_matrix",
        }
    }
}

/// A query request, object references by *name* (resolved against the
/// target system's universe server-side).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryReq {
    /// Registry key of the target system.
    pub system: u64,
    /// The relation asked for.
    pub kind: QueryKind,
    /// φ as mini-language source text; `None` ⇒ `tt` (no constraint).
    pub phi: Option<String>,
    /// Source object names (A).
    pub a: Vec<String>,
    /// Target object for `depends`.
    pub beta: Option<String>,
    /// Set target for `depends` (mutually exclusive with `beta`).
    pub set: Vec<String>,
    /// Source rows for `sinks_matrix`.
    pub sources: Vec<Vec<String>>,
    /// History-length bound (β-target only; brute-force enumeration).
    pub bound: Option<usize>,
    /// Per-request deadline in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Per-request visited-pair budget.
    pub max_pairs: Option<u64>,
}

impl QueryReq {
    /// A `sinks` query skeleton.
    pub fn sinks(system: u64, a: Vec<String>) -> QueryReq {
        QueryReq {
            system,
            kind: QueryKind::Sinks,
            phi: None,
            a,
            beta: None,
            set: Vec::new(),
            sources: Vec::new(),
            bound: None,
            timeout_ms: None,
            max_pairs: None,
        }
    }

    /// A `depends` query skeleton.
    pub fn depends(system: u64, a: Vec<String>, beta: impl Into<String>) -> QueryReq {
        let mut q = QueryReq::sinks(system, a);
        q.kind = QueryKind::Depends;
        q.beta = Some(beta.into());
        q
    }

    /// A `sinks_matrix` query skeleton.
    pub fn matrix(system: u64, sources: Vec<Vec<String>>) -> QueryReq {
        let mut q = QueryReq::sinks(system, Vec::new());
        q.kind = QueryKind::SinksMatrix;
        q.sources = sources;
        q
    }
}

/// One parsed request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Register (or look up) a system.
    Register(SystemDesc),
    /// Run a strong-dependency query.
    Query(QueryReq),
    /// Server counters snapshot.
    Stats,
    /// Metric-families scrape. `prom` selects the Prometheus text
    /// exposition; otherwise the response carries structured JSON.
    Metrics {
        /// `true` ⇒ `"format":"prometheus"`.
        prom: bool,
    },
    /// The most recent slow-query entries, oldest first.
    SlowLog {
        /// Cap on returned entries; `None` ⇒ the whole ring.
        limit: Option<u64>,
    },
    /// Begin graceful shutdown.
    Shutdown,
}

/// A request with its correlation id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Echoed verbatim in the response; `None` ⇒ the response carries
    /// `"id":null`.
    pub id: Option<u64>,
    /// The request body.
    pub req: Request,
}

fn str_list(v: &Json, field: &str) -> Result<Vec<String>, WireError> {
    let arr = v.as_arr().ok_or_else(|| {
        WireError::new(
            ErrorKind::Protocol,
            format!("field `{field}` must be an array of strings"),
        )
    })?;
    arr.iter()
        .map(|e| {
            e.as_str().map(str::to_string).ok_or_else(|| {
                WireError::new(
                    ErrorKind::Protocol,
                    format!("field `{field}` must contain only strings"),
                )
            })
        })
        .collect()
}

/// Parses one request line into a [`Frame`].
pub fn parse_frame(line: &str) -> Result<Frame, WireError> {
    if line.len() > MAX_FRAME {
        return Err(WireError::new(
            ErrorKind::TooLarge,
            format!("frame of {} bytes exceeds limit {}", line.len(), MAX_FRAME),
        ));
    }
    let v = wire::parse(line).map_err(|e| WireError::new(ErrorKind::Parse, e.to_string()))?;
    if !matches!(v, Json::Obj(_)) {
        return Err(WireError::new(
            ErrorKind::Protocol,
            "request must be a JSON object",
        ));
    }
    let id = match v.get("id") {
        None | Some(Json::Null) => None,
        Some(idv) => Some(idv.as_u64().ok_or_else(|| {
            WireError::new(
                ErrorKind::Protocol,
                "field `id` must be an unsigned integer",
            )
        })?),
    };
    let method = v
        .get("method")
        .and_then(Json::as_str)
        .ok_or_else(|| WireError::new(ErrorKind::Protocol, "missing string field `method`"))?;
    let req = match method {
        "ping" => Request::Ping,
        "stats" => Request::Stats,
        "shutdown" => Request::Shutdown,
        "metrics" => {
            let prom = match v.get("format") {
                None | Some(Json::Null) => false,
                Some(f) => match f.as_str() {
                    Some("json") => false,
                    Some("prometheus") | Some("prom") => true,
                    _ => {
                        return Err(WireError::new(
                            ErrorKind::Protocol,
                            "field `format` must be \"json\" or \"prometheus\"",
                        ))
                    }
                },
            };
            Request::Metrics { prom }
        }
        "slowlog" => {
            let limit = match v.get("limit") {
                None | Some(Json::Null) => None,
                Some(l) => Some(l.as_u64().ok_or_else(|| {
                    WireError::new(
                        ErrorKind::Protocol,
                        "field `limit` must be an unsigned integer",
                    )
                })?),
            };
            Request::SlowLog { limit }
        }
        "register" => {
            let desc = match (v.get("example"), v.get("program")) {
                (Some(name), None) => {
                    let name = name
                        .as_str()
                        .ok_or_else(|| {
                            WireError::new(ErrorKind::Protocol, "field `example` must be a string")
                        })?
                        .to_string();
                    let params = match v.get("params") {
                        None => Vec::new(),
                        Some(p) => p
                            .as_arr()
                            .ok_or_else(|| {
                                WireError::new(
                                    ErrorKind::Protocol,
                                    "field `params` must be an array of integers",
                                )
                            })?
                            .iter()
                            .map(|e| {
                                e.as_i64().ok_or_else(|| {
                                    WireError::new(
                                        ErrorKind::Protocol,
                                        "field `params` must contain only integers",
                                    )
                                })
                            })
                            .collect::<Result<Vec<i64>, WireError>>()?,
                    };
                    SystemDesc::Example { name, params }
                }
                (None, Some(src)) => SystemDesc::Program {
                    source: src
                        .as_str()
                        .ok_or_else(|| {
                            WireError::new(ErrorKind::Protocol, "field `program` must be a string")
                        })?
                        .to_string(),
                },
                _ => {
                    return Err(WireError::new(
                        ErrorKind::Protocol,
                        "register needs exactly one of `example` or `program`",
                    ))
                }
            };
            Request::Register(desc)
        }
        "depends" | "sinks" | "sinks_matrix" => {
            let system = v.get("system").and_then(Json::as_u64).ok_or_else(|| {
                WireError::new(
                    ErrorKind::Protocol,
                    "missing unsigned integer field `system`",
                )
            })?;
            let kind = match method {
                "depends" => QueryKind::Depends,
                "sinks" => QueryKind::Sinks,
                _ => QueryKind::SinksMatrix,
            };
            let phi = match v.get("phi") {
                None | Some(Json::Null) => None,
                Some(p) => Some(
                    p.as_str()
                        .ok_or_else(|| {
                            WireError::new(ErrorKind::Protocol, "field `phi` must be a string")
                        })?
                        .to_string(),
                ),
            };
            let a = match v.get("a") {
                None => Vec::new(),
                Some(av) => str_list(av, "a")?,
            };
            let beta = match v.get("beta") {
                None | Some(Json::Null) => None,
                Some(b) => Some(
                    b.as_str()
                        .ok_or_else(|| {
                            WireError::new(ErrorKind::Protocol, "field `beta` must be a string")
                        })?
                        .to_string(),
                ),
            };
            let set = match v.get("set") {
                None => Vec::new(),
                Some(sv) => str_list(sv, "set")?,
            };
            let sources = match v.get("sources") {
                None => Vec::new(),
                Some(sv) => sv
                    .as_arr()
                    .ok_or_else(|| {
                        WireError::new(
                            ErrorKind::Protocol,
                            "field `sources` must be an array of arrays",
                        )
                    })?
                    .iter()
                    .map(|row| str_list(row, "sources"))
                    .collect::<Result<Vec<Vec<String>>, WireError>>()?,
            };
            let bound = match v.get("bound") {
                None | Some(Json::Null) => None,
                Some(b) => Some(b.as_u64().ok_or_else(|| {
                    WireError::new(
                        ErrorKind::Protocol,
                        "field `bound` must be an unsigned integer",
                    )
                })? as usize),
            };
            let timeout_ms = match v.get("timeout_ms") {
                None | Some(Json::Null) => None,
                Some(t) => Some(t.as_u64().ok_or_else(|| {
                    WireError::new(
                        ErrorKind::Protocol,
                        "field `timeout_ms` must be an unsigned integer",
                    )
                })?),
            };
            let max_pairs = match v.get("max_pairs") {
                None | Some(Json::Null) => None,
                Some(m) => Some(m.as_u64().ok_or_else(|| {
                    WireError::new(
                        ErrorKind::Protocol,
                        "field `max_pairs` must be an unsigned integer",
                    )
                })?),
            };
            Request::Query(QueryReq {
                system,
                kind,
                phi,
                a,
                beta,
                set,
                sources,
                bound,
                timeout_ms,
                max_pairs,
            })
        }
        other => {
            return Err(WireError::new(
                ErrorKind::UnknownMethod,
                format!("unknown method `{other}`"),
            ))
        }
    };
    Ok(Frame { id, req })
}

fn put_id(j: &mut JsonBuf, id: Option<u64>) {
    match id {
        Some(id) => j.u64_field("id", id),
        None => j.null_field("id"),
    };
}

/// Encodes a request [`Frame`] as one wire line (no trailing newline).
pub fn encode_frame(frame: &Frame) -> String {
    let mut j = JsonBuf::new();
    j.begin_obj();
    put_id(&mut j, frame.id);
    match &frame.req {
        Request::Ping => {
            j.str_field("method", "ping");
        }
        Request::Stats => {
            j.str_field("method", "stats");
        }
        Request::Shutdown => {
            j.str_field("method", "shutdown");
        }
        Request::Metrics { prom } => {
            j.str_field("method", "metrics");
            if *prom {
                j.str_field("format", "prometheus");
            }
        }
        Request::SlowLog { limit } => {
            j.str_field("method", "slowlog");
            if let Some(l) = limit {
                j.u64_field("limit", *l);
            }
        }
        Request::Register(desc) => {
            j.str_field("method", "register");
            match desc {
                SystemDesc::Example { name, params } => {
                    j.str_field("example", name);
                    j.begin_arr_field("params");
                    for p in params {
                        j.i64_elem(*p);
                    }
                    j.end_arr();
                }
                SystemDesc::Program { source } => {
                    j.str_field("program", source);
                }
            }
        }
        Request::Query(q) => {
            j.str_field("method", q.kind.method());
            j.u64_field("system", q.system);
            if let Some(phi) = &q.phi {
                j.str_field("phi", phi);
            }
            if !q.a.is_empty() {
                j.begin_arr_field("a");
                for n in &q.a {
                    j.str_elem(n);
                }
                j.end_arr();
            }
            if let Some(beta) = &q.beta {
                j.str_field("beta", beta);
            }
            if !q.set.is_empty() {
                j.begin_arr_field("set");
                for n in &q.set {
                    j.str_elem(n);
                }
                j.end_arr();
            }
            if !q.sources.is_empty() {
                j.begin_arr_field("sources");
                for row in &q.sources {
                    j.begin_arr_elem();
                    for n in row {
                        j.str_elem(n);
                    }
                    j.end_arr();
                }
                j.end_arr();
            }
            if let Some(b) = q.bound {
                j.u64_field("bound", b as u64);
            }
            if let Some(t) = q.timeout_ms {
                j.u64_field("timeout_ms", t);
            }
            if let Some(m) = q.max_pairs {
                j.u64_field("max_pairs", m);
            }
        }
    }
    j.end_obj();
    j.finish()
}

/// Serialises a [`QueryOutcome`]'s answer as a canonical JSON value.
///
/// This is the *cacheable* part of a response: deterministic given the
/// outcome, independent of timing, ids, and cache state, so a cache
/// replay is byte-identical to the original. Object names come from the
/// system's universe; witness states serialise as name → value maps in
/// universe order.
pub fn encode_answer(sys: &System, out: &QueryOutcome) -> String {
    let u = sys.universe();
    let mut j = JsonBuf::new();
    j.begin_obj();
    match &out.answer {
        QueryAnswer::Depends(witness) => {
            j.str_field("type", "depends");
            j.bool_field("holds", witness.is_some());
            match witness {
                None => {
                    j.null_field("witness");
                }
                Some(w) => {
                    j.begin_obj_field("witness");
                    j.begin_arr_field("history");
                    for op in w.history.ops() {
                        let name = sys.op(*op).map(|o| o.name().to_string());
                        j.str_elem(name.as_deref().unwrap_or("?"));
                    }
                    j.end_arr();
                    for (key, sigma) in [("sigma1", &w.sigma1), ("sigma2", &w.sigma2)] {
                        j.begin_obj_field(key);
                        for obj in u.objects() {
                            j.str_field(u.name(obj), &sigma.value(u, obj).to_string());
                        }
                        j.end_obj();
                    }
                    j.end_obj();
                }
            }
        }
        QueryAnswer::Sinks(set) => {
            j.str_field("type", "sinks");
            j.begin_arr_field("objects");
            for obj in set.iter() {
                j.str_elem(u.name(obj));
            }
            j.end_arr();
        }
        QueryAnswer::Matrix(rows) => {
            j.str_field("type", "matrix");
            j.begin_arr_field("rows");
            for row in rows {
                j.begin_arr_elem();
                for obj in row.iter() {
                    j.str_elem(u.name(obj));
                }
                j.end_arr();
            }
            j.end_arr();
        }
    }
    j.end_obj();
    j.finish()
}

/// Encodes an error response line.
pub fn encode_error(id: Option<u64>, err: &WireError) -> String {
    let mut j = JsonBuf::new();
    j.begin_obj();
    put_id(&mut j, id);
    j.bool_field("ok", false);
    j.begin_obj_field("error")
        .str_field("kind", err.kind.as_str())
        .str_field("message", &err.message)
        .end_obj();
    j.end_obj();
    j.finish()
}

/// Encodes a successful query response around a pre-serialised answer.
pub fn encode_query_ok(
    id: Option<u64>,
    answer_json: &str,
    cached: bool,
    report: Option<&QueryReport>,
) -> String {
    let mut j = JsonBuf::new();
    j.begin_obj();
    put_id(&mut j, id);
    j.bool_field("ok", true);
    j.bool_field("cached", cached);
    j.raw_field("answer", answer_json);
    if let Some(r) = report {
        j.begin_obj_field("meta");
        r.json_fields(&mut j);
        j.end_obj();
    }
    j.end_obj();
    j.finish()
}

/// A parsed response frame (client side). `answer_raw` preserves the
/// exact bytes of the `answer` value so callers can assert cache
/// replays are byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseFrame {
    /// Echoed request id.
    pub id: Option<u64>,
    /// Whether the request succeeded.
    pub ok: bool,
    /// Whether the answer came from the result cache.
    pub cached: bool,
    /// The parsed `answer` value, when present.
    pub answer: Option<Json>,
    /// The exact serialised bytes of the `answer` value, when present.
    pub answer_raw: Option<String>,
    /// The full parsed response body.
    pub body: Json,
    /// The error, when `ok` is false.
    pub error: Option<WireError>,
}

/// Parses one response line.
pub fn parse_response(line: &str) -> Result<ResponseFrame, WireError> {
    let body = wire::parse(line).map_err(|e| WireError::new(ErrorKind::Parse, e.to_string()))?;
    let id = body.get("id").and_then(Json::as_u64);
    let ok = body.get("ok").and_then(Json::as_bool).unwrap_or(false);
    let cached = body.get("cached").and_then(Json::as_bool).unwrap_or(false);
    let answer = body.get("answer").cloned();
    let answer_raw = match &answer {
        None => None,
        Some(_) => wire::top_level_spans(line)
            .ok()
            .and_then(|spans| spans.into_iter().find(|(k, _)| k == "answer"))
            .map(|(_, (s, e))| line[s..e].to_string()),
    };
    let error = body.get("error").map(|e| {
        let kind = e
            .get("kind")
            .and_then(Json::as_str)
            .and_then(ErrorKind::from_wire)
            .unwrap_or(ErrorKind::Internal);
        let message = e
            .get("message")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        WireError { kind, message }
    });
    Ok(ResponseFrame {
        id,
        ok,
        cached,
        answer,
        answer_raw,
        body,
        error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let frame = Frame {
            id: Some(3),
            req: Request::Query(QueryReq {
                system: 99,
                kind: QueryKind::Depends,
                phi: Some("!m".into()),
                a: vec!["alpha".into()],
                beta: Some("beta".into()),
                set: Vec::new(),
                sources: Vec::new(),
                bound: Some(4),
                timeout_ms: Some(250),
                max_pairs: Some(1000),
            }),
        };
        let line = encode_frame(&frame);
        assert_eq!(parse_frame(&line).unwrap(), frame);
    }

    #[test]
    fn register_round_trip() {
        for desc in [
            SystemDesc::Example {
                name: "guarded_copy".into(),
                params: vec![2],
            },
            SystemDesc::Program {
                source: "var x: bool;\nx := true;".into(),
            },
        ] {
            let frame = Frame {
                id: None,
                req: Request::Register(desc.clone()),
            };
            let line = encode_frame(&frame);
            assert_eq!(parse_frame(&line).unwrap().req, Request::Register(desc));
        }
    }

    #[test]
    fn metrics_and_slowlog_round_trip() {
        for req in [
            Request::Metrics { prom: false },
            Request::Metrics { prom: true },
            Request::SlowLog { limit: None },
            Request::SlowLog { limit: Some(16) },
        ] {
            let frame = Frame {
                id: Some(1),
                req: req.clone(),
            };
            assert_eq!(parse_frame(&encode_frame(&frame)).unwrap().req, req);
        }
        // `"format":"prom"` is accepted as an alias; garbage is not.
        assert_eq!(
            parse_frame(r#"{"method":"metrics","format":"prom"}"#)
                .unwrap()
                .req,
            Request::Metrics { prom: true }
        );
        assert_eq!(
            parse_frame(r#"{"method":"metrics","format":"xml"}"#)
                .unwrap_err()
                .kind,
            ErrorKind::Protocol
        );
        assert_eq!(
            parse_frame(r#"{"method":"slowlog","limit":"x"}"#)
                .unwrap_err()
                .kind,
            ErrorKind::Protocol
        );
    }

    #[test]
    fn content_key_is_stable_and_discriminates() {
        let a = SystemDesc::Example {
            name: "copy".into(),
            params: vec![2],
        };
        let b = SystemDesc::Example {
            name: "copy".into(),
            params: vec![3],
        };
        let c = SystemDesc::Program {
            source: "copy".into(),
        };
        assert_eq!(a.content_key(), a.content_key());
        assert_ne!(a.content_key(), b.content_key());
        assert_ne!(a.content_key(), c.content_key());
    }

    #[test]
    fn malformed_frames_yield_structured_kinds() {
        assert_eq!(parse_frame("{oops").unwrap_err().kind, ErrorKind::Parse);
        assert_eq!(parse_frame("[1,2]").unwrap_err().kind, ErrorKind::Protocol);
        assert_eq!(
            parse_frame(r#"{"method":"frobnicate"}"#).unwrap_err().kind,
            ErrorKind::UnknownMethod
        );
        assert_eq!(
            parse_frame(r#"{"method":"depends"}"#).unwrap_err().kind,
            ErrorKind::Protocol
        );
        let oversized = format!(r#"{{"method":"ping","pad":"{}"}}"#, "x".repeat(MAX_FRAME));
        assert_eq!(
            parse_frame(&oversized).unwrap_err().kind,
            ErrorKind::TooLarge
        );
    }

    #[test]
    fn error_response_round_trip() {
        let line = encode_error(Some(9), &WireError::new(ErrorKind::Timeout, "too slow"));
        let resp = parse_response(&line).unwrap();
        assert_eq!(resp.id, Some(9));
        assert!(!resp.ok);
        let err = resp.error.unwrap();
        assert_eq!(err.kind, ErrorKind::Timeout);
        assert_eq!(err.message, "too slow");
    }

    #[test]
    fn query_ok_preserves_answer_bytes() {
        let answer = r#"{"type":"sinks","objects":["beta","gamma"]}"#;
        let line = encode_query_ok(Some(1), answer, true, None);
        let resp = parse_response(&line).unwrap();
        assert!(resp.ok);
        assert!(resp.cached);
        assert_eq!(resp.answer_raw.as_deref(), Some(answer));
    }
}
