//! The system registry: parse/compile each system **once**, share the
//! compiled [`Oracle`] across every connection.
//!
//! Systems are keyed by [`SystemDesc::content_key`] — a stable hash of
//! the registration content — so re-registering an identical
//! description (any client, any connection) returns the existing entry
//! without recompiling. Registration holds the registry lock across the
//! build: a second client registering the same system concurrently
//! blocks until the first build finishes and then observes the entry,
//! which is exactly the compile-once guarantee the e2e tests assert via
//! telemetry (`CompileFinish` count stays 1).
//!
//! Entries live for the life of the process: the [`System`] is leaked
//! into `&'static` so the borrowed `Oracle<'static>` needs no
//! self-referential tricks (core forbids `unsafe`). The registry is
//! therefore *capacity-capped* rather than evicting — registration past
//! the cap is refused as an admission-control decision, not silently
//! absorbed as an unbounded leak.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use sd_core::{examples, CompileBudget, Engine, Oracle, Sink, System};

use crate::proto::{ErrorKind, SystemDesc, WireError};

/// One registered system: the leaked [`System`] and its compile-once
/// [`Oracle`], shared (the Oracle is `Sync`) by every worker.
pub struct SystemEntry {
    /// The registry key ([`SystemDesc::content_key`]).
    pub key: u64,
    /// Human-readable description for stats/logs.
    pub desc: String,
    /// The system, alive for the life of the process.
    pub system: &'static System,
    /// The shared compiled query session.
    pub oracle: Oracle<'static>,
}

impl std::fmt::Debug for SystemEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemEntry")
            .field("key", &self.key)
            .field("desc", &self.desc)
            .finish_non_exhaustive()
    }
}

/// The registry. See the module docs for the sharing model.
pub struct Registry {
    entries: Mutex<HashMap<u64, Arc<SystemEntry>>>,
    cap: usize,
    budget: CompileBudget,
    sink: Option<Arc<dyn Sink>>,
}

fn build_example(name: &str, params: &[i64]) -> Result<System, WireError> {
    let arity_err = |want: usize| {
        WireError::new(
            ErrorKind::Invalid,
            format!("example `{name}` takes {want} integer parameter(s)"),
        )
    };
    let p = |i: usize, want: usize| params.get(i).copied().ok_or_else(|| arity_err(want));
    let built = match name {
        "copy" => examples::copy_system(p(0, 1)?),
        "threshold" => examples::threshold_system(p(0, 1)?),
        "guarded_copy" => examples::guarded_copy_system(p(0, 1)?),
        "flag_copy" => examples::flag_copy_system(p(0, 1)?),
        "nontransitive" => examples::nontransitive_system(p(0, 1)?),
        "left_right" => examples::left_right_system(p(0, 1)?),
        "m1m2" => examples::m1m2_system(p(0, 1)?),
        "oscillator" => examples::oscillator_system(p(0, 1)?),
        "mod_adder" => {
            let bits = u32::try_from(p(0, 1)?)
                .map_err(|_| WireError::new(ErrorKind::Invalid, "mod_adder bits must be ≥ 0"))?;
            examples::mod_adder_system(bits)
        }
        "pointer_chain" => {
            let n = usize::try_from(p(0, 2)?)
                .map_err(|_| WireError::new(ErrorKind::Invalid, "pointer_chain n must be ≥ 0"))?;
            examples::pointer_chain_system(n, p(1, 2)?)
        }
        other => {
            return Err(WireError::new(
                ErrorKind::Invalid,
                format!("unknown example `{other}`"),
            ))
        }
    };
    built.map_err(|e| WireError::new(ErrorKind::Invalid, e.to_string()))
}

fn build_system(desc: &SystemDesc) -> Result<System, WireError> {
    match desc {
        SystemDesc::Example { name, params } => build_example(name, params),
        SystemDesc::Program { source } => {
            let prog = sd_lang::parse(source)
                .map_err(|e| WireError::new(ErrorKind::Invalid, e.to_string()))?;
            let compiled = sd_lang::compile(&prog)
                .map_err(|e| WireError::new(ErrorKind::Invalid, e.to_string()))?;
            Ok(compiled.system)
        }
    }
}

impl Registry {
    /// A registry holding at most `cap` systems, compiling with
    /// `budget`. When `sink` is present every compile reports telemetry
    /// through it (and so do all queries run on the shared Oracles).
    pub fn new(cap: usize, budget: CompileBudget, sink: Option<Arc<dyn Sink>>) -> Registry {
        Registry {
            entries: Mutex::new(HashMap::new()),
            cap,
            budget,
            sink,
        }
    }

    /// Registers (or looks up) the system described by `desc`. Same
    /// content ⇒ same entry, compiled exactly once. The returned flag is
    /// `true` when this call actually built the system (a *cold*
    /// registration) and `false` when it found an existing entry — the
    /// server labels registration latency with it.
    pub fn register(&self, desc: &SystemDesc) -> Result<(Arc<SystemEntry>, bool), WireError> {
        let key = desc.content_key();
        let mut entries = self.entries.lock().expect("registry lock");
        if let Some(entry) = entries.get(&key) {
            return Ok((Arc::clone(entry), false));
        }
        if entries.len() >= self.cap {
            return Err(WireError::new(
                ErrorKind::Overloaded,
                format!("registry full ({} systems); not accepting more", self.cap),
            ));
        }
        let system: &'static System = Box::leak(Box::new(build_system(desc)?));
        let oracle = match &self.sink {
            Some(sink) => Oracle::with_sink(system, Engine::Auto, &self.budget, Arc::clone(sink)),
            None => Oracle::with_engine(system, Engine::Auto, &self.budget),
        }
        .map_err(|e| WireError::new(ErrorKind::Invalid, e.to_string()))?;
        let entry = Arc::new(SystemEntry {
            key,
            desc: desc.describe(),
            system,
            oracle,
        });
        entries.insert(key, Arc::clone(&entry));
        Ok((entry, true))
    }

    /// Looks up a registered system by key.
    pub fn get(&self, key: u64) -> Option<Arc<SystemEntry>> {
        self.entries
            .lock()
            .expect("registry lock")
            .get(&key)
            .cloned()
    }

    /// `(key, description)` of every registered system, sorted by key
    /// (deterministic stats output).
    pub fn list(&self) -> Vec<(u64, String)> {
        let mut out: Vec<(u64, String)> = self
            .entries
            .lock()
            .expect("registry lock")
            .values()
            .map(|e| (e.key, e.desc.clone()))
            .collect();
        out.sort_unstable_by_key(|(k, _)| *k);
        out
    }

    /// Number of registered systems.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("registry lock").len()
    }

    /// Maximum number of systems the registry admits.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Whether no system is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(k: i64) -> SystemDesc {
        SystemDesc::Example {
            name: "guarded_copy".into(),
            params: vec![k],
        }
    }

    #[test]
    fn same_content_compiles_once() {
        let reg = Registry::new(4, CompileBudget::default(), None);
        let (a, fresh_a) = reg.register(&desc(2)).unwrap();
        let (b, fresh_b) = reg.register(&desc(2)).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(fresh_a, "first registration builds");
        assert!(!fresh_b, "second registration reuses");
        assert_eq!(a.oracle.stats().compiles, 1);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn distinct_content_distinct_entries() {
        let reg = Registry::new(4, CompileBudget::default(), None);
        let (a, _) = reg.register(&desc(2)).unwrap();
        let (b, _) = reg.register(&desc(3)).unwrap();
        assert_ne!(a.key, b.key);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.cap(), 4);
    }

    #[test]
    fn cap_refuses_further_registrations() {
        let reg = Registry::new(1, CompileBudget::default(), None);
        reg.register(&desc(2)).unwrap();
        let err = reg.register(&desc(3)).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Overloaded);
        // The existing entry is still servable.
        assert!(reg.register(&desc(2)).is_ok());
    }

    #[test]
    fn unknown_example_is_invalid() {
        let reg = Registry::new(4, CompileBudget::default(), None);
        let err = reg
            .register(&SystemDesc::Example {
                name: "no_such".into(),
                params: vec![],
            })
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::Invalid);
    }

    #[test]
    fn program_registration_compiles() {
        let reg = Registry::new(4, CompileBudget::default(), None);
        let (entry, _) = reg
            .register(&SystemDesc::Program {
                source: "var x: bool; var y: bool;\ny := x;".into(),
            })
            .unwrap();
        assert!(entry.system.universe().obj("x").is_ok());
    }

    #[test]
    fn bad_program_is_structured_error() {
        let reg = Registry::new(4, CompileBudget::default(), None);
        let err = reg
            .register(&SystemDesc::Program {
                source: "var x bool".into(),
            })
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::Invalid);
    }
}
