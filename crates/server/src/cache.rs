//! The query-result cache: a fixed-capacity LRU keyed by the canonical
//! query fingerprint.
//!
//! Keys combine the registry key of the target system with
//! [`sd_core::Query::fingerprint`] into one `u128`. Values are the
//! *serialised* answer (`proto::encode_answer` output) behind an
//! `Arc<str>`, so a hit is a pointer clone and the replayed response is
//! byte-identical to the original. Only successful answers are cached:
//! errors (timeouts, exhausted budgets) depend on the request's limits,
//! which the fingerprint deliberately excludes.
//!
//! The LRU is intrusive over a slab of nodes (`Vec` + free list), so a
//! full cache does steady-state hits/insertions with zero allocation
//! beyond the value strings themselves.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Hit/miss/eviction counters, surfaced through `stats` responses and
/// the telemetry sink.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a real query run.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Current number of cached answers.
    pub entries: u64,
    /// Configured capacity.
    pub capacity: u64,
}

const NIL: usize = usize::MAX;

struct Node {
    key: u128,
    val: Arc<str>,
    prev: usize,
    next: usize,
}

struct Lru {
    map: HashMap<u128, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    cap: usize,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
}

impl Lru {
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next].prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }
}

/// A thread-safe LRU result cache. Capacity 0 disables caching (every
/// lookup misses, inserts are dropped).
pub struct ResultCache {
    inner: Mutex<Lru>,
}

impl ResultCache {
    /// A cache holding at most `cap` answers.
    pub fn new(cap: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(Lru {
                map: HashMap::new(),
                nodes: Vec::new(),
                free: Vec::new(),
                head: NIL,
                tail: NIL,
                cap,
                hits: 0,
                misses: 0,
                insertions: 0,
                evictions: 0,
            }),
        }
    }

    /// Looks up `key`, promoting it to most-recently-used on a hit.
    pub fn get(&self, key: u128) -> Option<Arc<str>> {
        let mut lru = self.inner.lock().expect("cache lock");
        match lru.map.get(&key).copied() {
            Some(i) => {
                lru.hits += 1;
                lru.unlink(i);
                lru.push_front(i);
                Some(Arc::clone(&lru.nodes[i].val))
            }
            None => {
                lru.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry when full.
    pub fn insert(&self, key: u128, val: Arc<str>) {
        let mut lru = self.inner.lock().expect("cache lock");
        if lru.cap == 0 {
            return;
        }
        if let Some(i) = lru.map.get(&key).copied() {
            lru.nodes[i].val = val;
            lru.unlink(i);
            lru.push_front(i);
            return;
        }
        if lru.map.len() >= lru.cap {
            let victim = lru.tail;
            lru.unlink(victim);
            let old_key = lru.nodes[victim].key;
            lru.map.remove(&old_key);
            lru.free.push(victim);
            lru.evictions += 1;
        }
        let i = match lru.free.pop() {
            Some(i) => {
                lru.nodes[i] = Node {
                    key,
                    val,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                lru.nodes.push(Node {
                    key,
                    val,
                    prev: NIL,
                    next: NIL,
                });
                lru.nodes.len() - 1
            }
        };
        lru.map.insert(key, i);
        lru.push_front(i);
        lru.insertions += 1;
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        let lru = self.inner.lock().expect("cache lock");
        CacheStats {
            hits: lru.hits,
            misses: lru.misses,
            insertions: lru.insertions,
            evictions: lru.evictions,
            entries: lru.map.len() as u64,
            capacity: lru.cap as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn hit_returns_identical_value() {
        let c = ResultCache::new(2);
        c.insert(1, v("a"));
        assert_eq!(c.get(1).as_deref(), Some("a"));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 0, 1));
    }

    #[test]
    fn evicts_least_recently_used() {
        let c = ResultCache::new(2);
        c.insert(1, v("a"));
        c.insert(2, v("b"));
        c.get(1); // promote 1; victim should be 2
        c.insert(3, v("c"));
        assert!(c.get(2).is_none());
        assert_eq!(c.get(1).as_deref(), Some("a"));
        assert_eq!(c.get(3).as_deref(), Some("c"));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn refresh_updates_value_without_growth() {
        let c = ResultCache::new(2);
        c.insert(1, v("a"));
        c.insert(1, v("a2"));
        assert_eq!(c.get(1).as_deref(), Some("a2"));
        assert_eq!(c.stats().entries, 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c = ResultCache::new(0);
        c.insert(1, v("a"));
        assert!(c.get(1).is_none());
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn slab_reuses_freed_nodes() {
        let c = ResultCache::new(2);
        for k in 0..100u128 {
            c.insert(k, v("x"));
        }
        let lru = c.inner.lock().unwrap();
        assert!(lru.nodes.len() <= 3, "slab grew: {}", lru.nodes.len());
    }
}
