//! A blocking client for the sd-server protocol.
//!
//! One request in flight per connection; ids are assigned
//! monotonically and checked against the response. Both `sdcheck
//! client` and the load-generator bench are built on this.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::proto::{
    self, ErrorKind, Frame, QueryReq, Request, ResponseFrame, SystemDesc, WireError,
};
use crate::wire::Json;

/// A client-side failure: transport errors surface as
/// [`ErrorKind::Internal`]; server-reported errors keep their kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientError {
    /// Machine-readable category.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.as_str(), self.message)
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError {
            kind: ErrorKind::Internal,
            message: format!("transport: {e}"),
        }
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> ClientError {
        ClientError {
            kind: e.kind,
            message: e.message,
        }
    }
}

/// A connected client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            next_id: 1,
        })
    }

    /// Sets a read timeout for responses (per request).
    pub fn set_read_timeout(&mut self, t: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(t)
    }

    /// Sends one request and returns the parsed response together with
    /// the raw response line (for byte-level assertions).
    pub fn call_raw(&mut self, req: Request) -> Result<(ResponseFrame, String), ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let line = proto::encode_frame(&Frame { id: Some(id), req });
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut resp_line = String::new();
        let n = self.reader.read_line(&mut resp_line)?;
        if n == 0 {
            return Err(ClientError {
                kind: ErrorKind::Internal,
                message: "server closed the connection".into(),
            });
        }
        let trimmed = resp_line.trim_end_matches(['\n', '\r']).to_string();
        let resp = proto::parse_response(&trimmed)?;
        if resp.id != Some(id) {
            return Err(ClientError {
                kind: ErrorKind::Protocol,
                message: format!("response id {:?} does not match request {id}", resp.id),
            });
        }
        Ok((resp, trimmed))
    }

    /// Sends one request; an `ok:false` response becomes an error
    /// carrying the server's kind.
    pub fn call(&mut self, req: Request) -> Result<ResponseFrame, ClientError> {
        let (resp, _) = self.call_raw(req)?;
        if !resp.ok {
            let err = resp.error.clone().unwrap_or_else(|| {
                WireError::new(ErrorKind::Internal, "server sent ok:false with no error")
            });
            return Err(err.into());
        }
        Ok(resp)
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.call(Request::Ping).map(|_| ())
    }

    /// Registers a system and returns its registry key.
    pub fn register(&mut self, desc: SystemDesc) -> Result<u64, ClientError> {
        let resp = self.call(Request::Register(desc))?;
        resp.body
            .get("system")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError {
                kind: ErrorKind::Protocol,
                message: "register response missing `system`".into(),
            })
    }

    /// Registers a named example system.
    pub fn register_example(&mut self, name: &str, params: &[i64]) -> Result<u64, ClientError> {
        self.register(SystemDesc::Example {
            name: name.into(),
            params: params.to_vec(),
        })
    }

    /// Runs a query and returns the parsed response.
    pub fn query(&mut self, req: QueryReq) -> Result<ResponseFrame, ClientError> {
        self.call(Request::Query(req))
    }

    /// Runs a `depends` query; returns the verdict.
    pub fn depends(&mut self, req: QueryReq) -> Result<bool, ClientError> {
        let resp = self.query(req)?;
        resp.answer
            .as_ref()
            .and_then(|a| a.get("holds"))
            .and_then(Json::as_bool)
            .ok_or_else(|| ClientError {
                kind: ErrorKind::Protocol,
                message: "depends response missing `holds`".into(),
            })
    }

    /// Runs a `sinks` query; returns the sink object names.
    pub fn sinks(&mut self, req: QueryReq) -> Result<Vec<String>, ClientError> {
        let resp = self.query(req)?;
        let objs = resp
            .answer
            .as_ref()
            .and_then(|a| a.get("objects"))
            .and_then(Json::as_arr)
            .ok_or_else(|| ClientError {
                kind: ErrorKind::Protocol,
                message: "sinks response missing `objects`".into(),
            })?;
        Ok(objs
            .iter()
            .filter_map(|o| o.as_str().map(str::to_string))
            .collect())
    }

    /// Fetches the server counters snapshot.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.call(Request::Stats).map(|r| r.body)
    }

    /// Scrapes the metric families as structured JSON (the response's
    /// `metrics` object).
    pub fn metrics(&mut self) -> Result<Json, ClientError> {
        let resp = self.call(Request::Metrics { prom: false })?;
        resp.body
            .get("metrics")
            .cloned()
            .ok_or_else(|| ClientError {
                kind: ErrorKind::Protocol,
                message: "metrics response missing `metrics`".into(),
            })
    }

    /// Scrapes the metric families as a Prometheus text exposition.
    pub fn metrics_prom(&mut self) -> Result<String, ClientError> {
        let resp = self.call(Request::Metrics { prom: true })?;
        resp.body
            .get("text")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError {
                kind: ErrorKind::Protocol,
                message: "metrics response missing `text`".into(),
            })
    }

    /// Fetches the most recent slow-query entries (oldest first).
    pub fn slowlog(&mut self, limit: Option<u64>) -> Result<Vec<Json>, ClientError> {
        let resp = self.call(Request::SlowLog { limit })?;
        let entries = resp
            .body
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or_else(|| ClientError {
                kind: ErrorKind::Protocol,
                message: "slowlog response missing `entries`".into(),
            })?;
        Ok(entries.to_vec())
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.call(Request::Shutdown).map(|_| ())
    }
}
