//! `sdserved` — the strong-dependency query daemon.
//!
//! ```text
//! sdserved [--addr HOST:PORT] [--workers N] [--queue-depth N]
//!          [--cache-cap N] [--registry-cap N] [--max-timeout-ms N]
//!          [--slow-ms N] [--slowlog-cap N] [--no-metrics]
//!          [--access-log PATH|-] [--telemetry]
//! ```
//!
//! Runs until a client sends `shutdown`. `--access-log -` writes the
//! JSON-lines access log to stderr; `--telemetry` streams query
//! telemetry events (compiles, cache hits/misses, per-query reports)
//! to stderr as JSON lines. Requests slower than `--slow-ms`
//! (default 100) are captured in the in-memory slow-query ring
//! (`slowlog` method; `--slowlog-cap` entries) and appended to the
//! access log stream when one is configured. `--no-metrics` disables
//! all metric recording (the A/B baseline for overhead measurements).

use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use sd_core::JsonLinesSink;
use sd_server::{Config, ServeHandle};

fn usage() -> ExitCode {
    eprintln!(
        "usage: sdserved [--addr HOST:PORT] [--workers N] [--queue-depth N] \
         [--cache-cap N] [--registry-cap N] [--max-timeout-ms N] \
         [--slow-ms N] [--slowlog-cap N] [--no-metrics] \
         [--access-log PATH|-] [--telemetry]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = Config {
        addr: "127.0.0.1:4177".into(),
        ..Config::default()
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let take = |i: &mut usize| -> Option<String> {
            *i += 1;
            args.get(*i).cloned()
        };
        match flag {
            "--addr" => match take(&mut i) {
                Some(v) => cfg.addr = v,
                None => return usage(),
            },
            "--workers" | "--queue-depth" | "--cache-cap" | "--registry-cap"
            | "--max-timeout-ms" | "--slow-ms" | "--slowlog-cap" => {
                let Some(v) = take(&mut i) else {
                    return usage();
                };
                let Ok(n) = v.parse::<u64>() else {
                    eprintln!("sdserved: {flag} wants an unsigned integer, got `{v}`");
                    return ExitCode::from(2);
                };
                match flag {
                    "--workers" => cfg.workers = n as usize,
                    "--queue-depth" => cfg.queue_depth = n as usize,
                    "--cache-cap" => cfg.cache_cap = n as usize,
                    "--registry-cap" => cfg.registry_cap = n as usize,
                    "--slow-ms" => cfg.slow_ms = n,
                    "--slowlog-cap" => cfg.slowlog_cap = n as usize,
                    _ => cfg.max_timeout = Duration::from_millis(n),
                }
            }
            "--no-metrics" => {
                cfg.metrics = false;
            }
            "--access-log" => {
                let Some(path) = take(&mut i) else {
                    return usage();
                };
                let out: Box<dyn Write + Send> = if path == "-" {
                    Box::new(std::io::stderr())
                } else {
                    match std::fs::File::create(&path) {
                        Ok(f) => Box::new(f),
                        Err(e) => {
                            eprintln!("sdserved: cannot open access log {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                };
                cfg.access_log = Some(out);
            }
            "--telemetry" => {
                cfg.sink = Some(Arc::new(JsonLinesSink::new(std::io::stderr())));
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("sdserved: unknown flag `{other}`");
                return usage();
            }
        }
        i += 1;
    }
    let handle = match ServeHandle::spawn(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("sdserved: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("sdserved listening on {}", handle.local_addr());
    handle.wait();
    println!("sdserved: drained and stopped");
    ExitCode::SUCCESS
}
